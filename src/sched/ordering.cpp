#include "sched/ordering.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/flow.hpp"
#include "net/metrics.hpp"
#include "net/network.hpp"

namespace ccf::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Column view of a problem's demands, normalized to time units
/// (load / link capacity): per link, the (coflow, t) entries in ascending
/// coflow order — the iteration scans bottleneck columns, not rows.
struct NormalizedColumns {
  std::vector<std::uint32_t> off;     ///< link -> start, link_count()+1
  std::vector<std::uint32_t> coflow;  ///< per entry
  std::vector<double> t;              ///< normalized demand, > 0
};

/// Normalize the CSR loads to time units in `t` (parallel to demand_load).
std::vector<double> normalized_rows(const OrderingProblem& p) {
  std::vector<double> t(p.demand_load.size());
  for (std::size_t e = 0; e < t.size(); ++e) {
    t[e] = p.demand_load[e] / p.capacity[p.demand_link[e]];
  }
  return t;
}

NormalizedColumns transpose(const OrderingProblem& p,
                            std::span<const double> t) {
  NormalizedColumns csc;
  const std::size_t links = p.link_count();
  csc.off.assign(links + 1, 0);
  for (const std::uint32_t l : p.demand_link) ++csc.off[l + 1];
  for (std::size_t l = 0; l < links; ++l) csc.off[l + 1] += csc.off[l];
  csc.coflow.resize(p.demand_link.size());
  csc.t.resize(p.demand_link.size());
  std::vector<std::uint32_t> cursor(csc.off.begin(), csc.off.end() - 1);
  // Rows ascend by coflow, so each column lands in ascending coflow order —
  // the scans below tie-break towards the smallest index for free.
  for (std::uint32_t c = 0; c < p.coflow_count(); ++c) {
    for (std::uint32_t e = p.row_offset[c]; e < p.row_offset[c + 1]; ++e) {
      const std::uint32_t slot = cursor[p.demand_link[e]]++;
      csc.coflow[slot] = c;
      csc.t[slot] = t[e];
    }
  }
  return csc;
}

/// Γ_c in time units: max over the coflow's links of normalized demand.
double row_gamma(const OrderingProblem& p, std::span<const double> t,
                 std::uint32_t c) {
  double g = 0.0;
  for (std::uint32_t e = p.row_offset[c]; e < p.row_offset[c + 1]; ++e) {
    if (t[e] > g) g = t[e];
  }
  return g;
}

}  // namespace

void OrderingProblem::clear() {
  capacity.clear();
  weight.clear();
  row_offset.assign(1, 0);
  demand_link.clear();
  demand_load.clear();
}

void OrderingProblem::reset(std::span<const double> capacities) {
  clear();
  capacity.assign(capacities.begin(), capacities.end());
  for (const double cap : capacity) {
    if (!(cap > 0.0) || !std::isfinite(cap)) {
      throw std::invalid_argument(
          "OrderingProblem: link capacities must be finite and > 0");
    }
  }
}

void OrderingProblem::add_coflow(double w,
                                 std::span<const std::uint32_t> links,
                                 std::span<const double> loads) {
  if (w < 0.0 || !std::isfinite(w)) {
    throw std::invalid_argument("OrderingProblem: invalid coflow weight");
  }
  if (links.size() != loads.size()) {
    throw std::invalid_argument("OrderingProblem: links/loads size mismatch");
  }
  if (row_offset.empty()) row_offset.assign(1, 0);
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i] >= capacity.size()) {
      throw std::invalid_argument("OrderingProblem: link id out of range");
    }
    if (loads[i] < 0.0 || !std::isfinite(loads[i])) {
      throw std::invalid_argument("OrderingProblem: invalid demand load");
    }
    if (loads[i] == 0.0) continue;
    demand_link.push_back(links[i]);
    demand_load.push_back(loads[i]);
  }
  weight.push_back(w);
  row_offset.push_back(static_cast<std::uint32_t>(demand_link.size()));
}

namespace {

/// Compact a dense per-link load vector to the (links, loads) pair
/// OrderingProblem::add_coflow consumes.
void compact_loads(const std::vector<double>& loads,
                   std::vector<std::uint32_t>& links,
                   std::vector<double>& nonzero) {
  for (std::uint32_t l = 0; l < loads.size(); ++l) {
    if (loads[l] > 0.0) {
      links.push_back(l);
      nonzero.push_back(loads[l]);
    }
  }
}

}  // namespace

void OrderingProblem::add_coflow(double w, const net::Demand& demand,
                                 const net::Network& network) {
  if (network.link_count() != capacity.size()) {
    throw std::invalid_argument(
        "OrderingProblem: network does not match the problem's capacities");
  }
  const std::vector<double> loads = net::link_loads(demand, network);
  std::vector<std::uint32_t> links;
  std::vector<double> nonzero;
  compact_loads(loads, links, nonzero);
  add_coflow(w, links, nonzero);
}

void OrderingProblem::add_coflow(double w, const net::FlowMatrix& flows,
                                 const net::Network& network) {
  add_coflow(w, net::Demand::from_matrix(flows), network);
}

void sincronia_order(const OrderingProblem& problem,
                     std::vector<std::uint32_t>& out, double* dual_lb) {
  const std::size_t n = problem.coflow_count();
  const std::size_t links = problem.link_count();
  out.assign(n, 0);
  if (dual_lb) *dual_lb = 0.0;
  if (n == 0) return;

  const std::vector<double> t = normalized_rows(problem);
  const NormalizedColumns csc = transpose(problem, t);

  // Remaining load per port over the unscheduled set, maintained by
  // subtracting each scheduled coflow's row.
  std::vector<double> port(links, 0.0);
  for (std::size_t e = 0; e < t.size(); ++e) port[problem.demand_link[e]] += t[e];

  std::vector<double> w(problem.weight);  // scaled weights w̃
  std::vector<std::uint8_t> done(n, 0);
  double dual = 0.0;
  std::size_t k = n;  // next position to fill, from the back
  while (k > 0) {
    // Bottleneck port: most remaining load; smallest link id on ties.
    std::uint32_t b = 0;
    double load = -1.0;
    for (std::uint32_t l = 0; l < links; ++l) {
      if (port[l] > load) {
        load = port[l];
        b = l;
      }
    }
    if (!(load > 0.0)) {
      // Only demandless coflows remain: they finish instantly wherever they
      // land; put them first, ascending, to keep the permutation canonical.
      std::size_t pos = 0;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (!done[c]) out[pos++] = c;
      }
      break;
    }
    // Scan the bottleneck column: the last coflow is the one whose scaled
    // weight per unit of bottleneck demand is smallest (strict <, so the
    // smallest index wins ties). The same pass collects Σt and Σt² for the
    // dual's parallel-inequality value f_b(S) = (Σt² + (Σt)²) / 2.
    std::uint32_t a = std::numeric_limits<std::uint32_t>::max();
    double a_t = 0.0, ratio = kInf, sum = 0.0, sum_sq = 0.0;
    for (std::uint32_t e = csc.off[b]; e < csc.off[b + 1]; ++e) {
      const std::uint32_t c = csc.coflow[e];
      if (done[c]) continue;
      const double tc = csc.t[e];
      sum += tc;
      sum_sq += tc * tc;
      const double r = w[c] / tc;
      if (r < ratio) {
        ratio = r;
        a = c;
        a_t = tc;
      }
    }
    if (a == std::numeric_limits<std::uint32_t>::max()) {
      // Float residue made a fully drained port the argmax; retire it.
      port[b] = 0.0;
      continue;
    }
    const double alpha = w[a] / a_t;  // this iteration's dual variable
    dual += alpha * 0.5 * (sum_sq + sum * sum);
    // Charge α · t_{c,b} against every remaining coflow's scaled weight.
    // a itself lands exactly at 0 (mod rounding); the argmin choice keeps
    // everyone else non-negative.
    for (std::uint32_t e = csc.off[b]; e < csc.off[b + 1]; ++e) {
      const std::uint32_t c = csc.coflow[e];
      if (done[c]) continue;
      w[c] -= alpha * csc.t[e];
      if (w[c] < 0.0) w[c] = 0.0;
    }
    // Schedule a last among the unscheduled and take its load off the ports.
    for (std::uint32_t e = problem.row_offset[a]; e < problem.row_offset[a + 1];
         ++e) {
      double& pl = port[problem.demand_link[e]];
      pl -= t[e];
      if (pl < 0.0) pl = 0.0;
    }
    done[a] = 1;
    out[--k] = a;
  }
  if (dual_lb) *dual_lb = dual;
}

void lp_order(const OrderingProblem& problem, std::vector<std::uint32_t>& out) {
  const std::size_t n = problem.coflow_count();
  const std::size_t links = problem.link_count();
  out.resize(n);
  for (std::uint32_t c = 0; c < n; ++c) out[c] = c;
  if (n == 0) return;

  const std::vector<double> t = normalized_rows(problem);

  // WSPT priority on the coflow's own bottleneck time Γ_c: weight per unit
  // of processing, the greedy packing's admission order.
  std::vector<double> gamma(n, 0.0);
  std::vector<double> priority(n, kInf);  // demandless coflows pack first
  double tau_min = kInf;
  for (std::uint32_t c = 0; c < n; ++c) {
    gamma[c] = row_gamma(problem, t, c);
    if (gamma[c] > 0.0) {
      priority[c] = problem.weight[c] / gamma[c];
      if (gamma[c] < tau_min) tau_min = gamma[c];
    }
  }
  std::vector<std::uint32_t> pack(out);
  std::sort(pack.begin(), pack.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    if (gamma[a] != gamma[b]) return gamma[a] < gamma[b];
    return a < b;
  });

  // Horizon: no port carries more than H time units of demand, so geometric
  // intervals up to >= 2H leave room for every coflow even with cross-port
  // fragmentation (capped as a runaway guard).
  double horizon = 0.0;
  {
    std::vector<double> port(links, 0.0);
    for (std::size_t e = 0; e < t.size(); ++e) {
      port[problem.demand_link[e]] += t[e];
    }
    for (const double pl : port) horizon = std::max(horizon, pl);
  }
  std::vector<double> frac_completion(n, 0.0);
  std::vector<double> remaining(n, 1.0);
  if (horizon > 0.0) {
    std::vector<double> residual(links);
    double start = 0.0, end = tau_min;
    for (int interval = 0; interval < 64; ++interval) {
      const double len = end - start;
      residual.assign(links, len);
      bool all_done = true;
      for (const std::uint32_t c : pack) {
        if (remaining[c] <= 0.0) continue;
        // Largest fraction of c that fits in this interval on every link.
        double f = remaining[c];
        for (std::uint32_t e = problem.row_offset[c];
             e < problem.row_offset[c + 1]; ++e) {
          f = std::min(f, residual[problem.demand_link[e]] / t[e]);
        }
        if (f > 1e-12) {
          for (std::uint32_t e = problem.row_offset[c];
               e < problem.row_offset[c + 1]; ++e) {
            double& r = residual[problem.demand_link[e]];
            r -= f * t[e];
            if (r < 0.0) r = 0.0;
          }
          frac_completion[c] += f * end;
          remaining[c] -= f;
          if (remaining[c] < 1e-12) remaining[c] = 0.0;
        }
        if (remaining[c] > 0.0) all_done = false;
      }
      if (all_done || start >= 2.0 * horizon) break;
      start = end;
      end *= 2.0;
    }
  }
  for (std::uint32_t c = 0; c < n; ++c) {
    // Anything the capped packing left over completes past the horizon.
    if (remaining[c] > 0.0) frac_completion[c] += remaining[c] * 4.0 * horizon;
  }

  // List-rounding: order by fractional completion time.
  std::sort(out.begin(), out.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (frac_completion[a] != frac_completion[b]) {
      return frac_completion[a] < frac_completion[b];
    }
    if (priority[a] != priority[b]) return priority[a] > priority[b];
    return a < b;
  });
}

OrderingLowerBound ordering_lower_bound(const OrderingProblem& problem) {
  OrderingLowerBound lb;
  std::vector<std::uint32_t> tmp;
  sincronia_order(problem, tmp, &lb.dual);

  const std::vector<double> t = normalized_rows(problem);
  for (std::uint32_t c = 0; c < problem.coflow_count(); ++c) {
    lb.isolation += problem.weight[c] * row_gamma(problem, t, c);
  }

  // Per-port single-machine relaxation: Smith's rule (weight/time
  // descending) minimizes Σ w·completion on one machine, and every schedule
  // must push each port's demands through at unit (normalized) rate.
  const NormalizedColumns csc = transpose(problem, t);
  std::vector<std::uint32_t> jobs;
  for (std::size_t l = 0; l < problem.link_count(); ++l) {
    jobs.clear();
    for (std::uint32_t e = csc.off[l]; e < csc.off[l + 1]; ++e) {
      jobs.push_back(e);
    }
    std::sort(jobs.begin(), jobs.end(), [&](std::uint32_t x, std::uint32_t y) {
      const double rx = problem.weight[csc.coflow[x]] / csc.t[x];
      const double ry = problem.weight[csc.coflow[y]] / csc.t[y];
      if (rx != ry) return rx > ry;
      return csc.coflow[x] < csc.coflow[y];
    });
    double clock = 0.0, bound = 0.0;
    for (const std::uint32_t e : jobs) {
      clock += csc.t[e];
      bound += problem.weight[csc.coflow[e]] * clock;
    }
    if (bound > lb.wspt) lb.wspt = bound;
  }
  return lb;
}

namespace {

constexpr std::array<std::string_view, 2> kOrderings = {"sincronia",
                                                        "lp-order"};

class SincroniaPolicy final : public OrderingPolicy {
 public:
  std::string name() const override { return "sincronia"; }
  void order(const OrderingProblem& problem,
             std::vector<std::uint32_t>& out) const override {
    sincronia_order(problem, out);
  }
};

class LpOrderPolicy final : public OrderingPolicy {
 public:
  std::string name() const override { return "lp-order"; }
  void order(const OrderingProblem& problem,
             std::vector<std::uint32_t>& out) const override {
    lp_order(problem, out);
  }
};

/// The permutation-respecting decorator (see ordering.hpp). Follows the
/// incremental-allocation protocol of net/varys.cpp, but the cached product
/// is the whole permutation, not per-coflow keys: σ is recomputed only when
/// the schedulable membership changed (ctx.order_valid false after a rebind
/// or cache reset, or a non-empty dirty list after arrival / completion /
/// rejection). Progress inside a stable membership never reorders, which is
/// exactly the "fixed order" the approximation guarantee composes with.
class OrderedAllocator final : public net::RateAllocator {
 public:
  OrderedAllocator(std::unique_ptr<OrderingPolicy> policy, OrderedDrain drain)
      : policy_(std::move(policy)), drain_(drain) {}

  std::string name() const override { return policy_->name(); }

  void allocate(net::AllocatorContext& ctx, const net::ActiveFlows& flows,
                std::span<net::CoflowState> coflows, double) override {
    ctx.group_by_coflow(flows);
    const auto sched = ctx.schedulable(coflows);
    if (!ctx.order_valid || !ctx.dirty().empty()) {
      recompute_order(ctx, flows, coflows, sched);
    }
    ctx.clear_dirty();

    const std::span<double> residual = ctx.reset_residual();
    if (drain_ == OrderedDrain::kMadd) {
      ctx.set_min_dt(
          net::detail::madd_sequential(flows, ctx.order, ctx, residual));
    } else {
      double min_dt = net::AllocatorContext::kInfDt;
      for (const std::uint32_t c : ctx.order) {
        const double dt =
            net::detail::maxmin_fill(flows, ctx.members(c), ctx, residual);
        ctx.coflow_dt[c] = dt;
        if (dt < min_dt) min_dt = dt;
      }
      ctx.set_min_dt(min_dt);
    }
  }

 private:
  void recompute_order(net::AllocatorContext& ctx,
                       const net::ActiveFlows& flows,
                       std::span<const net::CoflowState> coflows,
                       std::span<const std::uint32_t> sched) {
    // Canonical instance: schedulable ids ascending (the maintained set is
    // unordered), per-coflow remaining load aggregated per link via a dense
    // accumulator with a touched list — no per-call clear of the full lane.
    ids_.assign(sched.begin(), sched.end());
    std::sort(ids_.begin(), ids_.end());
    problem_.reset(ctx.capacities());
    if (acc_.size() != ctx.link_count()) acc_.assign(ctx.link_count(), 0.0);
    for (const std::uint32_t c : ids_) {
      touched_.clear();
      for (const std::uint32_t pos : ctx.members(c)) {
        const double remaining = flows.remaining[pos];
        for (const net::Network::LinkId l : flows.links(pos)) {
          if (acc_[l] == 0.0) touched_.push_back(l);
          acc_[l] += remaining;
        }
      }
      std::sort(touched_.begin(), touched_.end());
      loads_.clear();
      for (const std::uint32_t l : touched_) {
        loads_.push_back(acc_[l]);
        acc_[l] = 0.0;
      }
      problem_.add_coflow(coflows[c].weight, touched_, loads_);
    }
    policy_->order(problem_, perm_);
    ctx.order.clear();
    for (const std::uint32_t local : perm_) ctx.order.push_back(ids_[local]);
    ctx.order_valid = true;
  }

  std::unique_ptr<OrderingPolicy> policy_;
  OrderedDrain drain_;
  // Recompute scratch (never shrinks; the allocator owns it, not the ctx).
  OrderingProblem problem_;
  std::vector<std::uint32_t> ids_, perm_, touched_;
  std::vector<double> loads_, acc_;
};

}  // namespace

std::span<const std::string_view> ordering_names() { return kOrderings; }

bool has_ordering(std::string_view name) {
  return std::ranges::find(kOrderings, name) != kOrderings.end();
}

std::unique_ptr<OrderingPolicy> make_ordering(const std::string& name) {
  if (name == "sincronia") return std::make_unique<SincroniaPolicy>();
  if (name == "lp-order") return std::make_unique<LpOrderPolicy>();
  throw std::invalid_argument("make_ordering: unknown ordering: " + name);
}

std::unique_ptr<net::RateAllocator> make_ordered_allocator(
    const std::string& ordering, OrderedDrain drain) {
  return std::make_unique<OrderedAllocator>(make_ordering(ordering), drain);
}

}  // namespace ccf::sched
