// Coflow-ordering schedulers with approximation guarantees (DESIGN.md §13).
//
// The classic allocators (Varys-SEBF, Aalo) are heuristics with no
// optimality story. This layer adds the theory line for the total *weighted*
// CCT objective Σ w_c · CCT_c:
//
//  * sincronia_order — the Sincronia primal–dual ordering (Agarwal et al.,
//    SIGCOMM'18, arXiv 1906.06851; the combinatorial core is the
//    Ahmadi–Khuller–Purohit–Yang primal–dual, arXiv 1704.08357). Iterate
//    from the last position: charge the most-loaded ("bottleneck") port,
//    schedule LAST the coflow minimizing scaled-weight per unit of
//    bottleneck demand, then scale the remaining weights down by what the
//    charge consumed. Composed with ANY ordering-respecting rate
//    allocation, the resulting schedule is a 4-approximation; the dual
//    objective the iteration constructs is a certified lower bound on the
//    optimum, so the guarantee ships as an executable test
//    (tests/sched/ordering_ratio_test.cpp), not prose.
//
//  * lp_order — an ordering from the interval-indexed (deadline) LP
//    relaxation: geometric horizon points, greedy fractional packing in
//    weighted-shortest-processing-time priority, then list-rounding by
//    fractional completion time (the Hall–Schulz–Shmoys–Wein recipe). No LP
//    solver needed — the relaxation is packed greedily in closed form.
//
//  * OrderedAllocator — a permutation-respecting net::RateAllocator: it
//    computes an ordering whenever the schedulable membership changes and
//    drains the epoch in that fixed order through the existing kernels
//    (sequential MADD with backfilling, or per-coflow max-min fill). Any
//    ordering policy therefore slots into the Simulator, the Engine and the
//    Service unchanged; the registry exposes "sincronia" and "lp-order".
//
// Lower bounds (ordering_lower_bound) are the certificates the comparison
// bench and the ratio test measure against; each component is a valid lower
// bound on the optimal total weighted CCT of any schedule (arrivals at 0):
//  * dual       — the Sincronia dual objective via Queyranne's parallel
//                 inequalities (weak duality);
//  * isolation  — Σ_c w_c · Γ_c: every coflow needs at least its own
//                 bottleneck time even alone on the fabric;
//  * wspt       — per-port single-machine relaxation: each port must process
//                 its coflows' demands somehow, so the optimal weighted
//                 completion of that one machine (Smith's rule) bounds the
//                 coflow objective from below.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {
class Demand;
class FlowMatrix;
class Network;
}  // namespace ccf::net

namespace ccf::sched {

/// One ordering instance: per-coflow sparse (link, load) demands in CSR form
/// plus per-coflow weights and per-link capacities. Coflows are dense local
/// indices 0..coflow_count()-1; callers that order a subset of a larger
/// population keep their own local->global id map.
struct OrderingProblem {
  std::vector<double> capacity;           ///< per link
  std::vector<double> weight;             ///< per coflow (finite, >= 0)
  std::vector<std::uint32_t> row_offset;  ///< CSR offsets, coflow_count()+1
  std::vector<std::uint32_t> demand_link; ///< link id per CSR entry
  std::vector<double> demand_load;        ///< bytes per CSR entry (> 0)

  std::size_t coflow_count() const noexcept { return weight.size(); }
  std::size_t link_count() const noexcept { return capacity.size(); }

  /// Reset to an empty problem over `links` links with the given capacities.
  void reset(std::span<const double> capacities);
  void clear();

  /// Append one coflow with the given weight and per-link loads. `links` and
  /// `loads` are parallel; zero loads are dropped, duplicate link entries
  /// must already be aggregated. Throws std::invalid_argument on a bad
  /// weight, a load that is negative/non-finite, or an out-of-range link.
  void add_coflow(double w, std::span<const std::uint32_t> links,
                  std::span<const double> loads);

  /// Convenience: append a coflow from its sparse demand on a network
  /// (per-link loads via net::link_loads). The network must match the
  /// capacities this problem was reset with.
  void add_coflow(double w, const net::Demand& demand,
                  const net::Network& network);
  /// Dense-view bridge of the same (bit-identical per-link loads).
  void add_coflow(double w, const net::FlowMatrix& flows,
                  const net::Network& network);
};

/// Sincronia's BSSI primal–dual ordering. Writes the drain permutation into
/// `out` (out[0] is scheduled first) as local coflow indices. When `dual_lb`
/// is non-null it receives the dual objective accumulated by the iteration —
/// a certified lower bound on the optimal total weighted CCT for the
/// all-arrive-at-zero instance. Deterministic: all ties break towards the
/// smallest index. O(n · (n + nnz)).
void sincronia_order(const OrderingProblem& problem,
                     std::vector<std::uint32_t>& out,
                     double* dual_lb = nullptr);

/// Interval-relaxation ordering: pack the coflows fractionally into
/// geometric time intervals in WSPT priority (weight over total normalized
/// demand), then list-round by fractional completion time. Ties break by
/// WSPT priority then index, so the result is deterministic.
void lp_order(const OrderingProblem& problem, std::vector<std::uint32_t>& out);

/// The lower-bound certificate of one instance (see the header comment).
struct OrderingLowerBound {
  double dual = 0.0;       ///< Sincronia dual objective (weak duality)
  double isolation = 0.0;  ///< Σ w_c · Γ_c
  double wspt = 0.0;       ///< best per-port Smith's-rule bound
  double best() const noexcept {
    double b = dual;
    if (isolation > b) b = isolation;
    if (wspt > b) b = wspt;
    return b;
  }
};
OrderingLowerBound ordering_lower_bound(const OrderingProblem& problem);

/// An ordering policy by name. order() writes the drain permutation of the
/// problem's coflows into `out` (out[0] first). Implementations are pure
/// functions of the problem — no hidden state, so repeated calls agree.
class OrderingPolicy {
 public:
  virtual ~OrderingPolicy() = default;
  virtual std::string name() const = 0;
  virtual void order(const OrderingProblem& problem,
                     std::vector<std::uint32_t>& out) const = 0;
};

/// Registered ordering names, canonical order: "sincronia", "lp-order".
std::span<const std::string_view> ordering_names();
bool has_ordering(std::string_view name);
/// Throws std::invalid_argument on unknown names.
std::unique_ptr<OrderingPolicy> make_ordering(const std::string& name);

/// Intra-order drain kernel of the OrderedAllocator decorator. The two
/// kernels cover the drain styles of every classic allocator: kMadd is the
/// sequential MADD-with-backfilling that Madd/Varys/varys-edf use, kMaxMin
/// the per-coflow max-min fill that Fair/Aalo use.
enum class OrderedDrain { kMadd, kMaxMin };

/// Permutation-respecting rate allocator: recompute the ordering whenever
/// the schedulable membership changes (arrival / completion / rejection),
/// then drain every epoch in that fixed order. Progress within a stable
/// membership never reorders — the permutation is the schedule. The
/// registry's "sincronia" and "lp-order" are this decorator over kMadd.
std::unique_ptr<net::RateAllocator> make_ordered_allocator(
    const std::string& ordering, OrderedDrain drain = OrderedDrain::kMadd);

}  // namespace ccf::sched
