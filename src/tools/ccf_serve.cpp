// ccf_serve — stand up the always-on scheduling service (core::Service) and
// drive it with a synthetic open-arrival query stream.
//
//   ccf_serve [--nodes 16] [--allocator madd] [--scheduler ccf]
//             [--shards 1] [--tenants 0] [--rate-qps 0] [--burst 64]
//             [--batch 2] [--wait-us 200] [--queue 1024]
//             [--queries 50000] [--target-qps 0]
//             [--working-set 32] [--seed 300] [--sparse]
//
// The stream is the engine-throughput working set: --working-set prepared
// star-schema joins cycling round-robin over the tenants (one tenant per
// shard by default), so steady state exercises the plan cache and the
// persistent per-shard simulators — the service's always-on fast path.
// --target-qps paces submissions as an open-loop arrival process (0 = push
// as fast as admission allows); --rate-qps arms each tenant's token bucket,
// so a paced run over the limit shows kThrottled rejections at the door.
// --sparse switches the stream to synthetic sparse coflows (net/trace.hpp's
// heavy-tailed generator over --nodes racks) submitted as SparseCoflowSpec
// flow lists — the n²-free ingestion path, which is what lets a 10k-rack
// epoch run behind the service: try --sparse --nodes 10000 --queries 10000.
// Prints a per-tenant admission table and the service summary (epochs,
// sustained queries/sec, submit-to-drain latency percentiles).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/service.hpp"
#include "data/workload.hpp"
#include "net/trace.hpp"
#include "tools/common.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::shared_ptr<const ccf::data::Workload>> make_workloads(
    std::size_t nodes, std::size_t working_set, std::uint64_t seed) {
  std::vector<std::shared_ptr<const ccf::data::Workload>> workloads;
  workloads.reserve(working_set);
  for (std::size_t i = 0; i < working_set; ++i) {
    ccf::data::WorkloadSpec spec =
        ccf::data::WorkloadSpec::paper_default(nodes);
    const double shrink = i == 0 ? 1.0 : 0.25 / static_cast<double>(i);
    spec.customer_bytes *= 0.1 * shrink;
    spec.orders_bytes *= 0.1 * shrink;
    spec.seed = seed + i;
    workloads.push_back(std::make_shared<const ccf::data::Workload>(
        ccf::data::generate_workload(spec)));
  }
  return workloads;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string fixed(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  return ccf::tools::run_tool("ccf_serve", [&] {
    ccf::util::ArgParser args("ccf_serve",
                              "Always-on scheduling service driver");
    args.add_flag("nodes", "16", "fabric width per shard");
    args.add_flag("allocator", "madd",
                  ccf::core::registry::allocator_name_list());
    args.add_flag("scheduler", "ccf",
                  ccf::core::registry::scheduler_name_list());
    args.add_flag("shards", "1", "engine shards (driver threads)");
    args.add_flag("tenants", "0", "tenant count (0 = one per shard)");
    args.add_flag("rate-qps", "0",
                  "per-tenant token-bucket rate (0 = unlimited)");
    args.add_flag("burst", "64", "per-tenant token-bucket depth");
    args.add_flag("batch", "2", "drain batch size (Service max_batch)");
    args.add_flag("wait-us", "200", "drain deadline in microseconds");
    args.add_flag("queue", "1024", "per-shard submission ring capacity");
    args.add_flag("queries", "50000", "total queries to submit");
    args.add_flag("target-qps", "0",
                  "open-loop arrival rate (0 = as fast as possible)");
    args.add_flag("working-set", "32", "distinct prepared workloads");
    args.add_flag("seed", "300", "workload rng seed");
    args.add_flag("sparse", "false",
                  "submit synthetic sparse coflows (n²-free ingestion) "
                  "instead of prepared workloads");
    args.parse(argc, argv);

    const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
    const auto shards = static_cast<std::size_t>(args.get_int("shards"));
    auto tenant_count = static_cast<std::size_t>(args.get_int("tenants"));
    if (tenant_count == 0) tenant_count = shards;
    const auto total = static_cast<std::size_t>(args.get_int("queries"));
    const auto working_set =
        static_cast<std::size_t>(args.get_int("working-set"));
    const double target_qps = args.get_double("target-qps");
    const std::string scheduler = args.get("scheduler");
    const bool sparse = args.get_bool("sparse");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    // --sparse pre-generates the whole stream as flow lists; nothing on that
    // path (generation, submission, Engine epoch) allocates O(nodes²), so
    // the same driver scales to 10k-rack fabrics.
    std::vector<std::shared_ptr<const ccf::data::Workload>> workloads;
    std::vector<ccf::net::SparseCoflowSpec> sparse_specs;
    if (sparse) {
      ccf::net::SyntheticTraceOptions trace_options;
      trace_options.racks = nodes;
      trace_options.coflows = total;
      trace_options.duration_seconds = 6e-3 * static_cast<double>(total);
      ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 83), 83);
      sparse_specs = ccf::net::to_sparse_coflow_specs(
          ccf::net::generate_synthetic_trace(trace_options, rng));
    } else {
      workloads = make_workloads(nodes, working_set, seed);
    }

    ccf::core::ServiceOptions options;
    options.engine.nodes = nodes;
    options.engine.allocator = args.get("allocator");
    options.shards = shards;
    options.max_batch = static_cast<std::size_t>(args.get_int("batch"));
    options.max_wait = std::chrono::microseconds(args.get_int("wait-us"));
    options.queue_capacity = static_cast<std::size_t>(args.get_int("queue"));
    for (std::size_t t = 0; t < tenant_count; ++t) {
      ccf::core::TenantSpec tenant;
      tenant.name = "t";
      tenant.name += std::to_string(t);
      tenant.rate_qps = args.get_double("rate-qps");
      tenant.burst = args.get_double("burst");
      options.tenants.push_back(std::move(tenant));
    }

    // Submit-to-drain latency, one slot vector per shard (one driver thread
    // each, so the callback needs no locking).
    std::vector<std::vector<double>> latency_ms(shards);
    for (auto& v : latency_ms) {
      v.reserve(total / shards + options.max_batch);
    }
    const auto on_epoch = [&](const ccf::core::ShardEpoch& epoch) {
      const auto now = std::chrono::steady_clock::now();
      for (const ccf::core::ServiceQuery& q : epoch.queries) {
        latency_ms[epoch.shard].push_back(
            std::chrono::duration<double, std::milli>(now - q.submitted)
                .count());
      }
    };

    ccf::core::Service service(options, on_epoch);

    // One open-loop client: round-robin tenants, paced by --target-qps.
    // Throttled/queue-full submissions are dropped (counted), matching an
    // open arrival process — the stream does not slow down for rejections.
    struct TenantCounters {
      std::uint64_t accepted = 0;
      std::uint64_t throttled = 0;
      std::uint64_t queue_full = 0;
    };
    std::vector<TenantCounters> per_tenant(tenant_count);
    const auto start = std::chrono::steady_clock::now();
    const std::chrono::duration<double> spacing(
        target_qps > 0.0 ? 1.0 / target_qps : 0.0);
    auto next_arrival = start;
    for (std::size_t i = 0; i < total; ++i) {
      if (target_qps > 0.0) {
        while (std::chrono::steady_clock::now() < next_arrival) {
          std::this_thread::yield();
        }
        next_arrival += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(spacing);
      }
      const std::size_t tenant = i % tenant_count;
      ccf::core::SubmitResult r;
      if (sparse) {
        r = service.submit(tenant, std::move(sparse_specs[i]));
      } else {
        std::string name = "q";
        name += std::to_string(i);
        ccf::core::QuerySpec spec(std::move(name), workloads[i % working_set],
                                  scheduler);
        r = service.submit(tenant, std::move(spec));
      }
      switch (r.status) {
        case ccf::core::SubmitStatus::kAccepted:
          ++per_tenant[tenant].accepted;
          break;
        case ccf::core::SubmitStatus::kThrottled:
          ++per_tenant[tenant].throttled;
          break;
        case ccf::core::SubmitStatus::kQueueFull:
          ++per_tenant[tenant].queue_full;
          if (target_qps == 0.0) std::this_thread::yield();  // backpressure
          break;
        default:
          std::cerr << "ccf_serve: unexpected submit status\n";
          return 1;
      }
    }
    service.flush();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const ccf::core::ServiceStats stats = service.stats();

    ccf::util::Table tenants_table(
        {"tenant", "shard", "accepted", "throttled", "queue-full"});
    for (std::size_t t = 0; t < tenant_count; ++t) {
      tenants_table.add_row({options.tenants[t].name,
                             std::to_string(service.tenant_shard(t)),
                             std::to_string(per_tenant[t].accepted),
                             std::to_string(per_tenant[t].throttled),
                             std::to_string(per_tenant[t].queue_full)});
    }
    service.stop();
    tenants_table.print(std::cout);

    std::vector<double> all;
    all.reserve(stats.completed);
    for (const auto& v : latency_ms) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    ccf::util::Table summary({"metric", "value"});
    summary.add_row({"shards", std::to_string(shards)});
    summary.add_row({"submitted", std::to_string(stats.submitted)});
    summary.add_row({"accepted", std::to_string(stats.accepted)});
    summary.add_row({"completed", std::to_string(stats.completed)});
    summary.add_row({"epochs", std::to_string(stats.epochs)});
    summary.add_row({"elapsed s", fixed(elapsed.count(), 3)});
    summary.add_row(
        {"queries/sec",
         fixed(static_cast<double>(stats.completed) / elapsed.count(), 0)});
    summary.add_row({"p50 ms", fixed(percentile(all, 0.50), 3)});
    summary.add_row({"p99 ms", fixed(percentile(all, 0.99), 3)});
    summary.add_row({"max ms", fixed(all.empty() ? 0.0 : all.back(), 3)});
    summary.print(std::cout);
    return 0;
  });
}
