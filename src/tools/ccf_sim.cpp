// ccf_sim — simulate a coflow from a CSV flow list.
//
//   ccf_sim --flows flows.csv [--nodes N] [--allocator madd]
//           [--port-rate 125M] [--racks R --hosts H --oversub S]
//           [--topology SPEC [--routing ecmp|greedy|joint]]
//           [--faults faults.csv [--replace] [--replace-threshold X]]
//
// flows.csv rows: src,dst,bytes (optional header), streamed into the
// columnar net::Demand — nothing on the ingestion path is nodes². Prints the
// coflow completion time, the analytic optimum Γ, traffic, and bottleneck
// ports. --sparse-flows registers the coflow with the simulator as a
// SparseCoflowSpec flow list instead of a dense matrix (same results; the
// n²-free path for very wide fabrics).
// With --racks/--hosts the simulation runs on a two-tier rack topology.
// --topology runs it on a general multipath topology instead
// (net::TopologySpec grammar, e.g. "leafspine:racks=32,hosts=16,spines=4,
// oversub=4", "fattree:k=4", "waxman:nodes=24,seed=7"), with --routing
// choosing the path-selection policy the flow matrix is routed by.
// --faults injects a time,kind,id,side,factor schedule (net/io.hpp);
// --replace re-assigns flow remainders off ports degraded to at most
// --replace-threshold. The allocator list in --help is the live policy
// registry, not a hard-coded string.
#include <iostream>
#include <memory>

#include "core/registry.hpp"
#include "net/io.hpp"
#include "net/metrics.hpp"
#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "tools/common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  return ccf::tools::run_tool("ccf_sim", [&] {
    ccf::util::ArgParser args("ccf_sim", "Coflow simulator front end");
    args.add_flag("flows", "", "CSV of src,dst,bytes rows (required)");
    args.add_flag("nodes", "0", "node count (0 = infer from the CSV)");
    args.add_flag("allocator", "madd",
                  ccf::core::registry::allocator_name_list());
    ccf::tools::add_port_rate_flag(args);
    args.add_flag("racks", "0", "racks (0 = flat non-blocking fabric)");
    args.add_flag("hosts", "0", "hosts per rack (with --racks)");
    args.add_flag("oversub", "1", "rack uplink oversubscription");
    args.add_flag("topology", "",
                  "multipath topology spec: leafspine|fattree|waxman"
                  "[:key=value,...] (overrides --racks)");
    args.add_flag("routing", "ecmp",
                  ccf::core::registry::routing_name_list());
    args.add_flag("faults", "", "CSV fault schedule: time,kind,id,side,factor");
    args.add_flag("replace", "false",
                  "re-place flow remainders off failed destination ports");
    args.add_flag("replace-threshold", "0",
                  "ingress scale at or below which --replace triggers");
    args.add_flag("sparse-flows", "false",
                  "register the coflow as a sparse flow list (n²-free)");
    args.parse(argc, argv);

    if (!ccf::tools::require_flag(args, "flows")) return 2;
    const double rate = ccf::tools::port_rate(args);
    ccf::net::Demand demand = ccf::tools::load_demand(args);

    std::shared_ptr<const ccf::net::Network> network;
    const auto racks = static_cast<std::size_t>(args.get_int("racks"));
    if (!args.get("topology").empty()) {
      ccf::net::TopologySpec spec =
          ccf::net::TopologySpec::parse(args.get("topology"));
      spec.host_rate = rate;
      const auto topology = ccf::net::make_topology(spec);
      if (topology->nodes() < demand.nodes()) {
        std::cerr << "error: topology has fewer nodes than the flow matrix\n";
        return 2;
      }
      // Re-interpret the triples over the topology width, then route them.
      demand.widen(topology->nodes());
      const auto policy =
          ccf::core::registry::make_routing(args.get("routing"));
      network = std::make_shared<const ccf::net::RoutedTopology>(
          topology, policy->choose(*topology, demand));
    } else if (racks > 0) {
      const auto hosts = static_cast<std::size_t>(args.get_int("hosts"));
      network = std::make_shared<const ccf::net::RackFabric>(
          racks, hosts, rate, args.get_double("oversub"));
      if (network->nodes() < demand.nodes()) {
        std::cerr << "error: topology has fewer nodes than the flow matrix\n";
        return 2;
      }
      demand.widen(network->nodes());
    } else {
      network =
          std::make_shared<const ccf::net::Fabric>(demand.nodes(), rate);
    }

    const double gamma = ccf::net::gamma_bound(demand, *network);
    const double traffic = demand.traffic();
    const std::size_t count = demand.flow_count();

    ccf::net::Simulator sim(
        network, ccf::core::registry::make_allocator(args.get("allocator")));
    const bool faulted = !args.get("faults").empty();
    if (faulted) {
      ccf::net::FaultOptions fault_options;
      fault_options.replace_on_failure = args.get_bool("replace");
      fault_options.replace_threshold = args.get_double("replace-threshold");
      sim.set_faults(ccf::net::fault_schedule_from_csv(args.get("faults")),
                     fault_options);
    }
    if (args.get_bool("sparse-flows")) {
      sim.add_coflow(
          ccf::net::SparseCoflowSpec("input", 0.0, demand.to_flows()));
    } else {
      sim.add_coflow(ccf::net::CoflowSpec("input", 0.0, demand.to_matrix()));
    }
    const ccf::net::SimReport report = sim.run();

    ccf::util::Table t({"metric", "value"});
    t.add_row({"flows", std::to_string(count)});
    t.add_row({"traffic", ccf::util::format_bytes(traffic)});
    t.add_row({"allocator", args.get("allocator")});
    t.add_row({"CCT", ccf::util::format_seconds(report.coflows[0].cct())});
    t.add_row({"optimal bound (Γ)", ccf::util::format_seconds(gamma)});
    t.add_row({"CCT / Γ", ccf::util::format_fixed(
                              gamma > 0 ? report.coflows[0].cct() / gamma : 1.0,
                              3)});
    t.add_row({"scheduling epochs", std::to_string(report.events)});
    if (faulted) {
      t.add_row({"fault events", std::to_string(report.fault_events)});
      t.add_row({"re-placed flows", std::to_string(report.replacements)});
    }
    t.print(std::cout);
    return 0;
  });
}
