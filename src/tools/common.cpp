#include "tools/common.hpp"

#include <exception>
#include <iostream>
#include <sstream>

#include "data/io.hpp"
#include "net/io.hpp"
#include "util/units.hpp"

namespace ccf::tools {

int run_tool(const std::string& tool, const std::function<int()>& body) {
  try {
    return body();
  } catch (const std::exception& e) {
    std::cerr << tool << ": " << e.what() << "\n";
    return 1;
  }
}

void add_port_rate_flag(util::ArgParser& args) {
  args.add_flag("port-rate", "125M", "port bandwidth in bytes/s");
}

double port_rate(const util::ArgParser& args) {
  return util::parse_scaled(args.get("port-rate"));
}

bool require_flag(const util::ArgParser& args, const std::string& flag) {
  if (!args.get(flag).empty()) return true;
  std::cerr << args.usage() << "\nerror: --" << flag << " is required\n";
  return false;
}

net::Demand load_demand(const util::ArgParser& args) {
  return net::demand_from_csv(
      args.get("flows"), static_cast<std::size_t>(args.get_int("nodes")));
}

net::FlowMatrix load_flow_matrix(const util::ArgParser& args) {
  return load_demand(args).to_matrix();
}

data::ChunkMatrix load_chunk_matrix(const util::ArgParser& args) {
  return data::chunk_matrix_from_csv(args.get("chunks"));
}

std::vector<std::uint32_t> parse_node_list(const std::string& list) {
  std::vector<std::uint32_t> nodes;
  std::istringstream in(list);
  for (std::string id; std::getline(in, id, ',');) {
    nodes.push_back(static_cast<std::uint32_t>(std::stoul(id)));
  }
  return nodes;
}

}  // namespace ccf::tools
