// Shared plumbing for the CLI front ends (ccf_sim, ccf_schedule): the
// argument conventions, CSV ingestion and error handling the tools used to
// copy from each other now live here once.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/chunk_matrix.hpp"
#include "net/demand.hpp"
#include "net/flow.hpp"
#include "util/cli.hpp"

namespace ccf::tools {

/// Run a tool body, mapping any exception to "<tool>: <what>" on stderr and
/// exit code 1 — the uniform main() shell of every front end.
int run_tool(const std::string& tool, const std::function<int()>& body);

/// Register the standard --port-rate flag (shared default and help text).
void add_port_rate_flag(util::ArgParser& args);
/// Parse the --port-rate value ("125M" etc.) into bytes/second.
double port_rate(const util::ArgParser& args);

/// If the required flag is empty, print usage + an error and return false
/// (callers exit with code 2 — the tools' usage-error convention).
bool require_flag(const util::ArgParser& args, const std::string& flag);

/// Stream the --flows CSV ("src,dst,bytes" rows) into a columnar demand,
/// honoring --nodes (0 = infer from the CSV). This is the tools' one
/// ingestion path: memory scales with the triple count, not nodes².
net::Demand load_demand(const util::ArgParser& args);

/// load_demand densified — for callers that still want the n x n view.
net::FlowMatrix load_flow_matrix(const util::ArgParser& args);

/// Load the --chunks CSV ("partition,node,bytes" rows) into a chunk matrix.
data::ChunkMatrix load_chunk_matrix(const util::ArgParser& args);

/// Parse a comma-separated node list ("0,3") into ids (--fail-nodes).
std::vector<std::uint32_t> parse_node_list(const std::string& list);

}  // namespace ccf::tools
