// ccf_schedule — compute a co-optimized placement from a CSV chunk matrix.
//
//   ccf_schedule --chunks chunks.csv [--scheduler ccf] [--port-rate 125M]
//                [--out assignment.csv] [--export-lp model.lp]
//                [--sparse-flows flows.csv] [--fail-nodes 0,3]
//
// chunks.csv rows: partition,node,bytes (optional header). Prints the
// placement summary (traffic, bottleneck T, predicted CCT) for the chosen
// scheduler, optionally writes the assignment as CSV and/or exports the
// exact MILP in CPLEX-LP format for an external solver (the paper's Gurobi
// path). --sparse-flows writes the placement's shuffle as src,dst,bytes flow
// triples — the hand-off format `ccf_sim --flows ... --sparse-flows` ingests
// without ever building a dense matrix.
// --fail-nodes re-plans the placement as if those destinations had
// failed (join::replace_failed_destinations) and reports/writes the repaired
// plan alongside the original. The scheduler list in --help is the live
// policy registry, not a hard-coded string.
#include <fstream>
#include <iostream>
#include <vector>

#include "core/registry.hpp"
#include "data/io.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"
#include "net/io.hpp"
#include "net/metrics.hpp"
#include "opt/model.hpp"
#include "tools/common.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  return ccf::tools::run_tool("ccf_schedule", [&] {
    ccf::util::ArgParser args("ccf_schedule",
                              "Partition placement front end (Algorithm 1)");
    args.add_flag("chunks", "", "CSV of partition,node,bytes rows (required)");
    args.add_flag("scheduler", "ccf",
                  ccf::core::registry::scheduler_name_list());
    ccf::tools::add_port_rate_flag(args);
    args.add_flag("out", "", "write the assignment as partition,node CSV");
    args.add_flag("export-lp", "", "write model (3) in CPLEX-LP format");
    args.add_flag("sparse-flows", "",
                  "write the placement's flows as src,dst,bytes triples");
    args.add_flag("fail-nodes", "",
                  "comma-separated destinations to fail and re-plan around");
    args.parse(argc, argv);

    if (!ccf::tools::require_flag(args, "chunks")) return 2;
    const ccf::data::ChunkMatrix matrix = ccf::tools::load_chunk_matrix(args);
    ccf::opt::AssignmentProblem problem;
    problem.matrix = &matrix;

    if (!args.get("export-lp").empty()) {
      std::ofstream lp(args.get("export-lp"));
      if (!lp) {
        std::cerr << "error: cannot open " << args.get("export-lp") << "\n";
        return 1;
      }
      lp << ccf::opt::to_lp_string(problem);
      std::cout << "wrote MILP to " << args.get("export-lp") << "\n";
    }

    const auto scheduler =
        ccf::core::registry::make_scheduler(args.get("scheduler"));
    ccf::opt::Assignment dest = scheduler->schedule(problem);
    auto flows = ccf::join::assignment_flows(matrix, dest);
    const double rate = ccf::tools::port_rate(args);
    const ccf::net::Fabric fabric(matrix.nodes(), rate);

    ccf::util::Table t({"metric", "value"});
    t.add_row({"partitions", std::to_string(matrix.partitions())});
    t.add_row({"nodes", std::to_string(matrix.nodes())});
    t.add_row({"scheduler", scheduler->name()});
    t.add_row({"traffic", ccf::util::format_bytes(flows.traffic())});
    t.add_row({"bottleneck T",
               ccf::util::format_bytes(ccf::opt::makespan(problem, dest))});
    t.add_row({"predicted CCT (MADD)",
               ccf::util::format_seconds(ccf::net::gamma_bound(flows, fabric))});

    if (!args.get("fail-nodes").empty()) {
      const std::vector<std::uint32_t> failed =
          ccf::tools::parse_node_list(args.get("fail-nodes"));
      dest = ccf::join::replace_failed_destinations(problem, std::move(dest),
                                                    failed);
      auto repaired = ccf::join::assignment_flows(matrix, dest);
      t.add_row({"failed nodes", args.get("fail-nodes")});
      t.add_row({"repaired traffic",
                 ccf::util::format_bytes(repaired.traffic())});
      t.add_row({"repaired T",
                 ccf::util::format_bytes(ccf::opt::makespan(problem, dest))});
      t.add_row({"repaired CCT (MADD)",
                 ccf::util::format_seconds(
                     ccf::net::gamma_bound(repaired, fabric))});
      flows = std::move(repaired);  // --sparse-flows exports the final plan
    }
    t.print(std::cout);

    if (!args.get("sparse-flows").empty()) {
      ccf::net::demand_to_csv(ccf::net::Demand::from_matrix(flows),
                              args.get("sparse-flows"));
      std::cout << "wrote flow triples to " << args.get("sparse-flows")
                << "\n";
    }

    if (!args.get("out").empty()) {
      ccf::util::CsvWriter out(args.get("out"));
      out.header({"partition", "node"});
      for (std::size_t k = 0; k < dest.size(); ++k) {
        out.row({std::to_string(k), std::to_string(dest[k])});
      }
      std::cout << "wrote assignment to " << args.get("out") << "\n";
    }
    return 0;
  });
}
