// ccf_schedule — compute a co-optimized placement from a CSV chunk matrix.
//
//   ccf_schedule --chunks chunks.csv [--scheduler ccf] [--port-rate 125M]
//                [--out assignment.csv] [--export-lp model.lp]
//                [--fail-nodes 0,3]
//
// chunks.csv rows: partition,node,bytes (optional header). Prints the
// placement summary (traffic, bottleneck T, predicted CCT) for the chosen
// scheduler, optionally writes the assignment as CSV and/or exports the
// exact MILP in CPLEX-LP format for an external solver (the paper's Gurobi
// path). --fail-nodes re-plans the placement as if those destinations had
// failed (join::replace_failed_destinations) and reports/writes the repaired
// plan alongside the original.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "data/io.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"
#include "opt/model.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  try {
    ccf::util::ArgParser args("ccf_schedule",
                              "Partition placement front end (Algorithm 1)");
    args.add_flag("chunks", "", "CSV of partition,node,bytes rows (required)");
    args.add_flag("scheduler", "ccf",
                  "hash | mini | ccf | ccf-ls | ccf-portfolio | exact | random");
    args.add_flag("port-rate", "125M", "port bandwidth in bytes/s");
    args.add_flag("out", "", "write the assignment as partition,node CSV");
    args.add_flag("export-lp", "", "write model (3) in CPLEX-LP format");
    args.add_flag("fail-nodes", "",
                  "comma-separated destinations to fail and re-plan around");
    args.parse(argc, argv);

    if (args.get("chunks").empty()) {
      std::cerr << args.usage() << "\nerror: --chunks is required\n";
      return 2;
    }
    const ccf::data::ChunkMatrix matrix =
        ccf::data::chunk_matrix_from_csv(args.get("chunks"));
    ccf::opt::AssignmentProblem problem;
    problem.matrix = &matrix;

    if (!args.get("export-lp").empty()) {
      std::ofstream lp(args.get("export-lp"));
      if (!lp) {
        std::cerr << "error: cannot open " << args.get("export-lp") << "\n";
        return 1;
      }
      lp << ccf::opt::to_lp_string(problem);
      std::cout << "wrote MILP to " << args.get("export-lp") << "\n";
    }

    const auto scheduler = ccf::join::make_scheduler(args.get("scheduler"));
    ccf::opt::Assignment dest = scheduler->schedule(problem);
    const auto flows = ccf::join::assignment_flows(matrix, dest);
    const double rate = ccf::util::parse_scaled(args.get("port-rate"));
    const ccf::net::Fabric fabric(matrix.nodes(), rate);

    ccf::util::Table t({"metric", "value"});
    t.add_row({"partitions", std::to_string(matrix.partitions())});
    t.add_row({"nodes", std::to_string(matrix.nodes())});
    t.add_row({"scheduler", scheduler->name()});
    t.add_row({"traffic", ccf::util::format_bytes(flows.traffic())});
    t.add_row({"bottleneck T",
               ccf::util::format_bytes(ccf::opt::makespan(problem, dest))});
    t.add_row({"predicted CCT (MADD)",
               ccf::util::format_seconds(ccf::net::gamma_bound(flows, fabric))});

    if (!args.get("fail-nodes").empty()) {
      std::vector<std::uint32_t> failed;
      std::istringstream list(args.get("fail-nodes"));
      for (std::string id; std::getline(list, id, ',');) {
        failed.push_back(static_cast<std::uint32_t>(std::stoul(id)));
      }
      dest = ccf::join::replace_failed_destinations(problem, std::move(dest),
                                                    failed);
      const auto repaired = ccf::join::assignment_flows(matrix, dest);
      t.add_row({"failed nodes", args.get("fail-nodes")});
      t.add_row({"repaired traffic",
                 ccf::util::format_bytes(repaired.traffic())});
      t.add_row({"repaired T",
                 ccf::util::format_bytes(ccf::opt::makespan(problem, dest))});
      t.add_row({"repaired CCT (MADD)",
                 ccf::util::format_seconds(
                     ccf::net::gamma_bound(repaired, fabric))});
    }
    t.print(std::cout);

    if (!args.get("out").empty()) {
      ccf::util::CsvWriter out(args.get("out"));
      out.header({"partition", "node"});
      for (std::size_t k = 0; k < dest.size(); ++k) {
        out.row({std::to_string(k), std::to_string(dest[k])});
      }
      std::cout << "wrote assignment to " << args.get("out") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ccf_schedule: " << e.what() << "\n";
    return 1;
  }
}
