#include "opt/model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ccf::opt {

void AssignmentProblem::validate() const {
  if (matrix == nullptr) {
    throw std::invalid_argument("AssignmentProblem: null matrix");
  }
  if (!initial_egress.empty() && initial_egress.size() != matrix->nodes()) {
    throw std::invalid_argument("AssignmentProblem: initial_egress size");
  }
  if (!initial_ingress.empty() && initial_ingress.size() != matrix->nodes()) {
    throw std::invalid_argument("AssignmentProblem: initial_ingress size");
  }
}

double LoadProfile::makespan() const noexcept {
  double t = 0.0;
  for (const double e : egress) t = std::max(t, e);
  for (const double i : ingress) t = std::max(t, i);
  return t;
}

LoadProfile evaluate(const AssignmentProblem& problem,
                     std::span<const std::uint32_t> dest) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  if (dest.size() != m.partitions()) {
    throw std::invalid_argument("evaluate: assignment size != partitions");
  }
  const std::size_t n = m.nodes();
  LoadProfile loads;
  loads.egress.resize(n);
  loads.ingress.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads.egress[i] = problem.initial_egress_at(i);
    loads.ingress[i] = problem.initial_ingress_at(i);
  }
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    const std::uint32_t d = dest[k];
    if (d >= n) throw std::invalid_argument("evaluate: destination out of range");
    for (std::size_t i = 0; i < n; ++i) {
      if (i == d) continue;
      const double h = m.h(k, i);
      loads.egress[i] += h;
      loads.ingress[d] += h;
    }
  }
  return loads;
}

double makespan(const AssignmentProblem& problem,
                std::span<const std::uint32_t> dest) {
  return evaluate(problem, dest).makespan();
}

double traffic(const AssignmentProblem& problem,
               std::span<const std::uint32_t> dest) {
  const LoadProfile loads = evaluate(problem, dest);
  double t = 0.0;
  for (const double e : loads.egress) t += e;
  return t;
}

std::string to_lp_string(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();
  std::ostringstream lp;
  lp.precision(17);
  lp << "\\ CCF co-optimization model (3), ICPP'17\n";
  lp << "Minimize\n obj: T\n";
  lp << "Subject To\n";
  // Egress constraints (3.1): for each node i,
  //   init_egress_i + sum_{k} sum_{j != i} h_{ik} x_{jk} <= T
  for (std::size_t i = 0; i < n; ++i) {
    lp << " egress_" << i << ":";
    for (std::size_t k = 0; k < p; ++k) {
      const double h = m.h(k, i);
      if (h == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        lp << " + " << h << " x_" << j << "_" << k;
      }
    }
    lp << " - T <= " << -problem.initial_egress_at(i) << "\n";
  }
  // Ingress constraints (3.2): for each node j,
  //   init_ingress_j + sum_k sum_{i != j} h_{ik} x_{jk} <= T
  for (std::size_t j = 0; j < n; ++j) {
    lp << " ingress_" << j << ":";
    for (std::size_t k = 0; k < p; ++k) {
      double coeff = 0.0;  // sum_{i != j} h_{ik}
      for (std::size_t i = 0; i < n; ++i) {
        if (i != j) coeff += m.h(k, i);
      }
      if (coeff != 0.0) lp << " + " << coeff << " x_" << j << "_" << k;
    }
    lp << " - T <= " << -problem.initial_ingress_at(j) << "\n";
  }
  // Assignment constraints (1.3): sum_j x_{jk} = 1.
  for (std::size_t k = 0; k < p; ++k) {
    lp << " assign_" << k << ":";
    for (std::size_t j = 0; j < n; ++j) {
      lp << (j ? " + " : " ") << "x_" << j << "_" << k;
    }
    lp << " = 1\n";
  }
  lp << "Binary\n";
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < p; ++k) lp << " x_" << j << "_" << k << "\n";
  }
  lp << "End\n";
  return lp.str();
}

Assignment greedy_reference(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();

  // Line 1: sort partitions by the max chunk size, descending.
  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });

  // Lines 2-10: running loads; for each partition try every destination and
  // keep the one minimizing the resulting bottleneck T.
  std::vector<double> egress(n), ingress(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
  }
  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);
    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      double t = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double e = i == d ? egress[i] : egress[i] + m.h(k, i);
        const double in = i == d ? ingress[i] + (sk - m.h(k, d)) : ingress[i];
        t = std::max(t, std::max(e, in));
      }
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }
    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += m.h(k, i);
    }
    ingress[best_d] += sk - m.h(k, best_d);
  }
  return dest;
}

}  // namespace ccf::opt
