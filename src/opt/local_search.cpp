#include "opt/local_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "opt/bounds.hpp"

namespace ccf::opt {

namespace {

// Indices of the two largest entries of v (first >= second).
struct Top2 {
  std::size_t arg_max = 0;
  double max = 0.0;
  double second = 0.0;
};

Top2 top2(const std::vector<double>& v) {
  Top2 t;
  t.max = -1.0;
  t.second = -1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] > t.max) {
      t.second = t.max;
      t.max = v[i];
      t.arg_max = i;
    } else if (v[i] > t.second) {
      t.second = v[i];
    }
  }
  return t;
}

}  // namespace

LocalSearchResult refine(const AssignmentProblem& problem, Assignment& dest,
                         LocalSearchOptions options) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();
  if (dest.size() != p) {
    throw std::invalid_argument("refine: assignment size != partitions");
  }

  LoadProfile loads = evaluate(problem, dest);
  LocalSearchResult result;
  result.initial_T = result.final_T = loads.makespan();
  const double lb = root_lower_bound(problem);

  std::vector<double> part_total(p);
  for (std::size_t k = 0; k < p; ++k) part_total[k] = m.partition_total(k);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool moved = false;
    for (std::size_t k = 0; k < p; ++k) {
      if (result.final_T <= lb * (1.0 + options.bound_tolerance)) {
        return result;
      }
      const std::uint32_t old_d = dest[k];
      // Temporarily remove partition k from the loads.
      for (std::size_t i = 0; i < n; ++i) {
        if (i != old_d) loads.egress[i] -= m.h(k, i);
      }
      loads.ingress[old_d] -= part_total[k] - m.h(k, old_d);

      // Candidate scoring with the same top-2 trick as the O(p·n) greedy.
      Top2 eg;
      {
        // egress with partition k re-added everywhere (value if i != d).
        eg.max = -1.0;
        eg.second = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double v = loads.egress[i] + m.h(k, i);
          if (v > eg.max) {
            eg.second = eg.max;
            eg.max = v;
            eg.arg_max = i;
          } else if (v > eg.second) {
            eg.second = v;
          }
        }
      }
      const Top2 in = top2(loads.ingress);

      double best_t = 0.0;
      std::uint32_t best_d = old_d;
      bool first = true;
      for (std::uint32_t d = 0; d < n; ++d) {
        const double egress_max =
            std::max(d == eg.arg_max ? std::max(eg.second, loads.egress[d])
                                     : eg.max,
                     loads.egress[d]);
        const double in_other = d == in.arg_max ? in.second : in.max;
        const double ingress_max =
            std::max(in_other,
                     loads.ingress[d] + (part_total[k] - m.h(k, d)));
        const double t = std::max(egress_max, ingress_max);
        if (first || t < best_t || (t == best_t && d == old_d)) {
          best_t = t;
          best_d = d;
          first = false;
        }
      }

      // Re-apply at the chosen destination.
      for (std::size_t i = 0; i < n; ++i) {
        if (i != best_d) loads.egress[i] += m.h(k, i);
      }
      loads.ingress[best_d] += part_total[k] - m.h(k, best_d);
      if (best_d != old_d && best_t < result.final_T) {
        dest[k] = best_d;
        ++result.moves;
        moved = true;
        result.final_T = loads.makespan();
      } else if (best_d != old_d) {
        // Move does not improve the global bottleneck: revert.
        for (std::size_t i = 0; i < n; ++i) {
          if (i != best_d) loads.egress[i] -= m.h(k, i);
        }
        loads.ingress[best_d] -= part_total[k] - m.h(k, best_d);
        for (std::size_t i = 0; i < n; ++i) {
          if (i != old_d) loads.egress[i] += m.h(k, i);
        }
        loads.ingress[old_d] += part_total[k] - m.h(k, old_d);
        dest[k] = old_d;
      }
    }
    if (!moved) break;
  }
  result.final_T = loads.makespan();
  return result;
}

}  // namespace ccf::opt
