#include "opt/local_search.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "opt/bounds.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ccf::opt {

LocalSearchResult refine(const AssignmentProblem& problem, Assignment& dest,
                         LocalSearchOptions options) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();
  if (dest.size() != p) {
    throw std::invalid_argument("refine: assignment size != partitions");
  }

  LoadProfile loads = evaluate(problem, dest);
  LocalSearchResult result;
  result.initial_T = result.final_T = loads.makespan();
  const double lb = root_lower_bound(problem);

  std::vector<double> part_total(p);
  for (std::size_t k = 0; k < p; ++k) part_total[k] = m.partition_total(k);

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    bool moved = false;
    for (std::size_t k = 0; k < p; ++k) {
      if (result.final_T <= lb * (1.0 + options.bound_tolerance)) {
        return result;
      }
      const std::uint32_t old_d = dest[k];
      const std::span<const double> row = m.partition_row(k);
      // Temporarily remove partition k from the loads.
      for (std::size_t i = 0; i < n; ++i) {
        if (i != old_d) loads.egress[i] -= row[i];
      }
      loads.ingress[old_d] -= part_total[k] - row[old_d];

      // Candidate scoring with the shared O(n) top-2 kernel (bounds.hpp).
      const Top2 eg = top2_sum(loads.egress, row);
      const Top2 in = top2(loads.ingress);

      double best_t = 0.0;
      std::uint32_t best_d = old_d;
      bool first = true;
      for (std::uint32_t d = 0; d < n; ++d) {
        const double t =
            placement_bottleneck(eg, in, loads.egress[d], loads.ingress[d],
                                 part_total[k], row[d], d);
        if (first || t < best_t || (t == best_t && d == old_d)) {
          best_t = t;
          best_d = d;
          first = false;
        }
      }

      // Re-apply at the chosen destination.
      for (std::size_t i = 0; i < n; ++i) {
        if (i != best_d) loads.egress[i] += row[i];
      }
      loads.ingress[best_d] += part_total[k] - row[best_d];
      if (best_d != old_d && best_t < result.final_T) {
        dest[k] = best_d;
        ++result.moves;
        moved = true;
        result.final_T = loads.makespan();
      } else if (best_d != old_d) {
        // Move does not improve the global bottleneck: revert.
        for (std::size_t i = 0; i < n; ++i) {
          if (i != best_d) loads.egress[i] -= row[i];
        }
        loads.ingress[best_d] -= part_total[k] - row[best_d];
        for (std::size_t i = 0; i < n; ++i) {
          if (i != old_d) loads.egress[i] += row[i];
        }
        loads.ingress[old_d] += part_total[k] - row[old_d];
        dest[k] = old_d;
      }
    }
    if (!moved) break;
  }
  result.final_T = loads.makespan();
  return result;
}

namespace {

/// One greedy construction. With `rng == nullptr` this is exactly the
/// paper's Algorithm 1 as CcfScheduler computes it (size-descending order,
/// first-minimum destination); with an rng the sort key is perturbed and
/// each placement picks uniformly among the `rcl` best destinations.
Assignment construct(const AssignmentProblem& problem, util::Pcg32* rng,
                     double sort_noise, std::size_t rcl) {
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();

  std::vector<double> key(p);
  for (std::size_t k = 0; k < p; ++k) {
    key[k] = m.partition_max(k);
    if (rng != nullptr) key[k] *= 1.0 + sort_noise * rng->uniform01();
  }
  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&key](std::uint32_t a, std::uint32_t b) {
                     return key[a] > key[b];
                   });

  std::vector<double> egress(n), ingress(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
  }

  struct Scored {
    double t;
    std::uint32_t d;
  };
  std::vector<Scored> rcl_best;  // the `rcl` best candidates, (t, d) ascending
  rcl_best.reserve(rcl);

  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);
    const std::span<const double> row = m.partition_row(k);
    const Top2 eg = top2_sum(egress, row);
    const Top2 in = top2(ingress);

    std::uint32_t best_d = 0;
    if (rng == nullptr) {
      double best_t = 0.0;
      bool first = true;
      for (std::uint32_t d = 0; d < n; ++d) {
        const double t = placement_bottleneck(eg, in, egress[d], ingress[d],
                                              sk, row[d], d);
        if (first || t < best_t) {
          best_t = t;
          best_d = d;
          first = false;
        }
      }
    } else {
      rcl_best.clear();
      for (std::uint32_t d = 0; d < n; ++d) {
        const Scored s{placement_bottleneck(eg, in, egress[d], ingress[d],
                                            sk, row[d], d),
                       d};
        auto pos = std::find_if(rcl_best.begin(), rcl_best.end(),
                                [&s](const Scored& o) { return s.t < o.t; });
        if (rcl_best.size() < rcl) {
          rcl_best.insert(pos, s);
        } else if (pos != rcl_best.end()) {
          rcl_best.pop_back();
          rcl_best.insert(pos, s);
        }
      }
      best_d =
          rcl_best[rng->bounded(static_cast<std::uint32_t>(rcl_best.size()))]
              .d;
    }

    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += row[i];
    }
    ingress[best_d] += sk - row[best_d];
  }
  return dest;
}

}  // namespace

GraspResult grasp(const AssignmentProblem& problem, GraspOptions options) {
  problem.validate();
  const std::size_t starts = std::max<std::size_t>(1, options.starts);
  const std::size_t rcl = std::max<std::size_t>(1, options.rcl);

  struct Start {
    Assignment dest;
    double T = 0.0;
  };
  std::vector<Start> runs(starts);
  util::parallel_for(
      starts,
      [&](std::size_t s) {
        Assignment dest;
        if (s == 0) {
          dest = construct(problem, nullptr, 0.0, 1);
        } else {
          util::Pcg32 rng(util::derive_seed(options.seed, s), s);
          dest = construct(problem, &rng, options.sort_noise, rcl);
        }
        runs[s].T = refine(problem, dest, options.refine).final_T;
        runs[s].dest = std::move(dest);
      },
      options.threads);

  // Argmin over the starts via the shared chunked reduction. Chunks combine
  // in ascending index order and ties keep the earlier start (strict <), so
  // the winner is independent of thread count.
  struct BestStart {
    double T = std::numeric_limits<double>::infinity();
    std::size_t s = 0;
  };
  const BestStart best = util::parallel_reduce(
      starts, /*grain=*/64, BestStart{},
      [&](std::size_t b, std::size_t e) {
        BestStart acc;
        for (std::size_t s = b; s < e; ++s) {
          if (runs[s].T < acc.T) acc = BestStart{runs[s].T, s};
        }
        return acc;
      },
      [](BestStart a, BestStart b) { return b.T < a.T ? b : a; },
      options.threads);

  GraspResult result;
  result.starts = starts;
  result.best_start = best.s;
  result.dest = std::move(runs[best.s].dest);
  result.T = runs[best.s].T;
  return result;
}

}  // namespace ccf::opt
