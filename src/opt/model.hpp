// The paper's co-optimization model.
//
// Model (3) (§III-A): choose x_{jk} ∈ {0,1} (partition k -> node j, exactly
// one j per k) minimizing
//
//     T = max( max_i Σ_k h_{ik} x_{jk} [j≠i]  ,  max_j Σ_{i≠j} h_{ik} x_{jk} )
//         ---------------- egress ----------   ------------ ingress --------
//
// i.e. the bottleneck port load in bytes; dividing by the port rate gives the
// coflow completion time t = T / R_l (models (1)/(2)). The skew extension of
// §III-C adds fixed initial flow volumes v0 (broadcasts), which enter as
// constant initial egress/ingress loads.
//
// This header defines the problem container, assignment evaluation, and an
// exporter to CPLEX-LP format so the exact MILP can also be solved by an
// external optimizer (the paper used Gurobi; see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/chunk_matrix.hpp"

namespace ccf::opt {

/// A partition destination per partition index; the decision vector
/// (dest[k] = j  <=>  x_{jk} = 1).
using Assignment = std::vector<std::uint32_t>;

/// One instance of model (3). Does not own the chunk matrix.
struct AssignmentProblem {
  const data::ChunkMatrix* matrix = nullptr;
  /// Constant pre-existing loads (bytes) from the skew handler's broadcast
  /// flows; empty vectors mean all-zero.
  std::vector<double> initial_egress;
  std::vector<double> initial_ingress;

  std::size_t nodes() const noexcept { return matrix->nodes(); }
  std::size_t partitions() const noexcept { return matrix->partitions(); }
  double initial_egress_at(std::size_t i) const noexcept {
    return initial_egress.empty() ? 0.0 : initial_egress[i];
  }
  double initial_ingress_at(std::size_t j) const noexcept {
    return initial_ingress.empty() ? 0.0 : initial_ingress[j];
  }
  /// Throws std::invalid_argument on null matrix / size mismatches.
  void validate() const;
};

/// Port loads induced by a full assignment.
struct LoadProfile {
  std::vector<double> egress;
  std::vector<double> ingress;

  /// The objective T: bottleneck port load in bytes.
  double makespan() const noexcept;
};

/// Evaluate a complete assignment (dest.size() == partitions).
LoadProfile evaluate(const AssignmentProblem& problem,
                     std::span<const std::uint32_t> dest);

/// Convenience: evaluate(...).makespan().
double makespan(const AssignmentProblem& problem,
                std::span<const std::uint32_t> dest);

/// Network traffic (bytes moved to remote nodes) of an assignment, including
/// the problem's initial loads. Equal to Σ egress == Σ ingress.
double traffic(const AssignmentProblem& problem,
               std::span<const std::uint32_t> dest);

/// Emit model (3) in CPLEX-LP format (minimize T s.t. port-load and
/// one-destination constraints, x binary) for external solvers.
std::string to_lp_string(const AssignmentProblem& problem);

/// Reference implementation of the paper's Algorithm 1, written to mirror the
/// pseudocode line by line at O(p·n²). The production CCF scheduler
/// (join/ccf_scheduler) computes the identical result in O(p·n); tests assert
/// the two agree.
Assignment greedy_reference(const AssignmentProblem& problem);

}  // namespace ccf::opt
