#include "opt/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "opt/bounds.hpp"
#include "opt/local_search.hpp"
#include "util/parallel.hpp"

namespace ccf::opt {

namespace {

using Clock = std::chrono::steady_clock;

struct Child {
  double t;
  std::uint32_t d;
};

void sort_children(std::vector<Child>& children) {
  std::sort(children.begin(), children.end(),
            [](const Child& a, const Child& b) {
              return a.t != b.t ? a.t < b.t : a.d < b.d;
            });
}

std::vector<std::uint32_t> partitions_by_size(const data::ChunkMatrix& m) {
  std::vector<std::uint32_t> order(m.partitions());
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    order[k] = static_cast<std::uint32_t>(k);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_total(a) > m.partition_total(b);
                   });
  return order;
}

Clock::time_point deadline_from(double limit_s) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(limit_s));
}

// ===========================================================================
// Reference solver — the seed's sequential search, kept verbatim as the
// equivalence anchor and bench baseline: averaging-only lower bound, O(n²)
// child rescan, per-node children allocation, greedy incumbent.
// ===========================================================================

struct RefSearch {
  const AssignmentProblem* problem;
  const data::ChunkMatrix* m;
  std::size_t n;
  std::vector<std::uint32_t> order;  // partitions, largest first
  std::vector<double> egress;
  std::vector<double> ingress;
  Assignment current;
  BnbResult best;
  BnbOptions options;
  Clock::time_point deadline;
  bool aborted = false;
};

/// The seed's partial bound: future volume spread over the n-port average.
double averaging_lower_bound(const AssignmentProblem& problem,
                             std::span<const double> egress,
                             std::span<const double> ingress,
                             std::span<const std::uint32_t> unassigned,
                             double current_T) {
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  double future_min = 0.0;
  for (const std::uint32_t k : unassigned) {
    future_min += min_partition_traffic(m, k);
  }
  double ingress_total = 0.0;
  for (const double v : ingress) ingress_total += v;
  double egress_total = 0.0;
  for (const double v : egress) egress_total += v;
  const double spread_in = (ingress_total + future_min) / static_cast<double>(n);
  const double spread_out = (egress_total + future_min) / static_cast<double>(n);
  return std::max({current_T, spread_in, spread_out});
}

double profile_max(const RefSearch& ctx) {
  double t = 0.0;
  for (const double v : ctx.egress) t = std::max(t, v);
  for (const double v : ctx.ingress) t = std::max(t, v);
  return t;
}

void ref_dfs(RefSearch& ctx, std::size_t depth, double current_T) {
  if (ctx.aborted) return;
  ++ctx.best.nodes_explored;
  if (ctx.best.nodes_explored >= ctx.options.max_nodes ||
      (ctx.best.nodes_explored % kDeadlineCheckNodes == 0 &&
       Clock::now() > ctx.deadline)) {
    ctx.aborted = true;
    return;
  }
  if (depth == ctx.order.size()) {
    if (current_T < ctx.best.T) {
      ctx.best.T = current_T;
      ctx.best.dest = ctx.current;
    }
    return;
  }

  const std::span<const std::uint32_t> unassigned(ctx.order.data() + depth,
                                                  ctx.order.size() - depth);
  if (averaging_lower_bound(*ctx.problem, ctx.egress, ctx.ingress, unassigned,
                            current_T) >= ctx.best.T) {
    return;  // prune
  }

  const std::uint32_t k = ctx.order[depth];
  const double sk = ctx.m->partition_total(k);

  // Score every destination by a full O(n) rescan per candidate, then branch
  // best-first: good incumbents early tighten pruning.
  std::vector<Child> children;
  children.reserve(ctx.n);
  for (std::uint32_t d = 0; d < ctx.n; ++d) {
    double t = 0.0;
    for (std::size_t i = 0; i < ctx.n; ++i) {
      const double e = i == d ? ctx.egress[i] : ctx.egress[i] + ctx.m->h(k, i);
      const double in =
          i == d ? ctx.ingress[i] + (sk - ctx.m->h(k, d)) : ctx.ingress[i];
      t = std::max(t, std::max(e, in));
    }
    children.push_back({t, d});
  }
  sort_children(children);

  for (const Child& c : children) {
    if (c.t >= ctx.best.T) break;  // children sorted: the rest are no better
    const std::uint32_t d = c.d;
    // Apply.
    for (std::size_t i = 0; i < ctx.n; ++i) {
      if (i != d) ctx.egress[i] += ctx.m->h(k, i);
    }
    ctx.ingress[d] += sk - ctx.m->h(k, d);
    ctx.current[k] = d;

    ref_dfs(ctx, depth + 1, c.t);

    // Undo.
    for (std::size_t i = 0; i < ctx.n; ++i) {
      if (i != d) ctx.egress[i] -= ctx.m->h(k, i);
    }
    ctx.ingress[d] -= sk - ctx.m->h(k, d);
    if (ctx.aborted) return;
  }
}

BnbResult solve_reference(const AssignmentProblem& problem,
                          const BnbOptions& options, Assignment warm) {
  const data::ChunkMatrix& m = *problem.matrix;

  RefSearch ctx;
  ctx.problem = &problem;
  ctx.m = &m;
  ctx.n = m.nodes();
  ctx.options = options;
  ctx.deadline = deadline_from(options.time_limit_s);
  ctx.order = partitions_by_size(m);

  ctx.egress.resize(ctx.n);
  ctx.ingress.resize(ctx.n);
  for (std::size_t i = 0; i < ctx.n; ++i) {
    ctx.egress[i] = problem.initial_egress_at(i);
    ctx.ingress[i] = problem.initial_ingress_at(i);
  }
  ctx.current.assign(m.partitions(), 0);

  ctx.best.dest = std::move(warm);
  ctx.best.T = makespan(problem, ctx.best.dest);

  ref_dfs(ctx, 0, profile_max(ctx));

  ctx.best.optimal = !ctx.aborted;
  return ctx.best;
}

// ===========================================================================
// Parallel portfolio solver
// ===========================================================================

/// State shared by every subtree worker. The incumbent lives twice: the
/// atomic `best_T` is the lock-free read path for pruning (stale reads only
/// cost pruning efficiency, never correctness), the mutex serializes the
/// rare improvement writes together with the assignment they belong to.
struct SharedSearch {
  const AssignmentProblem* problem = nullptr;
  const data::ChunkMatrix* m = nullptr;
  std::size_t n = 0;
  std::vector<std::uint32_t> order;  // partitions, largest first
  std::size_t max_nodes = 0;
  Clock::time_point deadline;

  // Read-only bound tables, built once per solve: the strong-prune statics,
  // pos[k] = k's index in `order`, and per-depth suffixes over the unassigned
  // tail — Σ rmin (water-fill volume), Σ rsecond and per-port Σ h_{jk}
  // (argmax-concentration and egress-drain tests).
  PruneStatics statics;
  std::vector<std::size_t> pos;
  std::vector<double> suffix_rmin;      // [depth]
  std::vector<double> suffix_rsecond;   // [depth]
  std::vector<double> suffix_chunks;    // [depth * n + j]

  std::atomic<double> best_T{0.0};
  std::atomic<bool> aborted{false};
  std::atomic<std::size_t> nodes{0};
  std::mutex best_mutex;
  Assignment best_dest;
};

/// A prefix of destination choices along `order` whose subtree one task owns.
struct SubtreeTask {
  std::vector<std::uint32_t> prefix;
  double t = 0.0;  // bottleneck of the committed prefix loads
};

/// Per-worker scratch arena: load profiles, the current assignment, one
/// reusable children vector per depth (the seed allocated one per *node*),
/// and the bound scratch. Reused across subtree tasks via WorkerPool.
struct Worker {
  SharedSearch* sh;
  std::vector<double> egress, ingress;
  Assignment current;
  std::vector<std::vector<Child>> children;  // indexed by depth
  BoundScratch bounds;
  std::size_t unflushed = 0;       // nodes not yet added to sh->nodes
  std::size_t nodes_snapshot = 0;  // global count at the last flush

  explicit Worker(SharedSearch& s)
      : sh(&s),
        egress(s.n),
        ingress(s.n),
        current(s.order.size(), 0),
        children(s.order.size()) {
    for (auto& c : children) c.reserve(s.n);
  }
};

/// Checked-out/released around each subtree task so a worker's arena is
/// reused across tasks without binding tasks to threads (parallel_for hands
/// out indices dynamically for load balance).
class WorkerPool {
 public:
  explicit WorkerPool(SharedSearch& sh) : sh_(&sh) {}

  Worker& acquire() {
    const std::scoped_lock lock(mutex_);
    if (free_.empty()) {
      all_.push_back(std::make_unique<Worker>(*sh_));
      return *all_.back();
    }
    Worker* w = free_.back();
    free_.pop_back();
    return *w;
  }

  void release(Worker& w) {
    const std::scoped_lock lock(mutex_);
    free_.push_back(&w);
  }

  /// Add every worker's unflushed node count to the shared total.
  void flush_nodes() {
    const std::scoped_lock lock(mutex_);
    for (const auto& w : all_) {
      if (w->unflushed > 0) {
        sh_->nodes.fetch_add(w->unflushed, std::memory_order_relaxed);
        w->unflushed = 0;
      }
    }
  }

 private:
  SharedSearch* sh_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Worker>> all_;
  std::vector<Worker*> free_;
};

/// Per-node accounting: batches node counts into the shared atomic and
/// checks the node budget every node and the wall clock every
/// kDeadlineCheckNodes. Returns false once the search must stop.
bool tick(Worker& w) {
  SharedSearch& sh = *w.sh;
  ++w.unflushed;
  if (w.nodes_snapshot + w.unflushed >= sh.max_nodes ||
      w.unflushed >= kDeadlineCheckNodes) {
    w.nodes_snapshot =
        sh.nodes.fetch_add(w.unflushed, std::memory_order_relaxed) +
        w.unflushed;
    w.unflushed = 0;
    if (w.nodes_snapshot >= sh.max_nodes || Clock::now() > sh.deadline) {
      sh.aborted.store(true, std::memory_order_relaxed);
    }
  }
  return !sh.aborted.load(std::memory_order_relaxed);
}

void commit(SharedSearch& sh, const Assignment& dest, double t) {
  if (t >= sh.best_T.load(std::memory_order_relaxed)) return;
  const std::scoped_lock lock(sh.best_mutex);
  if (t < sh.best_T.load(std::memory_order_relaxed)) {
    sh.best_dest = dest;
    sh.best_T.store(t, std::memory_order_release);
  }
}

void apply_move(Worker& w, std::uint32_t k, std::uint32_t d) {
  const SharedSearch& sh = *w.sh;
  const std::span<const double> row = sh.m->partition_row(k);
  for (std::size_t i = 0; i < sh.n; ++i) {
    if (i != d) w.egress[i] += row[i];
  }
  w.ingress[d] += sh.m->partition_total(k) - row[d];
  w.current[k] = d;
}

void undo_move(Worker& w, std::uint32_t k, std::uint32_t d) {
  const SharedSearch& sh = *w.sh;
  const std::span<const double> row = sh.m->partition_row(k);
  for (std::size_t i = 0; i < sh.n; ++i) {
    if (i != d) w.egress[i] -= row[i];
  }
  w.ingress[d] -= sh.m->partition_total(k) - row[d];
}

/// Reset the worker's loads to the problem's initial profile and re-apply a
/// task prefix (choices along sh.order[0..prefix.size())).
void load_prefix(Worker& w, std::span<const std::uint32_t> prefix) {
  const SharedSearch& sh = *w.sh;
  for (std::size_t i = 0; i < sh.n; ++i) {
    w.egress[i] = sh.problem->initial_egress_at(i);
    w.ingress[i] = sh.problem->initial_ingress_at(i);
  }
  for (std::size_t j = 0; j < prefix.size(); ++j) {
    apply_move(w, sh.order[j], prefix[j]);
  }
}

/// Score all destinations of order[depth] into the worker's per-depth
/// scratch, best-first, using the shared O(n) top-2 kernel.
std::vector<Child>& score_children(Worker& w, std::size_t depth) {
  const SharedSearch& sh = *w.sh;
  const std::uint32_t k = sh.order[depth];
  const double sk = sh.m->partition_total(k);
  const std::span<const double> row = sh.m->partition_row(k);
  const Top2 eg = top2_sum(w.egress, row);
  const Top2 in = top2(w.ingress);
  std::vector<Child>& kids = w.children[depth];
  kids.clear();
  for (std::uint32_t d = 0; d < sh.n; ++d) {
    kids.push_back({placement_bottleneck(eg, in, w.egress[d], w.ingress[d],
                                         sk, row[d], d),
                    d});
  }
  sort_children(kids);
  return kids;
}

/// Assemble the strong-prune view of the worker's partial assignment at
/// `depth` from the shared suffix tables.
PrunePrefix prune_prefix(const SharedSearch& sh, const Worker& w,
                         std::size_t depth) {
  PrunePrefix v;
  v.egress = w.egress;
  v.ingress = w.ingress;
  v.order = sh.order;
  v.depth = depth;
  v.pos = sh.pos;
  v.future_rsecond = sh.suffix_rsecond[depth];
  v.future_chunks = std::span<const double>(
      sh.suffix_chunks.data() + depth * sh.n, sh.n);
  return v;
}

void dfs(Worker& w, std::size_t depth, double current_T) {
  SharedSearch& sh = *w.sh;
  if (!tick(w)) return;
  if (depth == sh.order.size()) {
    commit(sh, w.current, current_T);
    return;
  }

  const std::span<const std::uint32_t> unassigned(sh.order.data() + depth,
                                                  sh.order.size() - depth);
  const double best_T = sh.best_T.load(std::memory_order_relaxed);
  if (partial_lower_bound(*sh.problem, w.egress, w.ingress, unassigned,
                          current_T, w.bounds,
                          sh.suffix_rmin[depth]) >= best_T) {
    return;  // prune
  }
  if (infeasible_below(*sh.problem, sh.statics, prune_prefix(sh, w, depth),
                       best_T)) {
    return;  // no completion can beat the incumbent
  }

  const std::vector<Child>& kids = score_children(w, depth);
  const std::uint32_t k = sh.order[depth];
  for (const Child& c : kids) {
    // Re-read the incumbent per child: a sibling subtree may have lowered it.
    if (c.t >= sh.best_T.load(std::memory_order_relaxed)) break;
    apply_move(w, k, c.d);
    dfs(w, depth + 1, c.t);
    undo_move(w, k, c.d);
    if (sh.aborted.load(std::memory_order_relaxed)) return;
  }
}

void run_task(Worker& w, const SubtreeTask& task) {
  SharedSearch& sh = *w.sh;
  if (sh.aborted.load(std::memory_order_relaxed)) return;
  // Deadline check on task entry: with many queued tasks per thread this is
  // what keeps time_limit_s tight (workers inside a subtree re-check every
  // kDeadlineCheckNodes nodes).
  if (Clock::now() > sh.deadline) {
    sh.aborted.store(true, std::memory_order_relaxed);
    return;
  }
  if (task.t >= sh.best_T.load(std::memory_order_relaxed)) return;
  load_prefix(w, task.prefix);
  dfs(w, task.prefix.size(), task.t);
}

/// Expand the top of the search tree, level by level and best-first, into at
/// least `target` independent subtree tasks (more if the last level
/// overshoots; fewer if pruning closes the frontier). If the whole tree is
/// shallower than the fan-out, the frontier's complete assignments are
/// committed directly and no tasks remain.
std::vector<SubtreeTask> enumerate_tasks(SharedSearch& sh, Worker& w,
                                         std::size_t target) {
  std::vector<SubtreeTask> frontier;
  {
    double t0 = 0.0;
    load_prefix(w, {});
    for (const double v : w.egress) t0 = std::max(t0, v);
    for (const double v : w.ingress) t0 = std::max(t0, v);
    frontier.push_back({{}, t0});
  }

  std::size_t depth = 0;
  while (depth < sh.order.size() && frontier.size() < target &&
         !sh.aborted.load(std::memory_order_relaxed)) {
    std::vector<SubtreeTask> next;
    next.reserve(frontier.size() * sh.n);
    for (const SubtreeTask& task : frontier) {
      if (!tick(w)) break;
      load_prefix(w, task.prefix);
      const std::span<const std::uint32_t> unassigned(
          sh.order.data() + depth, sh.order.size() - depth);
      const double best_T = sh.best_T.load(std::memory_order_relaxed);
      if (partial_lower_bound(*sh.problem, w.egress, w.ingress, unassigned,
                              task.t, w.bounds,
                              sh.suffix_rmin[depth]) >= best_T ||
          infeasible_below(*sh.problem, sh.statics, prune_prefix(sh, w, depth),
                           best_T)) {
        continue;
      }
      for (const Child& c : score_children(w, depth)) {
        if (c.t >= sh.best_T.load(std::memory_order_relaxed)) break;
        SubtreeTask child{task.prefix, c.t};
        child.prefix.push_back(c.d);
        next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
    ++depth;
    if (frontier.empty()) return {};  // pruned or aborted: nothing to search
  }

  if (depth == sh.order.size()) {
    // Instance shallower than the fan-out: the frontier IS the candidate set.
    for (const SubtreeTask& task : frontier) {
      load_prefix(w, task.prefix);
      commit(sh, w.current, task.t);
    }
    return {};
  }

  // Best-first across workers: good subtrees early tighten everyone's bound.
  std::stable_sort(frontier.begin(), frontier.end(),
                   [](const SubtreeTask& a, const SubtreeTask& b) {
                     return a.t < b.t;
                   });
  return frontier;
}

BnbResult solve_parallel(const AssignmentProblem& problem,
                         const BnbOptions& options, Assignment warm) {
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t threads = util::effective_threads(options.threads);

  SharedSearch sh;
  sh.problem = &problem;
  sh.m = &m;
  sh.n = m.nodes();
  sh.order = partitions_by_size(m);
  sh.max_nodes = options.max_nodes;
  sh.deadline = deadline_from(options.time_limit_s);

  const std::size_t p = sh.order.size();
  sh.statics = make_prune_statics(problem);
  sh.pos.resize(p);
  for (std::size_t i = 0; i < p; ++i) sh.pos[sh.order[i]] = i;
  sh.suffix_rmin.assign(p + 1, 0.0);
  sh.suffix_rsecond.assign(p + 1, 0.0);
  sh.suffix_chunks.assign((p + 1) * sh.n, 0.0);
  for (std::size_t d = p; d-- > 0;) {
    const std::uint32_t k = sh.order[d];
    sh.suffix_rmin[d] = sh.suffix_rmin[d + 1] + sh.statics.rmin[k];
    sh.suffix_rsecond[d] = sh.suffix_rsecond[d + 1] + sh.statics.rsecond[k];
    const std::span<const double> row = m.partition_row(k);
    for (std::size_t j = 0; j < sh.n; ++j) {
      sh.suffix_chunks[d * sh.n + j] =
          sh.suffix_chunks[(d + 1) * sh.n + j] + row[j];
    }
  }
  sh.best_dest = std::move(warm);
  sh.best_T.store(makespan(problem, sh.best_dest),
                  std::memory_order_relaxed);

  BnbResult result;
  WorkerPool pool(sh);
  std::vector<SubtreeTask> tasks;
  if (Clock::now() > sh.deadline) {
    sh.aborted.store(true, std::memory_order_relaxed);
  } else {
    Worker& w0 = pool.acquire();
    tasks = enumerate_tasks(sh, w0, threads == 1 ? 1 : threads * 8);
    pool.release(w0);
  }
  result.subtree_tasks = tasks.size();

  if (!tasks.empty()) {
    util::parallel_for(
        tasks.size(),
        [&](std::size_t i) {
          Worker& w = pool.acquire();
          run_task(w, tasks[i]);
          pool.release(w);
        },
        threads);
  }
  pool.flush_nodes();

  result.dest = sh.best_dest;
  result.T = sh.best_T.load(std::memory_order_relaxed);
  result.nodes_explored = sh.nodes.load(std::memory_order_relaxed);
  result.optimal = !sh.aborted.load(std::memory_order_relaxed);
  return result;
}

}  // namespace

BnbResult solve_exact(const AssignmentProblem& problem, BnbOptions options) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;

  // Incumbent: caller-provided warm start, else the GRASP portfolio
  // (parallel mode), else the reference greedy.
  Assignment warm;
  if (options.initial) {
    warm = *options.initial;
    if (warm.size() != m.partitions()) {
      throw std::invalid_argument("solve_exact: warm start size mismatch");
    }
  } else if (options.mode == BnbMode::kParallel && options.grasp_starts > 0) {
    GraspOptions gopt;
    gopt.starts = options.grasp_starts;
    gopt.seed = options.seed;
    gopt.threads = options.threads;
    warm = grasp(problem, gopt).dest;
  } else {
    warm = greedy_reference(problem);
  }

  return options.mode == BnbMode::kReference
             ? solve_reference(problem, options, std::move(warm))
             : solve_parallel(problem, options, std::move(warm));
}

}  // namespace ccf::opt
