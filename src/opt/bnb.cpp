#include "opt/bnb.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "opt/bounds.hpp"

namespace ccf::opt {

namespace {

using Clock = std::chrono::steady_clock;

struct SearchContext {
  const AssignmentProblem* problem;
  const data::ChunkMatrix* m;
  std::size_t n;
  std::vector<std::uint32_t> order;  // partitions, largest first
  std::vector<double> egress;
  std::vector<double> ingress;
  Assignment current;
  BnbResult best;
  BnbOptions options;
  Clock::time_point deadline;
  bool aborted = false;
};

double profile_max(const SearchContext& ctx) {
  double t = 0.0;
  for (const double v : ctx.egress) t = std::max(t, v);
  for (const double v : ctx.ingress) t = std::max(t, v);
  return t;
}

void dfs(SearchContext& ctx, std::size_t depth, double current_T) {
  if (ctx.aborted) return;
  ++ctx.best.nodes_explored;
  if (ctx.best.nodes_explored >= ctx.options.max_nodes ||
      (ctx.best.nodes_explored % 4096 == 0 && Clock::now() > ctx.deadline)) {
    ctx.aborted = true;
    return;
  }
  if (depth == ctx.order.size()) {
    if (current_T < ctx.best.T) {
      ctx.best.T = current_T;
      ctx.best.dest = ctx.current;
    }
    return;
  }

  const std::span<const std::uint32_t> unassigned(ctx.order.data() + depth,
                                                  ctx.order.size() - depth);
  if (partial_lower_bound(*ctx.problem, ctx.egress, ctx.ingress, unassigned,
                          current_T) >= ctx.best.T) {
    return;  // prune
  }

  const std::uint32_t k = ctx.order[depth];
  const double sk = ctx.m->partition_total(k);

  // Score every destination by the incremental bottleneck, then branch
  // best-first: good incumbents early tighten pruning.
  struct Child {
    double t;
    std::uint32_t d;
  };
  std::vector<Child> children;
  children.reserve(ctx.n);
  for (std::uint32_t d = 0; d < ctx.n; ++d) {
    double t = 0.0;
    for (std::size_t i = 0; i < ctx.n; ++i) {
      const double e = i == d ? ctx.egress[i] : ctx.egress[i] + ctx.m->h(k, i);
      const double in =
          i == d ? ctx.ingress[i] + (sk - ctx.m->h(k, d)) : ctx.ingress[i];
      t = std::max(t, std::max(e, in));
    }
    children.push_back({t, d});
  }
  std::sort(children.begin(), children.end(),
            [](const Child& a, const Child& b) {
              return a.t != b.t ? a.t < b.t : a.d < b.d;
            });

  for (const Child& c : children) {
    if (c.t >= ctx.best.T) break;  // children sorted: the rest are no better
    const std::uint32_t d = c.d;
    // Apply.
    for (std::size_t i = 0; i < ctx.n; ++i) {
      if (i != d) ctx.egress[i] += ctx.m->h(k, i);
    }
    ctx.ingress[d] += sk - ctx.m->h(k, d);
    ctx.current[k] = d;

    dfs(ctx, depth + 1, c.t);

    // Undo.
    for (std::size_t i = 0; i < ctx.n; ++i) {
      if (i != d) ctx.egress[i] -= ctx.m->h(k, i);
    }
    ctx.ingress[d] -= sk - ctx.m->h(k, d);
    if (ctx.aborted) return;
  }
}

}  // namespace

BnbResult solve_exact(const AssignmentProblem& problem, BnbOptions options) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;

  SearchContext ctx;
  ctx.problem = &problem;
  ctx.m = &m;
  ctx.n = m.nodes();
  ctx.options = options;
  ctx.deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(
                                        options.time_limit_s));

  ctx.order.resize(m.partitions());
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    ctx.order[k] = static_cast<std::uint32_t>(k);
  }
  std::stable_sort(ctx.order.begin(), ctx.order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_total(a) > m.partition_total(b);
                   });

  ctx.egress.resize(ctx.n);
  ctx.ingress.resize(ctx.n);
  for (std::size_t i = 0; i < ctx.n; ++i) {
    ctx.egress[i] = problem.initial_egress_at(i);
    ctx.ingress[i] = problem.initial_ingress_at(i);
  }
  ctx.current.assign(m.partitions(), 0);

  // Incumbent: caller-provided warm start, else the reference greedy.
  Assignment warm = options.initial ? *options.initial
                                    : greedy_reference(problem);
  if (warm.size() != m.partitions()) {
    throw std::invalid_argument("solve_exact: warm start size mismatch");
  }
  ctx.best.dest = warm;
  ctx.best.T = makespan(problem, warm);

  dfs(ctx, 0, profile_max(ctx));

  ctx.best.optimal = !ctx.aborted;
  return ctx.best;
}

}  // namespace ccf::opt
