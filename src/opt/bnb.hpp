// Exact solver for model (3) by depth-first branch-and-bound.
//
// The problem is an integer multi-commodity-flow instance and NP-complete
// (paper §III-B, citing Even/Itai/Shamir), so this solver targets the small
// instances used to (a) validate the heuristic's optimality gap and (b)
// reproduce the paper's point that the exact approach cannot scale (the
// paper reports Gurobi needing >30 min at 500 nodes / 7500 partitions).
//
// Search: partitions in descending size order; children (destinations)
// explored best-first by incremental makespan; pruned with
// partial_lower_bound(); incumbent seeded with the greedy heuristic.
#pragma once

#include <cstddef>
#include <optional>

#include "opt/model.hpp"

namespace ccf::opt {

struct BnbOptions {
  /// Abort after exploring this many search nodes (result flagged !optimal).
  std::size_t max_nodes = 5'000'000;
  /// Wall-clock limit in seconds (result flagged !optimal on expiry).
  double time_limit_s = 30.0;
  /// Optional warm-start incumbent; must be a valid full assignment.
  std::optional<Assignment> initial;
};

struct BnbResult {
  Assignment dest;       ///< best assignment found
  double T = 0.0;        ///< its makespan (bytes)
  bool optimal = false;  ///< proven optimal (search exhausted)
  std::size_t nodes_explored = 0;
};

/// Solve to proven optimality or until a limit trips.
BnbResult solve_exact(const AssignmentProblem& problem, BnbOptions options = {});

}  // namespace ccf::opt
