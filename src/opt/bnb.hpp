// Exact solver for model (3) by branch-and-bound.
//
// The problem is an integer multi-commodity-flow instance and NP-complete
// (paper §III-B, citing Even/Itai/Shamir), so this solver targets the small
// instances used to (a) validate the heuristic's optimality gap and (b)
// reproduce the paper's point that the exact approach cannot scale (the
// paper reports Gurobi needing >30 min at 500 nodes / 7500 partitions).
//
// Two modes (mirroring the simulator's reference/incremental engine split):
//
//  * kReference — the seed's sequential search: partitions in descending
//    size order, children scored by an O(n²) rescan, pruned with the
//    averaging lower bound, incumbent seeded by the reference greedy. Kept
//    as the equivalence anchor and the baseline of `bench_opt_scale`.
//  * kParallel — the portfolio optimizer: a GRASP multi-start (randomized
//    greedy + local search across diversified seeds) warm-starts the
//    incumbent, the top levels of the DFS tree are enumerated into
//    independent subtree tasks fanned out over util::parallel_for, workers
//    share the incumbent through an atomic with lock-free reads on the
//    pruning hot path, children are scored in O(n) by the shared top-2
//    kernel, and pruning uses the water-filling packing bound
//    (opt/bounds.hpp). Both modes prove the same optimal T.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "opt/model.hpp"

namespace ccf::opt {

/// How many search nodes a worker may expand between wall-clock deadline
/// checks. Workers additionally check the deadline on subtree-task entry, so
/// `time_limit_s` is honored tightly even when tasks outnumber threads.
inline constexpr std::size_t kDeadlineCheckNodes = 4096;

enum class BnbMode {
  kReference,  ///< seed algorithm: sequential, averaging bound, O(n²) scoring
  kParallel,   ///< portfolio: GRASP warm start, packing bound, subtree fan-out
};

struct BnbOptions {
  /// Abort after exploring this many search nodes (result flagged !optimal).
  std::size_t max_nodes = 5'000'000;
  /// Wall-clock limit in seconds (result flagged !optimal on expiry).
  double time_limit_s = 30.0;
  /// Optional warm-start incumbent; must be a valid full assignment.
  std::optional<Assignment> initial;
  BnbMode mode = BnbMode::kParallel;
  /// Worker threads for kParallel (0 = hardware concurrency).
  std::size_t threads = 0;
  /// GRASP portfolio starts warm-starting kParallel when `initial` is unset
  /// (0 = plain greedy incumbent). Ignored by kReference.
  std::size_t grasp_starts = 8;
  /// Seed for the GRASP portfolio's randomized constructions.
  std::uint64_t seed = 1;
};

struct BnbResult {
  Assignment dest;       ///< best assignment found
  double T = 0.0;        ///< its makespan (bytes)
  bool optimal = false;  ///< proven optimal (search exhausted)
  std::size_t nodes_explored = 0;
  std::size_t subtree_tasks = 0;  ///< parallel mode: tasks fanned out
};

/// Solve to proven optimality or until a limit trips.
BnbResult solve_exact(const AssignmentProblem& problem, BnbOptions options = {});

}  // namespace ccf::opt
