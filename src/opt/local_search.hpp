// Local-search refinement of an assignment (extension beyond the paper).
//
// Algorithm 1 is a one-pass greedy: early placements are never revisited.
// This pass repeatedly relocates single partitions whenever doing so strictly
// lowers the bottleneck makespan T, until a fixed point or a round limit.
// Used by the "ccf-ls" scheduler and the ablation bench.
#pragma once

#include <cstddef>

#include "opt/model.hpp"

namespace ccf::opt {

struct LocalSearchOptions {
  /// Maximum full sweeps over all partitions.
  std::size_t max_rounds = 8;
  /// Stop a sweep early once T is within this relative distance of the
  /// root lower bound (already provably near-optimal).
  double bound_tolerance = 1e-9;
};

struct LocalSearchResult {
  std::size_t moves = 0;       ///< relocations applied
  std::size_t rounds = 0;      ///< sweeps executed
  double initial_T = 0.0;
  double final_T = 0.0;
};

/// Refine `dest` in place. Never increases makespan.
LocalSearchResult refine(const AssignmentProblem& problem, Assignment& dest,
                         LocalSearchOptions options = {});

}  // namespace ccf::opt
