// Local-search refinement and GRASP multi-start (extensions beyond the paper).
//
// Algorithm 1 is a one-pass greedy: early placements are never revisited.
// refine() repeatedly relocates single partitions whenever doing so strictly
// lowers the bottleneck makespan T, until a fixed point or a round limit.
// Used by the "ccf-ls" scheduler and the ablation bench.
//
// grasp() layers a portfolio on top: many randomized-greedy constructions
// (noise on the sort key, restricted-candidate-list destination picks), each
// refined by local search, run in parallel across diversified seeds. Start 0
// is always the *deterministic* greedy construction (identical to
// CcfScheduler) + refine, so the portfolio is never worse than "ccf-ls".
// The best start warm-starts the exact branch-and-bound and backs the
// "ccf-portfolio" scheduler.
#pragma once

#include <cstddef>
#include <cstdint>

#include "opt/model.hpp"

namespace ccf::opt {

struct LocalSearchOptions {
  /// Maximum full sweeps over all partitions.
  std::size_t max_rounds = 8;
  /// Stop a sweep early once T is within this relative distance of the
  /// root lower bound (already provably near-optimal).
  double bound_tolerance = 1e-9;
};

struct LocalSearchResult {
  std::size_t moves = 0;       ///< relocations applied
  std::size_t rounds = 0;      ///< sweeps executed
  double initial_T = 0.0;
  double final_T = 0.0;
};

/// Refine `dest` in place. Never increases makespan.
LocalSearchResult refine(const AssignmentProblem& problem, Assignment& dest,
                         LocalSearchOptions options = {});

struct GraspOptions {
  /// Construction starts. Start 0 is the deterministic greedy (== ccf-ls
  /// when refined); starts 1..n-1 are randomized.
  std::size_t starts = 16;
  /// Master seed; start s draws from an independent stream derived from it.
  std::uint64_t seed = 1;
  /// Multiplicative noise on the size-descending sort key: key_k is scaled
  /// by (1 + sort_noise * u), u ~ U[0,1) per partition per start.
  double sort_noise = 0.25;
  /// Restricted candidate list size: each placement picks uniformly among
  /// the `rcl` best-scoring destinations (1 = pure greedy placements).
  std::size_t rcl = 3;
  /// Worker threads (0 = hardware concurrency). The result is independent
  /// of the thread count: starts are reduced in index order.
  std::size_t threads = 0;
  /// Local-search refinement applied to every construction.
  LocalSearchOptions refine;
};

struct GraspResult {
  Assignment dest;         ///< best refined assignment across all starts
  double T = 0.0;          ///< its makespan (bytes)
  std::size_t starts = 0;  ///< constructions run
  std::size_t best_start = 0;  ///< index of the winning start (0 = greedy)
};

/// Run the GRASP portfolio. Deterministic in (problem, options), whatever
/// `threads` resolves to.
GraspResult grasp(const AssignmentProblem& problem, GraspOptions options = {});

}  // namespace ccf::opt
