#include "opt/bounds.hpp"

#include <algorithm>
#include <limits>

namespace ccf::opt {

Top2 top2(std::span<const double> v) noexcept {
  Top2 t;
  for (std::size_t i = 0; i < v.size(); ++i) t.feed(i, v[i]);
  return t;
}

Top2 top2_sum(std::span<const double> base,
              std::span<const double> add) noexcept {
  Top2 t;
  for (std::size_t i = 0; i < base.size(); ++i) t.feed(i, base[i] + add[i]);
  return t;
}

double min_partition_traffic(const data::ChunkMatrix& m, std::size_t k) {
  return m.partition_total(k) - m.partition_max(k);
}

double root_lower_bound(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();

  double unavoidable = 0.0;     // Σ_k minimum traffic
  double biggest_single = 0.0;  // the largest single unavoidable ingress
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    const double t = min_partition_traffic(m, k);
    unavoidable += t;
    biggest_single = std::max(biggest_single, t);
  }
  double init_total = 0.0;
  double init_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    init_total += problem.initial_ingress_at(i);
    init_max = std::max(init_max, std::max(problem.initial_ingress_at(i),
                                           problem.initial_egress_at(i)));
  }
  const double spread = (unavoidable + init_total) / static_cast<double>(n);
  return std::max({spread, biggest_single, init_max});
}

double water_fill_level(std::span<const double> loads, double volume,
                        std::vector<double>& scratch) {
  scratch.assign(loads.begin(), loads.end());
  std::sort(scratch.begin(), scratch.end());
  // Raise the water over the lowest-loaded ports until `volume` fits: with m
  // ports under water, level = (volume + Σ_{i<m} a_i) / m, valid once the
  // next port is above it. The first valid m gives the exact minimum level.
  double prefix = 0.0;
  for (std::size_t m = 1; m <= scratch.size(); ++m) {
    prefix += scratch[m - 1];
    const double level = (volume + prefix) / static_cast<double>(m);
    if (m == scratch.size() || level <= scratch[m]) return level;
  }
  return 0.0;  // unreachable for non-empty loads
}

double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T, BoundScratch& scratch) {
  const data::ChunkMatrix& m = *problem.matrix;
  double future_min = 0.0;
  for (const std::uint32_t k : unassigned) {
    future_min += min_partition_traffic(m, k);
  }
  return partial_lower_bound(problem, egress, ingress, unassigned, current_T,
                             scratch, future_min);
}

double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T, BoundScratch& scratch,
                           double future_min) {
  const data::ChunkMatrix& m = *problem.matrix;

  // Every byte of future traffic raises both total ingress and total egress;
  // water-filling packs that volume under the committed per-port loads, which
  // is never weaker than spreading it over the n-port average.
  double lb = std::max(current_T,
                       water_fill_level(ingress, future_min, scratch.levels));
  lb = std::max(lb, water_fill_level(egress, future_min, scratch.levels));

  // Exact best-case landing of the first (largest, per caller convention)
  // unassigned partition: whichever port it picks receives S_k − h_{jk}.
  if (!unassigned.empty()) {
    const std::uint32_t k = unassigned.front();
    const double sk = m.partition_total(k);
    const std::span<const double> row = m.partition_row(k);
    double best_landing = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < ingress.size(); ++j) {
      best_landing = std::min(best_landing, ingress[j] + (sk - row[j]));
    }
    lb = std::max(lb, best_landing);
  }
  return lb;
}

double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T) {
  BoundScratch scratch;
  return partial_lower_bound(problem, egress, ingress, unassigned, current_T,
                             scratch);
}

PruneStatics make_prune_statics(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();

  PruneStatics s;
  s.total.resize(p);
  s.rmin.resize(p);
  s.rsecond.resize(p);
  s.arg_max.resize(p);
  s.argmax_lists.resize(n);
  s.drain_lists.resize(n);

  for (std::size_t k = 0; k < p; ++k) {
    const std::span<const double> row = m.partition_row(k);
    double max1 = -1.0, max2 = -1.0;
    std::uint32_t arg = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] > max1) {
        max2 = max1;
        max1 = row[j];
        arg = static_cast<std::uint32_t>(j);
      } else if (row[j] > max2) {
        max2 = row[j];
      }
    }
    s.total[k] = m.partition_total(k);
    s.rmin[k] = s.total[k] - max1;
    s.rsecond[k] = s.total[k] - std::max(0.0, max2);
    s.arg_max[k] = arg;
    s.argmax_lists[arg].push_back(static_cast<std::uint32_t>(k));
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] > 0.0) {
        s.drain_lists[j].push_back(static_cast<std::uint32_t>(k));
      }
    }
  }

  for (std::size_t j = 0; j < n; ++j) {
    // Discount density (rsecond − rmin)/rmin descending, rmin == 0 first
    // (free capacity). Cross-multiplied to avoid dividing by zero.
    std::stable_sort(s.argmax_lists[j].begin(), s.argmax_lists[j].end(),
                     [&s](std::uint32_t a, std::uint32_t b) {
                       const double ga = s.rsecond[a] - s.rmin[a];
                       const double gb = s.rsecond[b] - s.rmin[b];
                       if (s.rmin[a] == 0.0 || s.rmin[b] == 0.0) {
                         return s.rmin[a] == 0.0 && (s.rmin[b] > 0.0 || ga > gb);
                       }
                       return ga * s.rmin[b] > gb * s.rmin[a];
                     });
    // Forced-ingress ratio (S_k − h)/h ascending == h/S_k descending-ish;
    // cross-multiplied: (S_a − h_a)·h_b < (S_b − h_b)·h_a.
    std::stable_sort(s.drain_lists[j].begin(), s.drain_lists[j].end(),
                     [&s, &m, j](std::uint32_t a, std::uint32_t b) {
                       const double ha = m.h(a, j);
                       const double hb = m.h(b, j);
                       return (s.total[a] - ha) * hb < (s.total[b] - hb) * ha;
                     });
  }
  return s;
}

bool infeasible_below(const AssignmentProblem& problem, const PruneStatics& s,
                      const PrunePrefix& v, double T) {
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = v.ingress.size();

  // --- Argmax concentration -----------------------------------------------
  double cap_total = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    cap_total += std::max(0.0, T - v.ingress[j]);
  }
  if (v.future_rsecond > cap_total) {
    // Cap the discount each port can hand out: partitions landing on their
    // argmax port consume rmin of its capacity and recover rsecond − rmin.
    // Fractional greedy upper-bounds the knapsack, keeping the prune valid.
    double discount = 0.0;
    for (std::size_t j = 0; j < n && v.future_rsecond - discount > cap_total;
         ++j) {
      double cap = std::max(0.0, T - v.ingress[j]);
      for (const std::uint32_t k : s.argmax_lists[j]) {
        if (v.pos[k] < v.depth) continue;  // already assigned
        const double rk = s.rmin[k];
        const double gk = s.rsecond[k] - rk;
        if (rk <= cap) {
          discount += gk;
          cap -= rk;
        } else {
          discount += gk * (cap / rk);
          break;  // capacity exhausted; later items need rk > 0 too
        }
      }
    }
    if (v.future_rsecond - discount > cap_total) return true;
  }

  // --- Egress drain --------------------------------------------------------
  for (std::size_t j = 0; j < n; ++j) {
    double need = v.egress[j] + v.future_chunks[j] - T;
    if (need <= 0.0) continue;  // port drains below T by itself
    // `need` bytes of unassigned chunks on j must land on j; take them in
    // cheapest forced-ingress order (fractional, so a valid lower bound).
    double forced = 0.0;
    bool drained = false;
    for (const std::uint32_t k : s.drain_lists[j]) {
      if (v.pos[k] < v.depth) continue;
      const double h = m.h(k, j);
      const double net = s.total[k] - h;
      if (h >= need) {
        forced += net * (need / h);
        drained = true;
        break;
      }
      need -= h;
      forced += net;
      if (v.ingress[j] + forced > T) return true;  // and more is still needed
    }
    if (!drained) return true;  // all chunks on j together cannot drain it
    if (v.ingress[j] + forced > T) return true;
  }
  return false;
}

}  // namespace ccf::opt
