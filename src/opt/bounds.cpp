#include "opt/bounds.hpp"

#include <algorithm>

namespace ccf::opt {

double min_partition_traffic(const data::ChunkMatrix& m, std::size_t k) {
  return m.partition_total(k) - m.partition_max(k);
}

double root_lower_bound(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();

  double unavoidable = 0.0;     // Σ_k minimum traffic
  double biggest_single = 0.0;  // the largest single unavoidable ingress
  for (std::size_t k = 0; k < m.partitions(); ++k) {
    const double t = min_partition_traffic(m, k);
    unavoidable += t;
    biggest_single = std::max(biggest_single, t);
  }
  double init_total = 0.0;
  double init_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    init_total += problem.initial_ingress_at(i);
    init_max = std::max(init_max, std::max(problem.initial_ingress_at(i),
                                           problem.initial_egress_at(i)));
  }
  const double spread = (unavoidable + init_total) / static_cast<double>(n);
  return std::max({spread, biggest_single, init_max});
}

double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T) {
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();

  double future_min = 0.0;
  for (const std::uint32_t k : unassigned) {
    future_min += min_partition_traffic(m, k);
  }
  double ingress_total = 0.0;
  for (const double v : ingress) ingress_total += v;
  double egress_total = 0.0;
  for (const double v : egress) egress_total += v;

  // Every byte of future traffic raises both total ingress and total egress;
  // the bottleneck port is at least the average.
  const double spread_in = (ingress_total + future_min) / static_cast<double>(n);
  const double spread_out = (egress_total + future_min) / static_cast<double>(n);
  return std::max({current_T, spread_in, spread_out});
}

}  // namespace ccf::opt
