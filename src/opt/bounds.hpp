// Lower bounds on the optimal makespan T* of an AssignmentProblem, plus the
// shared top-2 candidate-scoring kernel used by every placement search.
// The bounds prune the exact branch-and-bound search and, in benches/tests,
// sanity-check how far the heuristic can possibly be from optimal.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "opt/model.hpp"

namespace ccf::opt {

// ---------------------------------------------------------------------------
// Top-2 candidate scoring
//
// Placing partition k (total S_k, chunks h_{ik}) at destination d changes
// exactly two quantities relative to the global load maxima: node d's egress
// stays put (it does not ship its own chunk) and node d's ingress gains
// (S_k - h_{dk}). So the top-2 of (egress[i] + h_{ik}) and the top-2 of
// ingress[] decide the bottleneck of *every* candidate d in O(1), turning the
// naive O(n²) per-placement scan into O(n). This is the kernel behind the
// greedy CcfScheduler, the local-search relocation step, the GRASP
// construction, and the branch-and-bound child scoring.
// ---------------------------------------------------------------------------

/// Largest and second-largest values of a load vector (max >= second) and the
/// index of the largest. Loads are non-negative, so the -1.0 sentinels are
/// below every real entry.
struct Top2 {
  std::size_t arg_max = 0;
  double max = -1.0;
  double second = -1.0;

  void feed(std::size_t i, double v) noexcept {
    if (v > max) {
      second = max;
      max = v;
      arg_max = i;
    } else if (v > second) {
      second = v;
    }
  }
};

/// Top-2 of v.
Top2 top2(std::span<const double> v) noexcept;

/// Top-2 of base[i] + add[i] (the egress profile if partition k, with chunk
/// row `add`, landed anywhere else). Spans must have equal length.
Top2 top2_sum(std::span<const double> base, std::span<const double> add) noexcept;

/// Bottleneck load after placing a partition (total bytes `part_total`, local
/// chunk `h_kd`) at destination d, given the precomputed tops:
/// `eg` over (egress[i] + h_{ik}), `in` over ingress[], and d's own loads.
inline double placement_bottleneck(const Top2& eg, const Top2& in,
                                   double egress_d, double ingress_d,
                                   double part_total, double h_kd,
                                   std::size_t d) noexcept {
  const double egress_max = std::max(d == eg.arg_max ? eg.second : eg.max,
                                     egress_d);
  const double ingress_max = std::max(d == in.arg_max ? in.second : in.max,
                                      ingress_d + (part_total - h_kd));
  return std::max(egress_max, ingress_max);
}

// ---------------------------------------------------------------------------
// Lower bounds
// ---------------------------------------------------------------------------

/// Root lower bound on T*:
///   max( spread bound, largest unavoidable single-partition move ).
/// The spread bound: however partitions are placed, at least
/// Σ_k (S_k − max_i h_{ik}) bytes must cross the network; adding the fixed
/// initial loads and dividing by n bounds the bottleneck port from below.
double root_lower_bound(const AssignmentProblem& problem);

/// Water-filling (per-port packing) level: the smallest T such that the free
/// capacity under T across all ports absorbs `volume` bytes:
///   Σ_i max(0, T − loads[i]) >= volume.
/// Committed loads above the returned level contribute no capacity, so this
/// dominates the averaging bound (Σ loads + volume) / n, strictly whenever
/// some port already sticks out above the average. `scratch` is overwritten
/// (it avoids a per-call allocation on the branch-and-bound hot path).
double water_fill_level(std::span<const double> loads, double volume,
                        std::vector<double>& scratch);

/// Reusable buffers for partial_lower_bound on hot paths.
struct BoundScratch {
  std::vector<double> levels;
};

/// Lower bound for a partial assignment: assigned partitions contribute their
/// exact loads (already accumulated into egress/ingress by the caller);
/// unassigned ones at least their minimum possible traffic. Combines
///   * `current_T`, the bottleneck of the committed loads,
///   * water-filling of the unavoidable future volume over the committed
///     ingress and egress profiles (per-port packing), and
///   * the exact best-case landing of `unassigned.front()` — callers list
///     unassigned partitions largest-first, so the front singleton is the
///     strongest: min_j (ingress[j] + S_k − h_{jk}).
double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T, BoundScratch& scratch);

/// Hot-path overload: `future_min` is Σ min_partition_traffic over
/// `unassigned`, precomputed by the caller (the branch-and-bound keeps a
/// per-depth suffix table, turning the O(u) summation into a lookup).
double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T, BoundScratch& scratch,
                           double future_min);

/// Convenience overload allocating its own scratch (tests, one-shot callers).
double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T);

/// Minimum bytes partition k must put on the wire regardless of destination:
/// S_k − max_i h_{ik}.
double min_partition_traffic(const data::ChunkMatrix& m, std::size_t k);

// ---------------------------------------------------------------------------
// Strong infeasibility tests
//
// Two necessary conditions for "some completion of this partial assignment
// has makespan < T". Violating either proves the subtree cannot beat the
// incumbent, so the branch-and-bound prunes. Both exploit structure the
// water-fill bound ignores:
//
//  * Argmax concentration. Water-filling charges every unassigned partition
//    its best-case traffic r_k = S_k − max_i h_{ik}, as if each landed on its
//    own largest chunk. But partitions whose largest chunk sits on the same
//    port compete for that port's free capacity below T; the losers pay at
//    least r2_k = S_k − (second-largest chunk). The test caps the total
//    "argmax discount" Σ (r2_k − r_k) by a per-port fractional knapsack over
//    capacity T − ingress[j] and requires
//      Σ r2_k − discount(T)  <=  Σ_j max(0, T − ingress[j]).
//
//  * Egress drain. Port j's final egress is
//      egress[j] + Σ_{k unassigned} h_{jk} − Σ_{k → j} h_{jk}:
//    every unassigned chunk on j ships out unless its partition lands on j.
//    Keeping j's egress below T therefore forces Σ_{k→j} h_{jk} bytes of
//    chunks to land on j — and each landing adds S_k − h_{jk} to j's
//    *ingress*. The minimum forced ingress (fractional greedy by
//    (S_k − h)/h) must still fit under T. This couples the two sides of the
//    bottleneck and is the dominant pruner on skewed (hot-port) instances.
//
// Statics are built once per problem; the per-node test is allocation-free
// and O(n + candidates walked).
// ---------------------------------------------------------------------------

/// Per-problem tables for infeasible_below. Candidate lists are sorted once
/// so the hot path walks them in greedy order, skipping assigned partitions.
struct PruneStatics {
  std::vector<double> total;    ///< S_k
  std::vector<double> rmin;     ///< S_k − largest chunk
  std::vector<double> rsecond;  ///< S_k − second-largest chunk
  std::vector<std::uint32_t> arg_max;  ///< port holding k's largest chunk
  /// argmax_lists[j]: partitions with arg_max == j, by discount density
  /// (rsecond − rmin) / rmin descending (rmin == 0 first — they cost no
  /// capacity).
  std::vector<std::vector<std::uint32_t>> argmax_lists;
  /// drain_lists[j]: partitions with h_{jk} > 0, by forced-ingress ratio
  /// (S_k − h_{jk}) / h_{jk} ascending (cheapest drain first).
  std::vector<std::vector<std::uint32_t>> drain_lists;
};

PruneStatics make_prune_statics(const AssignmentProblem& problem);

/// A partial assignment along a static search order, as the branch-and-bound
/// maintains it. order[0..depth) are assigned (loads already committed into
/// egress/ingress, which include the problem's initial loads), order[depth..)
/// are not. pos[k] is k's index in `order` (assigned iff pos[k] < depth).
/// future_rsecond and future_chunks summarize the unassigned suffix:
/// Σ rsecond[k] and the per-port Σ h_{jk} (suffix tables in the solver).
struct PrunePrefix {
  std::span<const double> egress;
  std::span<const double> ingress;
  std::span<const std::uint32_t> order;
  std::size_t depth = 0;
  std::span<const std::size_t> pos;
  double future_rsecond = 0.0;
  std::span<const double> future_chunks;
};

/// True if provably NO completion of the prefix has makespan < T. Both tests
/// are relaxations (fractional knapsacks), so `false` says nothing — but
/// `true` is safe to prune on.
bool infeasible_below(const AssignmentProblem& problem, const PruneStatics& s,
                      const PrunePrefix& v, double T);

}  // namespace ccf::opt
