// Lower bounds on the optimal makespan T* of an AssignmentProblem.
// Used to prune the exact branch-and-bound search and, in benches/tests, to
// sanity-check how far the heuristic can possibly be from optimal.
#pragma once

#include <cstdint>
#include <span>

#include "opt/model.hpp"

namespace ccf::opt {

/// Root lower bound on T*:
///   max( spread bound, largest unavoidable single-partition move ).
/// The spread bound: however partitions are placed, at least
/// Σ_k (S_k − max_i h_{ik}) bytes must cross the network; adding the fixed
/// initial loads and dividing by n bounds the bottleneck port from below.
double root_lower_bound(const AssignmentProblem& problem);

/// Lower bound for a partial assignment: partitions `assigned[k] == true`
/// contribute their exact loads (already accumulated into egress/ingress by
/// the caller); unassigned ones at least their minimum possible traffic.
/// `current_T` is the bottleneck of the partial loads.
double partial_lower_bound(const AssignmentProblem& problem,
                           std::span<const double> egress,
                           std::span<const double> ingress,
                           std::span<const std::uint32_t> unassigned,
                           double current_T);

/// Minimum bytes partition k must put on the wire regardless of destination:
/// S_k − max_i h_{ik}.
double min_partition_traffic(const data::ChunkMatrix& m, std::size_t k);

}  // namespace ccf::opt
