// core::Service — the always-on sharded scheduling service (DESIGN.md §11).
//
// The Engine is a session: callers submit, then drain, on their own cadence.
// The Service productionizes that loop. N Engine shards sit behind a bounded
// lock-free MPMC submission queue each; one driver thread per shard
// accumulates submissions into drain batches and triggers an epoch when the
// batch-size or deadline policy fires. Clients only ever touch submit() — a
// ticket comes back immediately, and the epoch's results arrive on the
// on_epoch callback (driver thread) once the shard drains.
//
//   Service service({.engine = {.nodes = 16, .allocator = "ccf"},
//                    .shards = 2},
//                   [](const ShardEpoch& e) { /* results */ });
//   auto r = service.submit(/*tenant=*/0, QuerySpec("q", workload));
//   service.flush();   // block until everything accepted has drained
//
// Admission control: every submission names a tenant. A tenant carries an
// optional token-bucket rate limit (rate_qps / burst; 0 = unlimited) applied
// at submit() — overload is rejected at the door with kThrottled instead of
// growing an unbounded backlog — and a weight consumed by the per-shard
// smooth weighted-round-robin that forms drain batches, so a heavy tenant
// cannot starve a light one inside a shard no matter the arrival order.
//
// Determinism (pinned by tests/core/service_test.cpp): a batch's composition
// depends on arrival interleaving across threads, but its *results* do not —
// each ShardEpoch records exactly which submissions it drained, in order, and
// replaying those QuerySpecs through a fresh serial Engine reproduces the
// epoch's RunReports bit-for-bit. The Service adds routing and batching, not
// new numerics.
//
// Cross-epoch reuse is inherited from the Engine (persistent simulator +
// allocator + arena, plan cache): steady-state epochs on a shard allocate
// nothing and skip placement entirely for prepared workloads, which is where
// the service's throughput (see bench/bench_service_load.cpp) comes from.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "util/mpmc.hpp"

namespace ccf::core {

/// One admission-controlled client of the service.
struct TenantSpec {
  static constexpr std::size_t kAutoShard = static_cast<std::size_t>(-1);

  std::string name = "tenant";
  /// Smooth-WRR share inside the tenant's shard (relative to its peers).
  double weight = 1.0;
  /// Token-bucket refill rate in queries/second; 0 disables rate limiting.
  double rate_qps = 0.0;
  /// Token-bucket depth (burst tolerance). Ignored when rate_qps == 0.
  double burst = 64.0;
  /// Pinned shard, or kAutoShard to assign round-robin by tenant index.
  std::size_t shard = kAutoShard;
};

struct ServiceOptions {
  /// Per-shard Engine configuration (every shard gets an identical copy, so
  /// the tenant -> shard map alone decides which fabric a query lands on).
  EngineOptions engine;
  std::size_t shards = 1;
  /// Drain policy: an epoch fires when max_batch submissions are staged, or
  /// when the oldest staged submission has waited max_wait, whichever comes
  /// first. Small batches bound both latency and the superlinear per-epoch
  /// simulation cost (the event count grows with coflows in flight).
  std::size_t max_batch = 2;
  std::chrono::microseconds max_wait{200};
  /// Per-shard submission ring capacity (rounded up to a power of two).
  /// submit() returns kQueueFull instead of blocking when a ring is full.
  std::size_t queue_capacity = 4096;
  /// The service's tenants. Empty = one unlimited tenant "default".
  std::vector<TenantSpec> tenants;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,
  kThrottled,      ///< tenant token bucket empty
  kQueueFull,      ///< shard submission ring full (backpressure)
  kInvalid,        ///< spec failed validation (see Engine::submit's rules)
  kUnknownTenant,  ///< tenant index out of range
  kStopped,        ///< service already stopped
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kInvalid;
  std::uint64_t ticket = 0;  ///< valid iff status == kAccepted
  bool accepted() const noexcept { return status == SubmitStatus::kAccepted; }
};

/// One drained submission inside a ShardEpoch. `spec` is the submission
/// verbatim (the workload shared_ptr included), so an epoch record is
/// sufficient to replay the batch through a fresh Engine.
struct ServiceQuery {
  std::uint64_t ticket = 0;
  std::size_t tenant = 0;
  QuerySpec spec;
  std::chrono::steady_clock::time_point submitted;
};

/// One drain epoch of one shard, delivered to the on_epoch callback on that
/// shard's driver thread. queries[i] produced report.queries[i]. Callbacks
/// for different shards run concurrently; the handler must tolerate that.
/// The reference is only valid during the callback.
struct ShardEpoch {
  std::size_t shard = 0;
  std::uint64_t seq = 0;  ///< per-shard epoch counter, from 0
  std::vector<ServiceQuery> queries;
  EngineReport report;
};

/// Monotonic service-wide counters (all submissions ever, any shard).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< submit() calls, any outcome
  std::uint64_t accepted = 0;
  std::uint64_t throttled = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t invalid = 0;
  std::uint64_t completed = 0;  ///< accepted submissions drained
  std::uint64_t epochs = 0;
};

class Service {
 public:
  using EpochCallback = std::function<void(const ShardEpoch&)>;

  /// Validates the options (shards > 0, tenant shard pins in range, Engine
  /// options via Engine's own constructor; throws std::invalid_argument),
  /// builds the shards and starts one driver thread per shard.
  explicit Service(ServiceOptions options, EpochCallback on_epoch = {});

  /// Stops the drivers (without draining the backlog — call flush() first
  /// for a graceful shutdown) and joins them.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Non-blocking submission: validate, charge the tenant's token bucket,
  /// push onto the tenant's shard ring, wake the driver. Thread-safe from
  /// any number of client threads. On anything but kAccepted the service
  /// state is untouched except the corresponding rejection counter.
  SubmitResult submit(std::size_t tenant, QuerySpec spec);

  /// Sparse submission: the n²-free ingestion path (see QuerySpec::sparse).
  /// The spec is validated against the shard fabric at the door
  /// (core::sparse_spec_valid) and carried verbatim into the ShardEpoch
  /// record, so sparse epochs replay through a fresh Engine exactly like
  /// workload epochs. This is what lets a 10k-rack epoch run behind the
  /// service: nothing on the path allocates O(nodes²).
  SubmitResult submit(std::size_t tenant, net::SparseCoflowSpec spec);

  /// Block until every submission accepted so far has been drained and its
  /// epoch callback has returned. Concurrent submitters extend the wait.
  void flush();

  /// Stop accepting (submit -> kStopped), stop the drivers after their
  /// current epoch, join. Idempotent; the destructor calls it.
  void stop();

  ServiceStats stats() const;

  std::size_t shards() const noexcept { return shards_.size(); }
  std::size_t tenants() const noexcept { return tenants_.size(); }
  /// Which shard the tenant's submissions land on (fixed at construction).
  std::size_t tenant_shard(std::size_t tenant) const;
  /// The shard's Engine, for post-hoc inspection (Engine::stats() is
  /// internally locked, so this is safe while the service runs).
  const Engine& shard_engine(std::size_t shard) const;

 private:
  struct Submission {
    std::uint64_t ticket = 0;
    std::uint32_t tenant = 0;
    QuerySpec spec;
    std::chrono::steady_clock::time_point submitted;
  };

  struct TenantState {
    TenantSpec spec;
    std::size_t shard = 0;
    /// Token bucket (guarded by `mutex`; uncontended unless one tenant is
    /// shared by many client threads). Unused when spec.rate_qps == 0.
    std::mutex mutex;
    double tokens = 0.0;
    std::chrono::steady_clock::time_point refilled;
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity, EngineOptions engine_options)
        : queue(queue_capacity), engine(std::move(engine_options)) {}

    util::MpmcQueue<Submission> queue;
    Engine engine;
    /// Driver wake-up: producers notify after a push; the driver waits here
    /// when both the ring and its staging are empty.
    std::mutex wake_mutex;
    std::condition_variable wake_cv;

    // --- driver-thread-private state (no locking) ------------------------
    /// Per-tenant FIFO staging between the ring and the drain batch, indexed
    /// by tenant id (only this shard's tenants ever have entries).
    std::vector<std::deque<Submission>> staged;
    std::vector<double> wrr_credit;  ///< smooth-WRR accumulators, per tenant
    std::size_t staged_count = 0;
    std::uint64_t seq = 0;
    ShardEpoch epoch;        ///< reused across epochs (buffer reuse)
    std::vector<Submission> incoming;  ///< pop_batch scratch
    std::thread driver;
  };

  void pump(Shard& shard);
  bool admit(TenantState& tenant);
  /// Move up to max_batch staged submissions into shard.epoch.queries by
  /// smooth WRR over the tenants with staged work.
  void form_batch(Shard& shard);

  ServiceOptions options_;
  EpochCallback on_epoch_;
  std::vector<std::unique_ptr<TenantState>> tenants_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<bool> stopped_{false};

  /// flush() rendezvous: counts are monotone, so the predicate
  /// completed == accepted means "momentarily idle".
  mutable std::mutex flush_mutex;
  std::condition_variable flush_cv;

  // Stats counters (atomics: bumped on hot paths from many threads).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::atomic<std::uint64_t> queue_full_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> epochs_{0};
};

}  // namespace ccf::core
