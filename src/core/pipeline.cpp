#include "core/pipeline.hpp"

#include <memory>
#include <string>
#include <utility>

#include "core/engine.hpp"
#include "core/registry.hpp"

namespace ccf::core {

PipelineOptions PipelineOptions::paper_system(const std::string& scheduler_name) {
  PipelineOptions o;
  o.scheduler = scheduler_name;
  // §IV-A: the skew-handling method is integrated into Mini and CCF; Hash is
  // the plain hash-based baseline.
  o.skew_handling = scheduler_name != "hash";
  o.allocator = "madd";
  return o;
}

RunReport run_pipeline(const data::Workload& workload,
                       const PipelineOptions& options) {
  // A one-query Engine session: the Engine's single-query epoch runs the
  // identical stage graph on an identical single-coflow simulation, so this
  // wrapper is bit-equivalent to the historical hand-wired pipeline (pinned
  // by tests/core/engine_test.cpp).
  EngineOptions eopts;
  eopts.nodes = workload.matrix.nodes();
  eopts.port_rate = options.port_rate;
  eopts.allocator = options.allocator;
  eopts.simulate = options.simulate;
  eopts.faults = options.faults;
  eopts.fault_options = options.fault_options;
  eopts.topology = options.topology;
  eopts.routing = options.routing;
  eopts.placement_threads = 1;  // one query: nothing to fan out
  Engine engine(std::move(eopts));

  QuerySpec query;
  query.name = options.scheduler;  // the coflow carries the system name
  // Non-owning view: the engine lives and drains inside this call.
  query.workload = std::shared_ptr<const data::Workload>(
      std::shared_ptr<const data::Workload>{}, &workload);
  query.scheduler = options.scheduler;
  query.skew_handling = options.skew_handling;
  engine.submit(std::move(query));

  EngineReport epoch = engine.drain();
  RunReport report = std::move(epoch.queries.front());
  report.sim = std::move(epoch.sim);
  return report;
}

}  // namespace ccf::core
