#include "core/pipeline.hpp"

#include <chrono>

#include "core/skew_handling.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"

namespace ccf::core {

PipelineOptions PipelineOptions::paper_system(const std::string& scheduler_name) {
  PipelineOptions o;
  o.scheduler = scheduler_name;
  // §IV-A: the skew-handling method is integrated into Mini and CCF; Hash is
  // the plain hash-based baseline.
  o.skew_handling = scheduler_name != "hash";
  o.allocator = net::AllocatorKind::kMadd;
  return o;
}

RunReport run_pipeline(const data::Workload& workload,
                       const PipelineOptions& options) {
  using Clock = std::chrono::steady_clock;

  // 1. Skew pre-pass (partial duplication) where enabled.
  const PreparedInput prepared =
      apply_partial_duplication(workload, options.skew_handling);
  const opt::AssignmentProblem problem = prepared.problem();

  // 2. Application-level placement.
  const auto scheduler = join::make_scheduler(options.scheduler);
  const auto t0 = Clock::now();
  const opt::Assignment dest = scheduler->schedule(problem);
  const auto t1 = Clock::now();

  // 3. Flows for the coflow (placement moves + skew broadcasts).
  net::FlowMatrix flows =
      join::assignment_flows(prepared.residual, dest, prepared.initial_flows);

  RunReport report;
  report.scheduler = options.scheduler;
  report.skew_handled = prepared.skew_handled;
  report.schedule_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  report.traffic_bytes = flows.traffic();
  report.flow_count = flows.flow_count();

  const net::Fabric fabric(workload.matrix.nodes(), options.port_rate);
  const net::PortLoads loads = net::port_loads(flows);
  report.makespan_bytes = loads.bottleneck();
  report.gamma_seconds = net::gamma_bound(loads, fabric);

  // 4. Network-level execution.
  if (options.simulate) {
    net::Simulator sim(fabric, net::make_allocator(options.allocator));
    if (!options.faults.empty()) {
      sim.set_faults(options.faults, options.fault_options);
    }
    sim.add_coflow(net::CoflowSpec(options.scheduler, 0.0, std::move(flows)));
    report.sim = sim.run();
    report.cct_seconds = report.sim.coflows.front().cct();
  } else {
    report.cct_seconds = report.gamma_seconds;
  }
  return report;
}

}  // namespace ccf::core
