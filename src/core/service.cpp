#include "core/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/registry.hpp"

namespace ccf::core {

namespace {
using Clock = std::chrono::steady_clock;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}
}  // namespace

Service::Service(ServiceOptions options, EpochCallback on_epoch)
    : options_(std::move(options)), on_epoch_(std::move(on_epoch)) {
  if (options_.shards == 0) {
    throw std::invalid_argument("Service: shards must be > 0");
  }
  if (options_.max_batch == 0) {
    throw std::invalid_argument("Service: max_batch must be > 0");
  }
  if (options_.tenants.empty()) {
    TenantSpec fallback;
    fallback.name = "default";
    options_.tenants.push_back(std::move(fallback));
  }

  const Clock::time_point now = Clock::now();
  tenants_.reserve(options_.tenants.size());
  for (std::size_t i = 0; i < options_.tenants.size(); ++i) {
    const TenantSpec& spec = options_.tenants[i];
    if (!(spec.weight > 0.0)) {
      throw std::invalid_argument("Service: tenant \"" + spec.name +
                                  "\" must have weight > 0");
    }
    if (spec.rate_qps < 0.0 || (spec.rate_qps > 0.0 && !(spec.burst >= 1.0))) {
      throw std::invalid_argument("Service: tenant \"" + spec.name +
                                  "\" has an invalid token bucket");
    }
    if (spec.shard != TenantSpec::kAutoShard && spec.shard >= options_.shards) {
      throw std::invalid_argument("Service: tenant \"" + spec.name +
                                  "\" is pinned to a nonexistent shard");
    }
    auto state = std::make_unique<TenantState>();
    state->spec = spec;
    state->shard =
        spec.shard == TenantSpec::kAutoShard ? i % options_.shards : spec.shard;
    state->tokens = spec.burst;  // start full: bursts admit immediately
    state->refilled = now;
    tenants_.push_back(std::move(state));
  }

  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    auto shard =
        std::make_unique<Shard>(options_.queue_capacity, options_.engine);
    shard->staged.resize(tenants_.size());
    shard->wrr_credit.assign(tenants_.size(), 0.0);
    shard->epoch.shard = s;
    shards_.push_back(std::move(shard));
  }
  // Topology sessions may leave engine.nodes at 0 (derived from the spec);
  // pick the resolved width up from the first shard so submit()'s validation
  // checks against the real fabric.
  options_.engine.nodes = shards_.front()->engine.fabric().nodes();
  // Drivers start only after every shard exists (pump touches nothing but
  // its own shard, but the vector must be fully built before any reads).
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->driver = std::thread([this, raw] { pump(*raw); });
  }
}

Service::~Service() { stop(); }

bool Service::admit(TenantState& tenant) {
  if (tenant.spec.rate_qps <= 0.0) return true;
  const Clock::time_point now = Clock::now();
  const std::scoped_lock lock(tenant.mutex);
  tenant.tokens =
      std::min(tenant.spec.burst,
               tenant.tokens +
                   tenant.spec.rate_qps * seconds_between(tenant.refilled, now));
  tenant.refilled = now;
  if (tenant.tokens < 1.0) return false;
  tenant.tokens -= 1.0;
  return true;
}

SubmitResult Service::submit(std::size_t tenant, QuerySpec spec) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (stopped_.load(std::memory_order_acquire)) {
    return {SubmitStatus::kStopped, 0};
  }
  if (tenant >= tenants_.size()) {
    return {SubmitStatus::kUnknownTenant, 0};
  }
  // Validate here, against the same rules Engine::submit enforces, so the
  // driver thread can never throw: a bad spec is an error code at the door,
  // not an exception N microseconds later on another thread. Sparse
  // submissions validate their flow list; workload submissions validate the
  // placement inputs.
  const bool valid =
      spec.sparse
          ? sparse_spec_valid(*spec.sparse, options_.engine.nodes)
          : (spec.workload &&
             spec.workload->matrix.nodes() == options_.engine.nodes &&
             spec.arrival >= 0.0 && std::isfinite(spec.weight) &&
             spec.weight >= 0.0 && registry::has_scheduler(spec.scheduler));
  if (!valid) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kInvalid, 0};
  }
  TenantState& state = *tenants_[tenant];
  if (!admit(state)) {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kThrottled, 0};
  }

  Shard& shard = *shards_[state.shard];
  Submission submission;
  submission.ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed);
  submission.tenant = static_cast<std::uint32_t>(tenant);
  submission.spec = std::move(spec);
  submission.submitted = Clock::now();
  const std::uint64_t ticket = submission.ticket;
  if (!shard.queue.try_push(std::move(submission))) {
    // Refund the admission token: backpressure should not also charge the
    // bucket, or a full ring would starve the tenant twice over.
    if (state.spec.rate_qps > 0.0) {
      const std::scoped_lock lock(state.mutex);
      state.tokens = std::min(state.spec.burst, state.tokens + 1.0);
    }
    queue_full_.fetch_add(1, std::memory_order_relaxed);
    return {SubmitStatus::kQueueFull, 0};
  }
  accepted_.fetch_add(1, std::memory_order_release);
  // Plain notify (no lock): a racing driver that just re-checked its empty
  // ring sleeps at most max_wait before its timed wait re-polls, so a missed
  // wakeup costs bounded latency, never progress — and the submit hot path
  // stays lock-free.
  shard.wake_cv.notify_one();
  return {SubmitStatus::kAccepted, ticket};
}

SubmitResult Service::submit(std::size_t tenant, net::SparseCoflowSpec spec) {
  QuerySpec query;
  query.sparse = std::make_shared<const net::SparseCoflowSpec>(std::move(spec));
  return submit(tenant, std::move(query));
}

void Service::form_batch(Shard& shard) {
  shard.epoch.queries.clear();
  const std::size_t take = std::min(shard.staged_count, options_.max_batch);
  for (std::size_t k = 0; k < take; ++k) {
    // Smooth WRR over the tenants with staged work: every pick tops each
    // active tenant's credit up by its weight and charges the winner the
    // active total, so interleaving converges to the weight ratios while
    // staying perfectly deterministic (ties break toward the lower tenant
    // id). Per-tenant staging is FIFO, so a tenant's own submissions are
    // never reordered.
    double active_weight = 0.0;
    std::size_t best = kNone;
    for (std::size_t t = 0; t < shard.staged.size(); ++t) {
      if (shard.staged[t].empty()) continue;
      const double weight = tenants_[t]->spec.weight;
      shard.wrr_credit[t] += weight;
      active_weight += weight;
      if (best == kNone || shard.wrr_credit[t] > shard.wrr_credit[best]) {
        best = t;
      }
    }
    shard.wrr_credit[best] -= active_weight;

    Submission& picked = shard.staged[best].front();
    ServiceQuery query;
    query.ticket = picked.ticket;
    query.tenant = best;
    query.spec = std::move(picked.spec);
    query.submitted = picked.submitted;
    shard.epoch.queries.push_back(std::move(query));
    shard.staged[best].pop_front();
    --shard.staged_count;
  }
}

void Service::pump(Shard& shard) {
  const auto stage_incoming = [&](Clock::time_point& oldest) {
    for (Submission& s : shard.incoming) {
      if (shard.staged_count == 0) oldest = s.submitted;
      shard.staged[s.tenant].push_back(std::move(s));
      ++shard.staged_count;
    }
    shard.incoming.clear();
  };

  // Staging is bounded to a few drain batches: the fairness window smooth
  // WRR reorders across tenants. Anything beyond it stays in the ring, so
  // the ring capacity — not an unbounded deque — is what bounds queueing
  // delay and pushes kQueueFull back at submitters under overload.
  const std::size_t window = 4 * options_.max_batch;
  Clock::time_point oldest_staged{};
  while (!stopped_.load(std::memory_order_acquire)) {
    if (shard.staged_count < window) {
      shard.queue.pop_batch(shard.incoming, window - shard.staged_count);
      stage_incoming(oldest_staged);
    }

    if (shard.staged_count == 0) {
      std::unique_lock lock(shard.wake_mutex);
      shard.wake_cv.wait_for(lock, options_.max_wait, [&] {
        return shard.queue.size_approx() > 0 ||
               stopped_.load(std::memory_order_acquire);
      });
      continue;
    }

    // Batch accumulation: top up until the batch is full or the oldest
    // staged submission has waited out the deadline.
    const Clock::time_point deadline = oldest_staged + options_.max_wait;
    while (shard.staged_count < options_.max_batch &&
           !stopped_.load(std::memory_order_acquire)) {
      if (shard.queue.pop_batch(shard.incoming,
                                options_.max_batch - shard.staged_count) > 0) {
        stage_incoming(oldest_staged);
        continue;
      }
      const Clock::time_point now = Clock::now();
      if (now >= deadline) break;
      std::unique_lock lock(shard.wake_mutex);
      shard.wake_cv.wait_for(
          lock,
          std::min<Clock::duration>(deadline - now,
                                    std::chrono::microseconds(50)),
          [&] {
            return shard.queue.size_approx() > 0 ||
                   stopped_.load(std::memory_order_acquire);
          });
    }

    form_batch(shard);
    // The epoch record keeps each spec verbatim (workload pointer included);
    // the Engine gets its own copy. That pair is what the replay determinism
    // test drives: re-submitting epoch.queries[i].spec through a fresh
    // serial Engine must reproduce epoch.report bit-for-bit.
    for (const ServiceQuery& query : shard.epoch.queries) {
      shard.engine.submit(query.spec);
    }
    shard.engine.drain_into(shard.epoch.report);
    shard.epoch.seq = shard.seq++;
    epochs_.fetch_add(1, std::memory_order_relaxed);
    if (on_epoch_) on_epoch_(shard.epoch);
    completed_.fetch_add(shard.epoch.queries.size(),
                         std::memory_order_release);
    {
      // Empty critical section: serialize with a flusher between its
      // predicate check and its wait, so the notify cannot fall in the gap.
      const std::scoped_lock lock(flush_mutex);
    }
    flush_cv.notify_all();
  }
}

void Service::flush() {
  std::unique_lock lock(flush_mutex);
  flush_cv.wait(lock, [&] {
    return stopped_.load(std::memory_order_acquire) ||
           completed_.load(std::memory_order_acquire) >=
               accepted_.load(std::memory_order_acquire);
  });
}

void Service::stop() {
  stopped_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      const std::scoped_lock lock(shard->wake_mutex);
    }
    shard->wake_cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->driver.joinable()) shard->driver.join();
  }
  {
    const std::scoped_lock lock(flush_mutex);
  }
  flush_cv.notify_all();
}

ServiceStats Service::stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.throttled = throttled_.load(std::memory_order_relaxed);
  stats.queue_full = queue_full_.load(std::memory_order_relaxed);
  stats.invalid = invalid_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.epochs = epochs_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t Service::tenant_shard(std::size_t tenant) const {
  if (tenant >= tenants_.size()) {
    throw std::out_of_range("Service::tenant_shard: no such tenant");
  }
  return tenants_[tenant]->shard;
}

const Engine& Service::shard_engine(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("Service::shard_engine: no such shard");
  }
  return shards_[shard]->engine;
}

}  // namespace ccf::core
