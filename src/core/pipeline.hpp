// The CCF pipeline (Fig. 3): workload -> (skew pre-pass) -> application-level
// placement -> flow matrix -> coflow -> network simulation -> report.
// This is the top-level API the examples and every figure bench drive.
#pragma once

#include <string>

#include "data/workload.hpp"
#include "net/allocator.hpp"
#include "net/fabric.hpp"
#include "net/simulator.hpp"

namespace ccf::core {

struct PipelineOptions {
  /// Placement scheduler: "hash" | "mini" | "ccf" | "ccf-ls" | "exact" |
  /// "random" (join::make_scheduler names).
  std::string scheduler = "ccf";
  /// Apply partial duplication before scheduling. The paper enables it for
  /// Mini and CCF but not for Hash (§IV-A).
  bool skew_handling = true;
  /// Network-level coflow scheduler (registry name: the classic policies
  /// "fair" | "madd" | "varys" | "aalo" | "varys-edf" or an ordering
  /// scheduler "sincronia" | "lp-order"); the paper's experiments use the
  /// optimal single-coflow schedule, i.e. MADD.
  std::string allocator = "madd";
  /// Port bandwidth in bytes/second.
  double port_rate = net::Fabric::kDefaultPortRate;
  /// If false, skip the event simulation and report the analytic Γ as the
  /// CCT (exact for MADD; used by large sweeps for speed).
  bool simulate = true;
  /// Fault schedule injected into the simulation (ignored when empty or when
  /// simulate is false; the analytic Γ knows nothing about faults).
  net::FaultSchedule faults;
  /// Re-placement policy for the injected faults.
  net::FaultOptions fault_options;
  /// Topology spec (net::TopologySpec::parse grammar); empty = the paper's
  /// flat non-blocking fabric. Must describe exactly the workload's node
  /// count. The simulation then runs on the routed topology.
  std::string topology;
  /// Route-selection policy on the topology: "ecmp" | "greedy" | "joint".
  std::string routing = "ecmp";

  /// The paper's configuration for one of the three compared systems:
  /// "hash" (no skew handling), "mini"/"ccf" (with skew handling); all on
  /// the optimal coflow schedule.
  static PipelineOptions paper_system(const std::string& scheduler_name);
};

/// Everything the paper reports for one (workload, system) run.
struct RunReport {
  std::string scheduler;
  double traffic_bytes = 0.0;     ///< Fig. 5(a)/6(a)/7(a): network traffic
  double cct_seconds = 0.0;       ///< Fig. 5(b)/6(b)/7(b): communication time
  double gamma_seconds = 0.0;     ///< analytic single-coflow bound
  double makespan_bytes = 0.0;    ///< the model's T (bottleneck port bytes)
  double schedule_seconds = 0.0;  ///< placement-scheduler wall time
  std::size_t flow_count = 0;
  bool skew_handled = false;
  net::SimReport sim;             ///< populated when options.simulate
};

/// Run one operator (one distributed join) through the full pipeline.
RunReport run_pipeline(const data::Workload& workload,
                       const PipelineOptions& options);

}  // namespace ccf::core
