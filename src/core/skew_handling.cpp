#include "core/skew_handling.hpp"

#include <algorithm>
#include <stdexcept>

namespace ccf::core {

opt::AssignmentProblem PreparedInput::problem() const {
  opt::AssignmentProblem p;
  p.matrix = &residual;
  p.initial_egress = initial_egress;
  p.initial_ingress = initial_ingress;
  return p;
}

PreparedInput apply_partial_duplication(const data::Workload& workload,
                                        bool enable) {
  const std::size_t n = workload.matrix.nodes();
  PreparedInput out{workload.matrix, net::FlowMatrix(n),
                    std::vector<double>(n, 0.0), std::vector<double>(n, 0.0),
                    0.0, 0.0, false};
  const data::SkewInfo& skew = workload.skew;
  if (!enable || !skew.present) return out;

  if (skew.skewed_bytes_per_node.size() != n) {
    throw std::invalid_argument("apply_partial_duplication: skew size mismatch");
  }
  const std::size_t hot = skew.hot_partition;

  // Pin the skewed probe-side bytes: remove them from the hot partition's
  // chunks — they stay where they are and cost nothing.
  for (std::size_t i = 0; i < n; ++i) {
    const double pinned =
        std::min(skew.skewed_bytes_per_node[i], out.residual.h(hot, i));
    out.residual.add(hot, i, -pinned);
    out.pinned_local_bytes += pinned;
  }

  // Broadcast the build-side hot tuples from their holder to everyone else.
  const std::size_t src = skew.broadcast_source;
  if (src >= n) {
    throw std::invalid_argument("apply_partial_duplication: bad broadcast source");
  }
  if (skew.broadcast_bytes > 0.0) {
    // The broadcast tuples leave the normal redistribution path.
    const double removed =
        std::min(skew.broadcast_bytes, out.residual.h(hot, src));
    out.residual.add(hot, src, -removed);
    out.broadcast_removed_bytes = removed;
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      out.initial_flows.add(src, dst, skew.broadcast_bytes);
      out.initial_egress[src] += skew.broadcast_bytes;
      out.initial_ingress[dst] += skew.broadcast_bytes;
    }
  }
  out.skew_handled = true;
  return out;
}

}  // namespace ccf::core
