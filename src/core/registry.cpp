#include "core/registry.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "sched/ordering.hpp"

namespace ccf::core::registry {
namespace {

// Canonical orders. These must track join::make_scheduler and
// net::make_allocator; registry_test resolves every listed name through the
// layer factories so a drifting entry fails loudly.
constexpr std::array<std::string_view, 7> kSchedulers = {
    "hash", "mini", "ccf", "ccf-ls", "ccf-portfolio", "exact", "random"};

struct AllocatorEntry {
  std::string_view name;
  net::AllocatorKind kind;
};
constexpr std::array<AllocatorEntry, 5> kAllocators = {{
    {"fair", net::AllocatorKind::kFairSharing},
    {"madd", net::AllocatorKind::kMadd},
    {"varys", net::AllocatorKind::kVarys},
    {"aalo", net::AllocatorKind::kAalo},
    {"varys-edf", net::AllocatorKind::kVarysDeadline},
}};

// The full allocator surface: the classic net-layer policies above plus the
// ordering schedulers (sched/ordering.hpp), which live a layer up and have
// no AllocatorKind — make_allocator dispatches on the name. Must track
// sched::ordering_names().
constexpr std::array<std::string_view, 7> kAllocatorNames = {
    kAllocators[0].name, kAllocators[1].name, kAllocators[2].name,
    kAllocators[3].name, kAllocators[4].name, "sincronia", "lp-order"};

// Must track net::make_routing_policy; registry_test resolves every name.
constexpr std::array<std::string_view, 3> kRoutings = {"ecmp", "greedy",
                                                       "joint"};

std::string join_names(std::span<const std::string_view> names) {
  std::string out;
  for (const std::string_view name : names) {
    if (!out.empty()) out += " | ";
    out += name;
  }
  return out;
}

}  // namespace

std::span<const std::string_view> scheduler_names() { return kSchedulers; }

std::span<const std::string_view> allocator_names() { return kAllocatorNames; }

std::span<const std::string_view> routing_names() { return kRoutings; }

std::string scheduler_name_list() { return join_names(kSchedulers); }

std::string allocator_name_list() { return join_names(kAllocatorNames); }

std::string routing_name_list() { return join_names(kRoutings); }

bool has_scheduler(std::string_view name) {
  return std::ranges::find(kSchedulers, name) != kSchedulers.end();
}

bool has_allocator(std::string_view name) {
  return std::ranges::find(kAllocatorNames, name) != kAllocatorNames.end();
}

bool has_routing(std::string_view name) {
  return std::ranges::find(kRoutings, name) != kRoutings.end();
}

std::unique_ptr<join::PartitionScheduler> make_scheduler(
    const std::string& name) {
  return join::make_scheduler(name);
}

std::unique_ptr<net::RateAllocator> make_allocator(const std::string& name) {
  if (sched::has_ordering(name)) return sched::make_ordered_allocator(name);
  return net::make_allocator(name);
}

std::unique_ptr<net::RoutingPolicy> make_routing(const std::string& name) {
  return net::make_routing_policy(name);
}

net::AllocatorKind allocator_kind(const std::string& name) {
  for (const AllocatorEntry& e : kAllocators) {
    if (e.name == name) return e.kind;
  }
  throw std::invalid_argument("registry: unknown allocator: " + name);
}

std::string_view allocator_name(net::AllocatorKind kind) {
  for (const AllocatorEntry& e : kAllocators) {
    if (e.kind == kind) return e.name;
  }
  throw std::invalid_argument("registry: unknown allocator kind");
}

}  // namespace ccf::core::registry
