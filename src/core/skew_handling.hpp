// Partial duplication skew handling (paper §III-C, after Xu et al. SIGMOD'08).
//
// Idea: the (large) set of probe-side tuples carrying a hot key is kept
// local and never transferred; instead, the (tiny) set of matching
// build-side tuples is broadcast to all other nodes. The broadcast flows
// v0_{ij} become the *initial status* of the coflow and the initial loads of
// the optimization model (constraint (1.2') in the paper), and the chunk
// matrix handed to the placement scheduler is the residual h' without the
// pinned hot bytes.
#pragma once

#include "data/workload.hpp"
#include "net/flow.hpp"
#include "opt/model.hpp"

namespace ccf::core {

/// Scheduler-ready input after the (optional) skew pre-pass.
struct PreparedInput {
  data::ChunkMatrix residual;     ///< h': matrix the scheduler optimizes
  net::FlowMatrix initial_flows;  ///< v0: broadcast flows seeding the coflow
  std::vector<double> initial_egress;   ///< per-node bytes of v0 leaving
  std::vector<double> initial_ingress;  ///< per-node bytes of v0 entering
  double pinned_local_bytes = 0.0;  ///< skewed probe bytes kept local (free)
  /// Build-side bytes actually removed from the residual matrix in favor of
  /// the broadcast (clamped by what the source chunk held), so that
  /// original_total == residual_total + pinned_local_bytes + this.
  double broadcast_removed_bytes = 0.0;
  bool skew_handled = false;

  /// View as the optimization problem of model (3) + skew extension.
  /// The returned problem references `residual`; keep *this alive.
  opt::AssignmentProblem problem() const;
};

/// Apply partial duplication if `enable` and the workload has skew;
/// otherwise pass the workload through unchanged (Hash's configuration).
PreparedInput apply_partial_duplication(const data::Workload& workload,
                                        bool enable);

}  // namespace ccf::core
