#include "core/concurrent.hpp"

#include <stdexcept>

#include "core/skew_handling.hpp"
#include "net/metrics.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"

namespace ccf::core {

ConcurrentReport run_concurrent_operators(
    const std::vector<OperatorSpec>& operators, const JobOptions& options) {
  if (operators.empty()) {
    throw std::invalid_argument("run_concurrent_operators: no operators");
  }
  const std::size_t n = operators.front().workload.nodes;
  for (const OperatorSpec& op : operators) {
    if (op.workload.nodes != n) {
      throw std::invalid_argument(
          "run_concurrent_operators: operators span different clusters");
    }
  }

  // Prepare every operator once (skew pre-pass shared by both plans).
  std::vector<PreparedInput> prepared;
  prepared.reserve(operators.size());
  std::size_t total_partitions = 0;
  for (const OperatorSpec& op : operators) {
    const data::Workload workload = data::generate_workload(op.workload);
    prepared.push_back(
        apply_partial_duplication(workload, options.skew_handling));
    total_partitions += prepared.back().residual.partitions();
  }

  const auto scheduler = join::make_scheduler(options.scheduler);

  // Plan A: each operator placed in isolation.
  std::vector<opt::Assignment> independent_dest;
  for (const PreparedInput& in : prepared) {
    const opt::AssignmentProblem problem = in.problem();
    independent_dest.push_back(scheduler->schedule(problem));
  }

  // Plan B: one stacked instance — the union of all partitions, with the
  // summed initial loads — placed jointly.
  data::ChunkMatrix stacked(total_partitions, n);
  opt::AssignmentProblem joint_problem;
  joint_problem.initial_egress.assign(n, 0.0);
  joint_problem.initial_ingress.assign(n, 0.0);
  {
    std::size_t row = 0;
    for (const PreparedInput& in : prepared) {
      for (std::size_t k = 0; k < in.residual.partitions(); ++k, ++row) {
        for (std::size_t i = 0; i < n; ++i) {
          stacked.set(row, i, in.residual.h(k, i));
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        joint_problem.initial_egress[i] += in.initial_egress[i];
        joint_problem.initial_ingress[i] += in.initial_ingress[i];
      }
    }
  }
  joint_problem.matrix = &stacked;
  const opt::Assignment joint_dest = scheduler->schedule(joint_problem);

  // Simulate both configurations with every coflow present from t = 0, and
  // accumulate the union flow matrix for the model-level Γ comparison.
  ConcurrentReport report;
  const net::Fabric fabric(n, options.port_rate);
  auto run_config = [&](bool joint, double* union_gamma) {
    net::Simulator sim(std::make_shared<const net::Fabric>(fabric),
                       net::make_allocator(options.allocator));
    net::FlowMatrix union_flows(n);
    std::size_t row = 0;
    for (std::size_t o = 0; o < operators.size(); ++o) {
      const PreparedInput& in = prepared[o];
      net::FlowMatrix flows(n);
      if (joint) {
        const std::size_t p = in.residual.partitions();
        const std::span<const std::uint32_t> slice(joint_dest.data() + row, p);
        flows = join::assignment_flows(in.residual, slice, in.initial_flows);
        row += p;
      } else {
        flows = join::assignment_flows(in.residual, independent_dest[o],
                                       in.initial_flows);
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          union_flows.add(i, j, flows.volume(i, j));
        }
      }
      sim.add_coflow(net::CoflowSpec(operators[o].name, 0.0, std::move(flows)));
    }
    *union_gamma = net::gamma_bound(union_flows, fabric);
    return sim.run();
  };

  report.independent = run_config(false, &report.union_gamma_independent);
  report.joint = run_config(true, &report.union_gamma_joint);
  return report;
}

}  // namespace ccf::core
