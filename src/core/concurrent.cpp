#include "core/concurrent.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "core/stages.hpp"
#include "join/flows.hpp"
#include "net/metrics.hpp"

namespace ccf::core {

ConcurrentReport run_concurrent_operators(
    const std::vector<OperatorSpec>& operators, const JobOptions& options) {
  if (operators.empty()) {
    throw std::invalid_argument("run_concurrent_operators: no operators");
  }
  const std::size_t n = operators.front().workload.nodes;
  for (const OperatorSpec& op : operators) {
    if (op.workload.nodes != n) {
      throw std::invalid_argument(
          "run_concurrent_operators: operators span different clusters");
    }
  }

  // Stage graph per operator: skew pre-pass once (shared by both plans),
  // then Plan A's isolated placement, with one shared scheduler instance.
  const auto scheduler = registry::make_scheduler(options.scheduler);
  std::vector<RunContext> contexts(operators.size());
  std::size_t total_partitions = 0;
  for (std::size_t o = 0; o < operators.size(); ++o) {
    contexts[o].workload = std::make_shared<const data::Workload>(
        data::generate_workload(operators[o].workload));
    contexts[o].skew_handling = options.skew_handling;
    stage_prepare(contexts[o]);
    stage_place(contexts[o], *scheduler);
    total_partitions += contexts[o].prepared->residual.partitions();
  }

  // Plan B: one stacked instance — the union of all partitions, with the
  // summed initial loads — placed jointly.
  data::ChunkMatrix stacked(total_partitions, n);
  opt::AssignmentProblem joint_problem;
  joint_problem.initial_egress.assign(n, 0.0);
  joint_problem.initial_ingress.assign(n, 0.0);
  {
    std::size_t row = 0;
    for (const RunContext& ctx : contexts) {
      const PreparedInput& in = *ctx.prepared;
      for (std::size_t k = 0; k < in.residual.partitions(); ++k, ++row) {
        for (std::size_t i = 0; i < n; ++i) {
          stacked.set(row, i, in.residual.h(k, i));
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        joint_problem.initial_egress[i] += in.initial_egress[i];
        joint_problem.initial_ingress[i] += in.initial_ingress[i];
      }
    }
  }
  joint_problem.matrix = &stacked;
  const opt::Assignment joint_dest = scheduler->schedule(joint_problem);

  // Simulate both configurations as Engine epochs with every coflow present
  // from t = 0, and accumulate the union flow matrix for the model-level Γ.
  ConcurrentReport report;
  const net::Fabric fabric(n, options.port_rate);
  EngineOptions eopts;
  eopts.nodes = n;
  eopts.port_rate = options.port_rate;
  eopts.allocator = options.allocator;
  Engine engine(std::move(eopts));

  auto run_config = [&](bool joint, double* union_gamma) {
    net::Demand union_demand(n);
    std::size_t row = 0;
    for (std::size_t o = 0; o < operators.size(); ++o) {
      const PreparedInput& in = *contexts[o].prepared;
      net::FlowMatrix flows(n);
      if (joint) {
        const std::size_t p = in.residual.partitions();
        const std::span<const std::uint32_t> slice(joint_dest.data() + row, p);
        flows = join::assignment_flows(in.residual, slice, in.initial_flows);
        row += p;
      } else {
        flows = join::assignment_flows(in.residual, contexts[o].destinations,
                                       in.initial_flows);
      }
      union_demand.accumulate(flows);
      engine.submit(operators[o].name, 0.0, std::move(flows));
    }
    *union_gamma = net::gamma_bound(union_demand, fabric);
    return std::move(engine.drain().sim);
  };

  report.independent = run_config(false, &report.union_gamma_independent);
  report.joint = run_config(true, &report.union_gamma_joint);
  return report;
}

}  // namespace ccf::core
