// Analytical query plans — the paper's future-work target ("extending our
// framework model to more complex workloads (e.g., analytical queries)").
//
// A query is a DAG of operator stages: each stage's shuffle can only start
// once its upstream stages have delivered (plus local compute time). Unlike
// run_job(), where arrivals are fixed a priori, here an arrival depends on
// upstream *completions*, which themselves depend on network contention from
// overlapping stages. We resolve this with a monotone fixed-point iteration:
//
//   1. guess ready times from compute times alone (zero network delay),
//   2. simulate every stage's coflow with those arrivals,
//   3. recompute ready times from the simulated completions,
//   4. repeat until no ready time moves (they are non-decreasing across
//      iterations, so this converges; a round cap guards the loop).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "data/workload.hpp"
#include "net/simulator.hpp"

namespace ccf::core {

/// One operator stage of a query plan.
struct QueryStage {
  std::string name = "stage";
  data::WorkloadSpec workload;
  /// Indices of stages that must complete first; each must be < this
  /// stage's own index (plans are given in topological order).
  std::vector<std::size_t> depends_on;
  /// Local compute before this stage's shuffle is ready (applied after the
  /// slowest dependency completes; also the lead-in for root stages).
  double compute_seconds = 0.0;
};

struct StageResult {
  std::string name;
  double ready = 0.0;       ///< when the stage's coflow became ready
  double completion = 0.0;  ///< when its last flow finished
  double traffic_bytes = 0.0;

  double cct() const noexcept { return completion - ready; }
};

struct QueryReport {
  std::vector<StageResult> stages;
  double makespan = 0.0;       ///< completion of the last stage
  std::size_t iterations = 0;  ///< fixed-point rounds executed
  net::SimReport sim;          ///< final-round simulation detail
};

struct QueryOptions {
  JobOptions job;  ///< placement scheduler, allocator, port rate, skew
  std::size_t max_iterations = 20;
  double convergence_epsilon = 1e-6;  ///< seconds
};

/// Plan, place and simulate a whole query. Throws std::invalid_argument on
/// an empty plan, forward/self dependencies, or mismatched cluster sizes.
QueryReport run_query(const std::vector<QueryStage>& stages,
                      const QueryOptions& options = {});

}  // namespace ccf::core
