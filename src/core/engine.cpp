#include "core/engine.hpp"

#include <cmath>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "util/parallel.hpp"

namespace ccf::core {

namespace {

/// Reconcile `nodes` with the topology spec before fabric_ is built: a
/// topology session may leave nodes at 0 (derived) but must not contradict
/// the spec's host count.
EngineOptions normalize_options(EngineOptions options) {
  if (!options.topology.empty()) {
    const std::size_t topo_nodes =
        net::TopologySpec::parse(options.topology).node_count();
    if (options.nodes == 0) {
      options.nodes = topo_nodes;
    } else if (options.nodes != topo_nodes) {
      throw std::invalid_argument(
          "Engine: nodes does not match the topology's host count");
    }
  }
  return options;
}

}  // namespace

void validate_sparse_spec(const net::SparseCoflowSpec& spec,
                          std::size_t nodes) {
  if (spec.arrival < 0.0 || !std::isfinite(spec.arrival)) {
    throw std::invalid_argument("sparse spec: invalid arrival time");
  }
  if (spec.deadline < 0.0 || !std::isfinite(spec.deadline)) {
    throw std::invalid_argument("sparse spec: invalid deadline");
  }
  if (spec.weight < 0.0 || !std::isfinite(spec.weight)) {
    throw std::invalid_argument("sparse spec: invalid weight");
  }
  for (const net::Flow& f : spec.flows) {
    if (f.src >= nodes || f.dst >= nodes) {
      throw std::invalid_argument(
          "sparse spec: flow endpoint outside the fabric");
    }
    if (f.src == f.dst) {
      throw std::invalid_argument("sparse spec: intra-rack flow (src == dst)");
    }
    if (f.volume < 0.0 || !std::isfinite(f.volume)) {
      throw std::invalid_argument("sparse spec: invalid flow volume");
    }
    if (f.start < 0.0 || !std::isfinite(f.start)) {
      throw std::invalid_argument("sparse spec: invalid flow start offset");
    }
  }
}

bool sparse_spec_valid(const net::SparseCoflowSpec& spec,
                       std::size_t nodes) noexcept {
  try {
    validate_sparse_spec(spec, nodes);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

Engine::Engine(EngineOptions options)
    : options_(normalize_options(std::move(options))),
      fabric_(options_.nodes > 0
                  ? net::Fabric(options_.nodes, options_.port_rate)
                  : throw std::invalid_argument("Engine: nodes must be > 0")) {
  if (!registry::has_allocator(options_.allocator)) {
    throw std::invalid_argument("Engine: unknown allocator: " +
                                options_.allocator);
  }
  if (!options_.topology.empty()) {
    net::TopologySpec spec = net::TopologySpec::parse(options_.topology);
    spec.host_rate = options_.port_rate;
    topology_ = net::make_topology(spec);
    routing_ = registry::make_routing(options_.routing);  // throws on unknown
  }
}

QueryId Engine::submit(QuerySpec spec) {
  if (spec.sparse) {
    validate_sparse_spec(*spec.sparse, fabric_.nodes());
    RunContext ctx;
    ctx.name = spec.sparse->name;
    ctx.arrival = spec.sparse->arrival;
    ctx.scheduler_name = "sparse";
    ctx.weight = spec.sparse->weight;
    ctx.sparse = std::move(spec.sparse);

    const std::scoped_lock lock(mutex_);
    pending_.push_back(std::move(ctx));
    return next_id_++;
  }
  if (!spec.workload) {
    throw std::invalid_argument("Engine::submit: query has no workload");
  }
  if (spec.workload->matrix.nodes() != fabric_.nodes()) {
    throw std::invalid_argument(
        "Engine::submit: workload does not span the session fabric");
  }
  if (spec.arrival < 0.0) {
    throw std::invalid_argument("Engine::submit: negative arrival time");
  }
  if (spec.weight < 0.0 || !std::isfinite(spec.weight)) {
    throw std::invalid_argument("Engine::submit: invalid query weight");
  }
  RunContext ctx;
  ctx.name = std::move(spec.name);
  ctx.arrival = spec.arrival;
  ctx.workload = std::move(spec.workload);
  ctx.scheduler_name = std::move(spec.scheduler);
  ctx.skew_handling = spec.skew_handling;
  ctx.weight = spec.weight;

  const std::scoped_lock lock(mutex_);
  const auto it =
      options_.plan_cache_capacity == 0
          ? plan_cache_.end()
          : plan_cache_.find(PlanKey{ctx.workload.get(), ctx.scheduler_name,
                                     ctx.skew_handling});
  if (it != plan_cache_.end()) {
    // Prepared-statement fast path: share the memoized stage products; the
    // drain skips this context's whole stage graph and registers the coflow
    // from the normalized flow list. Bit-identical to a recomputation
    // (deterministic schedulers, same fabric).
    const PlanEntry& plan = it->second;
    ctx.plan_flows = plan.flow_list;
    ctx.traffic_bytes = plan.traffic_bytes;
    ctx.makespan_bytes = plan.makespan_bytes;
    ctx.gamma_seconds = plan.gamma_seconds;
    ctx.flow_count = plan.flow_count;
    ctx.skew_handled = plan.skew_handled;
    ctx.plan_cached = true;
    ++stats_.plan_hits;
  } else {
    // Resolve the placement policy once, here — an unknown name fails the
    // submission, not the drain N queries later.
    ctx.scheduler = registry::make_scheduler(ctx.scheduler_name);
    ++stats_.plan_misses;
  }
  pending_.push_back(std::move(ctx));
  return next_id_++;
}

QueryId Engine::submit(std::string name, double arrival,
                       net::FlowMatrix flows) {
  if (flows.nodes() != fabric_.nodes()) {
    throw std::invalid_argument(
        "Engine::submit: flow matrix does not span the session fabric");
  }
  if (arrival < 0.0) {
    throw std::invalid_argument("Engine::submit: negative arrival time");
  }
  RunContext ctx;
  ctx.name = std::move(name);
  ctx.arrival = arrival;
  ctx.scheduler_name = "prebuilt";
  ctx.flows = net::Demand::from_matrix(flows);
  ctx.traffic_bytes = ctx.flows->traffic();
  ctx.flow_count = ctx.flows->flow_count();

  const std::scoped_lock lock(mutex_);
  pending_.push_back(std::move(ctx));
  return next_id_++;
}

QueryId Engine::submit(net::SparseCoflowSpec spec) {
  QuerySpec query;
  query.sparse =
      std::make_shared<const net::SparseCoflowSpec>(std::move(spec));
  return submit(std::move(query));
}

std::size_t Engine::pending() const {
  const std::scoped_lock lock(mutex_);
  return pending_.size();
}

EngineStats Engine::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

std::size_t Engine::plan_cache_size() const {
  const std::scoped_lock lock(mutex_);
  return plan_cache_.size();
}

EngineReport Engine::drain() {
  EngineReport report;
  drain_into(report);
  return report;
}

void Engine::drain_into(EngineReport& report) {
  report.queries.clear();
  report.sim = net::SimReport{};
  report.makespan = 0.0;
  report.total_traffic_bytes = 0.0;
  report.schedule_seconds = 0.0;

  // Claim this epoch's batch; submissions racing the drain land in the next
  // one. The stage fan-out and the simulation run outside the lock. The
  // batch buffer is a session member (drain is single-consumer), so the swap
  // also hands pending_ the previous epoch's capacity back — steady-state
  // drains reallocate neither vector.
  drain_batch_.clear();
  {
    const std::scoped_lock lock(mutex_);
    drain_batch_.swap(pending_);
  }
  std::vector<RunContext>& batch = drain_batch_;
  const std::size_t n = batch.size();

  // Stage fan-out: contexts are independent, so prepare/place/flows for the
  // pending queries run concurrently; slot i holds query i's products, so
  // the results are in submission order no matter the interleaving. Plan-
  // cache hits skip the graph entirely (their products were copied at
  // submission).
  util::parallel_for(
      n,
      [&](std::size_t i) {
        RunContext& ctx = batch[i];
        if (ctx.plan_cached) return;
        if (ctx.sparse) {
          // Raw sparse submission: aggregate the flow list (duplicates merge
          // by summing) for metrics and the epoch routing; the spec itself
          // registers verbatim below.
          net::Demand demand(fabric_.nodes());
          demand.accumulate(std::span<const net::Flow>(ctx.sparse->flows));
          ctx.flows = std::move(demand);
          ctx.traffic_bytes = ctx.flows->traffic();
          ctx.flow_count = ctx.flows->flow_count();
        } else if (!ctx.flows) {
          stage_prepare(ctx);
          stage_place(ctx);
          stage_flows(ctx);
        }
        stage_metrics(ctx, fabric_);
      },
      options_.placement_threads);

  // Memoize the freshly computed plans (before stage_coflow consumes the
  // flow matrices). Wholesale eviction when full — see EngineOptions.
  if (options_.plan_cache_capacity > 0) {
    const std::scoped_lock lock(mutex_);
    for (const RunContext& ctx : batch) {
      if (ctx.plan_cached || !ctx.workload || !ctx.flows) continue;
      if (plan_cache_.size() >= options_.plan_cache_capacity) {
        plan_cache_.clear();
      }
      PlanEntry plan{
          ctx.workload,
          std::make_shared<const std::vector<net::Flow>>(
              ctx.flows->to_flows(options_.sim.completion_epsilon)),
          ctx.traffic_bytes,
          ctx.makespan_bytes,
          ctx.gamma_seconds,
          ctx.flow_count,
          ctx.skew_handled};
      plan_cache_.insert_or_assign(
          PlanKey{ctx.workload.get(), ctx.scheduler_name, ctx.skew_handling},
          std::move(plan));
    }
  }

  // Coflow registration + the shared epoch simulation. The simulator is the
  // session's persistent one: reset_epoch() keeps the fabric, the allocator
  // instance and the arena, and the arena reset at this drain boundary means
  // repeated drains recycle the first epoch's scratch blocks instead of
  // reallocating.
  if (options_.simulate && n > 0) {
    // Routed-topology sessions re-route every epoch: aggregate the batch's
    // demand, run the session routing policy over it, and install the
    // resulting RoutedTopology before coflow registration. Safe mid-session
    // because the allocator context rebinds (re-resolving every cached link
    // table) at the start of each run.
    std::shared_ptr<const net::RoutedTopology> routed;
    if (topology_) {
      if (!epoch_demand_) {
        epoch_demand_.emplace(fabric_.nodes());
      } else {
        epoch_demand_->clear();
      }
      for (const RunContext& ctx : batch) {
        if (ctx.plan_flows) {
          epoch_demand_->accumulate(
              std::span<const net::Flow>(*ctx.plan_flows));
        } else if (ctx.flows) {
          epoch_demand_->accumulate(*ctx.flows);
        }
      }
      routed = std::make_shared<const net::RoutedTopology>(
          topology_, routing_->choose(*topology_, *epoch_demand_));
    }
    if (!sim_) {
      net::SimConfig sim_cfg = options_.sim;
      if (!sim_cfg.arena) sim_cfg.arena = &sim_arena_;
      std::unique_ptr<net::RateAllocator> allocator =
          registry::make_allocator(options_.allocator);
      sim_ = routed ? std::make_unique<net::Simulator>(
                          routed, std::move(allocator), sim_cfg)
                    : std::make_unique<net::Simulator>(
                          fabric_, std::move(allocator), sim_cfg);
      if (!options_.faults.empty()) {
        sim_->set_faults(options_.faults, options_.fault_options);
      }
    } else {
      sim_->reset_epoch();
      if (routed) sim_->set_network(std::move(routed));
    }
    if (!options_.sim.arena) sim_arena_.reset();
    for (RunContext& ctx : batch) {
      if (ctx.plan_flows) {
        net::SparseCoflowSpec spec(ctx.name, ctx.arrival, *ctx.plan_flows);
        spec.prenormalized = true;  // memoized to_flows output
        spec.weight = ctx.weight;
        sim_->add_coflow(std::move(spec));
      } else if (ctx.sparse) {
        // Registered verbatim: start offsets, duplicate records and the
        // spec's own prenormalized flag survive (the spec was validated
        // against the simulator's rules at submission).
        sim_->add_coflow(net::SparseCoflowSpec(*ctx.sparse));
      } else {
        sim_->add_coflow(stage_coflow(ctx, options_.sim.completion_epsilon));
      }
    }
    report.sim = sim_->run();
    report.makespan = report.sim.makespan;
  }

  report.queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RunContext& ctx = batch[i];
    RunReport r;
    r.scheduler = ctx.scheduler_name;
    r.skew_handled = ctx.skew_handled;
    r.schedule_seconds = ctx.timings.place_seconds;
    r.traffic_bytes = ctx.traffic_bytes;
    r.flow_count = ctx.flow_count;
    r.makespan_bytes = ctx.makespan_bytes;
    r.gamma_seconds = ctx.gamma_seconds;
    r.cct_seconds = options_.simulate ? report.sim.coflows[i].cct()
                                      : ctx.gamma_seconds;
    report.total_traffic_bytes += r.traffic_bytes;
    report.schedule_seconds += r.schedule_seconds;
    report.queries.push_back(std::move(r));
  }

  const std::scoped_lock lock(mutex_);
  stats_.epochs += 1;
  stats_.queries += n;
  stats_.total_traffic_bytes += report.total_traffic_bytes;
  stats_.schedule_seconds += report.schedule_seconds;
  stats_.sim_events += report.sim.events;
}

}  // namespace ccf::core
