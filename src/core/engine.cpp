#include "core/engine.hpp"

#include <stdexcept>
#include <utility>

#include "core/registry.hpp"
#include "util/parallel.hpp"

namespace ccf::core {

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      fabric_(options_.nodes > 0
                  ? net::Fabric(options_.nodes, options_.port_rate)
                  : throw std::invalid_argument("Engine: nodes must be > 0")) {
  if (!registry::has_allocator(options_.allocator)) {
    throw std::invalid_argument("Engine: unknown allocator: " +
                                options_.allocator);
  }
}

QueryId Engine::submit(QuerySpec spec) {
  if (!spec.workload) {
    throw std::invalid_argument("Engine::submit: query has no workload");
  }
  if (spec.workload->matrix.nodes() != fabric_.nodes()) {
    throw std::invalid_argument(
        "Engine::submit: workload does not span the session fabric");
  }
  if (spec.arrival < 0.0) {
    throw std::invalid_argument("Engine::submit: negative arrival time");
  }
  RunContext ctx;
  ctx.name = std::move(spec.name);
  ctx.arrival = spec.arrival;
  ctx.workload = std::move(spec.workload);
  ctx.scheduler_name = std::move(spec.scheduler);
  ctx.skew_handling = spec.skew_handling;
  // Resolve the placement policy once, here — an unknown name fails the
  // submission, not the drain N queries later.
  ctx.scheduler = registry::make_scheduler(ctx.scheduler_name);
  pending_.push_back(std::move(ctx));
  return next_id_++;
}

QueryId Engine::submit(std::string name, double arrival,
                       net::FlowMatrix flows) {
  if (flows.nodes() != fabric_.nodes()) {
    throw std::invalid_argument(
        "Engine::submit: flow matrix does not span the session fabric");
  }
  if (arrival < 0.0) {
    throw std::invalid_argument("Engine::submit: negative arrival time");
  }
  RunContext ctx;
  ctx.name = std::move(name);
  ctx.arrival = arrival;
  ctx.scheduler_name = "prebuilt";
  ctx.traffic_bytes = flows.traffic();
  ctx.flow_count = flows.flow_count();
  ctx.flows = std::move(flows);
  pending_.push_back(std::move(ctx));
  return next_id_++;
}

EngineReport Engine::drain() {
  EngineReport report;
  const std::size_t n = pending_.size();

  // Stage fan-out: contexts are independent, so prepare/place/flows for the
  // pending queries run concurrently; slot i holds query i's products, so
  // the results are in submission order no matter the interleaving.
  util::parallel_for(
      n,
      [&](std::size_t i) {
        RunContext& ctx = pending_[i];
        if (!ctx.flows) {
          stage_prepare(ctx);
          stage_place(ctx);
          stage_flows(ctx);
        }
        stage_metrics(ctx, fabric_);
      },
      options_.placement_threads);

  // Coflow registration + the shared epoch simulation. The session arena is
  // reset at this drain boundary and handed to the simulator, so repeated
  // drains recycle the first epoch's scratch blocks instead of reallocating.
  if (options_.simulate && n > 0) {
    net::SimConfig sim_cfg = options_.sim;
    if (!sim_cfg.arena) {
      sim_arena_.reset();
      sim_cfg.arena = &sim_arena_;
    }
    net::Simulator sim(fabric_, registry::make_allocator(options_.allocator),
                       sim_cfg);
    if (!options_.faults.empty()) {
      sim.set_faults(options_.faults, options_.fault_options);
    }
    for (RunContext& ctx : pending_) sim.add_coflow(stage_coflow(ctx));
    report.sim = sim.run();
    report.makespan = report.sim.makespan;
  }

  report.queries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const RunContext& ctx = pending_[i];
    RunReport r;
    r.scheduler = ctx.scheduler_name;
    r.skew_handled = ctx.skew_handled;
    r.schedule_seconds = ctx.timings.place_seconds;
    r.traffic_bytes = ctx.traffic_bytes;
    r.flow_count = ctx.flow_count;
    r.makespan_bytes = ctx.makespan_bytes;
    r.gamma_seconds = ctx.gamma_seconds;
    r.cct_seconds = options_.simulate ? report.sim.coflows[i].cct()
                                      : ctx.gamma_seconds;
    report.total_traffic_bytes += r.traffic_bytes;
    report.schedule_seconds += r.schedule_seconds;
    report.queries.push_back(std::move(r));
  }

  stats_.epochs += 1;
  stats_.queries += n;
  stats_.total_traffic_bytes += report.total_traffic_bytes;
  stats_.schedule_seconds += report.schedule_seconds;
  stats_.sim_events += report.sim.events;
  pending_.clear();
  return report;
}

}  // namespace ccf::core
