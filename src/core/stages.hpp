// The pipeline of Fig. 3 decomposed into composable stages. One query's trip
// through the framework is: skew pre-pass (partial duplication) -> placement
// (application-level scheduler) -> flow generation -> coflow registration on
// the network. Each stage operates on a per-query RunContext that carries the
// intermediate products plus structured wall-clock timings and counters, so
// every orchestrator (run_pipeline, run_job, run_query, the Engine) composes
// the same code instead of re-wiring the stages by hand.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/skew_handling.hpp"
#include "data/workload.hpp"
#include "join/schedulers.hpp"
#include "net/coflow.hpp"
#include "net/demand.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "opt/model.hpp"

namespace ccf::core {

/// Per-stage wall-clock of one query (RunReport::schedule_seconds is
/// place_seconds; the rest is new observability).
struct StageTimings {
  double prepare_seconds = 0.0;  ///< skew pre-pass
  double place_seconds = 0.0;    ///< placement scheduler
  double flows_seconds = 0.0;    ///< flow-matrix generation

  double total_seconds() const noexcept {
    return prepare_seconds + place_seconds + flows_seconds;
  }
};

/// Everything one query carries through the stage graph. Contexts are
/// independent of each other, so distinct queries may run their stages on
/// different threads (the Engine's placement fan-out relies on this).
struct RunContext {
  // --- submission inputs -------------------------------------------------
  std::string name = "query";
  double arrival = 0.0;  ///< seconds after its epoch opens
  std::shared_ptr<const data::Workload> workload;  ///< null once flows are injected
  std::string scheduler_name = "ccf";
  bool skew_handling = true;
  double weight = 1.0;  ///< weighted-CCT importance of the query's coflow
  /// Resolved at submission (policy registry); owned per query so contexts
  /// stay independent under the parallel placement fan-out.
  std::unique_ptr<join::PartitionScheduler> scheduler;

  // --- stage products ----------------------------------------------------
  std::optional<PreparedInput> prepared;    ///< after stage_prepare
  opt::Assignment destinations;             ///< after stage_place
  /// The query's aggregate demand in sparse columnar form, after stage_flows
  /// (or injected — prebuilt matrices and sparse submissions both land
  /// here). The dense matrix is a stage-local intermediate only.
  std::optional<net::Demand> flows;
  /// Raw sparse submission (Engine/Service SparseCoflowSpec path): the spec
  /// is registered verbatim at drain — per-flow start offsets, duplicate
  /// (src,dst) records and the prenormalized flag all survive — while
  /// `flows` above carries its aggregated demand for metrics/routing.
  std::shared_ptr<const net::SparseCoflowSpec> sparse;

  // --- structured timings and counters -----------------------------------
  StageTimings timings;
  double traffic_bytes = 0.0;
  double makespan_bytes = 0.0;  ///< bottleneck-port bytes (model T)
  double gamma_seconds = 0.0;   ///< analytic single-coflow bound
  std::size_t flow_count = 0;
  bool skew_handled = false;
  /// Stage products were copied from the Engine's plan cache at submission:
  /// the stage graph (including metrics) is skipped at drain. The products
  /// are bit-identical to a recomputation — every registered scheduler is
  /// deterministic — so only the reported placement wall-clock (0) differs.
  bool plan_cached = false;
  /// The memoized normalized flow list (what to_flows would produce from the
  /// regenerated matrix), shared with the plan-cache entry: cache hits skip
  /// the dense-matrix copy AND its per-coflow flattening — the drain feeds
  /// the simulator through the sparse ingestion path instead. Null unless
  /// plan_cached.
  std::shared_ptr<const std::vector<net::Flow>> plan_flows;
};

/// Skew pre-pass: workload -> PreparedInput (partial duplication when
/// ctx.skew_handling). Requires ctx.workload.
void stage_prepare(RunContext& ctx);

/// Placement with an explicit scheduler instance (shared-instance callers
/// like run_query). Requires stage_prepare to have run.
void stage_place(RunContext& ctx, join::PartitionScheduler& scheduler);

/// Placement with the context's own scheduler (the Engine path).
void stage_place(RunContext& ctx);

/// Flow generation: residual + placement + skew broadcasts -> dense
/// assignment matrix -> columnar ctx.flows, plus the traffic / flow-count
/// counters.
void stage_flows(RunContext& ctx);

/// Model-level metrics of the generated flows against a concrete fabric:
/// bottleneck-port bytes T and the analytic bound Γ. Requires ctx.flows.
void stage_metrics(RunContext& ctx, const net::Fabric& fabric);

/// Coflow registration: consume ctx.flows as the query's coflow (named and
/// timed after the context), normalized at `completion_epsilon` — the flow
/// list is exactly what the dense matrix's to_flows would produce, so the
/// spec enters the simulator through the trusted (prenormalized) sparse
/// ingestion path bit-identically to the historical CoflowSpec route. The
/// context's flows are cleared.
net::SparseCoflowSpec stage_coflow(RunContext& ctx, double completion_epsilon);

}  // namespace ccf::core
