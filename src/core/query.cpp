#include "core/query.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/skew_handling.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"

namespace ccf::core {

QueryReport run_query(const std::vector<QueryStage>& stages,
                      const QueryOptions& options) {
  if (stages.empty()) throw std::invalid_argument("run_query: empty plan");
  const std::size_t n = stages.front().workload.nodes;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].workload.nodes != n) {
      throw std::invalid_argument("run_query: stages span different clusters");
    }
    if (stages[s].compute_seconds < 0.0) {
      throw std::invalid_argument("run_query: negative compute time");
    }
    for (const std::size_t dep : stages[s].depends_on) {
      if (dep >= s) {
        throw std::invalid_argument(
            "run_query: dependencies must reference earlier stages");
      }
    }
  }

  // Placement is decided once per stage; only arrivals iterate.
  const auto scheduler = join::make_scheduler(options.job.scheduler);
  std::vector<net::FlowMatrix> stage_flows;
  stage_flows.reserve(stages.size());
  for (const QueryStage& stage : stages) {
    const data::Workload workload = data::generate_workload(stage.workload);
    const PreparedInput prepared =
        apply_partial_duplication(workload, options.job.skew_handling);
    const opt::AssignmentProblem problem = prepared.problem();
    const opt::Assignment dest = scheduler->schedule(problem);
    stage_flows.push_back(join::assignment_flows(prepared.residual, dest,
                                                 prepared.initial_flows));
  }

  // Initial ready times: longest compute-only path.
  std::vector<double> ready(stages.size(), 0.0);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    double dep_done = 0.0;
    for (const std::size_t dep : stages[s].depends_on) {
      dep_done = std::max(dep_done, ready[dep]);  // zero-network guess
    }
    ready[s] = dep_done + stages[s].compute_seconds;
  }

  QueryReport report;
  for (report.iterations = 1; report.iterations <= options.max_iterations;
       ++report.iterations) {
    net::Simulator sim(net::Fabric(n, options.job.port_rate),
                       net::make_allocator(options.job.allocator));
    for (std::size_t s = 0; s < stages.size(); ++s) {
      sim.add_coflow(net::CoflowSpec(stages[s].name, ready[s], stage_flows[s]));
    }
    report.sim = sim.run();

    // Recompute ready times from the simulated completions.
    bool changed = false;
    std::vector<double> next_ready(stages.size(), 0.0);
    for (std::size_t s = 0; s < stages.size(); ++s) {
      double dep_done = 0.0;
      for (const std::size_t dep : stages[s].depends_on) {
        dep_done = std::max(dep_done, report.sim.coflows[dep].completion);
      }
      next_ready[s] =
          std::max(ready[s], dep_done + stages[s].compute_seconds);
      if (next_ready[s] > ready[s] + options.convergence_epsilon) {
        changed = true;
      }
    }
    ready = std::move(next_ready);
    if (!changed) break;
  }
  report.iterations = std::min(report.iterations, options.max_iterations);

  report.stages.resize(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].name = stages[s].name;
    report.stages[s].ready = report.sim.coflows[s].arrival;
    report.stages[s].completion = report.sim.coflows[s].completion;
    report.stages[s].traffic_bytes = stage_flows[s].traffic();
    report.makespan = std::max(report.makespan, report.stages[s].completion);
  }
  return report;
}

}  // namespace ccf::core
