#include "core/query.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "core/stages.hpp"

namespace ccf::core {

QueryReport run_query(const std::vector<QueryStage>& stages,
                      const QueryOptions& options) {
  if (stages.empty()) throw std::invalid_argument("run_query: empty plan");
  const std::size_t n = stages.front().workload.nodes;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (stages[s].workload.nodes != n) {
      throw std::invalid_argument("run_query: stages span different clusters");
    }
    if (stages[s].compute_seconds < 0.0) {
      throw std::invalid_argument("run_query: negative compute time");
    }
    for (const std::size_t dep : stages[s].depends_on) {
      if (dep >= s) {
        throw std::invalid_argument(
            "run_query: dependencies must reference earlier stages");
      }
    }
  }

  // Placement is decided once per stage (the composable stage graph, with
  // one shared scheduler instance); only arrivals iterate below.
  const auto scheduler = registry::make_scheduler(options.job.scheduler);
  std::vector<net::FlowMatrix> stage_flow_matrices;
  stage_flow_matrices.reserve(stages.size());
  for (const QueryStage& stage : stages) {
    RunContext ctx;
    ctx.workload = std::make_shared<const data::Workload>(
        data::generate_workload(stage.workload));
    ctx.skew_handling = options.job.skew_handling;
    stage_prepare(ctx);
    stage_place(ctx, *scheduler);
    stage_flows(ctx);
    // The fixed-point loop re-submits each stage's coflow every round; the
    // dense view round-trips the stage's columnar demand exactly.
    stage_flow_matrices.push_back(ctx.flows->to_matrix());
  }

  // Initial ready times: longest compute-only path.
  std::vector<double> ready(stages.size(), 0.0);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    double dep_done = 0.0;
    for (const std::size_t dep : stages[s].depends_on) {
      dep_done = std::max(dep_done, ready[dep]);  // zero-network guess
    }
    ready[s] = dep_done + stages[s].compute_seconds;
  }

  // One Engine session; every fixed-point round is one epoch re-submitting
  // the placed stages' coflows at the refined ready times.
  EngineOptions eopts;
  eopts.nodes = n;
  eopts.port_rate = options.job.port_rate;
  eopts.allocator = options.job.allocator;
  Engine engine(std::move(eopts));

  QueryReport report;
  for (report.iterations = 1; report.iterations <= options.max_iterations;
       ++report.iterations) {
    for (std::size_t s = 0; s < stages.size(); ++s) {
      engine.submit(stages[s].name, ready[s],
                    net::FlowMatrix(stage_flow_matrices[s]));
    }
    report.sim = std::move(engine.drain().sim);

    // Recompute ready times from the simulated completions.
    bool changed = false;
    std::vector<double> next_ready(stages.size(), 0.0);
    for (std::size_t s = 0; s < stages.size(); ++s) {
      double dep_done = 0.0;
      for (const std::size_t dep : stages[s].depends_on) {
        dep_done = std::max(dep_done, report.sim.coflows[dep].completion);
      }
      next_ready[s] =
          std::max(ready[s], dep_done + stages[s].compute_seconds);
      if (next_ready[s] > ready[s] + options.convergence_epsilon) {
        changed = true;
      }
    }
    ready = std::move(next_ready);
    if (!changed) break;
  }
  report.iterations = std::min(report.iterations, options.max_iterations);

  report.stages.resize(stages.size());
  for (std::size_t s = 0; s < stages.size(); ++s) {
    report.stages[s].name = stages[s].name;
    report.stages[s].ready = report.sim.coflows[s].arrival;
    report.stages[s].completion = report.sim.coflows[s].completion;
    report.stages[s].traffic_bytes = stage_flow_matrices[s].traffic();
    report.makespan = std::max(report.makespan, report.stages[s].completion);
  }
  return report;
}

}  // namespace ccf::core
