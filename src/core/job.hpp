// Multi-operator analytical jobs — the paper's architecture decomposes "an
// analytical job into sequential distributed data operators" (Fig. 3) and its
// future work targets full analytical queries and online coflows. Each
// operator's placement is co-optimized independently; the resulting coflows
// arrive over time and compete on the fabric under a chosen inter-coflow
// scheduler (FIFO+MADD, Varys, Aalo, or fair sharing).
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/workload.hpp"
#include "net/allocator.hpp"
#include "net/simulator.hpp"

namespace ccf::core {

/// One operator (e.g. one join's shuffle) inside a job.
struct OperatorSpec {
  std::string name = "op";
  double arrival = 0.0;  ///< when its coflow becomes ready (seconds)
  data::WorkloadSpec workload;
};

struct JobOptions {
  std::string scheduler = "ccf";  ///< placement policy for every operator
  bool skew_handling = true;
  std::string allocator = "varys";  ///< inter-coflow policy (registry name)
  double port_rate = net::Fabric::kDefaultPortRate;
};

struct JobReport {
  net::SimReport sim;              ///< per-operator CCTs + makespan
  double total_traffic_bytes = 0;  ///< across all operators
  double schedule_seconds = 0;     ///< total placement time
};

/// Schedule and simulate a whole job. All operators must share a node count.
JobReport run_job(const std::vector<OperatorSpec>& operators,
                  const JobOptions& options);

}  // namespace ccf::core
