// Joint co-optimization of concurrent operators (extension).
//
// The paper co-optimizes one operator at a time. When several operators'
// shuffles share the fabric simultaneously, per-operator optimal plans can
// collide on the same ports. Since the placement model treats partitions
// independently, k concurrent operators simply become one larger instance —
// the union of their partitions over the same nodes — and Algorithm 1
// applies verbatim to the stacked chunk matrix, balancing the *combined*
// load. run_concurrent_operators() compares that joint plan against
// independent per-operator plans on the same simulated fabric.
#pragma once

#include <string>
#include <vector>

#include "core/job.hpp"
#include "data/workload.hpp"
#include "net/simulator.hpp"

namespace ccf::core {

struct ConcurrentReport {
  /// Simulated together (all coflows at t = 0) under the chosen allocator.
  net::SimReport independent;  ///< each operator placed in isolation
  net::SimReport joint;        ///< one stacked placement across operators

  /// The model-level metric: Γ of the union of all operators' flows — the
  /// CCT if the operators were executed as one merged coflow (they share a
  /// barrier). The stacked greedy minimizes exactly this.
  double union_gamma_independent = 0.0;
  double union_gamma_joint = 0.0;

  double independent_makespan() const noexcept { return independent.makespan; }
  double joint_makespan() const noexcept { return joint.makespan; }
  double speedup() const noexcept {
    return joint.makespan > 0.0 ? independent.makespan / joint.makespan : 1.0;
  }
  double union_gamma_speedup() const noexcept {
    return union_gamma_joint > 0.0
               ? union_gamma_independent / union_gamma_joint
               : 1.0;
  }
};

/// Place `operators` both ways and simulate each configuration. All
/// operators must share a node count; skew handling follows options.
ConcurrentReport run_concurrent_operators(
    const std::vector<OperatorSpec>& operators, const JobOptions& options);

}  // namespace ccf::core
