// The policy registry: the single place that turns a user-facing policy name
// into an implementation. Placement schedulers (join::PartitionScheduler) and
// rate allocators (net::RateAllocator, the inter-coflow schedulers) are both
// listed here with their canonical names, so the pipeline, the Engine, the
// CLI tools and the benches all dispatch through one table — and their
// --help texts print the live name lists instead of hard-coded strings.
//
// The concrete factories still live with their layers (join::make_scheduler,
// net::make_allocator); this module owns the *names* and the name -> factory
// resolution, and the registry test pins the two views against each other.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "join/schedulers.hpp"
#include "net/allocator.hpp"
#include "net/multipath.hpp"

namespace ccf::core::registry {

/// Placement-scheduler names in canonical order ("hash", "mini", "ccf", ...).
std::span<const std::string_view> scheduler_names();

/// Rate-allocator names in canonical order: the classic net-layer policies
/// ("fair", "madd", "varys", "aalo", "varys-edf") followed by the ordering
/// schedulers ("sincronia", "lp-order" — sched/ordering.hpp, dispatched by
/// make_allocator to sched::make_ordered_allocator; they carry no
/// AllocatorKind).
std::span<const std::string_view> allocator_names();

/// Routing-policy names in canonical order ("ecmp", "greedy", "joint") —
/// the route-selection axis of a topology ablation (net::RoutingPolicy).
std::span<const std::string_view> routing_names();

/// " | "-joined name list for --help texts, e.g. "hash | mini | ccf | ...".
std::string scheduler_name_list();
std::string allocator_name_list();
std::string routing_name_list();

bool has_scheduler(std::string_view name);
bool has_allocator(std::string_view name);
bool has_routing(std::string_view name);

/// Resolve a scheduler / allocator by registered name. Throws
/// std::invalid_argument on unknown names (same contract as the layer
/// factories these delegate to).
std::unique_ptr<join::PartitionScheduler> make_scheduler(
    const std::string& name);
std::unique_ptr<net::RateAllocator> make_allocator(const std::string& name);
std::unique_ptr<net::RoutingPolicy> make_routing(const std::string& name);

/// Name <-> AllocatorKind mapping (the enum is the compiled-in option
/// surface; the name is the CLI/config surface). Throw / abort on unknowns —
/// including the ordering allocators, which have no kind.
net::AllocatorKind allocator_kind(const std::string& name);
std::string_view allocator_name(net::AllocatorKind kind);

}  // namespace ccf::core::registry
