// Umbrella header: include everything a CCF user needs.
//
//   #include "core/ccf.hpp"
//
//   auto workload = ccf::data::generate_workload(
//       ccf::data::WorkloadSpec::paper_default(500));
//   auto report = ccf::core::run_pipeline(
//       workload, ccf::core::PipelineOptions::paper_system("ccf"));
//   std::cout << report.cct_seconds << "\n";
#pragma once

#include "core/engine.hpp"         // IWYU pragma: export
#include "core/job.hpp"            // IWYU pragma: export
#include "core/pipeline.hpp"       // IWYU pragma: export
#include "core/query.hpp"          // IWYU pragma: export
#include "core/registry.hpp"       // IWYU pragma: export
#include "core/skew_handling.hpp"  // IWYU pragma: export
#include "core/stages.hpp"         // IWYU pragma: export
#include "data/chunk_matrix.hpp"   // IWYU pragma: export
#include "data/partitioner.hpp"    // IWYU pragma: export
#include "data/relation.hpp"       // IWYU pragma: export
#include "data/skew.hpp"           // IWYU pragma: export
#include "data/tpch.hpp"           // IWYU pragma: export
#include "data/workload.hpp"       // IWYU pragma: export
#include "join/aggregate.hpp"      // IWYU pragma: export
#include "join/exec.hpp"           // IWYU pragma: export
#include "join/flows.hpp"          // IWYU pragma: export
#include "join/local_join.hpp"     // IWYU pragma: export
#include "join/rack_scheduler.hpp" // IWYU pragma: export
#include "join/schedulers.hpp"     // IWYU pragma: export
#include "net/rack.hpp"            // IWYU pragma: export
#include "net/allocator.hpp"       // IWYU pragma: export
#include "net/coflow.hpp"          // IWYU pragma: export
#include "net/fabric.hpp"          // IWYU pragma: export
#include "net/flow.hpp"            // IWYU pragma: export
#include "net/metrics.hpp"         // IWYU pragma: export
#include "net/simulator.hpp"       // IWYU pragma: export
#include "opt/bnb.hpp"             // IWYU pragma: export
#include "opt/bounds.hpp"          // IWYU pragma: export
#include "opt/local_search.hpp"    // IWYU pragma: export
#include "opt/model.hpp"           // IWYU pragma: export
