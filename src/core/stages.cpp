#include "core/stages.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "join/flows.hpp"
#include "net/metrics.hpp"

namespace ccf::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void stage_prepare(RunContext& ctx) {
  if (!ctx.workload) {
    throw std::logic_error("stage_prepare: context has no workload");
  }
  const auto t0 = Clock::now();
  ctx.prepared = apply_partial_duplication(*ctx.workload, ctx.skew_handling);
  ctx.skew_handled = ctx.prepared->skew_handled;
  ctx.timings.prepare_seconds = seconds_since(t0);
}

void stage_place(RunContext& ctx, join::PartitionScheduler& scheduler) {
  if (!ctx.prepared) {
    throw std::logic_error("stage_place: stage_prepare has not run");
  }
  const opt::AssignmentProblem problem = ctx.prepared->problem();
  const auto t0 = Clock::now();
  ctx.destinations = scheduler.schedule(problem);
  ctx.timings.place_seconds = seconds_since(t0);
}

void stage_place(RunContext& ctx) {
  if (!ctx.scheduler) {
    throw std::logic_error("stage_place: context has no scheduler");
  }
  stage_place(ctx, *ctx.scheduler);
}

void stage_flows(RunContext& ctx) {
  if (!ctx.prepared) {
    throw std::logic_error("stage_flows: stage_prepare has not run");
  }
  const auto t0 = Clock::now();
  ctx.flows = join::assignment_flows(ctx.prepared->residual, ctx.destinations,
                                     ctx.prepared->initial_flows);
  ctx.timings.flows_seconds = seconds_since(t0);
  ctx.traffic_bytes = ctx.flows->traffic();
  ctx.flow_count = ctx.flows->flow_count();
}

void stage_metrics(RunContext& ctx, const net::Fabric& fabric) {
  if (!ctx.flows) {
    throw std::logic_error("stage_metrics: context has no flows");
  }
  const net::PortLoads loads = net::port_loads(*ctx.flows);
  ctx.makespan_bytes = loads.bottleneck();
  ctx.gamma_seconds = net::gamma_bound(loads, fabric);
}

net::CoflowSpec stage_coflow(RunContext& ctx) {
  if (!ctx.flows) {
    throw std::logic_error("stage_coflow: context has no flows");
  }
  net::CoflowSpec spec(ctx.name, ctx.arrival, std::move(*ctx.flows));
  spec.weight = ctx.weight;
  ctx.flows.reset();
  return spec;
}

}  // namespace ccf::core
