#include "core/stages.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "join/flows.hpp"
#include "net/metrics.hpp"

namespace ccf::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

void stage_prepare(RunContext& ctx) {
  if (!ctx.workload) {
    throw std::logic_error("stage_prepare: context has no workload");
  }
  const auto t0 = Clock::now();
  ctx.prepared = apply_partial_duplication(*ctx.workload, ctx.skew_handling);
  ctx.skew_handled = ctx.prepared->skew_handled;
  ctx.timings.prepare_seconds = seconds_since(t0);
}

void stage_place(RunContext& ctx, join::PartitionScheduler& scheduler) {
  if (!ctx.prepared) {
    throw std::logic_error("stage_place: stage_prepare has not run");
  }
  const opt::AssignmentProblem problem = ctx.prepared->problem();
  const auto t0 = Clock::now();
  ctx.destinations = scheduler.schedule(problem);
  ctx.timings.place_seconds = seconds_since(t0);
}

void stage_place(RunContext& ctx) {
  if (!ctx.scheduler) {
    throw std::logic_error("stage_place: context has no scheduler");
  }
  stage_place(ctx, *ctx.scheduler);
}

void stage_flows(RunContext& ctx) {
  if (!ctx.prepared) {
    throw std::logic_error("stage_flows: stage_prepare has not run");
  }
  const auto t0 = Clock::now();
  // The dense assignment matrix is a stage-local intermediate; only its
  // sparse columnar aggregate leaves the stage. from_matrix visits entries
  // row-major, so traffic/flow-count/to_flows downstream reproduce the dense
  // accumulation order bit-for-bit.
  const net::FlowMatrix matrix = join::assignment_flows(
      ctx.prepared->residual, ctx.destinations, ctx.prepared->initial_flows);
  ctx.flows = net::Demand::from_matrix(matrix);
  ctx.timings.flows_seconds = seconds_since(t0);
  ctx.traffic_bytes = ctx.flows->traffic();
  ctx.flow_count = ctx.flows->flow_count();
}

void stage_metrics(RunContext& ctx, const net::Fabric& fabric) {
  if (!ctx.flows) {
    throw std::logic_error("stage_metrics: context has no flows");
  }
  const net::PortLoads loads = net::port_loads(*ctx.flows);
  ctx.makespan_bytes = loads.bottleneck();
  ctx.gamma_seconds = net::gamma_bound(loads, fabric);
}

net::SparseCoflowSpec stage_coflow(RunContext& ctx,
                                   double completion_epsilon) {
  if (!ctx.flows) {
    throw std::logic_error("stage_coflow: context has no flows");
  }
  net::SparseCoflowSpec spec(ctx.name, ctx.arrival,
                             ctx.flows->to_flows(completion_epsilon));
  spec.weight = ctx.weight;
  spec.prenormalized = true;  // to_flows output is normalized by construction
  ctx.flows.reset();
  return spec;
}

}  // namespace ccf::core
