#include "core/job.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/engine.hpp"
#include "core/registry.hpp"

namespace ccf::core {

JobReport run_job(const std::vector<OperatorSpec>& operators,
                  const JobOptions& options) {
  if (operators.empty()) {
    throw std::invalid_argument("run_job: no operators");
  }
  const std::size_t n = operators.front().workload.nodes;
  for (const OperatorSpec& op : operators) {
    if (op.workload.nodes != n) {
      throw std::invalid_argument("run_job: operators span different clusters");
    }
  }

  // One Engine session: every operator is a query; their coflows contend in
  // the shared epoch simulation under the job's inter-coflow scheduler.
  EngineOptions eopts;
  eopts.nodes = n;
  eopts.port_rate = options.port_rate;
  eopts.allocator = options.allocator;
  Engine engine(std::move(eopts));
  for (const OperatorSpec& op : operators) {
    QuerySpec query(op.name, data::generate_workload(op.workload),
                    options.scheduler, op.arrival);
    query.skew_handling = options.skew_handling;
    engine.submit(std::move(query));
  }
  EngineReport epoch = engine.drain();

  JobReport report;
  report.sim = std::move(epoch.sim);
  report.total_traffic_bytes = epoch.total_traffic_bytes;
  report.schedule_seconds = epoch.schedule_seconds;
  return report;
}

}  // namespace ccf::core
