#include "core/job.hpp"

#include <chrono>
#include <stdexcept>

#include "core/skew_handling.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"

namespace ccf::core {

JobReport run_job(const std::vector<OperatorSpec>& operators,
                  const JobOptions& options) {
  if (operators.empty()) {
    throw std::invalid_argument("run_job: no operators");
  }
  const std::size_t n = operators.front().workload.nodes;
  for (const OperatorSpec& op : operators) {
    if (op.workload.nodes != n) {
      throw std::invalid_argument("run_job: operators span different clusters");
    }
  }

  using Clock = std::chrono::steady_clock;
  JobReport report;
  net::Simulator sim(net::Fabric(n, options.port_rate),
                     net::make_allocator(options.allocator));

  const auto scheduler = join::make_scheduler(options.scheduler);
  for (const OperatorSpec& op : operators) {
    const data::Workload workload = data::generate_workload(op.workload);
    const PreparedInput prepared =
        apply_partial_duplication(workload, options.skew_handling);
    const opt::AssignmentProblem problem = prepared.problem();

    const auto t0 = Clock::now();
    const opt::Assignment dest = scheduler->schedule(problem);
    const auto t1 = Clock::now();
    report.schedule_seconds += std::chrono::duration<double>(t1 - t0).count();

    net::FlowMatrix flows =
        join::assignment_flows(prepared.residual, dest, prepared.initial_flows);
    report.total_traffic_bytes += flows.traffic();
    sim.add_coflow(net::CoflowSpec(op.name, op.arrival, std::move(flows)));
  }

  report.sim = sim.run();
  return report;
}

}  // namespace ccf::core
