// core::Engine — the multi-query execution engine (session architecture).
//
// The one-shot pipeline (run_pipeline) builds a fresh fabric, scheduler and
// simulator per join. The Engine inverts that: it owns ONE fabric for a whole
// session and accepts queries submitted over (simulated) time, so N
// concurrent joins become N coflows contending in a single online simulation
// instead of N isolated runs — the shape the coflow-stream literature (Shi et
// al.; Qiu/Stein/Zhong) evaluates schedulers on.
//
// Lifecycle:
//
//   Engine engine({.nodes = 100, .allocator = "varys"});
//   engine.submit(QuerySpec("q0", workload0));            // arrival 0
//   engine.submit(QuerySpec("q1", workload1, "ccf", 5.0)); // arrives at 5 s
//   EngineReport epoch = engine.drain();   // place (parallel) + simulate
//
// submit() resolves the query's placement policy through the registry once,
// at submission, and validates the workload against the session fabric.
// submit() is safe to call from many threads at once — the pending queue is
// mutex-guarded, and ids are handed out under the same lock — which is what
// lets core::Service push client submissions at an Engine shard while its
// driver thread drains it. drain() itself is single-consumer: one drain at a
// time (the Service guarantees this by construction: one driver per shard).
//
// drain() runs the stage graph (skew pre-pass -> placement -> flow
// generation) for every pending query concurrently on util::parallel — the
// contexts are independent, results land in submission order, and every
// registered scheduler is deterministic, so a drain is reproducible
// bit-for-bit regardless of thread count — then registers all coflows in one
// simulator and runs the epoch to completion. A session may interleave
// submit() and drain() freely; each drain opens a new simulation epoch at
// t = 0 (arrivals are relative to the epoch).
//
// Cross-epoch reuse (the always-on steady state):
//  * The simulator is ONE persistent object per session — reset_epoch()
//    between drains keeps the fabric, the allocator instance and the
//    monotonic arena, so steady-state epochs run out of the blocks the first
//    epoch allocated, with no malloc/free or allocator construction on the
//    drain path.
//  * The plan cache memoizes the stage-graph products (flow matrix +
//    model metrics) per (workload identity, placement policy, skew flag).
//    Re-submitting the same prepared workload — the prepared-statement
//    pattern of an always-on service — skips the whole placement fan-out.
//    Schedulers are deterministic, so a cache hit is bit-identical to a
//    recomputation; only the reported placement wall-clock differs (0).
//
// Determinism guarantee (pinned by tests/core/engine_test.cpp and
// tests/core/engine_reuse_test.cpp): an Engine fed queries serially — each
// submitted after the previous drain completes — reproduces run_pipeline's
// RunReports exactly, and a long-lived session's epoch N is bit-identical to
// the same batch drained by a freshly constructed Engine.
// run_pipeline itself is a one-query Engine session.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "data/workload.hpp"
#include "net/coflow.hpp"
#include "net/demand.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/flow.hpp"
#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "util/arena.hpp"

namespace ccf::core {

using QueryId = std::size_t;

/// Session-level configuration: one fabric + one inter-coflow policy.
struct EngineOptions {
  std::size_t nodes = 0;  ///< fabric width (required, > 0)
  double port_rate = net::Fabric::kDefaultPortRate;
  /// Inter-coflow scheduler (registry name: "fair" | "madd" | "varys" | ...).
  std::string allocator = "madd";
  /// Topology spec for the session network, net::TopologySpec::parse grammar
  /// (e.g. "leafspine:racks=32,hosts=16,spines=4,oversub=4"). Empty = the
  /// paper's flat non-blocking fabric. When set, `nodes` may be 0 (derived
  /// from the topology) or must match its host count; host ports run at
  /// port_rate. Every drain re-routes the epoch's aggregate demand through
  /// the routing policy and simulates on the resulting RoutedTopology.
  std::string topology;
  /// Route-selection policy on the topology (registry name: "ecmp" |
  /// "greedy" | "joint"); unused on the flat fabric.
  std::string routing = "ecmp";
  /// If false, drains skip the event simulation; per-query CCT reports the
  /// analytic Γ (exact for MADD on an idle fabric).
  bool simulate = true;
  /// Fault schedule injected into every drained epoch (empty = none).
  net::FaultSchedule faults;
  net::FaultOptions fault_options;
  /// Worker threads for the placement fan-out (0 = hardware concurrency).
  std::size_t placement_threads = 0;
  /// Plan-cache entries kept per session (0 disables the cache). Eviction is
  /// wholesale — when the table is full the next insert clears it — which is
  /// exact for the steady-state working sets the cache exists for (a bounded
  /// set of prepared workloads cycling through an always-on service).
  std::size_t plan_cache_capacity = 64;
  /// Event-engine knobs for the shared simulation.
  net::SimConfig sim;
};

/// One query submission: a workload plus its per-query policy choices.
struct QuerySpec {
  std::string name = "query";
  double arrival = 0.0;  ///< seconds after the epoch opens
  std::shared_ptr<const data::Workload> workload;
  std::string scheduler = "ccf";  ///< placement policy (registry name)
  bool skew_handling = true;
  /// Weighted-CCT importance of the query's coflow (finite, >= 0). The
  /// ordering allocators ("sincronia" | "lp-order") prioritize the drain
  /// epoch by it; classic allocators ignore it. Flows through the Service
  /// verbatim, so per-tenant weighting composes with WRR admission.
  double weight = 1.0;
  /// A raw sparse coflow submission (no workload, no placement): the spec is
  /// registered verbatim in the epoch simulation — per-flow start offsets,
  /// duplicate (src,dst) records, deadline and weight included — and its
  /// aggregated demand feeds metrics and the epoch routing. When set, the
  /// workload/scheduler fields above are ignored and name/arrival/weight are
  /// taken from the spec. This is the n²-free ingestion path: a 10k-rack
  /// submission carries only its flow list end to end.
  std::shared_ptr<const net::SparseCoflowSpec> sparse;

  QuerySpec() = default;
  QuerySpec(std::string query_name, data::Workload w,
            std::string scheduler_name = "ccf", double arrival_time = 0.0)
      : name(std::move(query_name)),
        arrival(arrival_time),
        workload(std::make_shared<const data::Workload>(std::move(w))),
        scheduler(std::move(scheduler_name)) {}
  QuerySpec(std::string query_name, std::shared_ptr<const data::Workload> w,
            std::string scheduler_name = "ccf", double arrival_time = 0.0)
      : name(std::move(query_name)),
        arrival(arrival_time),
        workload(std::move(w)),
        scheduler(std::move(scheduler_name)) {}
};

/// Outcome of one drained epoch. queries[] is in submission order and each
/// entry's RunReport.sim is left empty — the shared simulation of the whole
/// epoch is `sim` (a single-query epoch's queries[0] plus `sim` is exactly a
/// run_pipeline RunReport).
struct EngineReport {
  std::vector<RunReport> queries;
  net::SimReport sim;
  double makespan = 0.0;             ///< epoch completion (0 when !simulate)
  double total_traffic_bytes = 0.0;
  double schedule_seconds = 0.0;     ///< summed placement time of the epoch
};

/// Cumulative session counters across drains.
struct EngineStats {
  std::size_t epochs = 0;
  std::size_t queries = 0;
  double total_traffic_bytes = 0.0;
  double schedule_seconds = 0.0;
  std::size_t sim_events = 0;
  std::size_t plan_hits = 0;    ///< submissions served from the plan cache
  std::size_t plan_misses = 0;  ///< submissions that ran the stage graph
};

class Engine {
 public:
  /// Validates the options (nodes > 0, known allocator; throws
  /// std::invalid_argument otherwise) and builds the session fabric.
  explicit Engine(EngineOptions options);

  /// Enqueue a query for the next drain. Resolves its placement policy
  /// through the registry and checks the workload spans the session fabric;
  /// throws std::invalid_argument on unknown policy / size mismatch /
  /// missing workload / negative arrival. Thread-safe: concurrent submitters
  /// serialize on the session mutex and each rejected call leaves nothing
  /// half-submitted.
  QueryId submit(QuerySpec spec);

  /// Enqueue a pre-built coflow (flows already generated — e.g. run_query's
  /// fixed-point iterations re-submitting placed stages). Skips the prepare /
  /// place stages; the flow matrix must span the session fabric. Thread-safe
  /// like the QuerySpec overload.
  QueryId submit(std::string name, double arrival, net::FlowMatrix flows);

  /// Enqueue a raw sparse coflow — the scale ingestion path (no dense matrix
  /// anywhere; see QuerySpec::sparse). Validates the spec against the
  /// session fabric per validate_sparse_spec. Thread-safe like the QuerySpec
  /// overload.
  QueryId submit(net::SparseCoflowSpec spec);

  std::size_t pending() const;

  /// Place every pending query (concurrently), register their coflows in one
  /// shared simulation, run the epoch, and return its report. Draining with
  /// nothing pending returns an empty report. May be called repeatedly, and
  /// concurrently with submit() — queries submitted while a drain is in
  /// flight land in the next epoch. NOT safe to call from two threads at
  /// once (single-consumer; one driver per shard in core::Service).
  EngineReport drain();

  /// drain() into a caller-owned report, reusing its vector capacity — the
  /// steady-state entry point for always-on callers (core::Service drains
  /// into one report per shard, so epochs allocate nothing for the report
  /// containers after warm-up).
  void drain_into(EngineReport& report);

  EngineStats stats() const;
  const net::Fabric& fabric() const noexcept { return fabric_; }
  const EngineOptions& options() const noexcept { return options_; }
  /// The session topology (null on the flat fabric).
  const std::shared_ptr<const net::Topology>& topology() const noexcept {
    return topology_;
  }

  /// Bytes of backing storage the session's simulator arena currently owns.
  /// Steady-state epochs must not grow this (pinned by engine_reuse_test).
  std::size_t sim_arena_capacity() const noexcept {
    return sim_arena_.capacity();
  }
  /// Plan-cache entries currently resident (bounded by plan_cache_capacity).
  std::size_t plan_cache_size() const;

 private:
  /// Plan-cache key: workload identity (the shared_ptr object, not value
  /// equality) x placement policy x skew flag. The entry anchors the
  /// workload shared_ptr so a dead pointer can never be revived by an
  /// address-reusing allocation.
  struct PlanKey {
    const data::Workload* workload = nullptr;
    std::string scheduler;
    bool skew_handling = true;
    bool operator==(const PlanKey&) const = default;
  };
  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& k) const noexcept {
      std::size_t h = std::hash<const void*>()(k.workload);
      h ^= std::hash<std::string>()(k.scheduler) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      return h ^ (k.skew_handling ? 0x517cc1b727220a95ull : 0);
    }
  };
  struct PlanEntry {
    std::shared_ptr<const data::Workload> workload;  ///< key anchor
    /// The plan in the simulator's normalized form: exactly what
    /// FlowMatrix::to_flows would produce from the regenerated matrix at the
    /// session's completion epsilon. Hits bypass the dense matrix entirely —
    /// no n x n copy at submission, no per-coflow flattening at drain; the
    /// coflow enters the simulator through the sparse ingestion path, which
    /// normalizes a flow list bit-identically to the matrix path.
    std::shared_ptr<const std::vector<net::Flow>> flow_list;
    double traffic_bytes = 0.0;
    double makespan_bytes = 0.0;
    double gamma_seconds = 0.0;
    std::size_t flow_count = 0;
    bool skew_handled = false;
  };

  EngineOptions options_;
  net::Fabric fabric_;
  /// Session topology + routing policy (both null/unused on the flat
  /// fabric). fabric_ stays the analytic-metric surface either way: per-query
  /// Γ (stage_metrics) is the flat single-switch bound, while the simulation
  /// runs on the routed topology.
  std::shared_ptr<const net::Topology> topology_;
  std::unique_ptr<net::RoutingPolicy> routing_;
  /// Aggregate sparse demand of the epoch being drained (clear()ed and
  /// re-accumulated per drain, so the columns' capacity is recycled).
  std::optional<net::Demand> epoch_demand_;
  /// Guards pending_, next_id_, stats_, and the plan cache. Submissions are
  /// short critical sections; drain holds it only to swap the batch out and
  /// to fold the epoch into stats_/cache — the placement fan-out and the
  /// simulation run outside the lock.
  mutable std::mutex mutex_;
  std::vector<RunContext> pending_;
  /// The epoch being drained (single-consumer; see drain()). A member so the
  /// swap in drain_into recycles both vectors' capacity across epochs.
  std::vector<RunContext> drain_batch_;
  std::unordered_map<PlanKey, PlanEntry, PlanKeyHash> plan_cache_;
  /// Simulator scratch recycled across drains: reset at each drain boundary,
  /// so steady-state epochs run their SoA columns and link tables out of the
  /// blocks the first drain allocated (see util::MonotonicArena). Unused when
  /// options_.sim.arena is caller-supplied.
  util::MonotonicArena sim_arena_;
  /// The session's persistent simulator (net::Simulator::reset_epoch):
  /// fabric, allocator instance and arena survive across drains. Built on
  /// the first simulated drain.
  std::unique_ptr<net::Simulator> sim_;
  EngineStats stats_;
  QueryId next_id_ = 0;
};

/// Validate a sparse coflow spec against a fabric of `nodes` ports by the
/// Simulator's ingestion rules: finite arrival/deadline/weight >= 0, every
/// flow with endpoints in range, src != dst, finite volume >= 0 and a finite
/// start offset >= 0. Throws std::invalid_argument on the first violation.
/// Engine::submit applies this up front even for prenormalized specs, so a
/// mislabeled spec cannot reach the simulator's trusted path.
void validate_sparse_spec(const net::SparseCoflowSpec& spec,
                          std::size_t nodes);

/// Non-throwing form of validate_sparse_spec — the Service's admission
/// pre-check (drivers must never throw mid-drain).
bool sparse_spec_valid(const net::SparseCoflowSpec& spec,
                       std::size_t nodes) noexcept;

}  // namespace ccf::core
