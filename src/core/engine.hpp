// core::Engine — the multi-query execution engine (session architecture).
//
// The one-shot pipeline (run_pipeline) builds a fresh fabric, scheduler and
// simulator per join. The Engine inverts that: it owns ONE fabric for a whole
// session and accepts queries submitted over (simulated) time, so N
// concurrent joins become N coflows contending in a single online simulation
// instead of N isolated runs — the shape the coflow-stream literature (Shi et
// al.; Qiu/Stein/Zhong) evaluates schedulers on.
//
// Lifecycle:
//
//   Engine engine({.nodes = 100, .allocator = "varys"});
//   engine.submit(QuerySpec("q0", workload0));            // arrival 0
//   engine.submit(QuerySpec("q1", workload1, "ccf", 5.0)); // arrives at 5 s
//   EngineReport epoch = engine.drain();   // place (parallel) + simulate
//
// submit() resolves the query's placement policy through the registry once,
// at submission, and validates the workload against the session fabric.
// drain() runs the stage graph (skew pre-pass -> placement -> flow
// generation) for every pending query concurrently on util::parallel — the
// contexts are independent, results land in submission order, and every
// registered scheduler is deterministic, so a drain is reproducible
// bit-for-bit regardless of thread count — then registers all coflows in one
// simulator and runs the epoch to completion. A session may interleave
// submit() and drain() freely; each drain opens a new simulation epoch at
// t = 0 (arrivals are relative to the epoch).
//
// Determinism guarantee (pinned by tests/core/engine_test.cpp): an Engine fed
// queries serially — each submitted after the previous drain completes —
// reproduces run_pipeline's RunReports exactly, because a one-query epoch
// executes the identical stage code on an identical single-coflow simulation.
// run_pipeline itself is a one-query Engine session.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stages.hpp"
#include "data/workload.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/flow.hpp"
#include "net/simulator.hpp"
#include "util/arena.hpp"

namespace ccf::core {

using QueryId = std::size_t;

/// Session-level configuration: one fabric + one inter-coflow policy.
struct EngineOptions {
  std::size_t nodes = 0;  ///< fabric width (required, > 0)
  double port_rate = net::Fabric::kDefaultPortRate;
  /// Inter-coflow scheduler (registry name: "fair" | "madd" | "varys" | ...).
  std::string allocator = "madd";
  /// If false, drains skip the event simulation; per-query CCT reports the
  /// analytic Γ (exact for MADD on an idle fabric).
  bool simulate = true;
  /// Fault schedule injected into every drained epoch (empty = none).
  net::FaultSchedule faults;
  net::FaultOptions fault_options;
  /// Worker threads for the placement fan-out (0 = hardware concurrency).
  std::size_t placement_threads = 0;
  /// Event-engine knobs for the shared simulation.
  net::SimConfig sim;
};

/// One query submission: a workload plus its per-query policy choices.
struct QuerySpec {
  std::string name = "query";
  double arrival = 0.0;  ///< seconds after the epoch opens
  std::shared_ptr<const data::Workload> workload;
  std::string scheduler = "ccf";  ///< placement policy (registry name)
  bool skew_handling = true;

  QuerySpec() = default;
  QuerySpec(std::string query_name, data::Workload w,
            std::string scheduler_name = "ccf", double arrival_time = 0.0)
      : name(std::move(query_name)),
        arrival(arrival_time),
        workload(std::make_shared<const data::Workload>(std::move(w))),
        scheduler(std::move(scheduler_name)) {}
};

/// Outcome of one drained epoch. queries[] is in submission order and each
/// entry's RunReport.sim is left empty — the shared simulation of the whole
/// epoch is `sim` (a single-query epoch's queries[0] plus `sim` is exactly a
/// run_pipeline RunReport).
struct EngineReport {
  std::vector<RunReport> queries;
  net::SimReport sim;
  double makespan = 0.0;             ///< epoch completion (0 when !simulate)
  double total_traffic_bytes = 0.0;
  double schedule_seconds = 0.0;     ///< summed placement time of the epoch
};

/// Cumulative session counters across drains.
struct EngineStats {
  std::size_t epochs = 0;
  std::size_t queries = 0;
  double total_traffic_bytes = 0.0;
  double schedule_seconds = 0.0;
  std::size_t sim_events = 0;
};

class Engine {
 public:
  /// Validates the options (nodes > 0, known allocator; throws
  /// std::invalid_argument otherwise) and builds the session fabric.
  explicit Engine(EngineOptions options);

  /// Enqueue a query for the next drain. Resolves its placement policy
  /// through the registry and checks the workload spans the session fabric;
  /// throws std::invalid_argument on unknown policy / size mismatch /
  /// missing workload / negative arrival.
  QueryId submit(QuerySpec spec);

  /// Enqueue a pre-built coflow (flows already generated — e.g. run_query's
  /// fixed-point iterations re-submitting placed stages). Skips the prepare /
  /// place stages; the flow matrix must span the session fabric.
  QueryId submit(std::string name, double arrival, net::FlowMatrix flows);

  std::size_t pending() const noexcept { return pending_.size(); }

  /// Place every pending query (concurrently), register their coflows in one
  /// shared simulation, run the epoch, and return its report. Draining with
  /// nothing pending returns an empty report. May be called repeatedly.
  EngineReport drain();

  const EngineStats& stats() const noexcept { return stats_; }
  const net::Fabric& fabric() const noexcept { return fabric_; }
  const EngineOptions& options() const noexcept { return options_; }

 private:
  EngineOptions options_;
  net::Fabric fabric_;
  std::vector<RunContext> pending_;
  /// Simulator scratch recycled across drains: reset at each drain boundary,
  /// so steady-state epochs run their SoA columns and link tables out of the
  /// blocks the first drain allocated (see util::MonotonicArena). Unused when
  /// options_.sim.arena is caller-supplied.
  util::MonotonicArena sim_arena_;
  EngineStats stats_;
  QueryId next_id_ = 0;
};

}  // namespace ccf::core
