#include "net/topology.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <limits>
#include <queue>
#include <span>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace ccf::net {

namespace {

constexpr std::uint32_t kNoGroup = 0xffffffffu;

}  // namespace

/// Incremental assembler shared by the three factories. Builders register
/// links first (host ports in the canonical [0,2n) layout, then switch
/// links), then groups of segment paths, then map every ordered pair onto a
/// group.
class TopologyBuilder {
 public:
  TopologyBuilder(TopologyKind kind, std::size_t hosts,
                  std::size_t switch_count) {
    if (hosts == 0) throw std::invalid_argument("Topology: no hosts");
    topo_.kind_ = kind;
    topo_.nodes_ = hosts;
    topo_.graph_nodes_ = hosts + switch_count;
    topo_.pair_group_.assign(hosts * hosts, kNoGroup);
    topo_.group_off_.push_back(0);
    topo_.path_off_.push_back(0);
  }

  /// Register one directed link; returns its LinkId.
  Topology::LinkId add_link(std::uint32_t tail, std::uint32_t head,
                            double capacity) {
    if (capacity <= 0.0) {
      throw std::invalid_argument("Topology: link capacity must be > 0");
    }
    topo_.capacity_.push_back(capacity);
    topo_.ends_.push_back({tail, head});
    return static_cast<Topology::LinkId>(topo_.capacity_.size() - 1);
  }

  /// Register the canonical host ports: egress i = host -> attachment
  /// switch, ingress n + i = attachment switch -> host.
  void add_host_ports(const std::vector<std::uint32_t>& attachment,
                      double host_rate) {
    for (std::size_t i = 0; i < topo_.nodes_; ++i) {
      add_link(static_cast<std::uint32_t>(i), attachment[i], host_rate);
    }
    for (std::size_t i = 0; i < topo_.nodes_; ++i) {
      add_link(attachment[i], static_cast<std::uint32_t>(i), host_rate);
    }
  }

  /// Register one group of segment paths; returns the group id. Paths hold
  /// switch-level links only (empty = hosts share an attachment switch).
  std::uint32_t add_group(
      const std::vector<std::vector<Topology::LinkId>>& paths) {
    if (paths.empty()) throw std::invalid_argument("Topology: empty group");
    for (const auto& path : paths) {
      topo_.path_links_.insert(topo_.path_links_.end(), path.begin(),
                               path.end());
      topo_.path_off_.push_back(
          static_cast<std::uint32_t>(topo_.path_links_.size()));
    }
    topo_.group_off_.push_back(
        static_cast<std::uint32_t>(topo_.path_off_.size() - 1));
    topo_.max_paths_ = std::max(topo_.max_paths_, paths.size());
    return static_cast<std::uint32_t>(topo_.group_off_.size() - 2);
  }

  void set_pair_group(std::size_t src, std::size_t dst, std::uint32_t group) {
    topo_.pair_group_[src * topo_.nodes_ + dst] = group;
  }

  std::shared_ptr<const Topology> finish() {
    for (std::size_t i = 0; i < topo_.nodes_; ++i) {
      for (std::size_t j = 0; j < topo_.nodes_; ++j) {
        if (i != j && topo_.pair_group_[i * topo_.nodes_ + j] == kNoGroup) {
          throw std::logic_error("Topology: pair without a route group");
        }
      }
    }
    return std::make_shared<const Topology>(std::move(topo_));
  }

 private:
  Topology topo_;
};

std::size_t Topology::path_count(std::uint32_t src, std::uint32_t dst) const {
  assert(src != dst && "Topology route-sets are defined for src != dst");
  const std::uint32_t g = pair_group_.at(src * nodes_ + dst);
  if (g == kNoGroup) {  // diagonal entry in a release build
    throw std::out_of_range("Topology: no route-set for src == dst");
  }
  return group_off_[g + 1] - group_off_[g];
}

void Topology::append_path_links(std::uint32_t src, std::uint32_t dst,
                                 std::uint32_t k,
                                 std::vector<LinkId>& out) const {
  assert(src != dst && "Topology route-sets are defined for src != dst");
  const std::uint32_t g = pair_group_.at(src * nodes_ + dst);
  if (g == kNoGroup) {  // diagonal entry in a release build
    throw std::out_of_range("Topology: no route-set for src == dst");
  }
  const std::uint32_t path = group_off_[g] + k;
  if (path >= group_off_[g + 1]) {
    throw std::out_of_range("Topology: path index out of range");
  }
  out.push_back(static_cast<LinkId>(src));  // egress port
  for (std::uint32_t p = path_off_[path]; p < path_off_[path + 1]; ++p) {
    out.push_back(path_links_[p]);
  }
  out.push_back(static_cast<LinkId>(nodes_ + dst));  // ingress port
}

// --- leaf-spine -------------------------------------------------------

std::shared_ptr<const Topology> Topology::leaf_spine(
    std::size_t racks, std::size_t hosts_per_rack, std::size_t spines,
    double host_rate, double oversubscription) {
  if (racks == 0 || hosts_per_rack == 0 || spines == 0) {
    throw std::invalid_argument("leaf_spine: empty dimension");
  }
  if (host_rate <= 0.0 || oversubscription <= 0.0) {
    throw std::invalid_argument("leaf_spine: rates must be > 0");
  }
  const std::size_t n = racks * hosts_per_rack;
  TopologyBuilder b(TopologyKind::kLeafSpine, n, racks + spines);
  const auto tor = [&](std::size_t rack) {
    return static_cast<std::uint32_t>(n + rack);
  };
  const auto spine = [&](std::size_t s) {
    return static_cast<std::uint32_t>(n + racks + s);
  };

  std::vector<std::uint32_t> attachment(n);
  for (std::size_t i = 0; i < n; ++i) attachment[i] = tor(i / hosts_per_rack);
  b.add_host_ports(attachment, host_rate);

  // Uplinks [2n, 2n + R*S), downlinks [2n + R*S, 2n + 2*R*S) — the
  // MultiPathFabric layout, with per-uplink capacity splitting the rack's
  // oversubscribed aggregate across the spines.
  const double uplink_rate = static_cast<double>(hosts_per_rack) * host_rate /
                             (oversubscription * static_cast<double>(spines));
  std::vector<Topology::LinkId> up(racks * spines), down(racks * spines);
  for (std::size_t r = 0; r < racks; ++r) {
    for (std::size_t s = 0; s < spines; ++s) {
      up[r * spines + s] = b.add_link(tor(r), spine(s), uplink_rate);
    }
  }
  for (std::size_t r = 0; r < racks; ++r) {
    for (std::size_t s = 0; s < spines; ++s) {
      down[r * spines + s] = b.add_link(spine(s), tor(r), uplink_rate);
    }
  }

  const std::uint32_t intra = b.add_group({{}});
  std::vector<std::uint32_t> cross(racks * racks, kNoGroup);
  for (std::size_t rs = 0; rs < racks; ++rs) {
    for (std::size_t rd = 0; rd < racks; ++rd) {
      if (rs == rd) continue;
      std::vector<std::vector<Topology::LinkId>> paths;
      paths.reserve(spines);
      for (std::size_t s = 0; s < spines; ++s) {
        paths.push_back({up[rs * spines + s], down[rd * spines + s]});
      }
      cross[rs * racks + rd] = b.add_group(paths);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t ri = i / hosts_per_rack, rj = j / hosts_per_rack;
      b.set_pair_group(i, j, ri == rj ? intra : cross[ri * racks + rj]);
    }
  }
  return b.finish();
}

// --- fat-tree ---------------------------------------------------------

std::shared_ptr<const Topology> Topology::fat_tree(
    std::size_t k, double host_rate, double core_oversubscription) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat_tree: k must be even and >= 2");
  }
  if (host_rate <= 0.0 || core_oversubscription <= 0.0) {
    throw std::invalid_argument("fat_tree: rates must be > 0");
  }
  const std::size_t h = k / 2;          // half-k: hosts per edge, aggs per pod
  const std::size_t pods = k;
  const std::size_t n = k * h * h;      // k^3 / 4 hosts
  const std::size_t edges = pods * h;   // edge switches, globally indexed
  const std::size_t aggs = pods * h;
  const std::size_t cores = h * h;
  TopologyBuilder b(TopologyKind::kFatTree, n, edges + aggs + cores);
  const auto edge_sw = [&](std::size_t pod, std::size_t e) {
    return static_cast<std::uint32_t>(n + pod * h + e);
  };
  const auto agg_sw = [&](std::size_t pod, std::size_t a) {
    return static_cast<std::uint32_t>(n + edges + pod * h + a);
  };
  const auto core_sw = [&](std::size_t a, std::size_t m) {
    return static_cast<std::uint32_t>(n + edges + aggs + a * h + m);
  };

  // Host i lives in pod i / h^2, under edge (i mod h^2) / h.
  std::vector<std::uint32_t> attachment(n);
  for (std::size_t i = 0; i < n; ++i) {
    attachment[i] = edge_sw(i / (h * h), (i % (h * h)) / h);
  }
  b.add_host_ports(attachment, host_rate);

  // Edge<->agg links, then agg<->core (core (a, m) connects to agg index a
  // of every pod — the standard wiring).
  std::vector<Topology::LinkId> ea_up(edges * h), ea_down(edges * h);
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t e = 0; e < h; ++e) {
      for (std::size_t a = 0; a < h; ++a) {
        ea_up[(p * h + e) * h + a] =
            b.add_link(edge_sw(p, e), agg_sw(p, a), host_rate);
      }
    }
  }
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t e = 0; e < h; ++e) {
      for (std::size_t a = 0; a < h; ++a) {
        ea_down[(p * h + e) * h + a] =
            b.add_link(agg_sw(p, a), edge_sw(p, e), host_rate);
      }
    }
  }
  const double core_rate = host_rate / core_oversubscription;
  std::vector<Topology::LinkId> ac_up(pods * h * h), ac_down(pods * h * h);
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t a = 0; a < h; ++a) {
      for (std::size_t m = 0; m < h; ++m) {
        ac_up[(p * h + a) * h + m] =
            b.add_link(agg_sw(p, a), core_sw(a, m), core_rate);
      }
    }
  }
  for (std::size_t p = 0; p < pods; ++p) {
    for (std::size_t a = 0; a < h; ++a) {
      for (std::size_t m = 0; m < h; ++m) {
        ac_down[(p * h + a) * h + m] =
            b.add_link(core_sw(a, m), agg_sw(p, a), core_rate);
      }
    }
  }

  // Groups keyed by the (global edge, global edge) pair.
  const std::uint32_t intra = b.add_group({{}});
  std::vector<std::uint32_t> group(edges * edges, kNoGroup);
  for (std::size_t ps = 0; ps < pods; ++ps) {
    for (std::size_t es = 0; es < h; ++es) {
      const std::size_t ge_s = ps * h + es;
      for (std::size_t pd = 0; pd < pods; ++pd) {
        for (std::size_t ed = 0; ed < h; ++ed) {
          const std::size_t ge_d = pd * h + ed;
          if (ge_s == ge_d) {
            group[ge_s * edges + ge_d] = intra;
            continue;
          }
          std::vector<std::vector<Topology::LinkId>> paths;
          if (ps == pd) {
            // Same pod: one path per aggregation switch.
            paths.reserve(h);
            for (std::size_t a = 0; a < h; ++a) {
              paths.push_back(
                  {ea_up[ge_s * h + a], ea_down[ge_d * h + a]});
            }
          } else {
            // Inter-pod: one path per core, i.e. per (agg index, core slot).
            paths.reserve(h * h);
            for (std::size_t a = 0; a < h; ++a) {
              for (std::size_t m = 0; m < h; ++m) {
                paths.push_back({ea_up[ge_s * h + a],
                                 ac_up[(ps * h + a) * h + m],
                                 ac_down[(pd * h + a) * h + m],
                                 ea_down[ge_d * h + a]});
              }
            }
          }
          group[ge_s * edges + ge_d] = b.add_group(paths);
        }
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ge_i = (i / (h * h)) * h + (i % (h * h)) / h;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t ge_j = (j / (h * h)) * h + (j % (h * h)) / h;
      b.set_pair_group(i, j, group[ge_i * edges + ge_j]);
    }
  }
  return b.finish();
}

// --- waxman -----------------------------------------------------------

namespace {

/// Loop-free router paths, shortest (by hops) first: Yen's algorithm over a
/// BFS base, with deterministic lexicographic tie-breaking — identical
/// inputs give identical route-sets on every run and thread count.
class KShortestPaths {
 public:
  explicit KShortestPaths(const std::vector<std::vector<std::uint32_t>>& adj)
      : adj_(adj) {}

  std::vector<std::vector<std::uint32_t>> find(std::uint32_t src,
                                               std::uint32_t dst,
                                               std::size_t k) const {
    std::vector<std::vector<std::uint32_t>> result;
    const auto first = bfs(src, dst, {}, {});
    if (first.empty()) return result;
    result.push_back(first);
    // Candidate pool ordered (length, lexicographic) for determinism.
    std::vector<std::vector<std::uint32_t>> candidates;
    while (result.size() < k) {
      const auto& base = result.back();
      for (std::size_t spur = 0; spur + 1 < base.size(); ++spur) {
        const std::vector<std::uint32_t> root(base.begin(),
                                              base.begin() + spur + 1);
        // Ban edges leaving the spur node along any already-found path
        // sharing the root, and every root node except the spur itself.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> banned_edges;
        for (const auto& p : result) {
          if (p.size() > spur + 1 &&
              std::equal(root.begin(), root.end(), p.begin())) {
            banned_edges.emplace_back(p[spur], p[spur + 1]);
          }
        }
        std::vector<std::uint32_t> banned_nodes(root.begin(), root.end() - 1);
        const auto tail = bfs(base[spur], dst, banned_edges, banned_nodes);
        if (tail.empty()) continue;
        std::vector<std::uint32_t> path(root.begin(), root.end() - 1);
        path.insert(path.end(), tail.begin(), tail.end());
        if (std::find(result.begin(), result.end(), path) == result.end() &&
            std::find(candidates.begin(), candidates.end(), path) ==
                candidates.end()) {
          candidates.push_back(std::move(path));
        }
      }
      if (candidates.empty()) break;
      const auto best = std::min_element(
          candidates.begin(), candidates.end(),
          [](const auto& a, const auto& b) {
            if (a.size() != b.size()) return a.size() < b.size();
            return a < b;
          });
      result.push_back(*best);
      candidates.erase(best);
    }
    return result;
  }

 private:
  std::vector<std::uint32_t> bfs(
      std::uint32_t src, std::uint32_t dst,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& banned_edges,
      const std::vector<std::uint32_t>& banned_nodes) const {
    constexpr std::uint32_t kUnset = 0xffffffffu;
    std::vector<std::uint32_t> parent(adj_.size(), kUnset);
    std::vector<std::uint8_t> blocked(adj_.size(), 0);
    for (const auto node : banned_nodes) blocked[node] = 1;
    if (blocked[src] || blocked[dst]) return {};
    std::queue<std::uint32_t> frontier;
    frontier.push(src);
    parent[src] = src;
    while (!frontier.empty() && parent[dst] == kUnset) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (const std::uint32_t v : adj_[u]) {  // neighbors sorted ascending
        if (parent[v] != kUnset || blocked[v]) continue;
        if (std::find(banned_edges.begin(), banned_edges.end(),
                      std::make_pair(u, v)) != banned_edges.end()) {
          continue;
        }
        parent[v] = u;
        frontier.push(v);
      }
    }
    if (parent[dst] == kUnset) return {};
    std::vector<std::uint32_t> path;
    for (std::uint32_t v = dst; v != src; v = parent[v]) path.push_back(v);
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    return path;
  }

  const std::vector<std::vector<std::uint32_t>>& adj_;
};

}  // namespace

std::shared_ptr<const Topology> Topology::waxman(std::size_t hosts,
                                                 double host_rate,
                                                 std::uint64_t seed,
                                                 const WaxmanOptions& options) {
  if (hosts == 0) throw std::invalid_argument("waxman: no hosts");
  if (options.routers == 0 || options.routers > hosts) {
    throw std::invalid_argument("waxman: routers must be in [1, hosts]");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0 || options.beta <= 0.0 ||
      options.beta > 1.0) {
    throw std::invalid_argument("waxman: alpha/beta must be in (0, 1]");
  }
  if (options.route_k == 0 || options.trunk_scale <= 0.0 || host_rate <= 0.0) {
    throw std::invalid_argument("waxman: route_k/trunk_scale must be > 0");
  }
  const std::size_t r = options.routers;

  // Seeded geometry + edge draw. The stream constant separates this use of
  // the seed from other derive_seed users.
  util::Pcg32 rng(util::derive_seed(seed, 131), 131);
  std::vector<double> x(r), y(r);
  for (std::size_t i = 0; i < r; ++i) {
    x[i] = rng.uniform01();
    y[i] = rng.uniform01();
  }
  const double diameter = std::sqrt(2.0);  // unit square
  std::vector<std::vector<std::uint32_t>> adj(r);
  auto connect = [&](std::size_t u, std::size_t v) {
    adj[u].push_back(static_cast<std::uint32_t>(v));
    adj[v].push_back(static_cast<std::uint32_t>(u));
  };
  for (std::size_t u = 0; u < r; ++u) {
    for (std::size_t v = u + 1; v < r; ++v) {
      const double d = std::hypot(x[u] - x[v], y[u] - y[v]);
      if (rng.uniform01() <
          options.alpha * std::exp(-d / (options.beta * diameter))) {
        connect(u, v);
      }
    }
  }
  // Patch connectivity deterministically: link every later component to the
  // nearest router of an earlier one (BRITE regenerates; patching keeps the
  // draw and stays seed-stable).
  {
    std::vector<std::uint32_t> comp(r, 0xffffffffu);
    std::uint32_t ncomp = 0;
    for (std::size_t s = 0; s < r; ++s) {
      if (comp[s] != 0xffffffffu) continue;
      std::queue<std::uint32_t> q;
      q.push(static_cast<std::uint32_t>(s));
      comp[s] = ncomp;
      while (!q.empty()) {
        const auto u = q.front();
        q.pop();
        for (const auto v : adj[u]) {
          if (comp[v] == 0xffffffffu) {
            comp[v] = ncomp;
            q.push(v);
          }
        }
      }
      if (ncomp > 0) {
        // First router of this component joins its nearest router in an
        // earlier component.
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t v = 0; v < r; ++v) {
          if (comp[v] >= ncomp) continue;
          const double d = std::hypot(x[s] - x[v], y[s] - y[v]);
          if (d < best_d) {
            best_d = d;
            best = v;
          }
        }
        connect(s, best);
      }
      ++ncomp;
    }
  }
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());

  const std::size_t hosts_per_router = (hosts + r - 1) / r;
  const double trunk_rate = options.trunk_scale *
                            static_cast<double>(hosts_per_router) * host_rate;

  TopologyBuilder b(TopologyKind::kIrregular, hosts, r);
  std::vector<std::uint32_t> attachment(hosts);
  for (std::size_t i = 0; i < hosts; ++i) {
    attachment[i] = static_cast<std::uint32_t>(hosts + i % r);
  }
  b.add_host_ports(attachment, host_rate);

  // Two directed links per undirected trunk; trunk_link[u][v] = id of u->v.
  std::vector<std::vector<Topology::LinkId>> trunk(
      r, std::vector<Topology::LinkId>(r, 0));
  for (std::size_t u = 0; u < r; ++u) {
    for (const auto v : adj[u]) {
      trunk[u][v] = b.add_link(static_cast<std::uint32_t>(hosts + u),
                               static_cast<std::uint32_t>(hosts + v),
                               trunk_rate);
    }
  }

  const KShortestPaths ksp(adj);
  const std::uint32_t intra = b.add_group({{}});
  std::vector<std::uint32_t> group(r * r, kNoGroup);
  for (std::size_t u = 0; u < r; ++u) {
    for (std::size_t v = 0; v < r; ++v) {
      if (u == v) {
        group[u * r + v] = intra;
        continue;
      }
      const auto router_paths = ksp.find(static_cast<std::uint32_t>(u),
                                         static_cast<std::uint32_t>(v),
                                         options.route_k);
      if (router_paths.empty()) {
        throw std::logic_error("waxman: disconnected despite patching");
      }
      std::vector<std::vector<Topology::LinkId>> paths;
      paths.reserve(router_paths.size());
      for (const auto& rp : router_paths) {
        std::vector<Topology::LinkId> links;
        links.reserve(rp.size() - 1);
        for (std::size_t s = 0; s + 1 < rp.size(); ++s) {
          links.push_back(trunk[rp[s]][rp[s + 1]]);
        }
        paths.push_back(std::move(links));
      }
      group[u * r + v] = b.add_group(paths);
    }
  }
  for (std::size_t i = 0; i < hosts; ++i) {
    for (std::size_t j = 0; j < hosts; ++j) {
      if (i != j) b.set_pair_group(i, j, group[(i % r) * r + (j % r)]);
    }
  }
  return b.finish();
}

// --- spec parsing -----------------------------------------------------

namespace {

double parse_double(std::string_view key, std::string_view value) {
  try {
    return std::stod(std::string(value));
  } catch (const std::exception&) {
    throw std::invalid_argument("TopologySpec: bad value for " +
                                std::string(key));
  }
}

std::size_t parse_size(std::string_view key, std::string_view value) {
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw std::invalid_argument("TopologySpec: bad value for " +
                                std::string(key));
  }
  return out;
}

}  // namespace

TopologySpec TopologySpec::parse(std::string_view text) {
  TopologySpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view kind = text.substr(0, colon);
  if (kind == "leafspine") {
    spec.kind = TopologyKind::kLeafSpine;
  } else if (kind == "fattree") {
    spec.kind = TopologyKind::kFatTree;
  } else if (kind == "waxman") {
    spec.kind = TopologyKind::kIrregular;
  } else {
    throw std::invalid_argument("TopologySpec: unknown kind: " +
                                std::string(kind));
  }
  if (colon == std::string_view::npos) return spec;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("TopologySpec: expected key=value, got " +
                                  std::string(item));
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "racks") {
      spec.racks = parse_size(key, value);
    } else if (key == "hosts") {
      spec.hosts = parse_size(key, value);
    } else if (key == "spines") {
      spec.spines = parse_size(key, value);
    } else if (key == "oversub") {
      spec.oversub = parse_double(key, value);
    } else if (key == "k") {
      spec.fat_k = parse_size(key, value);
    } else if (key == "core-scale") {
      spec.core_scale = parse_double(key, value);
    } else if (key == "nodes") {
      spec.nodes = parse_size(key, value);
    } else if (key == "routers") {
      spec.waxman.routers = parse_size(key, value);
    } else if (key == "seed") {
      spec.seed = parse_size(key, value);
    } else if (key == "alpha") {
      spec.waxman.alpha = parse_double(key, value);
    } else if (key == "beta") {
      spec.waxman.beta = parse_double(key, value);
    } else if (key == "trunk-scale") {
      spec.waxman.trunk_scale = parse_double(key, value);
    } else if (key == "paths") {
      spec.waxman.route_k = parse_size(key, value);
    } else {
      throw std::invalid_argument("TopologySpec: unknown key: " +
                                  std::string(key));
    }
  }
  return spec;
}

namespace {

std::string trimmed_double(double v) {
  std::string s = std::to_string(v);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string TopologySpec::to_string() const {
  switch (kind) {
    case TopologyKind::kLeafSpine:
      return "leafspine:racks=" + std::to_string(racks) +
             ",hosts=" + std::to_string(hosts) +
             ",spines=" + std::to_string(spines) +
             ",oversub=" + trimmed_double(oversub);
    case TopologyKind::kFatTree:
      return "fattree:k=" + std::to_string(fat_k) +
             ",core-scale=" + trimmed_double(core_scale);
    case TopologyKind::kIrregular:
      return "waxman:nodes=" + std::to_string(nodes) +
             ",routers=" + std::to_string(waxman.routers) +
             ",seed=" + std::to_string(seed) +
             ",alpha=" + trimmed_double(waxman.alpha) +
             ",beta=" + trimmed_double(waxman.beta) +
             ",trunk-scale=" + trimmed_double(waxman.trunk_scale) +
             ",paths=" + std::to_string(waxman.route_k);
  }
  throw std::logic_error("TopologySpec: unknown kind");
}

std::size_t TopologySpec::node_count() const {
  switch (kind) {
    case TopologyKind::kLeafSpine:
      return racks * hosts;
    case TopologyKind::kFatTree:
      return fat_k * fat_k * fat_k / 4;
    case TopologyKind::kIrregular:
      return nodes;
  }
  throw std::logic_error("TopologySpec: unknown kind");
}

std::shared_ptr<const Topology> make_topology(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::kLeafSpine:
      return Topology::leaf_spine(spec.racks, spec.hosts, spec.spines,
                                  spec.host_rate, spec.oversub);
    case TopologyKind::kFatTree:
      return Topology::fat_tree(spec.fat_k, spec.host_rate, spec.core_scale);
    case TopologyKind::kIrregular:
      return Topology::waxman(spec.nodes, spec.host_rate, spec.seed,
                              spec.waxman);
  }
  throw std::logic_error("make_topology: unknown kind");
}

// --- routed adapter ---------------------------------------------------

RoutedTopology::RoutedTopology(std::shared_ptr<const Topology> topology,
                               RouteChoice choice)
    : topology_(std::move(topology)), choice_(std::move(choice)) {
  if (!topology_) throw std::invalid_argument("RoutedTopology: null topology");
  const std::size_t n = topology_->nodes();
  if (choice_.size() != n * n) {
    throw std::invalid_argument("RoutedTopology: choice size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && choice_[i * n + j] >=
                        topology_->path_count(static_cast<std::uint32_t>(i),
                                              static_cast<std::uint32_t>(j))) {
        throw std::out_of_range("RoutedTopology: path index out of range");
      }
    }
  }
}

void RoutedTopology::append_links(std::uint32_t src, std::uint32_t dst,
                                  std::vector<LinkId>& out) const {
  assert(src != dst && "Network::append_links requires src != dst");
  topology_->append_path_links(src, dst, choice_[src * topology_->nodes() + dst],
                               out);
}

// --- basic routing policies ------------------------------------------

RouteChoice route_ecmp(const Topology& topology) {
  const std::size_t n = topology.nodes();
  RouteChoice choice(n * n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        choice[i * n + j] = static_cast<std::uint32_t>(
            (i + j) % topology.path_count(static_cast<std::uint32_t>(i),
                                          static_cast<std::uint32_t>(j)));
      }
    }
  }
  return choice;
}

RouteChoice route_collapsed(const Topology& topology) {
  const std::size_t n = topology.nodes();
  return RouteChoice(n * n, 0);
}

RouteChoice route_greedy(const Topology& topology, const Demand& demand) {
  const std::size_t n = topology.nodes();
  if (demand.nodes() != n) {
    throw std::invalid_argument("route_greedy: size mismatch");
  }
  RouteChoice choice = route_ecmp(topology);

  struct Entry {
    std::uint32_t src, dst;
    double volume;
  };
  std::vector<Entry> pending;
  {
    const std::span<const std::uint32_t> srcs = demand.srcs();
    const std::span<const std::uint32_t> dsts = demand.dsts();
    const std::span<const double> vols = demand.volumes();
    pending.reserve(vols.size());
    for (std::size_t k = 0; k < vols.size(); ++k) {
      pending.push_back({srcs[k], dsts[k], vols[k]});
    }
  }
  std::sort(pending.begin(), pending.end(), [](const Entry& a, const Entry& b) {
    if (a.volume != b.volume) return a.volume > b.volume;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  std::vector<double> load(topology.link_count(), 0.0);
  std::vector<Topology::LinkId> scratch;
  for (const Entry& e : pending) {
    const std::size_t paths = topology.path_count(e.src, e.dst);
    std::uint32_t best = 0;
    double best_util = std::numeric_limits<double>::infinity();
    for (std::uint32_t k = 0; k < paths; ++k) {
      scratch.clear();
      topology.append_path_links(e.src, e.dst, k, scratch);
      double util = 0.0;
      for (const auto l : scratch) {
        util = std::max(util,
                        (load[l] + e.volume) / topology.link_capacity(l));
      }
      if (util < best_util) {
        best_util = util;
        best = k;
      }
    }
    choice[e.src * n + e.dst] = best;
    scratch.clear();
    topology.append_path_links(e.src, e.dst, best, scratch);
    for (const auto l : scratch) load[l] += e.volume;
  }
  return choice;
}

RouteChoice route_greedy(const Topology& topology, const FlowMatrix& flows) {
  if (flows.nodes() != topology.nodes()) {
    throw std::invalid_argument("route_greedy: size mismatch");
  }
  return route_greedy(topology, Demand::from_matrix(flows));
}

}  // namespace ccf::net
