// Generic capacitated-link network model.
//
// The paper's model constrains each flow f_ij by the set of links L_ij it
// traverses (constraint (1.5)), then specializes to the non-blocking switch
// where L_ij = {egress_i, ingress_j}. This interface keeps the general form:
// a Network enumerates the links of any (src,dst) pair and their capacities,
// so rate allocators and bounds work for both the flat fabric (fabric.hpp)
// and richer topologies (rack.hpp), exactly the "easily extended to complex
// network conditions by adding parameters to these two constraints" note of
// §III-A.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccf::net {

/// A network as a set of capacitated links plus a flow->links mapping.
class Network {
 public:
  using LinkId = std::uint32_t;

  virtual ~Network() = default;

  /// Number of end hosts.
  virtual std::size_t nodes() const noexcept = 0;
  /// Total number of capacitated links.
  virtual std::size_t link_count() const noexcept = 0;
  /// Capacity of one link in bytes/second. Pristine topologies keep this
  /// > 0; a fault-adjusted view (faults.hpp) may report 0 for a failed link.
  virtual double link_capacity(LinkId link) const = 0;
  /// Append the links flow (src -> dst) traverses (the paper's L_ij).
  /// Requires src != dst; both < nodes(). Implementations debug-assert the
  /// src != dst precondition — a self-flow has no L_ij, and callers
  /// (simulator, bounds, routing) all filter the diagonal before asking.
  /// Note the distinct *intra-rack* case src != dst, rack(src) == rack(dst),
  /// which IS valid and short-circuits the switch layer (rack.cpp,
  /// multipath.cpp, topology.cpp return just the two host ports).
  virtual void append_links(std::uint32_t src, std::uint32_t dst,
                            std::vector<LinkId>& out) const = 0;

  /// Links forming a node's egress-side attachment — what a node-level fault
  /// (faults.hpp) degrades. The default assumes the convention every bundled
  /// topology follows: LinkId `node` is node's egress port and
  /// `nodes() + node` its ingress port; a network with a different port
  /// layout must override both.
  virtual void append_egress_links(std::uint32_t node,
                                   std::vector<LinkId>& out) const {
    out.push_back(static_cast<LinkId>(node));
  }
  /// Ingress-side counterpart of append_egress_links.
  virtual void append_ingress_links(std::uint32_t node,
                                    std::vector<LinkId>& out) const {
    out.push_back(static_cast<LinkId>(nodes() + node));
  }

  /// Convenience wrapper around append_links.
  std::vector<LinkId> links_of(std::uint32_t src, std::uint32_t dst) const {
    std::vector<LinkId> out;
    append_links(src, dst, out);
    return out;
  }
};

}  // namespace ccf::net
