#include "net/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccf::net {

double TraceCoflow::total_bytes() const noexcept {
  double mb = 0.0;
  for (const auto& [rack, size_mb] : reducers) mb += size_mb;
  return mb * 1e6;
}

CoflowTrace parse_coflow_trace(std::istream& in) {
  CoflowTrace trace;
  std::size_t declared = 0;
  {
    std::string header;
    if (!std::getline(in, header)) {
      throw std::invalid_argument("parse_coflow_trace: empty input");
    }
    std::istringstream hs(header);
    if (!(hs >> trace.racks >> declared) || trace.racks == 0) {
      throw std::invalid_argument("parse_coflow_trace: bad header line");
    }
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceCoflow c;
    double arrival_ms = 0.0;
    std::size_t mappers = 0;
    if (!(ls >> c.id >> arrival_ms >> mappers)) {
      throw std::invalid_argument("parse_coflow_trace: bad coflow line: " + line);
    }
    if (arrival_ms < 0.0) {
      throw std::invalid_argument("parse_coflow_trace: negative arrival");
    }
    c.arrival_seconds = arrival_ms / 1000.0;
    if (mappers == 0) {
      throw std::invalid_argument("parse_coflow_trace: coflow with no mappers");
    }
    for (std::size_t m = 0; m < mappers; ++m) {
      std::uint32_t rack = 0;
      if (!(ls >> rack) || rack >= trace.racks) {
        throw std::invalid_argument("parse_coflow_trace: bad mapper rack");
      }
      c.mappers.push_back(rack);
    }
    std::size_t reducers = 0;
    if (!(ls >> reducers) || reducers == 0) {
      throw std::invalid_argument("parse_coflow_trace: bad reducer count");
    }
    for (std::size_t r = 0; r < reducers; ++r) {
      std::string tok;
      if (!(ls >> tok)) {
        throw std::invalid_argument("parse_coflow_trace: missing reducer");
      }
      const auto colon = tok.find(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("parse_coflow_trace: reducer needs rack:MB");
      }
      const auto rack = static_cast<std::uint32_t>(
          std::stoul(tok.substr(0, colon)));
      const double mb = std::stod(tok.substr(colon + 1));
      if (rack >= trace.racks || mb < 0.0) {
        throw std::invalid_argument("parse_coflow_trace: bad reducer entry");
      }
      c.reducers.emplace_back(rack, mb);
    }
    trace.coflows.push_back(std::move(c));
  }
  if (declared != 0 && declared != trace.coflows.size()) {
    throw std::invalid_argument(
        "parse_coflow_trace: header declares " + std::to_string(declared) +
        " coflows, file has " + std::to_string(trace.coflows.size()));
  }
  return trace;
}

CoflowTrace load_coflow_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_coflow_trace: cannot open " + path);
  return parse_coflow_trace(in);
}

void write_coflow_trace(const CoflowTrace& trace, std::ostream& out) {
  out << trace.racks << ' ' << trace.coflows.size() << '\n';
  out.precision(15);
  for (const TraceCoflow& c : trace.coflows) {
    out << c.id << ' ' << c.arrival_seconds * 1000.0 << ' '
        << c.mappers.size();
    for (const auto m : c.mappers) out << ' ' << m;
    out << ' ' << c.reducers.size();
    for (const auto& [rack, mb] : c.reducers) out << ' ' << rack << ':' << mb;
    out << '\n';
  }
}

std::vector<CoflowSpec> to_coflow_specs(const CoflowTrace& trace) {
  std::vector<CoflowSpec> specs;
  specs.reserve(trace.coflows.size());
  for (const TraceCoflow& c : trace.coflows) {
    FlowMatrix flows(trace.racks);
    const double mapper_share = 1.0 / static_cast<double>(c.mappers.size());
    for (const auto& [reducer, mb] : c.reducers) {
      const double per_mapper = mb * 1e6 * mapper_share;
      for (const auto mapper : c.mappers) {
        if (mapper != reducer) flows.add(mapper, reducer, per_mapper);
      }
    }
    specs.emplace_back(c.id, c.arrival_seconds, std::move(flows));
  }
  return specs;
}

std::vector<SparseCoflowSpec> to_sparse_coflow_specs(const CoflowTrace& trace) {
  std::vector<SparseCoflowSpec> specs;
  specs.reserve(trace.coflows.size());
  for (const TraceCoflow& c : trace.coflows) {
    std::vector<Flow> flows;
    flows.reserve(c.mappers.size() * c.reducers.size());
    const double mapper_share = 1.0 / static_cast<double>(c.mappers.size());
    for (const auto& [reducer, mb] : c.reducers) {
      const double per_mapper = mb * 1e6 * mapper_share;
      for (const auto mapper : c.mappers) {
        if (mapper == reducer) continue;
        Flow f;
        f.src = mapper;
        f.dst = reducer;
        f.volume = per_mapper;
        flows.push_back(f);
      }
    }
    specs.emplace_back(c.id, c.arrival_seconds, std::move(flows));
  }
  return specs;
}

CoflowTrace generate_synthetic_trace(const SyntheticTraceOptions& options,
                                     util::Pcg32& rng) {
  if (options.racks == 0) {
    throw std::invalid_argument("generate_synthetic_trace: racks must be >= 1");
  }
  CoflowTrace trace;
  trace.racks = options.racks;
  const auto racks32 = static_cast<std::uint32_t>(options.racks);

  std::vector<double> arrivals(options.coflows);
  for (double& a : arrivals) a = rng.uniform(0.0, options.duration_seconds);
  std::sort(arrivals.begin(), arrivals.end());

  auto sample_racks = [&](std::size_t count) {
    std::vector<std::uint32_t> racks;
    while (racks.size() < count) {
      const std::uint32_t r = rng.bounded(racks32);
      if (std::find(racks.begin(), racks.end(), r) == racks.end()) {
        racks.push_back(r);
      }
    }
    return racks;
  };

  for (std::size_t i = 0; i < options.coflows; ++i) {
    TraceCoflow c;
    c.id = "synth" + std::to_string(i);
    c.arrival_seconds = arrivals[i];
    const bool heavy = rng.uniform01() < options.heavy_fraction;
    // Narrow coflows touch a handful of racks; heavy ones fan wide.
    const std::size_t max_width = std::max<std::size_t>(options.racks / 2, 1);
    const std::size_t width =
        heavy ? std::min<std::size_t>(max_width, 5 + rng.bounded(20))
              : std::min<std::size_t>(max_width, 1 + rng.bounded(4));
    c.mappers = sample_racks(width);
    const auto reducer_racks = sample_racks(std::max<std::size_t>(width / 2, 1));
    for (const auto rack : reducer_racks) {
      const double mb = heavy
                            ? rng.uniform(options.heavy_mb_min,
                                          options.heavy_mb_max)
                            : rng.uniform(options.small_mb_min,
                                          options.small_mb_max);
      c.reducers.emplace_back(rack, mb);
    }
    trace.coflows.push_back(std::move(c));
  }
  return trace;
}

}  // namespace ccf::net
