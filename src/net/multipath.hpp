// Multi-path (leaf-spine) topology with per-flow routing — the
// RAPIER-flavored extension the paper's related work points to ("more
// advanced techniques on coflow scheduling (e.g., routing) will be able to
// be integrated in our framework").
//
// S spine switches interconnect the racks; every rack has one dedicated
// uplink/downlink pair per spine. A cross-rack flow must choose ONE spine —
// the routing decision — and then traverses
//
//   egress_src -> up(rack_src, spine) -> down(rack_dst, spine) -> ingress_dst.
//
// MultiPathFabric describes the topology, Routing holds the per-(src,dst)
// spine choice, and RoutedNetwork adapts the pair to the generic Network
// interface so every allocator, bound and simulator works unchanged. Two
// routing policies are provided: static ECMP-style hashing (the baseline)
// and a RAPIER-style greedy that routes heavy flows first onto the least
// loaded spine.
//
// The general-topology routing layer lives below: RoutingPolicy turns a
// Topology (topology.hpp) plus an aggregate demand matrix into a RouteChoice,
// and route_joint is the joint routing×bandwidth co-optimizer — it descends
// on Γ of the routed network, which for a single aggregate coflow is exactly
// the CCT of the MADD fill (metrics.hpp), by repeatedly moving the heaviest
// flows off the bottleneck link and re-evaluating the fill.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "net/demand.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"

namespace ccf::net {

/// Leaf-spine topology description.
class MultiPathFabric {
 public:
  /// Every rack gets one uplink and one downlink of `spine_link_rate` to
  /// each of the `spines` switches.
  MultiPathFabric(std::size_t racks, std::size_t hosts_per_rack,
                  std::size_t spines, double host_rate,
                  double spine_link_rate);

  std::size_t racks() const noexcept { return racks_; }
  std::size_t hosts_per_rack() const noexcept { return hosts_per_rack_; }
  std::size_t spines() const noexcept { return spines_; }
  std::size_t nodes() const noexcept { return racks_ * hosts_per_rack_; }
  double host_rate() const noexcept { return host_rate_; }
  double spine_link_rate() const noexcept { return spine_link_rate_; }

  std::size_t rack_of(std::size_t node) const noexcept {
    return node / hosts_per_rack_;
  }
  /// Paths available to a flow: 1 intra-rack, `spines` cross-rack.
  std::size_t path_count(std::uint32_t src, std::uint32_t dst) const noexcept {
    return rack_of(src) == rack_of(dst) ? 1 : spines_;
  }

  // Link id layout shared with RoutedNetwork.
  std::size_t link_count() const noexcept {
    return 2 * nodes() + 2 * racks_ * spines_;
  }
  Network::LinkId egress_link(std::size_t node) const {
    return static_cast<Network::LinkId>(node);
  }
  Network::LinkId ingress_link(std::size_t node) const {
    return static_cast<Network::LinkId>(nodes() + node);
  }
  Network::LinkId uplink(std::size_t rack, std::size_t spine) const {
    return static_cast<Network::LinkId>(2 * nodes() + rack * spines_ + spine);
  }
  Network::LinkId downlink(std::size_t rack, std::size_t spine) const {
    return static_cast<Network::LinkId>(2 * nodes() + racks_ * spines_ +
                                        rack * spines_ + spine);
  }

 private:
  std::size_t racks_;
  std::size_t hosts_per_rack_;
  std::size_t spines_;
  double host_rate_;
  double spine_link_rate_;
};

/// Per-(src,dst) spine choice for cross-rack flows (intra-rack entries are
/// ignored). Defaults to spine 0 everywhere.
class Routing {
 public:
  explicit Routing(std::size_t nodes);

  std::uint32_t spine(std::size_t src, std::size_t dst) const noexcept {
    return spine_[src * nodes_ + dst];
  }
  void set_spine(std::size_t src, std::size_t dst, std::uint32_t spine_id) {
    spine_[src * nodes_ + dst] = spine_id;
  }
  std::size_t nodes() const noexcept { return nodes_; }

 private:
  std::size_t nodes_;
  std::vector<std::uint32_t> spine_;
};

/// (topology, routing) pair as a generic Network.
class RoutedNetwork final : public Network {
 public:
  RoutedNetwork(std::shared_ptr<const MultiPathFabric> fabric, Routing routing);

  std::size_t nodes() const noexcept override { return fabric_->nodes(); }
  std::size_t link_count() const noexcept override {
    return fabric_->link_count();
  }
  double link_capacity(LinkId link) const override;
  void append_links(std::uint32_t src, std::uint32_t dst,
                    std::vector<LinkId>& out) const override;

  const Routing& routing() const noexcept { return routing_; }

 private:
  std::shared_ptr<const MultiPathFabric> fabric_;
  Routing routing_;
};

/// Static ECMP-style routing: spine = (src + dst) mod spines. Oblivious to
/// volumes — the baseline routing of production fabrics.
Routing route_ecmp(const MultiPathFabric& fabric, const FlowMatrix& flows);

/// RAPIER-style greedy joint routing: flows in descending volume order each
/// take the spine that minimizes the resulting worst uplink/downlink
/// utilization. Volume-aware, so heavy flows spread across spines.
Routing route_least_loaded(const MultiPathFabric& fabric,
                           const FlowMatrix& flows);

// --- general-topology routing (topology.hpp) --------------------------

/// Knobs of the joint routing×bandwidth optimizer.
struct JointRouteOptions {
  /// Improvement rounds after the greedy/ECMP warm start.
  std::size_t max_rounds = 8;
  /// Flows re-routed off the bottleneck link per round (heaviest first).
  std::size_t moves_per_round = 16;
  /// A round must lower Γ by more than this relative amount to be kept.
  double min_gain = 1e-9;
};

/// Joint routing×bandwidth co-optimization: start from the better of ECMP
/// and volume-greedy, then iterate — find the link with the worst
/// utilization under the current route choice, move the heaviest flows
/// crossing it onto their least-bottlenecked alternative paths, re-evaluate
/// the fill (Γ of the routed network = the MADD fill's single-coflow CCT),
/// and keep the round only if Γ improved. By construction the result is
/// never worse than static ECMP on the same instance; the routing property
/// suite pins that invariant. The sparse Demand overload is the core
/// implementation (it scans only the aggregate's nonzero pairs); the
/// FlowMatrix overload bridges through Demand::from_matrix, whose triple
/// order matches the dense ascending scan, so both are bit-identical.
RouteChoice route_joint(const Topology& topology, const Demand& demand,
                        const JointRouteOptions& options = {});
RouteChoice route_joint(const Topology& topology, const FlowMatrix& flows,
                        const JointRouteOptions& options = {});

/// Γ of an aggregate demand on a topology under a route choice: the max over
/// all links of (bytes routed through the link / link capacity) — the
/// analytic single-coflow CCT of the routed network, and route_joint's
/// objective.
double routed_gamma(const Topology& topology, const Demand& demand,
                    const RouteChoice& choice);
double routed_gamma(const Topology& topology, const FlowMatrix& flows,
                    const RouteChoice& choice);

/// A named RouteChoice producer, so route selection composes with every
/// scheduler×allocator pair as a one-flag ablation (core::registry lists the
/// names; Engine/Service and ccf_sim dispatch through it per drain epoch).
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Produce the path choice for an aggregate demand ("demand" may be empty
  /// — ECMP ignores it entirely).
  virtual RouteChoice choose(const Topology& topology,
                             const Demand& demand) const = 0;
  /// Dense-view convenience bridge (tests and small-n callers).
  RouteChoice choose(const Topology& topology, const FlowMatrix& flows) const {
    return choose(topology, Demand::from_matrix(flows));
  }
};

/// Resolve a routing policy by name: "ecmp" (static hash), "greedy"
/// (volume-greedy warm start only), or "joint" (route_joint). Throws
/// std::invalid_argument on unknown names.
std::unique_ptr<RoutingPolicy> make_routing_policy(std::string_view name);

}  // namespace ccf::net
