#include "net/flow.hpp"

#include <stdexcept>

namespace ccf::net {

FlowMatrix::FlowMatrix(std::size_t nodes)
    : nodes_(nodes), data_(nodes * nodes, 0.0) {
  if (nodes == 0) throw std::invalid_argument("FlowMatrix: nodes must be >= 1");
}

double FlowMatrix::traffic() const noexcept {
  double t = 0.0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = 0; j < nodes_; ++j) {
      if (i != j) t += volume(i, j);
    }
  }
  return t;
}

double FlowMatrix::egress(std::size_t src) const noexcept {
  double t = 0.0;
  for (std::size_t j = 0; j < nodes_; ++j) {
    if (j != src) t += volume(src, j);
  }
  return t;
}

double FlowMatrix::ingress(std::size_t dst) const noexcept {
  double t = 0.0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    if (i != dst) t += volume(i, dst);
  }
  return t;
}

std::size_t FlowMatrix::flow_count(double min_volume) const noexcept {
  std::size_t c = 0;
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = 0; j < nodes_; ++j) {
      if (i != j && volume(i, j) > min_volume) ++c;
    }
  }
  return c;
}

std::vector<Flow> FlowMatrix::to_flows(double min_volume) const {
  std::vector<Flow> flows;
  flows.reserve(flow_count(min_volume));
  for (std::size_t i = 0; i < nodes_; ++i) {
    for (std::size_t j = 0; j < nodes_; ++j) {
      if (i == j) continue;
      const double v = volume(i, j);
      if (v > min_volume) {
        Flow f;
        f.src = static_cast<std::uint32_t>(i);
        f.dst = static_cast<std::uint32_t>(j);
        f.volume = f.remaining = v;
        flows.push_back(f);
      }
    }
  }
  return flows;
}

}  // namespace ccf::net
