#include "net/allocator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ccf::net {

namespace detail {

std::vector<double> link_residuals(const Network& network) {
  std::vector<double> residual(network.link_count());
  for (std::size_t l = 0; l < residual.size(); ++l) {
    residual[l] = network.link_capacity(static_cast<Network::LinkId>(l));
  }
  return residual;
}

void maxmin_fill(std::span<Flow*> flows, const Network& network,
                 std::span<double> residual) {
  // Materialize each flow's link set once.
  std::vector<std::uint32_t> link_index;   // concatenated link ids
  std::vector<std::uint32_t> link_offset;  // per-flow start into link_index
  link_offset.reserve(flows.size() + 1);
  link_offset.push_back(0);
  std::vector<Network::LinkId> scratch;
  std::vector<std::size_t> count(residual.size(), 0);
  for (Flow* f : flows) {
    f->rate = 0.0;
    scratch.clear();
    network.append_links(f->src, f->dst, scratch);
    for (const auto l : scratch) {
      link_index.push_back(l);
      ++count[l];
    }
    link_offset.push_back(static_cast<std::uint32_t>(link_index.size()));
  }

  std::vector<bool> frozen(flows.size(), false);
  std::size_t remaining = flows.size();
  while (remaining > 0) {
    // Bottleneck link: smallest fair share among links in use.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = residual.size();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (count[l] == 0) continue;
      const double share =
          std::max(residual[l], 0.0) / static_cast<double>(count[l]);
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    if (best_link == residual.size()) break;  // defensive
    // Freeze every unfrozen flow crossing the bottleneck link at the share.
    for (std::size_t idx = 0; idx < flows.size(); ++idx) {
      if (frozen[idx]) continue;
      bool crosses = false;
      for (std::uint32_t o = link_offset[idx]; o < link_offset[idx + 1]; ++o) {
        if (link_index[o] == best_link) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      flows[idx]->rate = best_share;
      frozen[idx] = true;
      --remaining;
      for (std::uint32_t o = link_offset[idx]; o < link_offset[idx + 1]; ++o) {
        residual[link_index[o]] -= best_share;
        --count[link_index[o]];
      }
    }
  }
}

void madd_sequential(std::span<Flow> active,
                     std::span<const std::uint32_t> order,
                     const Network& network, std::span<double> residual) {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Bucket active flow indices per coflow; only flows of coflows named in
  // `order` are touched (their rates reset), so callers can compose this
  // with pre-allocated guarantees for other coflows.
  std::uint32_t max_id = 0;
  for (const Flow& f : active) max_id = std::max(max_id, f.coflow);
  std::vector<bool> in_order(max_id + 1, false);
  for (const std::uint32_t cid : order) {
    if (cid <= max_id) in_order[cid] = true;
  }
  std::vector<std::vector<std::size_t>> by_coflow(max_id + 1);
  for (std::size_t idx = 0; idx < active.size(); ++idx) {
    if (!in_order[active[idx].coflow]) continue;
    active[idx].rate = 0.0;
    by_coflow[active[idx].coflow].push_back(idx);
  }

  std::vector<double> load(residual.size());
  std::vector<Network::LinkId> scratch;
  for (const std::uint32_t cid : order) {
    if (cid >= by_coflow.size() || by_coflow[cid].empty()) continue;
    const auto& members = by_coflow[cid];
    std::fill(load.begin(), load.end(), 0.0);
    for (const std::size_t idx : members) {
      scratch.clear();
      network.append_links(active[idx].src, active[idx].dst, scratch);
      for (const auto l : scratch) load[l] += active[idx].remaining;
    }
    // Γ against *residual* capacities; an exhausted link starves the coflow
    // for this epoch (backfilling semantics).
    double gamma = 0.0;
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (load[l] <= 0.0) continue;
      if (residual[l] > 1e-12) {
        gamma = std::max(gamma, load[l] / residual[l]);
      } else {
        gamma = kInf;
        break;
      }
    }
    if (gamma <= 0.0 || gamma == kInf) continue;  // nothing to send or starved
    for (const std::size_t idx : members) {
      const double rate = active[idx].remaining / gamma;
      active[idx].rate = rate;
      scratch.clear();
      network.append_links(active[idx].src, active[idx].dst, scratch);
      for (const auto l : scratch) residual[l] -= rate;
    }
    // Clamp tiny negative residuals from floating-point accumulation.
    for (double& r : residual) r = std::max(r, 0.0);
  }
}

std::vector<double> coflow_bottlenecks(std::span<const Flow> active,
                                       std::size_t coflow_count,
                                       const Network& network) {
  std::vector<double> load(coflow_count * network.link_count(), 0.0);
  std::vector<Network::LinkId> scratch;
  for (const Flow& f : active) {
    scratch.clear();
    network.append_links(f.src, f.dst, scratch);
    for (const auto l : scratch) {
      load[f.coflow * network.link_count() + l] += f.remaining;
    }
  }
  std::vector<double> bottleneck(coflow_count, 0.0);
  for (std::size_t c = 0; c < coflow_count; ++c) {
    double g = 0.0;
    for (std::size_t l = 0; l < network.link_count(); ++l) {
      const double v = load[c * network.link_count() + l];
      if (v > 0.0) {
        g = std::max(
            g, v / network.link_capacity(static_cast<Network::LinkId>(l)));
      }
    }
    bottleneck[c] = g;
  }
  return bottleneck;
}

}  // namespace detail

// One factory per policy translation unit.
std::unique_ptr<RateAllocator> make_fair_sharing_allocator();
std::unique_ptr<RateAllocator> make_madd_allocator();
std::unique_ptr<RateAllocator> make_varys_allocator();
std::unique_ptr<RateAllocator> make_aalo_allocator();
std::unique_ptr<RateAllocator> make_varys_deadline_allocator();

std::unique_ptr<RateAllocator> make_allocator(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kFairSharing: return make_fair_sharing_allocator();
    case AllocatorKind::kMadd: return make_madd_allocator();
    case AllocatorKind::kVarys: return make_varys_allocator();
    case AllocatorKind::kAalo: return make_aalo_allocator();
    case AllocatorKind::kVarysDeadline: return make_varys_deadline_allocator();
  }
  throw std::invalid_argument("make_allocator: invalid kind");
}

std::unique_ptr<RateAllocator> make_allocator(const std::string& name) {
  if (name == "fair") return make_allocator(AllocatorKind::kFairSharing);
  if (name == "madd") return make_allocator(AllocatorKind::kMadd);
  if (name == "varys") return make_allocator(AllocatorKind::kVarys);
  if (name == "aalo") return make_allocator(AllocatorKind::kAalo);
  if (name == "varys-edf") {
    return make_allocator(AllocatorKind::kVarysDeadline);
  }
  throw std::invalid_argument("make_allocator: unknown allocator: " + name);
}

}  // namespace ccf::net
