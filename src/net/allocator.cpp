#include "net/allocator.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"

#if defined(CCF_SIMD_FILL) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ccf::net {

namespace {

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

/// Process-unique stamp for AllocatorContext::generation(). A fresh stamp on
/// every bind/reset lets allocator-private caches detect throwaway contexts
/// (the legacy AoS bridge makes a new one per call) even when the object
/// lands at a reused address.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

/// Above this many group members, maxmin_fill's setup pass (rate zeroing +
/// per-link incidence counting) runs through util::parallel_for. The
/// water-filling iterations themselves are inherently sequential (each
/// bottleneck choice depends on the previous freeze), so only the
/// embarrassingly parallel setup fans out.
constexpr std::size_t kParallelSetupThreshold = 4096;
constexpr std::size_t kParallelSetupGrain = 2048;

}  // namespace

void AllocatorContext::bind(const Network& network, std::size_t coflow_count) {
  network_ = &network;
  coflow_count_ = coflow_count;
  generation_ = next_generation();
  capacity_.resize(network.link_count());
  for (std::size_t l = 0; l < capacity_.size(); ++l) {
    capacity_[l] = network.link_capacity(static_cast<Network::LinkId>(l));
  }
  residual_.assign(capacity_.size(), 0.0);
  link_table_.clear();
  dirty_.clear();
  dirty_flag_.assign(coflow_count, 0);
  key.assign(coflow_count, 0.0);
  key_valid.assign(coflow_count, 0);
  coflow_dt.assign(coflow_count, kInfDt);
  order.clear();
  order_valid = false;
  sched_.clear();
  sched_pos_.assign(coflow_count, kNoSlot);
  sched_seen_dirty_ = 0;
  sched_primed_ = false;
  group_start_.assign(coflow_count, 0);
  group_len_.assign(coflow_count, 0);
  group_cursor_.resize(coflow_count);
  group_present_.clear();
  groups_valid_ = false;
  min_dt_ = kInfDt;
  min_dt_valid_ = false;
  rejection_pending = false;
}

std::span<const Network::LinkId> AllocatorContext::links(std::uint32_t src,
                                                         std::uint32_t dst) {
  const std::uint64_t pair =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  auto it = link_table_.find(pair);
  if (it == link_table_.end()) {
    it = link_table_.emplace(pair, std::vector<Network::LinkId>{}).first;
    network_->append_links(src, dst, it->second);
  }
  return it->second;
}

void AllocatorContext::update_capacities(std::span<const double> capacities) {
  if (capacities.size() != capacity_.size()) {
    throw std::invalid_argument(
        "AllocatorContext::update_capacities: size mismatch");
  }
  std::copy(capacities.begin(), capacities.end(), capacity_.begin());
}

std::span<double> AllocatorContext::reset_residual() {
  std::copy(capacity_.begin(), capacity_.end(), residual_.begin());
  return residual_;
}

void AllocatorContext::begin_epoch() {
  groups_valid_ = false;
  min_dt_ = kInfDt;
  min_dt_valid_ = false;
  rejection_pending = false;
}

void AllocatorContext::reset_caches() {
  generation_ = next_generation();
  clear_dirty();
  std::fill(key_valid.begin(), key_valid.end(), 0);
  std::fill(coflow_dt.begin(), coflow_dt.end(), kInfDt);
  order.clear();
  order_valid = false;
  sched_.clear();
  std::fill(sched_pos_.begin(), sched_pos_.end(), kNoSlot);
  sched_primed_ = false;
}

void AllocatorContext::touch(std::uint32_t coflow) {
  if (coflow >= dirty_flag_.size() || dirty_flag_[coflow]) return;
  dirty_flag_[coflow] = 1;
  dirty_.push_back(coflow);
}

void AllocatorContext::clear_dirty() {
  for (const std::uint32_t c : dirty_) dirty_flag_[c] = 0;
  dirty_.clear();
  sched_seen_dirty_ = 0;
}

void AllocatorContext::group_by_coflow(const ActiveFlows& flows) {
  if (groups_valid_) return;
  groups_valid_ = true;
  // Sparse counting sort: clear only the coflows present last epoch, count
  // and scatter only over the active flows. Segment order in group_flow_ is
  // first-touch order (irrelevant to callers); within a segment the members
  // stay in ascending flow-position order, exactly as the dense prefix-sum
  // version produced.
  for (const std::uint32_t c : group_present_) group_len_[c] = 0;
  group_present_.clear();
  for (std::size_t i = 0; i < flows.count; ++i) {
    if (group_len_[flows.coflow[i]]++ == 0) {
      group_present_.push_back(flows.coflow[i]);
    }
  }
  std::uint32_t off = 0;
  for (const std::uint32_t c : group_present_) {
    group_start_[c] = off;
    group_cursor_[c] = off;
    off += group_len_[c];
  }
  group_flow_.resize(flows.count);
  for (std::size_t i = 0; i < flows.count; ++i) {
    group_flow_[group_cursor_[flows.coflow[i]]++] =
        static_cast<std::uint32_t>(i);
  }
}

std::span<const std::uint32_t> AllocatorContext::schedulable(
    std::span<const CoflowState> coflows) {
  if (!sched_primed_) {
    sched_primed_ = true;
    for (std::uint32_t c = 0; c < coflows.size(); ++c) {
      if (coflows[c].started && !coflows[c].completed) {
        sched_pos_[c] = static_cast<std::uint32_t>(sched_.size());
        sched_.push_back(c);
      }
    }
  }
  for (; sched_seen_dirty_ < dirty_.size(); ++sched_seen_dirty_) {
    const std::uint32_t c = dirty_[sched_seen_dirty_];
    const bool want = coflows[c].started && !coflows[c].completed;
    const bool have = sched_pos_[c] != kNoSlot;
    if (want && !have) {
      sched_pos_[c] = static_cast<std::uint32_t>(sched_.size());
      sched_.push_back(c);
    } else if (!want && have) {
      const std::uint32_t last = sched_.back();
      sched_[sched_pos_[c]] = last;
      sched_pos_[last] = sched_pos_[c];
      sched_.pop_back();
      sched_pos_[c] = kNoSlot;
    }
  }
  return sched_;
}

namespace detail {

void build_group_structure(const ActiveFlows& flows,
                           std::span<const std::uint32_t> members,
                           AllocatorContext& ctx, GroupStructure& gs) {
  const std::size_t m_count = members.size();
  auto& link_slot = ctx.scratch_u32b;  // link id -> dense slot (kNoSlot-clean)
  if (link_slot.size() < ctx.link_count()) {
    link_slot.assign(ctx.link_count(), kNoSlot);
  }

  // Discover the links this group uses; ascending ids so bottleneck ties
  // resolve to the smallest link id, matching a full 0..L scan.
  gs.used.clear();
  std::size_t incidences = 0;
  bool all_linked = true;
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::uint32_t p = members[m];
    incidences += flows.link_len[p];
    all_linked = all_linked && flows.link_len[p] != 0;
    for (const auto l : flows.links(p)) {
      if (link_slot[l] == kNoSlot) {
        link_slot[l] = 0;  // provisional; real slots assigned after sorting
        gs.used.push_back(l);
      }
    }
  }
  std::sort(gs.used.begin(), gs.used.end());
  const std::size_t u_count = gs.used.size();
  for (std::size_t u = 0; u < u_count; ++u) {
    link_slot[gs.used[u]] = static_cast<std::uint32_t>(u);
  }

  // Incidence counts. Parallel for big groups (per-chunk counts merged
  // afterwards); sequential otherwise.
  gs.cnt.assign(u_count, 0);
  if (m_count >= kParallelSetupThreshold) {
    const std::size_t chunks =
        util::parallel_chunk_count(m_count, kParallelSetupGrain);
    std::vector<std::uint32_t> chunk_cnt(chunks * u_count, 0);
    util::parallel_for(
        m_count, kParallelSetupGrain, [&](std::size_t b, std::size_t e) {
          std::uint32_t* local =
              chunk_cnt.data() + (b / kParallelSetupGrain) * u_count;
          for (std::size_t m = b; m < e; ++m) {
            for (const auto l : flows.links(members[m])) ++local[link_slot[l]];
          }
        });
    for (std::size_t k = 0; k < chunks; ++k) {
      const std::uint32_t* local = chunk_cnt.data() + k * u_count;
      for (std::size_t u = 0; u < u_count; ++u) gs.cnt[u] += local[u];
    }
  } else {
    for (std::size_t m = 0; m < m_count; ++m) {
      const std::uint32_t p = members[m];
      if (flows.link_len[p] == 2) {  // fabric flows: egress + ingress
        const auto* lp = flows.link_ptr[p];
        ++gs.cnt[link_slot[lp[0]]];
        ++gs.cnt[link_slot[lp[1]]];
      } else {
        for (const auto l : flows.links(p)) ++gs.cnt[link_slot[l]];
      }
    }
  }

  gs.cnt_d.resize(u_count);
  for (std::size_t u = 0; u < u_count; ++u) {
    gs.cnt_d[u] = static_cast<double>(gs.cnt[u]);
  }

  // Per-link member lists (counting-sort scatter preserves member order, so
  // the freeze loop visits flows in the same order a full scan would).
  gs.off.resize(u_count + 1);
  gs.off[0] = 0;
  for (std::size_t u = 0; u < u_count; ++u) gs.off[u + 1] = gs.off[u] + gs.cnt[u];
  gs.flat.resize(incidences);
  // Scatter using off itself as the moving cursor, then shift it back down
  // (post-scatter off[u] == original off[u+1]).
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::uint32_t p = members[m];
    if (flows.link_len[p] == 2) {  // fabric flows: egress + ingress
      const auto* lp = flows.link_ptr[p];
      gs.flat[gs.off[link_slot[lp[0]]]++] = static_cast<std::uint32_t>(m);
      gs.flat[gs.off[link_slot[lp[1]]]++] = static_cast<std::uint32_t>(m);
    } else {
      for (const auto l : flows.links(p)) {
        gs.flat[gs.off[link_slot[l]]++] = static_cast<std::uint32_t>(m);
      }
    }
  }
  for (std::size_t u = u_count; u > 0; --u) gs.off[u] = gs.off[u - 1];
  gs.off[0] = 0;

  // Restore the kNoSlot-clean invariant for the next caller.
  for (const auto l : gs.used) link_slot[l] = kNoSlot;
  gs.all_linked = all_linked;
  gs.valid = true;
}

void build_group_structure_dense(const ActiveFlows& flows,
                                 std::span<const std::uint32_t> members,
                                 AllocatorContext& ctx, GroupStructure& gs) {
  const std::size_t m_count = members.size();
  const std::size_t link_count = ctx.link_count();
  // Identity slot mapping: maxmin_fill_prepared's link_slot ends up mapping
  // l -> l, so the per-incidence indirection stays but never misses, and the
  // discovery pass plus sort disappear. A link with no members keeps
  // cnt == 0; its bottleneck share is inf (or NaN at zero residual), which
  // the strict < never selects, so the freeze sequence — and every rate —
  // is identical to the generic builder's.
  if (gs.used.size() != link_count) {
    gs.used.resize(link_count);
    std::iota(gs.used.begin(), gs.used.end(), 0u);
  }
  gs.cnt.assign(link_count, 0);
  std::size_t incidences = 0;
  bool all_linked = true;
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::uint32_t p = members[m];
    const std::size_t len = flows.link_len[p];
    incidences += len;
    all_linked = all_linked && len != 0;
    if (len == 2) {  // fabric flows: egress + ingress
      const auto* lp = flows.link_ptr[p];
      ++gs.cnt[lp[0]];
      ++gs.cnt[lp[1]];
    } else {
      for (const auto l : flows.links(p)) ++gs.cnt[l];
    }
  }
  gs.cnt_d.resize(link_count);
  for (std::size_t u = 0; u < link_count; ++u) {
    gs.cnt_d[u] = static_cast<double>(gs.cnt[u]);
  }
  gs.off.resize(link_count + 1);
  gs.off[0] = 0;
  for (std::size_t u = 0; u < link_count; ++u) {
    gs.off[u + 1] = gs.off[u] + gs.cnt[u];
  }
  gs.flat.resize(incidences);
  // Same off-as-cursor scatter as the generic builder (order-preserving).
  for (std::size_t m = 0; m < m_count; ++m) {
    const std::uint32_t p = members[m];
    if (flows.link_len[p] == 2) {  // fabric flows: egress + ingress
      const auto* lp = flows.link_ptr[p];
      gs.flat[gs.off[lp[0]]++] = static_cast<std::uint32_t>(m);
      gs.flat[gs.off[lp[1]]++] = static_cast<std::uint32_t>(m);
    } else {
      for (const auto l : flows.links(p)) {
        gs.flat[gs.off[l]++] = static_cast<std::uint32_t>(m);
      }
    }
  }
  for (std::size_t u = link_count; u > 0; --u) gs.off[u] = gs.off[u - 1];
  gs.off[0] = 0;
  gs.all_linked = all_linked;
  gs.valid = true;
}

namespace {

std::atomic<FillKernel> g_fill_kernel{FillKernel::kVectorized};

/// Pass 1 of the vectorized bottleneck scan: share[u] = max(res[u],0)/cnt[u]
/// for every slot, returning the minimum share (NaN shares — zero residual on
/// a memberless dense slot — are skipped, exactly as the strict < of the
/// scalar scan skips them; +inf parks pass through but can never win below
/// kInf). Branch-light and contiguous so the compiler vectorizes it; with
/// CCF_SIMD_FILL an explicit AVX2 body handles the aligned body.
double bottleneck_scan(const double* res, const double* cnt, double* share,
                       std::size_t u_count) {
  constexpr double kInf = AllocatorContext::kInfDt;
  double m = kInf;
  std::size_t u = 0;
#if defined(CCF_SIMD_FILL) && defined(__AVX2__)
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_set1_pd(kInf);
  for (; u + 4 <= u_count; u += 4) {
    const __m256d r = _mm256_loadu_pd(res + u);
    const __m256d c = _mm256_loadu_pd(cnt + u);
    // max_pd(zero, r) keeps r on ties, matching std::max(res, 0.0);
    // min_pd(s, acc) keeps acc when s is NaN, matching std::min(m, s).
    const __m256d s = _mm256_div_pd(_mm256_max_pd(zero, r), c);
    _mm256_storeu_pd(share + u, s);
    acc = _mm256_min_pd(s, acc);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  m = std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
#endif
  for (; u < u_count; ++u) {
    const double s = std::max(res[u], 0.0) / cnt[u];
    share[u] = s;
    m = std::min(m, s);
  }
  return m;
}

}  // namespace

void set_maxmin_fill_kernel(FillKernel kernel) noexcept {
  g_fill_kernel.store(kernel, std::memory_order_relaxed);
}

FillKernel maxmin_fill_kernel() noexcept {
  return g_fill_kernel.load(std::memory_order_relaxed);
}

double maxmin_fill_prepared(const ActiveFlows& flows,
                            std::span<const std::uint32_t> members,
                            const GroupStructure& gs, AllocatorContext& ctx,
                            std::span<double> residual) {
  constexpr double kInf = AllocatorContext::kInfDt;
  const std::size_t m_count = members.size();
  if (m_count == 0) return kInf;
  const std::size_t u_count = gs.used.size();
  const FillKernel kernel = g_fill_kernel.load(std::memory_order_relaxed);

  auto& link_slot = ctx.scratch_u32b;  // link id -> dense slot (kNoSlot-clean)
  auto& frozen = ctx.scratch_u32f;     // per-member frozen flag
  // Densified used-link residuals: the bottleneck scan below reruns every
  // round, and gather-loads through gs.used are what it would wait on. The
  // dense copy sees the exact subtraction sequence the residual span would,
  // so the values written back are bit-identical. A slot whose last flow
  // froze is flushed immediately and parked at +inf, which makes its share
  // inf/0 == +inf — never selected as bottleneck — so the scan needs no
  // cnt test. scratch_f64 is all-zero on entry (madd invariant); the share
  // and live-count lanes (scratch_f64b/c) are plain per-call scratch.
  auto& res = ctx.scratch_f64;
  auto& share = ctx.scratch_f64b;
  auto& cnt = ctx.scratch_f64c;  // live member counts, exact small integers

  if (link_slot.size() < residual.size()) {
    link_slot.assign(residual.size(), kNoSlot);
  }
  cnt.assign(gs.cnt_d.begin(), gs.cnt_d.end());
  if (share.size() < u_count) share.resize(u_count);
  if (res.size() < u_count) res.resize(u_count, 0.0);
  for (std::size_t u = 0; u < u_count; ++u) {
    const auto l = gs.used[u];
    link_slot[l] = static_cast<std::uint32_t>(u);
    res[u] = residual[l];
  }

  // Every member crossing a link is frozen (and thus rated) below; members
  // without links can only be rated by an explicit zero. Skipped in the
  // common all-linked case — the freeze loop overwrites every rate anyway.
  if (!gs.all_linked) {
    for (std::size_t m = 0; m < m_count; ++m) flows.rate[members[m]] = 0.0;
  }

  // Wide fills compact parked positions away, so a position is no longer a
  // slot id: slot_id maps position -> original slot. Narrow fills (the many
  // tiny per-coflow fills of aalo/varys) skip the machinery — the scan is
  // already short and the identity map would cost more than it saves. The
  // scalar reference kernel never compacts.
  const bool compacting =
      kernel != FillKernel::kScalarReference && u_count >= 64;
  auto& slot_id = ctx.scratch_u32c;
  if (compacting) {
    if (slot_id.size() < u_count) slot_id.resize(u_count);
    for (std::size_t u = 0; u < u_count; ++u) {
      slot_id[u] = static_cast<std::uint32_t>(u);
    }
  }

  frozen.assign(m_count, 0);
  std::size_t remaining_flows = m_count;
  std::size_t act = u_count;  // live prefix of the position arrays
  std::size_t parked = 0;     // positions in [0, act) parked at +inf
  double min_dt = kInf;
  while (remaining_flows > 0) {
    if (compacting && parked * 2 >= act) {
      // Over half the scanned positions can never win again (parked at +inf,
      // or memberless dense slots): stable-compact the live positions down so
      // the per-round scan shrinks with the fill. Dropped positions were
      // either flushed at park time or never owned their residual entry, and
      // compaction preserves ascending slot order, so the (value, index)
      // selection sequence — and thus every rate — is unchanged.
      std::size_t w = 0;
      for (std::size_t j = 0; j < act; ++j) {
        if (cnt[j] == 0.0) continue;
        res[w] = res[j];
        cnt[w] = cnt[j];
        slot_id[w] = slot_id[j];
        link_slot[gs.used[slot_id[j]]] = static_cast<std::uint32_t>(w);
        ++w;
      }
      act = w;
      parked = 0;
    }
    // Bottleneck link: smallest fair share among links in use; ties resolve
    // to the smallest position (= smallest link id, compaction is stable).
    double best_share = kInf;
    std::size_t best = u_count;
    if (kernel == FillKernel::kScalarReference) {
      // Original branchy scan: first strict improvement wins.
      for (std::size_t u = 0; u < act; ++u) {
        const double s = std::max(res[u], 0.0) / cnt[u];
        if (s < best_share) {
          best_share = s;
          best = u;
        }
      }
    } else {
      // Two-pass: dense value min, then first index matching it. Taking the
      // share back out of the array at the matched index makes the selected
      // value bit-identical to the scalar kernel's even when the fold saw a
      // differently-signed zero first.
      const double m =
          bottleneck_scan(res.data(), cnt.data(), share.data(), act);
      if (m < kInf) {
        std::size_t u = 0;
        while (share[u] != m) ++u;
        best = compacting ? slot_id[u] : u;
        best_share = share[u];
      }
    }
    if (best == u_count) break;  // all-zero-link group, or defensive
    // Freeze every unfrozen flow crossing the bottleneck link at the share.
    for (std::uint32_t o = gs.off[best]; o < gs.off[best + 1]; ++o) {
      const std::uint32_t m = gs.flat[o];
      if (frozen[m]) continue;
      const std::uint32_t p = members[m];
      flows.rate[p] = best_share;
      frozen[m] = 1;
      --remaining_flows;
      if (best_share > 0.0) {
        min_dt = std::min(min_dt, flows.remaining[p] / best_share);
      }
      const auto settle = [&](const auto l) {
        const std::uint32_t s = link_slot[l];
        res[s] -= best_share;
        if ((cnt[s] -= 1.0) == 0.0) {  // final value: flush and park
          residual[l] = res[s];
          res[s] = kInf;
          ++parked;
        }
      };
      if (flows.link_len[p] == 2) {  // fabric flows: egress + ingress
        const auto* lp = flows.link_ptr[p];
        settle(lp[0]);
        settle(lp[1]);
      } else {
        for (const auto l : flows.links(p)) settle(l);
      }
    }
  }

  // Write back links still carrying unfrozen flows (defensive-break path)
  // and restore the scratch invariants for the next caller. Positions beyond
  // `act` are compacted-away leftovers; only their res lanes need re-zeroing.
  for (std::size_t j = 0; j < act; ++j) {
    if (cnt[j] != 0.0) residual[gs.used[compacting ? slot_id[j] : j]] = res[j];
  }
  for (std::size_t u = 0; u < u_count; ++u) res[u] = 0.0;
  for (const auto l : gs.used) link_slot[l] = kNoSlot;
  return min_dt;
}

double maxmin_fill(const ActiveFlows& flows,
                   std::span<const std::uint32_t> members,
                   AllocatorContext& ctx, std::span<double> residual) {
  if (members.empty()) return AllocatorContext::kInfDt;
  build_group_structure(flows, members, ctx, ctx.scratch_group);
  return maxmin_fill_prepared(flows, members, ctx.scratch_group, ctx, residual);
}

double madd_sequential(const ActiveFlows& flows,
                       std::span<const std::uint32_t> order,
                       AllocatorContext& ctx, std::span<double> residual) {
  constexpr double kInf = AllocatorContext::kInfDt;
  ctx.group_by_coflow(flows);

  auto& touched = ctx.scratch_u32a;  // links loaded by the current coflow
  auto& load = ctx.scratch_f64;      // per-link load (all-zero invariant)
  if (load.size() < residual.size()) load.resize(residual.size(), 0.0);

  double min_dt_all = kInf;
  for (const std::uint32_t cid : order) {
    ctx.coflow_dt[cid] = kInf;
    const auto members = ctx.members(cid);
    if (members.empty()) continue;
    touched.clear();
    for (const std::uint32_t p : members) {
      flows.rate[p] = 0.0;
      const double rem = flows.remaining[p];
      if (flows.link_len[p] == 2) {  // fabric flows: egress + ingress
        const auto* lp = flows.link_ptr[p];
        const auto a = lp[0];
        const auto b = lp[1];
        if (load[a] == 0.0) touched.push_back(a);
        load[a] += rem;
        if (load[b] == 0.0) touched.push_back(b);
        load[b] += rem;
      } else {
        for (const auto l : flows.links(p)) {
          if (load[l] == 0.0) touched.push_back(l);
          load[l] += rem;
        }
      }
    }
    // Γ against *residual* capacities; an exhausted link starves the coflow
    // for this epoch (backfilling semantics).
    double gamma = 0.0;
    for (const auto l : touched) {
      if (load[l] <= 0.0) continue;
      if (residual[l] > 1e-12) {
        gamma = std::max(gamma, load[l] / residual[l]);
      } else {
        gamma = kInf;
        break;
      }
    }
    for (const auto l : touched) load[l] = 0.0;  // restore invariant
    if (gamma <= 0.0 || gamma == kInf) continue;  // nothing to send or starved
    double dt = kInf;
    for (const std::uint32_t p : members) {
      const double rate = flows.remaining[p] / gamma;
      flows.rate[p] = rate;
      dt = std::min(dt, flows.remaining[p] / rate);
      if (flows.link_len[p] == 2) {
        const auto* lp = flows.link_ptr[p];
        const auto a = lp[0];
        const auto b = lp[1];
        // Clamp tiny negative residuals from floating-point accumulation.
        residual[a] = std::max(residual[a] - rate, 0.0);
        residual[b] = std::max(residual[b] - rate, 0.0);
      } else {
        for (const auto l : flows.links(p)) {
          residual[l] -= rate;
          residual[l] = std::max(residual[l], 0.0);
        }
      }
    }
    ctx.coflow_dt[cid] = dt;
    min_dt_all = std::min(min_dt_all, dt);
  }
  return min_dt_all;
}

double coflow_gamma(const ActiveFlows& flows,
                    std::span<const std::uint32_t> members,
                    AllocatorContext& ctx) {
  auto& touched = ctx.scratch_u32a;
  auto& load = ctx.scratch_f64;
  const auto caps = ctx.capacities();
  if (load.size() < caps.size()) load.resize(caps.size(), 0.0);
  touched.clear();
  for (const std::uint32_t p : members) {
    const double rem = flows.remaining[p];
    for (const auto l : flows.links(p)) {
      if (load[l] == 0.0) touched.push_back(l);
      load[l] += rem;
    }
  }
  double g = 0.0;
  for (const auto l : touched) {
    if (load[l] > 0.0) g = std::max(g, load[l] / caps[l]);
    load[l] = 0.0;  // restore invariant
  }
  return g;
}

}  // namespace detail

void RateAllocator::allocate(std::span<Flow> active,
                             std::span<CoflowState> coflows,
                             const Network& network, double now) {
  // Bridge the legacy AoS entry point onto the SoA path with a throwaway
  // context: correct but uncached — the simulator uses the SoA path directly.
  AllocatorContext ctx;
  ctx.bind(network, coflows.size());
  const std::size_t n = active.size();
  std::vector<std::uint32_t> src(n), dst(n), cof(n), link_len(n);
  std::vector<double> remaining(n), rate(n, 0.0);
  std::vector<const Network::LinkId*> link_ptr(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = active[i].src;
    dst[i] = active[i].dst;
    cof[i] = active[i].coflow;
    remaining[i] = active[i].remaining;
    rate[i] = active[i].rate;
    const auto links = ctx.links(active[i].src, active[i].dst);
    link_ptr[i] = links.data();
    link_len[i] = static_cast<std::uint32_t>(links.size());
  }
  ActiveFlows view;
  view.src = src.data();
  view.dst = dst.data();
  view.coflow = cof.data();
  view.remaining = remaining.data();
  view.rate = rate.data();
  view.link_ptr = link_ptr.data();
  view.link_len = link_len.data();
  view.count = n;
  ctx.begin_epoch();
  allocate(ctx, view, coflows, now);
  for (std::size_t i = 0; i < n; ++i) active[i].rate = rate[i];
}

// One factory per policy translation unit.
std::unique_ptr<RateAllocator> make_fair_sharing_allocator();
std::unique_ptr<RateAllocator> make_madd_allocator();
std::unique_ptr<RateAllocator> make_varys_allocator();
std::unique_ptr<RateAllocator> make_aalo_allocator();
std::unique_ptr<RateAllocator> make_varys_deadline_allocator();

std::unique_ptr<RateAllocator> make_allocator(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kFairSharing: return make_fair_sharing_allocator();
    case AllocatorKind::kMadd: return make_madd_allocator();
    case AllocatorKind::kVarys: return make_varys_allocator();
    case AllocatorKind::kAalo: return make_aalo_allocator();
    case AllocatorKind::kVarysDeadline: return make_varys_deadline_allocator();
  }
  throw std::invalid_argument("make_allocator: invalid kind");
}

std::unique_ptr<RateAllocator> make_allocator(const std::string& name) {
  if (name == "fair") return make_allocator(AllocatorKind::kFairSharing);
  if (name == "madd") return make_allocator(AllocatorKind::kMadd);
  if (name == "varys") return make_allocator(AllocatorKind::kVarys);
  if (name == "aalo") return make_allocator(AllocatorKind::kAalo);
  if (name == "varys-edf") {
    return make_allocator(AllocatorKind::kVarysDeadline);
  }
  throw std::invalid_argument("make_allocator: unknown allocator: " + name);
}

}  // namespace ccf::net
