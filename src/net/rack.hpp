// Two-tier (leaf-spine) rack topology — the "complex network conditions"
// extension of §III-A / §V. Hosts sit in racks behind top-of-rack switches;
// rack uplinks to the core can be oversubscribed, so a cross-rack flow
// traverses four capacitated links:
//
//   L_ij = { egress_i, uplink_out(rack(i)), uplink_in(rack(j)), ingress_j }
//
// while an intra-rack flow traverses only the two host ports. With
// oversubscription 1.0 and a single rack this degenerates to the flat
// Fabric. The rack-aware CCF scheduler (join/rack_scheduler) optimizes the
// generalized bottleneck over all of these links.
#pragma once

#include <cstddef>
#include <vector>

#include "net/fabric.hpp"
#include "net/network.hpp"

namespace ccf::net {

/// Homogeneous leaf-spine topology.
///
/// Link layout: [0,n) host egress, [n,2n) host ingress,
/// [2n,2n+r) rack uplink out (towards the core), [2n+r,2n+2r) rack uplink in.
class RackFabric : public Network {
 public:
  /// `oversubscription` >= 1: each rack uplink direction has capacity
  /// hosts_per_rack * host_rate / oversubscription. 1.0 = full bisection.
  RackFabric(std::size_t racks, std::size_t hosts_per_rack,
             double host_rate = Fabric::kDefaultPortRate,
             double oversubscription = 1.0);

  std::size_t racks() const noexcept { return racks_; }
  std::size_t hosts_per_rack() const noexcept { return hosts_per_rack_; }
  double host_rate() const noexcept { return host_rate_; }
  double uplink_rate() const noexcept { return uplink_rate_; }
  double oversubscription() const noexcept { return oversubscription_; }

  /// Rack of a host: node / hosts_per_rack.
  std::size_t rack_of(std::size_t node) const noexcept {
    return node / hosts_per_rack_;
  }

  // Network interface.
  std::size_t nodes() const noexcept override {
    return racks_ * hosts_per_rack_;
  }
  std::size_t link_count() const noexcept override {
    return 2 * nodes() + 2 * racks_;
  }
  double link_capacity(LinkId link) const override;
  void append_links(std::uint32_t src, std::uint32_t dst,
                    std::vector<LinkId>& out) const override;

  /// Link ids for direct inspection.
  LinkId egress_link(std::size_t node) const { return static_cast<LinkId>(node); }
  LinkId ingress_link(std::size_t node) const {
    return static_cast<LinkId>(nodes() + node);
  }
  LinkId uplink_out_link(std::size_t rack) const {
    return static_cast<LinkId>(2 * nodes() + rack);
  }
  LinkId uplink_in_link(std::size_t rack) const {
    return static_cast<LinkId>(2 * nodes() + racks_ + rack);
  }

 private:
  std::size_t racks_;
  std::size_t hosts_per_rack_;
  double host_rate_;
  double uplink_rate_;
  double oversubscription_;
};

}  // namespace ccf::net
