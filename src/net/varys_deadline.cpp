// Varys's deadline mode (SIGCOMM'14 §5.3), the "meeting coflow deadlines"
// objective the paper's related-work section cites:
//
//  * Admission control — when a deadline coflow arrives, it is admitted only
//    if giving it the minimum rates that finish it exactly at its deadline
//    does not violate the guarantees of already-admitted coflows; otherwise
//    it is rejected immediately (predictable rejection beats a silent miss).
//  * Guaranteed allocation — admitted deadline coflows are served earliest-
//    deadline-first with rate remaining/(deadline - now) per flow.
//  * Work conservation — deadline-free coflows share the leftover capacity
//    in SEBF order (plain Varys behavior).
#include <algorithm>
#include <limits>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class VarysDeadlineAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "varys-edf"; }

  void allocate(std::span<Flow> active, std::span<CoflowState> coflows,
                const Network& network, double now) override {
    std::vector<double> residual = detail::link_residuals(network);

    // Bucket active flows per coflow.
    std::vector<std::vector<std::size_t>> by_coflow(coflows.size());
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
      active[idx].rate = 0.0;
      by_coflow[active[idx].coflow].push_back(idx);
    }

    // Two passes, both earliest-absolute-deadline-first: already-admitted
    // coflows lock in their guarantees before any newcomer is considered —
    // admission never cannibalizes an existing guarantee.
    auto edf = [&](bool admitted) {
      std::vector<std::uint32_t> order;
      for (CoflowState& c : coflows) {
        if (c.started && !c.completed && !c.rejected && c.deadline > 0.0 &&
            c.admitted == admitted) {
          order.push_back(c.id);
        }
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (coflows[a].deadline != coflows[b].deadline) {
                    return coflows[a].deadline < coflows[b].deadline;
                  }
                  return a < b;
                });
      return order;
    };
    std::vector<std::uint32_t> deadline_order = edf(/*admitted=*/true);
    const std::vector<std::uint32_t> newcomers = edf(/*admitted=*/false);
    deadline_order.insert(deadline_order.end(), newcomers.begin(),
                          newcomers.end());

    std::vector<Network::LinkId> scratch;
    for (const std::uint32_t cid : deadline_order) {
      CoflowState& st = coflows[cid];
      const double slack = st.deadline - now;
      // Minimum per-flow rates to finish exactly at the deadline.
      bool feasible = slack > 0.0;
      std::vector<double> need(by_coflow[cid].size(), 0.0);
      if (feasible) {
        // Check every link's aggregate demand against its residual.
        std::vector<double> demand(residual.size(), 0.0);
        for (std::size_t m = 0; m < by_coflow[cid].size(); ++m) {
          const Flow& f = active[by_coflow[cid][m]];
          need[m] = f.remaining / slack;
          scratch.clear();
          network.append_links(f.src, f.dst, scratch);
          for (const auto l : scratch) demand[l] += need[m];
        }
        for (std::size_t l = 0; l < residual.size() && feasible; ++l) {
          if (demand[l] > residual[l] + 1e-9) feasible = false;
        }
      }
      if (!st.admitted) {
        // Admission decision happens once, at first sight.
        if (feasible) {
          st.admitted = true;
        } else {
          st.rejected = true;
          continue;
        }
      }
      if (!feasible) {
        // An admitted coflow whose guarantee broke (should not happen with
        // non-preemptive admission, but guard anyway): serve best-effort at
        // MADD rates against the residual instead of starving it.
        std::vector<std::uint32_t> one = {cid};
        detail::madd_sequential(active, one, network, residual);
        continue;
      }
      for (std::size_t m = 0; m < by_coflow[cid].size(); ++m) {
        Flow& f = active[by_coflow[cid][m]];
        f.rate = need[m];
        scratch.clear();
        network.append_links(f.src, f.dst, scratch);
        for (const auto l : scratch) residual[l] -= need[m];
      }
      for (double& r : residual) r = std::max(r, 0.0);
    }

    // Deadline-free coflows: SEBF over the leftovers.
    const std::vector<double> bottleneck =
        detail::coflow_bottlenecks(active, coflows.size(), network);
    std::vector<std::uint32_t> rest;
    for (const CoflowState& c : coflows) {
      if (c.started && !c.completed && !c.rejected && c.deadline == 0.0) {
        rest.push_back(c.id);
      }
    }
    std::sort(rest.begin(), rest.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (bottleneck[a] != bottleneck[b]) return bottleneck[a] < bottleneck[b];
      return a < b;
    });
    detail::madd_sequential(active, rest, network, residual);
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_varys_deadline_allocator();
std::unique_ptr<RateAllocator> make_varys_deadline_allocator() {
  return std::make_unique<VarysDeadlineAllocator>();
}

}  // namespace ccf::net
