// Varys's deadline mode (SIGCOMM'14 §5.3), the "meeting coflow deadlines"
// objective the paper's related-work section cites:
//
//  * Admission control — when a deadline coflow arrives, it is admitted only
//    if giving it the minimum rates that finish it exactly at its deadline
//    does not violate the guarantees of already-admitted coflows; otherwise
//    it is rejected immediately (predictable rejection beats a silent miss).
//  * Guaranteed allocation — admitted deadline coflows are served earliest-
//    deadline-first with rate remaining/(deadline - now) per flow.
//  * Work conservation — deadline-free coflows share the leftover capacity
//    in SEBF order (plain Varys behavior).
#include <algorithm>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class VarysDeadlineAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "varys-edf"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState> coflows, double now) override {
    ctx.group_by_coflow(flows);
    // SEBF keys for the deadline-free leftovers pass; same invalidation rule
    // as plain Varys (ctx.order holds the previous epoch's leftovers order).
    for (const std::uint32_t c : ctx.order) {
      if (ctx.coflow_dt[c] != AllocatorContext::kInfDt) ctx.key_valid[c] = 0;
    }
    for (const std::uint32_t c : ctx.dirty()) ctx.key_valid[c] = 0;
    const auto sched = ctx.schedulable(coflows);
    ctx.clear_dirty();

    const std::span<double> residual = ctx.reset_residual();
    for (std::size_t i = 0; i < flows.count; ++i) flows.rate[i] = 0.0;
    double min_dt = AllocatorContext::kInfDt;

    // Two passes, both earliest-absolute-deadline-first: already-admitted
    // coflows lock in their guarantees before any newcomer is considered —
    // admission never cannibalizes an existing guarantee.
    auto edf = [&](bool admitted, std::vector<std::uint32_t>& order) {
      order.clear();
      for (const std::uint32_t c : sched) {
        if (!coflows[c].rejected && coflows[c].deadline > 0.0 &&
            coflows[c].admitted == admitted) {
          order.push_back(c);
        }
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  if (coflows[a].deadline != coflows[b].deadline) {
                    return coflows[a].deadline < coflows[b].deadline;
                  }
                  return a < b;
                });
    };
    edf(/*admitted=*/true, deadline_order_);
    edf(/*admitted=*/false, newcomers_);
    deadline_order_.insert(deadline_order_.end(), newcomers_.begin(),
                           newcomers_.end());

    if (demand_.size() < residual.size()) demand_.assign(residual.size(), 0.0);
    for (const std::uint32_t cid : deadline_order_) {
      CoflowState& st = coflows[cid];
      const auto members = ctx.members(cid);
      const double slack = st.deadline - now;
      // Minimum per-flow rates to finish exactly at the deadline.
      bool feasible = slack > 0.0;
      need_.assign(members.size(), 0.0);
      if (feasible) {
        // Check every used link's aggregate demand against its residual
        // (links with zero demand are trivially feasible: residual >= 0).
        touched_.clear();
        for (std::size_t m = 0; m < members.size(); ++m) {
          const std::uint32_t p = members[m];
          need_[m] = flows.remaining[p] / slack;
          for (const auto l : flows.links(p)) {
            if (demand_[l] == 0.0) touched_.push_back(l);
            demand_[l] += need_[m];
          }
        }
        for (const auto l : touched_) {
          if (demand_[l] > residual[l] + 1e-9) feasible = false;
          demand_[l] = 0.0;  // restore the all-zero invariant
        }
      }
      if (!st.admitted) {
        // Admission decision happens once, at first sight.
        if (feasible) {
          st.admitted = true;
        } else {
          st.rejected = true;
          ctx.rejection_pending = true;
          continue;
        }
      }
      if (!feasible) {
        // An admitted coflow whose guarantee broke (should not happen with
        // non-preemptive admission, but guard anyway): serve best-effort at
        // MADD rates against the residual instead of starving it.
        const std::uint32_t one[1] = {cid};
        min_dt = std::min(
            min_dt, detail::madd_sequential(flows, one, ctx, residual));
        continue;
      }
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::uint32_t p = members[m];
        flows.rate[p] = need_[m];
        min_dt = std::min(min_dt, flows.remaining[p] / need_[m]);
        for (const auto l : flows.links(p)) {
          residual[l] -= need_[m];
          residual[l] = std::max(residual[l], 0.0);
        }
      }
    }

    // Deadline-free coflows: SEBF over the leftovers.
    ctx.order.clear();
    for (const std::uint32_t c : sched) {
      if (!coflows[c].rejected && coflows[c].deadline == 0.0) {
        ctx.order.push_back(c);
      }
    }
    for (const std::uint32_t c : ctx.order) {
      if (!ctx.key_valid[c]) {
        ctx.key[c] = detail::coflow_gamma(flows, ctx.members(c), ctx);
        ctx.key_valid[c] = 1;
      }
    }
    std::sort(ctx.order.begin(), ctx.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (ctx.key[a] != ctx.key[b]) return ctx.key[a] < ctx.key[b];
                return a < b;
              });
    min_dt = std::min(min_dt,
                      detail::madd_sequential(flows, ctx.order, ctx, residual));
    ctx.set_min_dt(min_dt);
  }

 private:
  // Reused per-allocate buffers (one allocator serves one simulation).
  std::vector<std::uint32_t> deadline_order_, newcomers_, touched_;
  std::vector<double> need_, demand_;
};

}  // namespace

std::unique_ptr<RateAllocator> make_varys_deadline_allocator();
std::unique_ptr<RateAllocator> make_varys_deadline_allocator() {
  return std::make_unique<VarysDeadlineAllocator>();
}

}  // namespace ccf::net
