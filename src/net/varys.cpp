// Varys-style SEBF + MADD (Chowdhury, Zhong & Stoica, SIGCOMM'14):
// inter-coflow order = Smallest Effective Bottleneck First, i.e. ascending
// Γ computed on full link capacities from remaining volumes; within a coflow
// MADD; unused bandwidth backfills the next coflows in order.
#include <algorithm>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class VarysAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "varys"; }

  void allocate(std::span<Flow> active, std::span<CoflowState> coflows,
                const Network& network, double) override {
    const std::vector<double> bottleneck =
        detail::coflow_bottlenecks(active, coflows.size(), network);

    std::vector<std::uint32_t> order;
    order.reserve(coflows.size());
    for (const CoflowState& c : coflows) {
      if (c.started && !c.completed) order.push_back(c.id);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (bottleneck[a] != bottleneck[b]) return bottleneck[a] < bottleneck[b];
      if (coflows[a].arrival != coflows[b].arrival) {
        return coflows[a].arrival < coflows[b].arrival;
      }
      return a < b;
    });

    std::vector<double> residual = detail::link_residuals(network);
    detail::madd_sequential(active, order, network, residual);
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_varys_allocator();
std::unique_ptr<RateAllocator> make_varys_allocator() {
  return std::make_unique<VarysAllocator>();
}

}  // namespace ccf::net
