// Varys-style SEBF + MADD (Chowdhury, Zhong & Stoica, SIGCOMM'14):
// inter-coflow order = Smallest Effective Bottleneck First, i.e. ascending
// Γ computed on full link capacities from remaining volumes; within a coflow
// MADD; unused bandwidth backfills the next coflows in order.
//
// Γ of a coflow changes only when its remaining volumes change, so the cached
// key (ctx.key) is recomputed just for coflows that are dirty (arrival /
// completion) or that actually sent bytes last epoch (ctx.coflow_dt tells:
// madd_sequential leaves it at kInfDt for starved coflows, whose Γ is
// therefore still current). A starved coflow keeps its cached Γ bit-for-bit.
#include <algorithm>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class VarysAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "varys"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState> coflows, double) override {
    ctx.group_by_coflow(flows);
    // Invalidate Γ of coflows that progressed in the previous epoch
    // (ctx.order still holds that epoch's schedule) and of dirty coflows.
    for (const std::uint32_t c : ctx.order) {
      if (ctx.coflow_dt[c] != AllocatorContext::kInfDt) ctx.key_valid[c] = 0;
    }
    for (const std::uint32_t c : ctx.dirty()) ctx.key_valid[c] = 0;
    const auto sched = ctx.schedulable(coflows);
    ctx.clear_dirty();

    for (const std::uint32_t c : sched) {
      if (!ctx.key_valid[c]) {
        ctx.key[c] = detail::coflow_gamma(flows, ctx.members(c), ctx);
        ctx.key_valid[c] = 1;
      }
    }
    ctx.order.assign(sched.begin(), sched.end());
    std::sort(ctx.order.begin(), ctx.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (ctx.key[a] != ctx.key[b]) return ctx.key[a] < ctx.key[b];
                if (coflows[a].arrival != coflows[b].arrival) {
                  return coflows[a].arrival < coflows[b].arrival;
                }
                return a < b;
              });

    const std::span<double> residual = ctx.reset_residual();
    ctx.set_min_dt(detail::madd_sequential(flows, ctx.order, ctx, residual));
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_varys_allocator();
std::unique_ptr<RateAllocator> make_varys_allocator() {
  return std::make_unique<VarysAllocator>();
}

}  // namespace ccf::net
