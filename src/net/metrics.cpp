#include "net/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/simulator.hpp"

namespace ccf::net {

PortLoads port_loads(const Demand& demand) {
  Demand::PortMarginals m = demand.marginals();
  PortLoads loads;
  loads.egress = std::move(m.egress);
  loads.ingress = std::move(m.ingress);
  loads.max_egress = *std::max_element(loads.egress.begin(), loads.egress.end());
  loads.max_ingress =
      *std::max_element(loads.ingress.begin(), loads.ingress.end());
  return loads;
}

PortLoads port_loads(const FlowMatrix& flows) {
  return port_loads(Demand::from_matrix(flows));
}

double gamma_bound(const PortLoads& loads, const Fabric& fabric) {
  if (loads.egress.size() != fabric.nodes()) {
    throw std::invalid_argument("gamma_bound: fabric size mismatch");
  }
  double g = 0.0;
  for (std::size_t i = 0; i < fabric.nodes(); ++i) {
    g = std::max(g, loads.egress[i] / fabric.egress_capacity(i));
    g = std::max(g, loads.ingress[i] / fabric.ingress_capacity(i));
  }
  return g;
}

std::vector<double> link_loads(const Demand& demand, const Network& network) {
  if (demand.nodes() != network.nodes()) {
    throw std::invalid_argument("link_loads: network size mismatch");
  }
  std::vector<double> loads(network.link_count(), 0.0);
  std::vector<Network::LinkId> scratch;
  const std::span<const std::uint32_t> srcs = demand.srcs();
  const std::span<const std::uint32_t> dsts = demand.dsts();
  const std::span<const double> vols = demand.volumes();
  for (std::size_t k = 0; k < vols.size(); ++k) {
    scratch.clear();
    network.append_links(srcs[k], dsts[k], scratch);
    for (const auto l : scratch) loads[l] += vols[k];
  }
  return loads;
}

std::vector<double> link_loads(const FlowMatrix& flows, const Network& network) {
  return link_loads(Demand::from_matrix(flows), network);
}

double total_weighted_cct(const SimReport& report) {
  double s = 0.0;
  for (const CoflowResult& c : report.coflows) {
    if (!c.rejected) s += c.weight * c.cct();
  }
  return s;
}

double weighted_average_cct(const SimReport& report) {
  double s = 0.0, w = 0.0;
  for (const CoflowResult& c : report.coflows) {
    if (c.rejected) continue;
    s += c.weight * c.cct();
    w += c.weight;
  }
  // Guarded denominator: an all-zero-weight (or empty) epoch is a defined
  // 0.0, not a NaN that poisons downstream aggregates.
  return w > 0.0 ? s / w : 0.0;
}

double gamma_bound(const Demand& demand, const Network& network) {
  const std::vector<double> loads = link_loads(demand, network);
  double g = 0.0;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    g = std::max(g, loads[l] / network.link_capacity(
                                   static_cast<Network::LinkId>(l)));
  }
  return g;
}

double gamma_bound(const FlowMatrix& flows, const Network& network) {
  return gamma_bound(Demand::from_matrix(flows), network);
}

}  // namespace ccf::net
