// Demand and fault-schedule serialization: "src,dst,bytes" and
// "time,kind,id,side,factor" CSVs (each with an optional header row), the
// interchange formats of the ccf_sim tool. Diagonal flow entries are
// rejected as they would silently carry no traffic. Flow CSVs stream into
// the columnar net::Demand — memory scales with the triple count, never
// with nodes² — and the dense FlowMatrix reader is a thin bridge on top.
#pragma once

#include <string>

#include "net/demand.hpp"
#include "net/faults.hpp"
#include "net/flow.hpp"

namespace ccf::net {

/// Stream a flow list CSV ("src,dst,bytes" rows, optional header) into a
/// columnar demand. `nodes` == 0 infers the node count as max(src,dst)+1.
/// Duplicate (src,dst) rows merge by summing in file order (FlowMatrix::add's
/// accumulation order). Throws std::invalid_argument on src == dst, a
/// negative/non-finite volume, an id at or past `nodes`, or a short row.
Demand demand_from_csv(const std::string& path, std::size_t nodes = 0);

/// Write the demand's merged triples as "src,dst,bytes" with a header row,
/// ascending (src,dst) — byte-identical to flow_matrix_to_csv of the dense
/// view. Round-trips with demand_from_csv.
void demand_to_csv(const Demand& demand, const std::string& path);

/// Parse a flow list CSV into an n x n matrix (demand_from_csv densified).
FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes = 0);

/// Write the off-diagonal entries as "src,dst,bytes" with a header row.
void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path);

/// Parse a fault schedule CSV. Lines "time,kind,id,side,factor" where kind is
/// one of degrade-link, restore-link, degrade-port, restore-port, fail-port,
/// slow-node, restore-node; `id` is a link id for the link kinds and a node
/// id otherwise; `side` is egress | ingress | both (blank = both, ignored by
/// link/node kinds); `factor` is the capacity scale (blank for restores and
/// fail-port). A first row of non-numeric cells is treated as a header.
FaultSchedule fault_schedule_from_csv(const std::string& path);

}  // namespace ccf::net
