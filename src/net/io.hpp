// Flow-matrix and fault-schedule serialization: "src,dst,bytes" and
// "time,kind,id,side,factor" CSVs (each with an optional header row), the
// interchange formats of the ccf_sim tool. Diagonal flow entries are
// rejected as they would silently carry no traffic.
#pragma once

#include <string>

#include "net/faults.hpp"
#include "net/flow.hpp"

namespace ccf::net {

/// Parse a flow list CSV into an n x n matrix. `nodes` == 0 infers the node
/// count as max(src,dst)+1. Lines "src,dst,bytes"; a first row of
/// non-numeric cells is treated as a header and skipped.
FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes = 0);

/// Write the off-diagonal entries as "src,dst,bytes" with a header row.
void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path);

/// Parse a fault schedule CSV. Lines "time,kind,id,side,factor" where kind is
/// one of degrade-link, restore-link, degrade-port, restore-port, fail-port,
/// slow-node, restore-node; `id` is a link id for the link kinds and a node
/// id otherwise; `side` is egress | ingress | both (blank = both, ignored by
/// link/node kinds); `factor` is the capacity scale (blank for restores and
/// fail-port). A first row of non-numeric cells is treated as a header.
FaultSchedule fault_schedule_from_csv(const std::string& path);

}  // namespace ccf::net
