// Flow-matrix serialization: "src,dst,bytes" CSV (with an optional header
// row), the interchange format of the ccf_sim tool. Diagonal entries are
// rejected as they would silently carry no traffic.
#pragma once

#include <string>

#include "net/flow.hpp"

namespace ccf::net {

/// Parse a flow list CSV into an n x n matrix. `nodes` == 0 infers the node
/// count as max(src,dst)+1. Lines "src,dst,bytes"; a first row of
/// non-numeric cells is treated as a header and skipped.
FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes = 0);

/// Write the off-diagonal entries as "src,dst,bytes" with a header row.
void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path);

}  // namespace ccf::net
