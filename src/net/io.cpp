#include "net/io.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/csv_reader.hpp"

namespace ccf::net {

namespace {

bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

}  // namespace

FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes) {
  auto rows = util::read_csv_file(path);
  if (!rows.empty() && !rows.front().empty() && !numeric_cell(rows.front()[0])) {
    rows.erase(rows.begin());  // header
  }
  struct Entry {
    std::size_t src, dst;
    double bytes;
  };
  std::vector<Entry> entries;
  std::size_t max_node = 0;
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::invalid_argument(
          "flow_matrix_from_csv: expected src,dst,bytes rows");
    }
    Entry e{};
    e.src = static_cast<std::size_t>(std::stoull(row[0]));
    e.dst = static_cast<std::size_t>(std::stoull(row[1]));
    e.bytes = std::stod(row[2]);
    if (e.src == e.dst) {
      throw std::invalid_argument("flow_matrix_from_csv: src == dst row");
    }
    if (e.bytes < 0.0) {
      throw std::invalid_argument("flow_matrix_from_csv: negative volume");
    }
    max_node = std::max({max_node, e.src, e.dst});
    entries.push_back(e);
  }
  const std::size_t n = nodes == 0 ? max_node + 1 : nodes;
  if (max_node >= n) {
    throw std::invalid_argument("flow_matrix_from_csv: node id out of range");
  }
  FlowMatrix m(n);
  for (const Entry& e : entries) m.add(e.src, e.dst, e.bytes);
  return m;
}

void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path) {
  util::CsvWriter out(path);
  out.header({"src", "dst", "bytes"});
  char buf[64];
  for (std::size_t i = 0; i < flows.nodes(); ++i) {
    for (std::size_t j = 0; j < flows.nodes(); ++j) {
      if (i == j) continue;
      const double v = flows.volume(i, j);
      if (v <= 0.0) continue;
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out.row({std::to_string(i), std::to_string(j), buf});
    }
  }
}

}  // namespace ccf::net
