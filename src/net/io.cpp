#include "net/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <span>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/csv_reader.hpp"

namespace ccf::net {

namespace {

bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

// Split one flow-CSV line in place (flow rows are bare numbers, never
// quoted, so a comma scan suffices — the full RFC-4180 reader would buffer
// the whole file).
void split_cells(const std::string& line, std::vector<std::string>& cells) {
  cells.clear();
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    cells.push_back(line.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

}  // namespace

Demand demand_from_csv(const std::string& path, std::size_t nodes) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("demand_from_csv: cannot open " + path);
  }
  // Stream triples straight off the file: one line, one (src,dst,bytes)
  // record. Nothing here is ever nodes x nodes.
  std::vector<std::uint32_t> srcs, dsts;
  std::vector<double> vols;
  std::vector<std::string> cells;
  std::size_t max_node = 0;
  bool first = true;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    split_cells(line, cells);
    if (first) {
      first = false;
      if (!numeric_cell(cells[0])) continue;  // header
    }
    if (cells.size() < 3) {
      throw std::invalid_argument(
          "demand_from_csv: expected src,dst,bytes rows");
    }
    const auto src = static_cast<std::size_t>(std::stoull(cells[0]));
    const auto dst = static_cast<std::size_t>(std::stoull(cells[1]));
    const double bytes = std::stod(cells[2]);
    if (src == dst) {
      throw std::invalid_argument("demand_from_csv: src == dst row");
    }
    if (!(bytes >= 0.0)) {
      throw std::invalid_argument("demand_from_csv: negative volume");
    }
    max_node = std::max({max_node, src, dst});
    if (nodes != 0 && max_node >= nodes) {
      throw std::invalid_argument("demand_from_csv: node id out of range");
    }
    srcs.push_back(static_cast<std::uint32_t>(src));
    dsts.push_back(static_cast<std::uint32_t>(dst));
    vols.push_back(bytes);
  }
  Demand demand(nodes == 0 ? max_node + 1 : nodes);
  for (std::size_t k = 0; k < vols.size(); ++k) {
    demand.add(srcs[k], dsts[k], vols[k]);
  }
  return demand;
}

void demand_to_csv(const Demand& demand, const std::string& path) {
  util::CsvWriter out(path);
  out.header({"src", "dst", "bytes"});
  char buf[64];
  const std::span<const std::uint32_t> srcs = demand.srcs();
  const std::span<const std::uint32_t> dsts = demand.dsts();
  const std::span<const double> vols = demand.volumes();
  for (std::size_t k = 0; k < vols.size(); ++k) {
    std::snprintf(buf, sizeof buf, "%.17g", vols[k]);
    out.row({std::to_string(srcs[k]), std::to_string(dsts[k]), buf});
  }
}

FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes) {
  return demand_from_csv(path, nodes).to_matrix();
}

void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path) {
  demand_to_csv(Demand::from_matrix(flows), path);
}

FaultSchedule fault_schedule_from_csv(const std::string& path) {
  auto rows = util::read_csv_file(path);
  if (!rows.empty() && !rows.front().empty() && !numeric_cell(rows.front()[0])) {
    rows.erase(rows.begin());  // header
  }
  auto side_of = [](const std::string& s) {
    if (s.empty() || s == "both") return PortSide::kBoth;
    if (s == "egress") return PortSide::kEgress;
    if (s == "ingress") return PortSide::kIngress;
    throw std::invalid_argument("fault_schedule_from_csv: unknown side: " + s);
  };
  auto factor_of = [](const std::vector<std::string>& row) {
    if (row.size() < 5 || row[4].empty()) {
      throw std::invalid_argument(
          "fault_schedule_from_csv: degrade rows need a factor");
    }
    return std::stod(row[4]);
  };
  FaultSchedule schedule;
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::invalid_argument(
          "fault_schedule_from_csv: expected time,kind,id[,side[,factor]]");
    }
    const double time = std::stod(row[0]);
    const std::string& kind = row[1];
    const auto id = std::stoull(row[2]);
    const std::string side = row.size() > 3 ? row[3] : std::string();
    if (kind == "degrade-link") {
      schedule.degrade_link(time, static_cast<Network::LinkId>(id),
                            factor_of(row));
    } else if (kind == "restore-link") {
      schedule.restore_link(time, static_cast<Network::LinkId>(id));
    } else if (kind == "degrade-port") {
      schedule.degrade_port(time, static_cast<std::uint32_t>(id), side_of(side),
                            factor_of(row));
    } else if (kind == "restore-port") {
      schedule.restore_port(time, static_cast<std::uint32_t>(id),
                            side_of(side));
    } else if (kind == "fail-port") {
      schedule.fail_port(time, static_cast<std::uint32_t>(id), side_of(side));
    } else if (kind == "slow-node") {
      schedule.slow_node(time, static_cast<std::uint32_t>(id), factor_of(row));
    } else if (kind == "restore-node") {
      schedule.restore_node(time, static_cast<std::uint32_t>(id));
    } else {
      throw std::invalid_argument("fault_schedule_from_csv: unknown kind: " +
                                  kind);
    }
  }
  return schedule;
}

}  // namespace ccf::net
