#include "net/io.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/csv_reader.hpp"

namespace ccf::net {

namespace {

bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

}  // namespace

FlowMatrix flow_matrix_from_csv(const std::string& path, std::size_t nodes) {
  auto rows = util::read_csv_file(path);
  if (!rows.empty() && !rows.front().empty() && !numeric_cell(rows.front()[0])) {
    rows.erase(rows.begin());  // header
  }
  struct Entry {
    std::size_t src, dst;
    double bytes;
  };
  std::vector<Entry> entries;
  std::size_t max_node = 0;
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::invalid_argument(
          "flow_matrix_from_csv: expected src,dst,bytes rows");
    }
    Entry e{};
    e.src = static_cast<std::size_t>(std::stoull(row[0]));
    e.dst = static_cast<std::size_t>(std::stoull(row[1]));
    e.bytes = std::stod(row[2]);
    if (e.src == e.dst) {
      throw std::invalid_argument("flow_matrix_from_csv: src == dst row");
    }
    if (e.bytes < 0.0) {
      throw std::invalid_argument("flow_matrix_from_csv: negative volume");
    }
    max_node = std::max({max_node, e.src, e.dst});
    entries.push_back(e);
  }
  const std::size_t n = nodes == 0 ? max_node + 1 : nodes;
  if (max_node >= n) {
    throw std::invalid_argument("flow_matrix_from_csv: node id out of range");
  }
  FlowMatrix m(n);
  for (const Entry& e : entries) m.add(e.src, e.dst, e.bytes);
  return m;
}

void flow_matrix_to_csv(const FlowMatrix& flows, const std::string& path) {
  util::CsvWriter out(path);
  out.header({"src", "dst", "bytes"});
  char buf[64];
  for (std::size_t i = 0; i < flows.nodes(); ++i) {
    for (std::size_t j = 0; j < flows.nodes(); ++j) {
      if (i == j) continue;
      const double v = flows.volume(i, j);
      if (v <= 0.0) continue;
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out.row({std::to_string(i), std::to_string(j), buf});
    }
  }
}

FaultSchedule fault_schedule_from_csv(const std::string& path) {
  auto rows = util::read_csv_file(path);
  if (!rows.empty() && !rows.front().empty() && !numeric_cell(rows.front()[0])) {
    rows.erase(rows.begin());  // header
  }
  auto side_of = [](const std::string& s) {
    if (s.empty() || s == "both") return PortSide::kBoth;
    if (s == "egress") return PortSide::kEgress;
    if (s == "ingress") return PortSide::kIngress;
    throw std::invalid_argument("fault_schedule_from_csv: unknown side: " + s);
  };
  auto factor_of = [](const std::vector<std::string>& row) {
    if (row.size() < 5 || row[4].empty()) {
      throw std::invalid_argument(
          "fault_schedule_from_csv: degrade rows need a factor");
    }
    return std::stod(row[4]);
  };
  FaultSchedule schedule;
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::invalid_argument(
          "fault_schedule_from_csv: expected time,kind,id[,side[,factor]]");
    }
    const double time = std::stod(row[0]);
    const std::string& kind = row[1];
    const auto id = std::stoull(row[2]);
    const std::string side = row.size() > 3 ? row[3] : std::string();
    if (kind == "degrade-link") {
      schedule.degrade_link(time, static_cast<Network::LinkId>(id),
                            factor_of(row));
    } else if (kind == "restore-link") {
      schedule.restore_link(time, static_cast<Network::LinkId>(id));
    } else if (kind == "degrade-port") {
      schedule.degrade_port(time, static_cast<std::uint32_t>(id), side_of(side),
                            factor_of(row));
    } else if (kind == "restore-port") {
      schedule.restore_port(time, static_cast<std::uint32_t>(id),
                            side_of(side));
    } else if (kind == "fail-port") {
      schedule.fail_port(time, static_cast<std::uint32_t>(id), side_of(side));
    } else if (kind == "slow-node") {
      schedule.slow_node(time, static_cast<std::uint32_t>(id), factor_of(row));
    } else if (kind == "restore-node") {
      schedule.restore_node(time, static_cast<std::uint32_t>(id));
    } else {
      throw std::invalid_argument("fault_schedule_from_csv: unknown kind: " +
                                  kind);
    }
  }
  return schedule;
}

}  // namespace ccf::net
