#include "net/rack.hpp"

#include <cassert>
#include <stdexcept>

namespace ccf::net {

RackFabric::RackFabric(std::size_t racks, std::size_t hosts_per_rack,
                       double host_rate, double oversubscription)
    : racks_(racks),
      hosts_per_rack_(hosts_per_rack),
      host_rate_(host_rate),
      uplink_rate_(static_cast<double>(hosts_per_rack) * host_rate /
                   oversubscription),
      oversubscription_(oversubscription) {
  if (racks == 0 || hosts_per_rack == 0) {
    throw std::invalid_argument("RackFabric: racks/hosts_per_rack must be >= 1");
  }
  if (host_rate <= 0.0) {
    throw std::invalid_argument("RackFabric: host_rate must be > 0");
  }
  if (oversubscription < 1.0) {
    throw std::invalid_argument("RackFabric: oversubscription must be >= 1");
  }
}

double RackFabric::link_capacity(LinkId link) const {
  const std::size_t n = nodes();
  if (link < 2 * n) return host_rate_;
  if (link < 2 * n + 2 * racks_) return uplink_rate_;
  throw std::out_of_range("RackFabric: link id out of range");
}

void RackFabric::append_links(std::uint32_t src, std::uint32_t dst,
                              std::vector<LinkId>& out) const {
  assert(src != dst && "Network::append_links requires src != dst");
  out.push_back(egress_link(src));
  const std::size_t rs = rack_of(src);
  const std::size_t rd = rack_of(dst);
  if (rs != rd) {
    out.push_back(uplink_out_link(rs));
    out.push_back(uplink_in_link(rd));
  }
  out.push_back(ingress_link(dst));
}

}  // namespace ccf::net
