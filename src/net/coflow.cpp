#include "net/coflow.hpp"

// CoflowSpec/CoflowState are aggregates; this translation unit exists so the
// header has a home in the library and stays self-contained under -Wall.
namespace ccf::net {}
