#include "net/multipath.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>

namespace ccf::net {

MultiPathFabric::MultiPathFabric(std::size_t racks, std::size_t hosts_per_rack,
                                 std::size_t spines, double host_rate,
                                 double spine_link_rate)
    : racks_(racks),
      hosts_per_rack_(hosts_per_rack),
      spines_(spines),
      host_rate_(host_rate),
      spine_link_rate_(spine_link_rate) {
  if (racks == 0 || hosts_per_rack == 0 || spines == 0) {
    throw std::invalid_argument("MultiPathFabric: empty dimension");
  }
  if (host_rate <= 0.0 || spine_link_rate <= 0.0) {
    throw std::invalid_argument("MultiPathFabric: rates must be > 0");
  }
}

Routing::Routing(std::size_t nodes)
    : nodes_(nodes), spine_(nodes * nodes, 0) {
  if (nodes == 0) throw std::invalid_argument("Routing: nodes must be >= 1");
}

RoutedNetwork::RoutedNetwork(std::shared_ptr<const MultiPathFabric> fabric,
                             Routing routing)
    : fabric_(std::move(fabric)), routing_(std::move(routing)) {
  if (!fabric_) throw std::invalid_argument("RoutedNetwork: null fabric");
  if (routing_.nodes() != fabric_->nodes()) {
    throw std::invalid_argument("RoutedNetwork: routing size mismatch");
  }
}

double RoutedNetwork::link_capacity(LinkId link) const {
  const std::size_t n = fabric_->nodes();
  if (link < 2 * n) return fabric_->host_rate();
  if (link < fabric_->link_count()) return fabric_->spine_link_rate();
  throw std::out_of_range("RoutedNetwork: link id out of range");
}

void RoutedNetwork::append_links(std::uint32_t src, std::uint32_t dst,
                                 std::vector<LinkId>& out) const {
  assert(src != dst && "Network::append_links requires src != dst");
  out.push_back(fabric_->egress_link(src));
  const std::size_t rs = fabric_->rack_of(src);
  const std::size_t rd = fabric_->rack_of(dst);
  if (rs != rd) {
    const std::uint32_t s = routing_.spine(src, dst);
    if (s >= fabric_->spines()) {
      throw std::out_of_range("RoutedNetwork: spine id out of range");
    }
    out.push_back(fabric_->uplink(rs, s));
    out.push_back(fabric_->downlink(rd, s));
  }
  out.push_back(fabric_->ingress_link(dst));
}

Routing route_ecmp(const MultiPathFabric& fabric, const FlowMatrix& flows) {
  if (flows.nodes() != fabric.nodes()) {
    throw std::invalid_argument("route_ecmp: size mismatch");
  }
  Routing routing(fabric.nodes());
  const auto spines = static_cast<std::uint32_t>(fabric.spines());
  for (std::size_t i = 0; i < fabric.nodes(); ++i) {
    for (std::size_t j = 0; j < fabric.nodes(); ++j) {
      routing.set_spine(i, j, static_cast<std::uint32_t>((i + j) % spines));
    }
  }
  return routing;
}

Routing route_least_loaded(const MultiPathFabric& fabric,
                           const FlowMatrix& flows) {
  if (flows.nodes() != fabric.nodes()) {
    throw std::invalid_argument("route_least_loaded: size mismatch");
  }
  Routing routing(fabric.nodes());
  const std::size_t racks = fabric.racks();
  const std::size_t spines = fabric.spines();
  std::vector<double> up(racks * spines, 0.0), down(racks * spines, 0.0);

  struct Entry {
    std::uint32_t src, dst;
    double volume;
  };
  std::vector<Entry> cross;
  for (std::size_t i = 0; i < fabric.nodes(); ++i) {
    for (std::size_t j = 0; j < fabric.nodes(); ++j) {
      if (i == j || fabric.rack_of(i) == fabric.rack_of(j)) continue;
      const double v = flows.volume(i, j);
      if (v > 0.0) {
        cross.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j), v});
      }
    }
  }
  std::sort(cross.begin(), cross.end(), [](const Entry& a, const Entry& b) {
    if (a.volume != b.volume) return a.volume > b.volume;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  for (const Entry& e : cross) {
    const std::size_t rs = fabric.rack_of(e.src);
    const std::size_t rd = fabric.rack_of(e.dst);
    std::uint32_t best = 0;
    double best_load = 0.0;
    for (std::uint32_t s = 0; s < spines; ++s) {
      const double load = std::max(up[rs * spines + s] + e.volume,
                                   down[rd * spines + s] + e.volume);
      if (s == 0 || load < best_load) {
        best = s;
        best_load = load;
      }
    }
    routing.set_spine(e.src, e.dst, best);
    up[rs * spines + best] += e.volume;
    down[rd * spines + best] += e.volume;
  }
  return routing;
}

// --- general-topology routing ----------------------------------------

namespace {

/// Per-link byte loads of an aggregate demand under a route choice. The
/// sorted triples visit the same pairs in the same order as the historical
/// dense ascending scan, so the load sums are bit-identical.
std::vector<double> routed_loads(const Topology& topology,
                                 const Demand& demand,
                                 const RouteChoice& choice) {
  const std::size_t n = topology.nodes();
  std::vector<double> loads(topology.link_count(), 0.0);
  std::vector<Topology::LinkId> scratch;
  const std::span<const std::uint32_t> srcs = demand.srcs();
  const std::span<const std::uint32_t> dsts = demand.dsts();
  const std::span<const double> vols = demand.volumes();
  for (std::size_t k = 0; k < vols.size(); ++k) {
    scratch.clear();
    topology.append_path_links(srcs[k], dsts[k],
                               choice[srcs[k] * n + dsts[k]], scratch);
    for (const auto l : scratch) loads[l] += vols[k];
  }
  return loads;
}

double max_utilization(const Topology& topology,
                       const std::vector<double>& loads) {
  double gamma = 0.0;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    gamma = std::max(gamma, loads[l] / topology.link_capacity(
                                           static_cast<Topology::LinkId>(l)));
  }
  return gamma;
}

}  // namespace

double routed_gamma(const Topology& topology, const Demand& demand,
                    const RouteChoice& choice) {
  if (demand.nodes() != topology.nodes()) {
    throw std::invalid_argument("routed_gamma: size mismatch");
  }
  return max_utilization(topology, routed_loads(topology, demand, choice));
}

double routed_gamma(const Topology& topology, const FlowMatrix& flows,
                    const RouteChoice& choice) {
  return routed_gamma(topology, Demand::from_matrix(flows), choice);
}

RouteChoice route_joint(const Topology& topology, const Demand& demand,
                        const JointRouteOptions& options) {
  const std::size_t n = topology.nodes();
  if (demand.nodes() != n) {
    throw std::invalid_argument("route_joint: size mismatch");
  }
  RouteChoice ecmp = route_ecmp(topology);
  if (topology.max_path_count() <= 1) return ecmp;  // nothing to choose

  // Warm start: the better of static ECMP and the volume-greedy pass. ECMP
  // is one of the candidates, so the never-worse-than-ECMP invariant holds
  // from the first iterate on.
  const double gamma_ecmp = routed_gamma(topology, demand, ecmp);
  RouteChoice current = route_greedy(topology, demand);
  std::vector<double> loads = routed_loads(topology, demand, current);
  double best_gamma = max_utilization(topology, loads);
  if (gamma_ecmp < best_gamma) {
    current = std::move(ecmp);
    loads = routed_loads(topology, demand, current);
    best_gamma = gamma_ecmp;
  }
  if (best_gamma <= 0.0) return current;  // no demand

  struct Move {
    std::size_t pair;       // src * n + dst
    std::uint32_t old_path;
    double volume;
  };
  std::vector<Topology::LinkId> old_links, new_links;
  std::vector<Move> undo;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    // Bottleneck link under the current choice (lowest id on ties, so the
    // descent is deterministic).
    std::size_t bottleneck = 0;
    double worst = -1.0;
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const double util =
          loads[l] /
          topology.link_capacity(static_cast<Topology::LinkId>(l));
      if (util > worst) {
        worst = util;
        bottleneck = l;
      }
    }

    // Flows crossing the bottleneck, heaviest first.
    struct Crossing {
      std::uint32_t src, dst;
      double volume;
    };
    std::vector<Crossing> crossing;
    {
      const std::span<const std::uint32_t> srcs = demand.srcs();
      const std::span<const std::uint32_t> dsts = demand.dsts();
      const std::span<const double> vols = demand.volumes();
      for (std::size_t k = 0; k < vols.size(); ++k) {
        old_links.clear();
        topology.append_path_links(srcs[k], dsts[k],
                                   current[srcs[k] * n + dsts[k]], old_links);
        if (std::find(old_links.begin(), old_links.end(),
                      static_cast<Topology::LinkId>(bottleneck)) !=
            old_links.end()) {
          crossing.push_back({srcs[k], dsts[k], vols[k]});
        }
      }
    }
    std::sort(crossing.begin(), crossing.end(),
              [](const Crossing& a, const Crossing& b) {
                if (a.volume != b.volume) return a.volume > b.volume;
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });

    // Move each onto its least-bottlenecked alternative path when that
    // lowers the flow's own worst link utilization.
    undo.clear();
    for (const Crossing& c : crossing) {
      if (undo.size() >= options.moves_per_round) break;
      const std::size_t pair = c.src * n + c.dst;
      const std::uint32_t cur = current[pair];
      const std::size_t paths = topology.path_count(c.src, c.dst);
      if (paths <= 1) continue;
      old_links.clear();
      topology.append_path_links(c.src, c.dst, cur, old_links);
      for (const auto l : old_links) loads[l] -= c.volume;  // lift the flow

      double cur_util = 0.0;
      for (const auto l : old_links) {
        cur_util = std::max(cur_util, (loads[l] + c.volume) /
                                          topology.link_capacity(l));
      }
      std::uint32_t best = cur;
      double best_util = cur_util;
      for (std::uint32_t k = 0; k < paths; ++k) {
        if (k == cur) continue;
        new_links.clear();
        topology.append_path_links(c.src, c.dst, k, new_links);
        double util = 0.0;
        for (const auto l : new_links) {
          util = std::max(util, (loads[l] + c.volume) /
                                    topology.link_capacity(l));
        }
        if (util < best_util) {
          best_util = util;
          best = k;
        }
      }
      new_links.clear();
      topology.append_path_links(c.src, c.dst, best, new_links);
      for (const auto l : new_links) loads[l] += c.volume;  // put it down
      if (best != cur) {
        current[pair] = best;
        undo.push_back({pair, cur, c.volume});
      }
    }
    if (undo.empty()) break;  // local minimum

    // Re-evaluate the fill: keep the round only if Γ improved.
    const double gamma = max_utilization(topology, loads);
    if (gamma < best_gamma * (1.0 - options.min_gain)) {
      best_gamma = gamma;
      continue;
    }
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      const std::uint32_t src = static_cast<std::uint32_t>(it->pair / n);
      const std::uint32_t dst = static_cast<std::uint32_t>(it->pair % n);
      new_links.clear();
      topology.append_path_links(src, dst, current[it->pair], new_links);
      for (const auto l : new_links) loads[l] -= it->volume;
      old_links.clear();
      topology.append_path_links(src, dst, it->old_path, old_links);
      for (const auto l : old_links) loads[l] += it->volume;
      current[it->pair] = it->old_path;
    }
    break;
  }
  return current;
}

RouteChoice route_joint(const Topology& topology, const FlowMatrix& flows,
                        const JointRouteOptions& options) {
  if (flows.nodes() != topology.nodes()) {
    throw std::invalid_argument("route_joint: size mismatch");
  }
  return route_joint(topology, Demand::from_matrix(flows), options);
}

namespace {

class EcmpPolicy final : public RoutingPolicy {
 public:
  std::string_view name() const noexcept override { return "ecmp"; }
  RouteChoice choose(const Topology& topology,
                     const Demand& /*demand*/) const override {
    return route_ecmp(topology);
  }
};

class GreedyPolicy final : public RoutingPolicy {
 public:
  std::string_view name() const noexcept override { return "greedy"; }
  RouteChoice choose(const Topology& topology,
                     const Demand& demand) const override {
    return route_greedy(topology, demand);
  }
};

class JointPolicy final : public RoutingPolicy {
 public:
  std::string_view name() const noexcept override { return "joint"; }
  RouteChoice choose(const Topology& topology,
                     const Demand& demand) const override {
    return route_joint(topology, demand);
  }
};

}  // namespace

std::unique_ptr<RoutingPolicy> make_routing_policy(std::string_view name) {
  if (name == "ecmp") return std::make_unique<EcmpPolicy>();
  if (name == "greedy") return std::make_unique<GreedyPolicy>();
  if (name == "joint") return std::make_unique<JointPolicy>();
  throw std::invalid_argument("make_routing_policy: unknown routing: " +
                              std::string(name));
}

}  // namespace ccf::net
