#include "net/multipath.hpp"

#include <algorithm>
#include <stdexcept>

namespace ccf::net {

MultiPathFabric::MultiPathFabric(std::size_t racks, std::size_t hosts_per_rack,
                                 std::size_t spines, double host_rate,
                                 double spine_link_rate)
    : racks_(racks),
      hosts_per_rack_(hosts_per_rack),
      spines_(spines),
      host_rate_(host_rate),
      spine_link_rate_(spine_link_rate) {
  if (racks == 0 || hosts_per_rack == 0 || spines == 0) {
    throw std::invalid_argument("MultiPathFabric: empty dimension");
  }
  if (host_rate <= 0.0 || spine_link_rate <= 0.0) {
    throw std::invalid_argument("MultiPathFabric: rates must be > 0");
  }
}

Routing::Routing(std::size_t nodes)
    : nodes_(nodes), spine_(nodes * nodes, 0) {
  if (nodes == 0) throw std::invalid_argument("Routing: nodes must be >= 1");
}

RoutedNetwork::RoutedNetwork(std::shared_ptr<const MultiPathFabric> fabric,
                             Routing routing)
    : fabric_(std::move(fabric)), routing_(std::move(routing)) {
  if (!fabric_) throw std::invalid_argument("RoutedNetwork: null fabric");
  if (routing_.nodes() != fabric_->nodes()) {
    throw std::invalid_argument("RoutedNetwork: routing size mismatch");
  }
}

double RoutedNetwork::link_capacity(LinkId link) const {
  const std::size_t n = fabric_->nodes();
  if (link < 2 * n) return fabric_->host_rate();
  if (link < fabric_->link_count()) return fabric_->spine_link_rate();
  throw std::out_of_range("RoutedNetwork: link id out of range");
}

void RoutedNetwork::append_links(std::uint32_t src, std::uint32_t dst,
                                 std::vector<LinkId>& out) const {
  out.push_back(fabric_->egress_link(src));
  const std::size_t rs = fabric_->rack_of(src);
  const std::size_t rd = fabric_->rack_of(dst);
  if (rs != rd) {
    const std::uint32_t s = routing_.spine(src, dst);
    if (s >= fabric_->spines()) {
      throw std::out_of_range("RoutedNetwork: spine id out of range");
    }
    out.push_back(fabric_->uplink(rs, s));
    out.push_back(fabric_->downlink(rd, s));
  }
  out.push_back(fabric_->ingress_link(dst));
}

Routing route_ecmp(const MultiPathFabric& fabric, const FlowMatrix& flows) {
  if (flows.nodes() != fabric.nodes()) {
    throw std::invalid_argument("route_ecmp: size mismatch");
  }
  Routing routing(fabric.nodes());
  const auto spines = static_cast<std::uint32_t>(fabric.spines());
  for (std::size_t i = 0; i < fabric.nodes(); ++i) {
    for (std::size_t j = 0; j < fabric.nodes(); ++j) {
      routing.set_spine(i, j, static_cast<std::uint32_t>((i + j) % spines));
    }
  }
  return routing;
}

Routing route_least_loaded(const MultiPathFabric& fabric,
                           const FlowMatrix& flows) {
  if (flows.nodes() != fabric.nodes()) {
    throw std::invalid_argument("route_least_loaded: size mismatch");
  }
  Routing routing(fabric.nodes());
  const std::size_t racks = fabric.racks();
  const std::size_t spines = fabric.spines();
  std::vector<double> up(racks * spines, 0.0), down(racks * spines, 0.0);

  struct Entry {
    std::uint32_t src, dst;
    double volume;
  };
  std::vector<Entry> cross;
  for (std::size_t i = 0; i < fabric.nodes(); ++i) {
    for (std::size_t j = 0; j < fabric.nodes(); ++j) {
      if (i == j || fabric.rack_of(i) == fabric.rack_of(j)) continue;
      const double v = flows.volume(i, j);
      if (v > 0.0) {
        cross.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j), v});
      }
    }
  }
  std::sort(cross.begin(), cross.end(), [](const Entry& a, const Entry& b) {
    if (a.volume != b.volume) return a.volume > b.volume;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });

  for (const Entry& e : cross) {
    const std::size_t rs = fabric.rack_of(e.src);
    const std::size_t rd = fabric.rack_of(e.dst);
    std::uint32_t best = 0;
    double best_load = 0.0;
    for (std::uint32_t s = 0; s < spines; ++s) {
      const double load = std::max(up[rs * spines + s] + e.volume,
                                   down[rd * spines + s] + e.volume);
      if (s == 0 || load < best_load) {
        best = s;
        best_load = load;
      }
    }
    routing.set_spine(e.src, e.dst, best);
    up[rs * spines + best] += e.volume;
    down[rd * spines + best] += e.volume;
  }
  return routing;
}

}  // namespace ccf::net
