#include "net/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/next_event.hpp"
#include "util/arena.hpp"
#include "util/calendar.hpp"
#include "util/parallel.hpp"

namespace ccf::net {

namespace {

/// Chunk size for the parallel flow-advance (also the per-chunk scratch-slot
/// stride; see util::parallel_for's chunk-boundary guarantee).
constexpr std::size_t kAdvanceGrain = 2048;

/// Per-chunk accumulator for the parallel advance. `delta` is an arena-backed
/// per-coflow array that keeps an all-zero invariant between events (the
/// merge clears exactly the touched entries).
struct ChunkScratch {
  double* delta = nullptr;             ///< per-coflow bytes moved this epoch
  std::vector<std::uint32_t> touched;  ///< coflows with delta != 0
  double total = 0.0;                  ///< bytes moved by this chunk
  bool completed = false;              ///< some flow in the chunk finished
};

}  // namespace

double SimReport::average_cct() const noexcept {
  if (coflows.empty()) return 0.0;
  double s = 0.0;
  for (const CoflowResult& c : coflows) s += c.cct();
  return s / static_cast<double>(coflows.size());
}

double SimReport::cct_of(const std::string& name) const {
  if (!name_index.empty()) {
    const auto it = name_index.find(name);
    if (it != name_index.end()) return coflows[it->second].cct();
    throw std::out_of_range("SimReport: no coflow named " + name);
  }
  // Manually assembled report: fall back to a linear scan.
  for (const CoflowResult& c : coflows) {
    if (c.name == name) return c.cct();
  }
  throw std::out_of_range("SimReport: no coflow named " + name);
}

Simulator::Simulator(Fabric fabric, std::unique_ptr<RateAllocator> allocator,
                     SimConfig config)
    : Simulator(std::make_shared<const Fabric>(std::move(fabric)),
                std::move(allocator), config) {}

Simulator::Simulator(std::shared_ptr<const Network> network,
                     std::unique_ptr<RateAllocator> allocator, SimConfig config)
    : network_(std::move(network)),
      allocator_(std::move(allocator)),
      config_(config) {
  if (!network_) throw std::invalid_argument("Simulator: null network");
  if (!allocator_) throw std::invalid_argument("Simulator: null allocator");
}

void Simulator::push_normalized(std::string name, double arrival,
                                double deadline_rel, double weight,
                                std::vector<Flow> flows) {
  NormalizedCoflow nc;
  nc.name = std::move(name);
  nc.arrival = arrival;
  nc.deadline = deadline_rel > 0.0 ? arrival + deadline_rel : 0.0;
  nc.weight = weight;
  const auto id = static_cast<std::uint32_t>(coflows_.size());
  for (Flow& f : flows) {
    f.coflow = id;
    nc.bytes_total += f.volume;
  }
  total_flows_ += flows.size();
  nc.flows = std::move(flows);
  coflows_.push_back(std::move(nc));
}

void Simulator::add_coflow(CoflowSpec spec) {
  if (ran_) throw std::logic_error("Simulator: add_coflow after run()");
  if (spec.flows.nodes() != network_->nodes()) {
    throw std::invalid_argument("Simulator: coflow size != fabric size");
  }
  if (spec.arrival < 0.0 || !std::isfinite(spec.arrival)) {
    throw std::invalid_argument("Simulator: invalid arrival time");
  }
  if (spec.deadline < 0.0 || !std::isfinite(spec.deadline)) {
    throw std::invalid_argument("Simulator: invalid deadline");
  }
  if (spec.weight < 0.0 || !std::isfinite(spec.weight)) {
    throw std::invalid_argument("Simulator: invalid coflow weight");
  }
  if (spec.start_offsets) {
    if (spec.start_offsets->nodes() != spec.flows.nodes()) {
      throw std::invalid_argument("Simulator: start_offsets shape mismatch");
    }
    for (std::size_t i = 0; i < spec.flows.nodes(); ++i) {
      for (std::size_t j = 0; j < spec.flows.nodes(); ++j) {
        const double off = spec.start_offsets->volume(i, j);
        if (spec.flows.volume(i, j) > 0.0 &&
            (off < 0.0 || !std::isfinite(off))) {
          throw std::invalid_argument("Simulator: invalid flow start offset");
        }
      }
    }
  }
  std::vector<Flow> fs = spec.flows.to_flows(config_.completion_epsilon);
  for (Flow& f : fs) {
    f.start = spec.arrival;
    if (spec.start_offsets) {
      f.start += spec.start_offsets->volume(f.src, f.dst);
    }
  }
  push_normalized(std::move(spec.name), spec.arrival, spec.deadline,
                  spec.weight, std::move(fs));
}

void Simulator::add_coflow(SparseCoflowSpec spec) {
  if (ran_) throw std::logic_error("Simulator: add_coflow after run()");
  if (spec.arrival < 0.0 || !std::isfinite(spec.arrival)) {
    throw std::invalid_argument("Simulator: invalid arrival time");
  }
  if (spec.deadline < 0.0 || !std::isfinite(spec.deadline)) {
    throw std::invalid_argument("Simulator: invalid deadline");
  }
  if (spec.weight < 0.0 || !std::isfinite(spec.weight)) {
    throw std::invalid_argument("Simulator: invalid coflow weight");
  }
  if (spec.prenormalized) {
    // Trusted fast path (see SparseCoflowSpec): the list is to_flows output,
    // so the per-flow checks below can never fire. The in-place fixup is
    // exactly what the validating loop computes for such a list, so both
    // paths hand push_normalized identical flows.
    for (Flow& f : spec.flows) {
      f.remaining = f.volume;
      f.start += spec.arrival;
    }
    push_normalized(std::move(spec.name), spec.arrival, spec.deadline,
                    spec.weight, std::move(spec.flows));
    return;
  }
  const std::size_t nn = network_->nodes();
  std::vector<Flow> fs;
  fs.reserve(spec.flows.size());
  for (const Flow& f : spec.flows) {
    if (f.src >= nn || f.dst >= nn) {
      throw std::invalid_argument("Simulator: flow endpoint outside fabric");
    }
    if (f.src == f.dst) {
      throw std::invalid_argument(
          "Simulator: flow src == dst (local moves carry no traffic)");
    }
    if (f.volume < 0.0 || !std::isfinite(f.volume)) {
      throw std::invalid_argument("Simulator: invalid flow volume");
    }
    if (f.start < 0.0 || !std::isfinite(f.start)) {
      throw std::invalid_argument("Simulator: invalid flow start offset");
    }
    if (f.volume <= config_.completion_epsilon) continue;
    Flow g;
    g.src = f.src;
    g.dst = f.dst;
    g.volume = f.volume;
    g.remaining = f.volume;
    g.start = spec.arrival + f.start;
    fs.push_back(g);
  }
  push_normalized(std::move(spec.name), spec.arrival, spec.deadline,
                  spec.weight, std::move(fs));
}

void Simulator::set_network(std::shared_ptr<const Network> network) {
  if (!network) throw std::invalid_argument("Simulator: null network");
  if (ran_) throw std::logic_error("Simulator: set_network after run()");
  if (network->nodes() != network_->nodes()) {
    throw std::invalid_argument("Simulator::set_network: node count mismatch");
  }
  if (!faults_.empty()) faults_.validate(*network);
  network_ = std::move(network);
}

void Simulator::reset_epoch() noexcept {
  coflows_.clear();
  total_flows_ = 0;
  trace_.clear();
  ran_ = false;
}

void Simulator::set_faults(FaultSchedule schedule, FaultOptions options) {
  if (ran_) throw std::logic_error("Simulator: set_faults after run()");
  if (!(options.replace_threshold >= 0.0 && options.replace_threshold <= 1.0)) {
    throw std::invalid_argument("Simulator: replace_threshold not in [0, 1]");
  }
  schedule.validate(*network_);
  faults_ = std::move(schedule);
  fault_options_ = options;
}

SimReport Simulator::run() {
  if (ran_) throw std::logic_error("Simulator: run() called twice");
  ran_ = true;

  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Per-coflow state from the normalized specs, then one flat flow array.
  // The normalized per-coflow lists are released as they are consumed — at
  // service scale they would otherwise double the flow footprint.
  const std::size_t coflow_count = coflows_.size();
  std::vector<CoflowState> states(coflow_count);
  for (std::size_t c = 0; c < coflow_count; ++c) {
    CoflowState& st = states[c];
    st.id = static_cast<std::uint32_t>(c);
    st.arrival = coflows_[c].arrival;
    st.deadline = coflows_[c].deadline;
    st.weight = coflows_[c].weight;
    st.bytes_total = coflows_[c].bytes_total;
    st.flows_total = st.flows_active = coflows_[c].flows.size();
  }
  std::vector<Flow> flows;
  flows.reserve(total_flows_);
  for (NormalizedCoflow& nc : coflows_) {
    flows.insert(flows.end(), nc.flows.begin(), nc.flows.end());
    std::vector<Flow>().swap(nc.flows);
  }

  // Sort flows by activation time so active ones form a prefix; completed
  // flows are swapped past `active_end`.
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.coflow < b.coflow;
  });

  SimReport report;
  report.coflows.resize(coflow_count);
  report.name_index.reserve(coflow_count);
  for (std::size_t c = 0; c < coflow_count; ++c) {
    report.coflows[c].name = coflows_[c].name;
    report.coflows[c].arrival = states[c].arrival;
    report.coflows[c].bytes = states[c].bytes_total;
    report.coflows[c].flows = states[c].flows_total;
    report.coflows[c].deadline = states[c].deadline;
    report.coflows[c].weight = states[c].weight;
    report.name_index.emplace(coflows_[c].name, c);
  }

  // Hot per-flow state in SoA columns (remaining/rate drive every event; the
  // cached link spans make L_ij lookups pointer dereferences). The columns
  // are swapped together, so a flow's fields always share one index. All of
  // it — columns, link slab, parallel-advance accumulators — is carved from
  // one monotonic arena: the caller's (core::Engine resets and recycles it
  // across drains) or a run-local one.
  const std::size_t n = flows.size();
  util::MonotonicArena local_arena;
  util::MonotonicArena& arena = config_.arena ? *config_.arena : local_arena;

  std::uint32_t* src = arena.allocate<std::uint32_t>(n);
  std::uint32_t* dst = arena.allocate<std::uint32_t>(n);
  std::uint32_t* cof = arena.allocate<std::uint32_t>(n);
  std::uint32_t* link_len = arena.allocate<std::uint32_t>(n);
  double* start = arena.allocate<double>(n);
  double* remaining = arena.allocate<double>(n);
  double* rate = arena.allocate<double>(n);
  const Network::LinkId** link_ptr = arena.allocate<const Network::LinkId*>(n);
  std::fill_n(rate, n, 0.0);

  AllocatorContext ctx;
  ctx.bind(*network_, coflow_count);

  // Per-flow link lists live in one contiguous arena slab instead of warming
  // the context's (src,dst) map: a fabric flow needs exactly two LinkIds, and
  // at millions of flows the map's node storage dwarfed them. The context's
  // map stays available for the fault-replacement path, which re-points
  // individual flows lazily.
  {
    std::vector<std::size_t> offs(n);
    std::vector<Network::LinkId> flat;
    flat.reserve(2 * n);
    std::vector<Network::LinkId> route;
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = flows[i].src;
      dst[i] = flows[i].dst;
      cof[i] = flows[i].coflow;
      start[i] = flows[i].start;
      remaining[i] = flows[i].remaining;
      route.clear();
      network_->append_links(src[i], dst[i], route);
      offs[i] = flat.size();
      flat.insert(flat.end(), route.begin(), route.end());
      link_len[i] = static_cast<std::uint32_t>(route.size());
    }
    Network::LinkId* slab = arena.allocate<Network::LinkId>(flat.size());
    std::copy(flat.begin(), flat.end(), slab);
    for (std::size_t i = 0; i < n; ++i) link_ptr[i] = slab + offs[i];
  }
  flows.clear();
  flows.shrink_to_fit();

  ActiveFlows view;
  view.src = src;
  view.dst = dst;
  view.coflow = cof;
  view.remaining = remaining;
  view.rate = rate;
  view.link_ptr = link_ptr;
  view.link_len = link_len;

  // Fault machinery (faults.hpp). Every fault structure and code path below
  // is gated on have_faults, so a run without a schedule executes exactly
  // the pre-fault engine — the empty-schedule bit-identity the property
  // tests assert. Schedule events are resolved to concrete link lists once,
  // up front, then dispatched through a calendar queue keyed by event time
  // (delivery order (time, push order) — identical to the former sorted
  // cursor's (time, schedule order)).
  const bool have_faults = !faults_.empty();
  struct ResolvedFault {
    double time = 0.0;
    double factor = 1.0;
    std::uint32_t node = 0;
    bool replace = false;  ///< ingress failure that triggers re-placement
    std::vector<Network::LinkId> links;
  };
  std::vector<ResolvedFault> resolved_faults;
  util::CalendarQueue fault_cal;
  std::vector<double> base_cap, current_cap, link_scale;
  std::unique_ptr<FaultedNetworkView> faulted_view;
  // Network the reference engine's per-event AoS rebuild reads capacities
  // from; with faults installed it must see the current (degraded) values.
  const Network* sched_net = network_.get();
  if (have_faults) {
    const std::size_t link_count = network_->link_count();
    base_cap.resize(link_count);
    for (std::size_t l = 0; l < link_count; ++l) {
      base_cap[l] = network_->link_capacity(static_cast<Network::LinkId>(l));
    }
    current_cap = base_cap;
    link_scale.assign(link_count, 1.0);
    faulted_view = std::make_unique<FaultedNetworkView>(*network_, current_cap);
    sched_net = faulted_view.get();
    resolved_faults.reserve(faults_.size());
    for (const FaultEvent& e : faults_.events()) {
      ResolvedFault r;
      r.time = e.time;
      r.factor = (e.kind == FaultKind::kRestoreLink ||
                  e.kind == FaultKind::kRestorePort)
                     ? 1.0
                     : e.factor;
      r.node = e.node;
      switch (e.kind) {
        case FaultKind::kDegradeLink:
        case FaultKind::kRestoreLink:
          r.links.push_back(e.link);
          break;
        case FaultKind::kDegradePort:
        case FaultKind::kRestorePort:
          if (e.side != PortSide::kIngress) {
            network_->append_egress_links(e.node, r.links);
          }
          if (e.side != PortSide::kEgress) {
            network_->append_ingress_links(e.node, r.links);
          }
          break;
      }
      r.replace = fault_options_.replace_on_failure &&
                  e.kind == FaultKind::kDegradePort &&
                  e.side != PortSide::kEgress &&
                  e.factor <= fault_options_.replace_threshold;
      resolved_faults.push_back(std::move(r));
    }
    double lo = kInf, hi = -kInf;
    for (const ResolvedFault& r : resolved_faults) {
      lo = std::min(lo, r.time);
      hi = std::max(hi, r.time);
    }
    fault_cal.prepare(lo, hi, resolved_faults.size());
    for (std::size_t i = 0; i < resolved_faults.size(); ++i) {
      fault_cal.push(resolved_faults[i].time,
                     static_cast<util::CalendarQueue::Payload>(i));
    }
  }

  const bool incremental = config_.engine == SimEngine::kIncremental;
  if (config_.record_trace) trace_.reserve(n + coflow_count + 16);

  // Epoch ceiling: explicit values are honored exactly; the 0 default scales
  // with the workload (see SimConfig::max_events).
  const std::size_t max_events =
      config_.max_events != 0
          ? config_.max_events
          : 1'000'000 + 64 * (n + coflow_count + resolved_faults.size());

  // Coflow arrival dispatch: a calendar queue keyed by arrival time replaces
  // the per-event O(#coflows) sweep and the sorted-vector cursor that
  // followed it. Coflows are pushed in id order, so equal-time deliveries
  // reproduce the former (arrival, id) order exactly.
  util::CalendarQueue coflow_cal;
  if (coflow_count > 0) {
    double lo = kInf, hi = -kInf;
    for (const CoflowState& st : states) {
      lo = std::min(lo, st.arrival);
      hi = std::max(hi, st.arrival);
    }
    coflow_cal.prepare(lo, hi, coflow_count);
    for (std::size_t c = 0; c < coflow_count; ++c) {
      coflow_cal.push(states[c].arrival,
                      static_cast<util::CalendarQueue::Payload>(c));
    }
  }
  std::size_t coflows_drained = 0;

  double now = 0.0;
  std::size_t next_unarrived = 0;  // flows[next_unarrived..) not yet arrived
  std::size_t active_end = 0;      // flows[0..active_end) are active
  std::size_t completed_total = 0;
  // Set when a flow of an already-rejected coflow activates: its drop sweep
  // must run at the next event even though no new rejection happened.
  bool drop_pending = false;

  std::vector<ChunkScratch> chunk_scratch;
  std::vector<Flow> aos;  // reference mode: rebuilt per event (seed shape)

  // Fallback next-event reduction: chunked parallel min over
  // remaining[i]/rate[i] (next_event.hpp), bit-identical to the scalar scan.
  // Allocators rewrite every active rate each epoch, so the engine marks the
  // full active range dirty after allocate(); the scanner's win here is the
  // parallel rescan and deterministic chunk merge (the clean-chunk fast path
  // serves callers with sparse updates, e.g. the property suite).
  NextEventScan next_scan;
  next_scan.bind(remaining, rate);

  // Stable compaction: completed flows leave by shifting the survivors down,
  // so every coflow keeps its members in a stable relative order across
  // events. Allocators rely on this to reuse per-coflow structures (a
  // rebuilt structure then matches the cached one exactly); it also keeps
  // the freeze/subtraction order of the shared kernels deterministic.
  auto move_flow = [&](std::size_t from, std::size_t to) {
    if (from == to) return;
    src[to] = src[from];
    dst[to] = dst[from];
    cof[to] = cof[from];
    start[to] = start[from];
    remaining[to] = remaining[from];
    rate[to] = rate[from];
    link_ptr[to] = link_ptr[from];
    link_len[to] = link_len[from];
  };

  auto activate_arrivals = [&] {
    while (next_unarrived < n && start[next_unarrived] <= now) {
      const std::uint32_t c = cof[next_unarrived];
      states[c].started = true;
      ctx.touch(c);  // membership changed: keys and grouping are stale
      if (states[c].rejected) drop_pending = true;
      // Anything in [active_end, next_unarrived) is a dead (completed) flow
      // left behind by compaction; overwriting it is safe.
      move_flow(next_unarrived, active_end);
      ++active_end;
      ++next_unarrived;
    }
    // Calendar-based replacement of the zero-flow-coflow sweep. At the first
    // event with now >= arrival no flow of the coflow can have completed yet,
    // so flows_active == 0 here means the coflow never had network flows.
    coflow_cal.pop_due(now, [&](double, util::CalendarQueue::Payload cid) {
      CoflowState& st = states[cid];
      if (!st.started) {
        st.started = true;
        ctx.touch(st.id);
      }
      if (!st.completed && st.flows_active == 0) {
        st.completed = true;
        st.completion = std::max(now, st.arrival);
        report.coflows[st.id].completion = st.completion;
        ctx.touch(st.id);
      }
      ++coflows_drained;
    });
  };

  // Completion bookkeeping plus the stable compaction that keeps surviving
  // flows in order (advance loops zero `remaining` on completion). `from` is
  // a caller-known lower bound on the first completed index: everything
  // before it stays in place, so the shift starts there.
  auto compact_completed = [&](std::size_t from) {
    std::size_t w = from;
    for (std::size_t idx = from; idx < active_end; ++idx) {
      if (remaining[idx] > 0.0) {
        move_flow(idx, w++);
        continue;
      }
      CoflowState& st = states[cof[idx]];
      --st.flows_active;
      ++completed_total;
      ctx.touch(cof[idx]);
      if (st.flows_active == 0) {
        st.completed = true;
        st.completion = now;
        report.coflows[st.id].completion = now;
      }
    }
    active_end = w;
  };

  // Failure-aware re-placement (DESIGN.md §6): when an ingress port fails
  // mid-shuffle, move the unfinished remainder of the flows headed there
  // onto surviving nodes with the CCF greedy — largest remainder first,
  // each flow to the destination minimizing the resulting port-time
  // bottleneck over the *remaining* bytes. Sources are fixed (the data sits
  // on its sender), so only ingress times change; the top-2 trick makes the
  // exclude-self maximum O(1) per candidate destination.
  auto replace_flows_to = [&](std::uint32_t dead) {
    constexpr std::uint32_t kNoNode = std::numeric_limits<std::uint32_t>::max();
    const std::size_t nn = network_->nodes();
    const double threshold = fault_options_.replace_threshold;
    // Current per-node port capacities and ingress scales (min over the
    // port's links; single-link ports on every bundled topology).
    std::vector<double> ecap(nn, 0.0), icap(nn, 0.0), iscale(nn, 1.0);
    {
      std::vector<Network::LinkId> port;
      for (std::uint32_t j = 0; j < nn; ++j) {
        port.clear();
        network_->append_egress_links(j, port);
        double c = kInf;
        for (const auto l : port) c = std::min(c, current_cap[l]);
        ecap[j] = c == kInf ? 0.0 : c;
        port.clear();
        network_->append_ingress_links(j, port);
        c = kInf;
        double s = 1.0;
        for (const auto l : port) {
          c = std::min(c, current_cap[l]);
          s = std::min(s, link_scale[l]);
        }
        icap[j] = c == kInf ? 0.0 : c;
        iscale[j] = s;
      }
    }
    // Remaining-byte port loads over live flows (active + not yet arrived)
    // and the candidates: unfinished flows headed to the dead port.
    std::vector<double> eload(nn, 0.0), iload(nn, 0.0);
    std::vector<std::size_t> cands;
    auto scan = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (states[cof[i]].rejected || remaining[i] <= 0.0) continue;
        eload[src[i]] += remaining[i];
        iload[dst[i]] += remaining[i];
        if (dst[i] == dead && remaining[i] > config_.completion_epsilon) {
          cands.push_back(i);
        }
      }
    };
    scan(0, active_end);
    scan(next_unarrived, n);
    if (cands.empty()) return;
    std::stable_sort(cands.begin(), cands.end(),
                     [&](std::size_t a, std::size_t b) {
                       return remaining[a] > remaining[b];
                     });
    // Egress times never change (sources are fixed); failed egress ports are
    // excluded — their stranded load is not actionable by this hook.
    double egress_time = 0.0;
    for (std::uint32_t j = 0; j < nn; ++j) {
      if (ecap[j] > 0.0) egress_time = std::max(egress_time, eload[j] / ecap[j]);
    }
    for (const std::size_t i : cands) {
      const double v = remaining[i];
      iload[dead] -= v;
      // Top-2 ingress times over surviving nodes.
      double t1 = -1.0, t2 = -1.0;
      std::uint32_t a1 = kNoNode;
      for (std::uint32_t j = 0; j < nn; ++j) {
        if (iscale[j] <= threshold || icap[j] <= 0.0) continue;
        const double t = iload[j] / icap[j];
        if (t > t1) {
          t2 = t1;
          t1 = t;
          a1 = j;
        } else if (t > t2) {
          t2 = t;
        }
      }
      std::uint32_t best = kNoNode;
      double best_time = kInf;
      for (std::uint32_t j = 0; j < nn; ++j) {
        if (j == src[i] || iscale[j] <= threshold || icap[j] <= 0.0) continue;
        const double others = j == a1 ? (t2 < 0.0 ? 0.0 : t2) : t1;
        const double t =
            std::max({egress_time, others, (iload[j] + v) / icap[j]});
        if (t < best_time) {
          best_time = t;
          best = j;
        }
      }
      if (best == kNoNode) {  // no surviving destination: ride out the fault
        iload[dead] += v;
        continue;
      }
      dst[i] = best;
      const auto links = ctx.links(src[i], best);
      link_ptr[i] = links.data();
      link_len[i] = static_cast<std::uint32_t>(links.size());
      rate[i] = 0.0;
      iload[best] += v;
      ctx.touch(cof[i]);  // link sets changed: grouping structures are stale
      ++report.replacements;
    }
  };

  // Apply every fault event due at `now`: rescale the affected links, then
  // refresh the allocator's cached capacities and drop its capacity-derived
  // caches (SEBF Γ keys, allocator-private state keyed on generation())
  // through the same reset path the reference engine uses. The link table
  // survives — topology never changes.
  std::vector<std::uint32_t> replace_pending;
  auto apply_faults_due = [&] {
    if (!have_faults) return;
    bool changed = false;
    fault_cal.pop_due(now, [&](double, util::CalendarQueue::Payload fi) {
      const ResolvedFault& f = resolved_faults[fi];
      for (const auto l : f.links) {
        if (link_scale[l] != f.factor) {
          link_scale[l] = f.factor;
          current_cap[l] = base_cap[l] * f.factor;
          changed = true;
        }
      }
      if (f.replace) replace_pending.push_back(f.node);
      ++report.fault_events;
    });
    if (changed) {
      ctx.update_capacities(current_cap);
      ctx.reset_caches();
    }
    if (!replace_pending.empty()) {
      std::sort(replace_pending.begin(), replace_pending.end());
      replace_pending.erase(
          std::unique(replace_pending.begin(), replace_pending.end()),
          replace_pending.end());
      for (const std::uint32_t nd : replace_pending) replace_flows_to(nd);
      replace_pending.clear();
    }
  };

  activate_arrivals();
  apply_faults_due();

  while (true) {
    if (active_end == 0) {
      // Nothing active: jump to the next arrival or fault, or finish (any
      // fault past the last arrival cannot affect anything observable).
      if (next_unarrived >= n) break;
      double t = start[next_unarrived];
      if (have_faults) t = std::min(t, fault_cal.next_time());
      now = t;
      activate_arrivals();
      apply_faults_due();
      continue;
    }
    if (report.events >= max_events) {
      throw std::runtime_error(
          "Simulator: max_events exceeded — " + std::to_string(report.events) +
          " scheduling epochs at t=" + std::to_string(now) + " hit the " +
          (config_.max_events != 0 ? "configured" : "auto-scaled") +
          " limit of " + std::to_string(max_events) +
          "; raise SimConfig.max_events if the workload is genuinely this "
          "large");
    }
    if (now > config_.max_time) {
      throw std::runtime_error("Simulator: max_time exceeded");
    }
    ++report.events;

    if (incremental) {
      view.count = active_end;
      ctx.begin_epoch();
      allocator_->allocate(ctx, view, states, now);
    } else {
      // Reference engine: per-event full recomputation through the legacy
      // AoS entry point — the pre-incremental engine's shape. Every call
      // rebuilds the allocator's link table, residuals, keys and coflow
      // order from scratch; nothing survives between events.
      aos.resize(active_end);
      for (std::size_t i = 0; i < active_end; ++i) {
        Flow& f = aos[i];
        f.src = src[i];
        f.dst = dst[i];
        f.coflow = cof[i];
        f.start = start[i];
        f.volume = remaining[i];
        f.remaining = remaining[i];
        f.rate = rate[i];
      }
      allocator_->allocate(std::span<Flow>(aos), states, *sched_net, now);
      for (std::size_t i = 0; i < active_end; ++i) rate[i] = aos[i].rate;
    }
    // Every active rate was just rewritten.
    next_scan.mark_dirty(0, active_end);

    // Drop the flows of coflows the allocator just rejected (admission
    // control): they are marked completed-as-rejected at rejection time. The
    // incremental engine skips the sweep unless a rejection is pending.
    if (!incremental || ctx.rejection_pending || drop_pending) {
      drop_pending = false;
      std::size_t w = 0;
      for (std::size_t idx = 0; idx < active_end; ++idx) {
        CoflowState& st = states[cof[idx]];
        if (!st.rejected) {
          move_flow(idx, w++);
          continue;
        }
        if (!st.completed) {
          st.completed = true;
          st.completion = now;
          report.coflows[st.id].completion = now;
          report.coflows[st.id].rejected = true;
          ctx.touch(st.id);
        }
        --st.flows_active;
      }
      active_end = w;
    }
    if (active_end == 0) continue;  // everything active was rejected

    // Next event: earliest flow completion or next coflow arrival. The
    // incremental engine takes the allocator's hint (computed per-flow, so
    // identical to this scan); otherwise the chunked reduction runs — exact
    // min, bit-identical to the former scalar loop.
    double dt = kInf;
    if (incremental && ctx.min_dt_valid()) {
      dt = ctx.min_dt();
    } else {
      dt = next_scan.min_dt(active_end, config_.parallel_advance_threshold);
    }
    if (next_unarrived < n) dt = std::min(dt, start[next_unarrived] - now);
    if (have_faults) {
      // Never step past a fault epoch: capacities change there. This also
      // keeps a total outage alive — every flow may sit at rate 0 waiting
      // for a scheduled restore, which is progress, not starvation.
      // (next_time() is +inf once the schedule is drained.)
      dt = std::min(dt, fault_cal.next_time() - now);
    }
    if (dt == kInf) {
      throw std::runtime_error(
          "Simulator: starvation — allocator \"" + allocator_->name() +
          "\" assigned zero rate to every active flow");
    }
    dt = std::max(dt, 0.0);
    // Forward-progress guard: a zero-length epoch is only legal when it
    // consumes at least one pending arrival or fault event (or completes a
    // flow); otherwise the loop would spin at this timestamp forever.
    const bool zero_dt = dt == 0.0;
    const std::size_t progress_before =
        next_unarrived + coflows_drained + completed_total +
        report.fault_events;

    // Advance the clock and all active flows.
    now += dt;
    if (active_end >= config_.parallel_advance_threshold &&
        active_end > kAdvanceGrain) {
      // Phase 1 (parallel): per-flow remaining -= rate*dt plus per-chunk
      // byte accounting. Chunk k owns scratch slot k (deterministic chunk
      // boundaries), so no cross-thread state is shared. The per-coflow
      // delta arrays come out of the arena, sequentially, before the fork.
      const std::size_t chunks =
          util::parallel_chunk_count(active_end, kAdvanceGrain);
      if (chunk_scratch.size() < chunks) {
        const std::size_t old = chunk_scratch.size();
        chunk_scratch.resize(chunks);
        for (std::size_t k = old; k < chunks; ++k) {
          chunk_scratch[k].delta = arena.allocate<double>(coflow_count);
          std::fill_n(chunk_scratch[k].delta, coflow_count, 0.0);
        }
      }
      util::parallel_for(
          active_end, kAdvanceGrain, [&](std::size_t b, std::size_t e) {
            ChunkScratch& cs = chunk_scratch[b / kAdvanceGrain];
            cs.total = 0.0;
            cs.completed = false;
            for (std::size_t idx = b; idx < e; ++idx) {
              const double moved = rate[idx] * dt;
              double rem = remaining[idx] - moved;
              double bytes = moved;
              if (rem <= config_.completion_epsilon) {
                // Any sub-epsilon residue still counts as delivered.
                bytes += std::max(rem, 0.0);
                rem = 0.0;
                cs.completed = true;
              }
              remaining[idx] = rem;
              if (bytes != 0.0) {
                const std::uint32_t c = cof[idx];
                if (cs.delta[c] == 0.0) cs.touched.push_back(c);
                cs.delta[c] += bytes;
                cs.total += bytes;
              }
            }
          });
      // Phase 2 (sequential, chunk order): merge byte totals, then run the
      // same completion/compaction sweep as the sequential path. Summing
      // per-chunk partials reorders the floating-point adds, so bytes_sent /
      // total_bytes can differ from the sequential path by rounding ulps.
      std::size_t first_done = active_end;
      for (std::size_t k = 0; k < chunks; ++k) {
        ChunkScratch& cs = chunk_scratch[k];
        report.total_bytes += cs.total;
        if (cs.completed && first_done == active_end) {
          first_done = k * kAdvanceGrain;
        }
        for (const std::uint32_t c : cs.touched) {
          states[c].bytes_sent += cs.delta[c];
          cs.delta[c] = 0.0;  // restore the all-zero invariant
        }
        cs.touched.clear();
      }
      if (first_done < active_end) compact_completed(first_done);
    } else {
      std::size_t first_done = active_end;
      for (std::size_t idx = 0; idx < active_end; ++idx) {
        const double moved = rate[idx] * dt;
        double rem = remaining[idx] - moved;
        double bytes = moved;
        if (rem <= config_.completion_epsilon) {
          // Any sub-epsilon residue still counts as delivered.
          bytes += std::max(rem, 0.0);
          rem = 0.0;
          if (first_done == active_end) first_done = idx;
        }
        remaining[idx] = rem;
        states[cof[idx]].bytes_sent += bytes;
        report.total_bytes += bytes;
      }
      if (first_done < active_end) compact_completed(first_done);
    }

    if (config_.record_trace) {
      trace_.push_back(TraceEvent{now, active_end, completed_total});
    }

    activate_arrivals();
    apply_faults_due();
    if (zero_dt && next_unarrived + coflows_drained + completed_total +
                           report.fault_events ==
                       progress_before) {
      throw std::runtime_error(
          "Simulator: no forward progress — allocator \"" +
          allocator_->name() + "\" produced a zero-length epoch at t=" +
          std::to_string(now) + " (event " + std::to_string(report.events) +
          ", " + std::to_string(active_end) + " active flows)");
    }
    if (active_end == 0 && next_unarrived >= n) break;
  }

  // Zero-flow coflows arriving after the last transfer finished never pass
  // through the loop; close them at their arrival time.
  for (CoflowState& st : states) {
    if (!st.completed && st.flows_active == 0) {
      st.completed = true;
      st.completion = std::max(now, st.arrival);
      report.coflows[st.id].completion = st.completion;
    }
    report.makespan = std::max(report.makespan, st.completion);
  }
  return report;
}

}  // namespace ccf::net
