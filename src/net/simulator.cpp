#include "net/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccf::net {

double SimReport::average_cct() const noexcept {
  if (coflows.empty()) return 0.0;
  double s = 0.0;
  for (const CoflowResult& c : coflows) s += c.cct();
  return s / static_cast<double>(coflows.size());
}

double SimReport::cct_of(const std::string& name) const {
  for (const CoflowResult& c : coflows) {
    if (c.name == name) return c.cct();
  }
  throw std::out_of_range("SimReport: no coflow named " + name);
}

Simulator::Simulator(Fabric fabric, std::unique_ptr<RateAllocator> allocator,
                     SimConfig config)
    : Simulator(std::make_shared<const Fabric>(std::move(fabric)),
                std::move(allocator), config) {}

Simulator::Simulator(std::shared_ptr<const Network> network,
                     std::unique_ptr<RateAllocator> allocator, SimConfig config)
    : network_(std::move(network)),
      allocator_(std::move(allocator)),
      config_(config) {
  if (!network_) throw std::invalid_argument("Simulator: null network");
  if (!allocator_) throw std::invalid_argument("Simulator: null allocator");
}

void Simulator::add_coflow(CoflowSpec spec) {
  if (ran_) throw std::logic_error("Simulator: add_coflow after run()");
  if (spec.flows.nodes() != network_->nodes()) {
    throw std::invalid_argument("Simulator: coflow size != fabric size");
  }
  if (spec.arrival < 0.0 || !std::isfinite(spec.arrival)) {
    throw std::invalid_argument("Simulator: invalid arrival time");
  }
  if (spec.deadline < 0.0 || !std::isfinite(spec.deadline)) {
    throw std::invalid_argument("Simulator: invalid deadline");
  }
  if (spec.start_offsets) {
    if (spec.start_offsets->nodes() != spec.flows.nodes()) {
      throw std::invalid_argument("Simulator: start_offsets shape mismatch");
    }
    for (std::size_t i = 0; i < spec.flows.nodes(); ++i) {
      for (std::size_t j = 0; j < spec.flows.nodes(); ++j) {
        const double off = spec.start_offsets->volume(i, j);
        if (spec.flows.volume(i, j) > 0.0 &&
            (off < 0.0 || !std::isfinite(off))) {
          throw std::invalid_argument("Simulator: invalid flow start offset");
        }
      }
    }
  }
  specs_.push_back(std::move(spec));
}

SimReport Simulator::run() {
  if (ran_) throw std::logic_error("Simulator: run() called twice");
  ran_ = true;

  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Flatten all coflows into one flow array; per-coflow state on the side.
  std::vector<Flow> flows;
  std::vector<CoflowState> states(specs_.size());
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    CoflowState& st = states[c];
    st.id = static_cast<std::uint32_t>(c);
    st.arrival = specs_[c].arrival;
    st.deadline =
        specs_[c].deadline > 0.0 ? specs_[c].arrival + specs_[c].deadline : 0.0;
    std::vector<Flow> fs = specs_[c].flows.to_flows(config_.completion_epsilon);
    for (Flow& f : fs) {
      f.coflow = st.id;
      f.start = st.arrival;
      if (specs_[c].start_offsets) {
        f.start += specs_[c].start_offsets->volume(f.src, f.dst);
      }
      st.bytes_total += f.volume;
    }
    st.flows_total = st.flows_active = fs.size();
    flows.insert(flows.end(), fs.begin(), fs.end());
  }

  // Sort flows by activation time so active ones form a prefix; completed
  // flows are swapped past `active_end`.
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.coflow < b.coflow;
  });

  SimReport report;
  report.coflows.resize(specs_.size());
  for (std::size_t c = 0; c < specs_.size(); ++c) {
    report.coflows[c].name = specs_[c].name;
    report.coflows[c].arrival = specs_[c].arrival;
    report.coflows[c].bytes = states[c].bytes_total;
    report.coflows[c].flows = states[c].flows_total;
    report.coflows[c].deadline = states[c].deadline;
  }

  double now = 0.0;
  std::size_t next_unarrived = 0;  // flows[next_unarrived..) not yet arrived
  std::size_t active_end = 0;      // flows[0..active_end) are active
  std::size_t completed_total = 0;

  auto activate_arrivals = [&] {
    while (next_unarrived < flows.size() &&
           flows[next_unarrived].start <= now) {
      states[flows[next_unarrived].coflow].started = true;
      if (next_unarrived != active_end) {
        std::swap(flows[next_unarrived], flows[active_end]);
      }
      ++active_end;
      ++next_unarrived;
    }
    // Mark zero-flow coflows whose arrival passed as started/completed.
    for (CoflowState& st : states) {
      if (!st.started && st.arrival <= now) st.started = true;
      if (st.started && !st.completed && st.flows_active == 0) {
        st.completed = true;
        st.completion = std::max(now, st.arrival);
        report.coflows[st.id].completion = st.completion;
      }
    }
  };

  activate_arrivals();

  while (true) {
    if (active_end == 0) {
      // Nothing active: jump to the next arrival or finish.
      if (next_unarrived >= flows.size()) break;
      now = flows[next_unarrived].start;
      activate_arrivals();
      continue;
    }
    if (report.events >= config_.max_events) {
      throw std::runtime_error("Simulator: max_events exceeded");
    }
    if (now > config_.max_time) {
      throw std::runtime_error("Simulator: max_time exceeded");
    }
    ++report.events;

    allocator_->allocate({flows.data(), active_end}, states, *network_, now);

    // Drop the flows of coflows the allocator just rejected (admission
    // control): they are marked completed-as-rejected at rejection time.
    for (std::size_t idx = 0; idx < active_end;) {
      CoflowState& st = states[flows[idx].coflow];
      if (!st.rejected) {
        ++idx;
        continue;
      }
      if (!st.completed) {
        st.completed = true;
        st.completion = now;
        report.coflows[st.id].completion = now;
        report.coflows[st.id].rejected = true;
      }
      --st.flows_active;
      --active_end;
      std::swap(flows[idx], flows[active_end]);
    }
    if (active_end == 0) continue;  // everything active was rejected

    // Next event: earliest flow completion or next coflow arrival.
    double dt = kInf;
    for (std::size_t idx = 0; idx < active_end; ++idx) {
      const Flow& f = flows[idx];
      if (f.rate > 0.0) dt = std::min(dt, f.remaining / f.rate);
    }
    if (next_unarrived < flows.size()) {
      dt = std::min(dt, flows[next_unarrived].start - now);
    }
    if (dt == kInf) {
      throw std::runtime_error(
          "Simulator: starvation — allocator \"" + allocator_->name() +
          "\" assigned zero rate to every active flow");
    }
    dt = std::max(dt, 0.0);

    // Advance the clock and all active flows.
    now += dt;
    for (std::size_t idx = 0; idx < active_end;) {
      Flow& f = flows[idx];
      const double moved = f.rate * dt;
      f.remaining -= moved;
      states[f.coflow].bytes_sent += moved;
      report.total_bytes += moved;
      if (f.remaining <= config_.completion_epsilon) {
        // Any sub-epsilon residue still counts as delivered.
        states[f.coflow].bytes_sent += std::max(f.remaining, 0.0);
        report.total_bytes += std::max(f.remaining, 0.0);
        f.remaining = 0.0;
        CoflowState& st = states[f.coflow];
        --st.flows_active;
        ++completed_total;
        if (st.flows_active == 0) {
          st.completed = true;
          st.completion = now;
          report.coflows[st.id].completion = now;
        }
        --active_end;
        std::swap(flows[idx], flows[active_end]);
        // Keep arrival bookkeeping consistent: the swapped-out slot now holds
        // a finished flow that sits between active and unarrived regions.
      } else {
        ++idx;
      }
    }

    if (config_.record_trace) {
      trace_.push_back(TraceEvent{now, active_end, completed_total});
    }

    activate_arrivals();
    if (active_end == 0 && next_unarrived >= flows.size()) break;
  }

  // Zero-flow coflows arriving after the last transfer finished never pass
  // through the loop; close them at their arrival time.
  for (CoflowState& st : states) {
    if (!st.completed && st.flows_active == 0) {
      st.completed = true;
      st.completion = std::max(now, st.arrival);
      report.coflows[st.id].completion = st.completion;
    }
    report.makespan = std::max(report.makespan, st.completion);
  }
  return report;
}

}  // namespace ccf::net
