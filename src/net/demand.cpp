#include "net/demand.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccf::net {

Demand::Demand(std::size_t nodes) : nodes_(nodes) {
  if (nodes == 0) throw std::invalid_argument("Demand: nodes must be >= 1");
}

void Demand::add(std::size_t src, std::size_t dst, double bytes) {
  if (src == dst) {
    throw std::invalid_argument("Demand::add: intra-rack entry (src == dst " +
                                std::to_string(src) + ")");
  }
  if (src >= nodes_ || dst >= nodes_) {
    throw std::invalid_argument("Demand::add: endpoint out of range");
  }
  if (!(bytes >= 0.0) || !std::isfinite(bytes)) {
    throw std::invalid_argument("Demand::add: volume must be finite and >= 0");
  }
  if (bytes == 0.0) return;  // positive-volume invariant
  // An append that keeps the columns sorted on a fresh key costs nothing; the
  // common bulk paths (from_matrix, accumulate of a finalized demand into an
  // empty one) never trip the lazy sort.
  if (finalized_ && !src_.empty()) {
    const std::uint32_t ls = src_.back();
    const std::uint32_t ld = dst_.back();
    if (src < ls || (src == ls && dst <= ld)) finalized_ = false;
  }
  src_.push_back(static_cast<std::uint32_t>(src));
  dst_.push_back(static_cast<std::uint32_t>(dst));
  vol_.push_back(bytes);
}

void Demand::accumulate(const FlowMatrix& flows) {
  if (flows.nodes() != nodes_) {
    throw std::invalid_argument("Demand::accumulate: matrix size mismatch");
  }
  const std::size_t n = flows.nodes();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double v = flows.volume(i, j);
      if (v > 0.0) add(i, j, v);
    }
  }
}

void Demand::accumulate(std::span<const Flow> flows) {
  for (const Flow& f : flows) add(f.src, f.dst, f.volume);
}

void Demand::accumulate(const Demand& other) {
  if (other.nodes_ > nodes_) {
    throw std::invalid_argument("Demand::accumulate: demand size mismatch");
  }
  other.finalize();
  for (std::size_t k = 0; k < other.src_.size(); ++k) {
    add(other.src_[k], other.dst_[k], other.vol_[k]);
  }
}

void Demand::clear() noexcept {
  src_.clear();
  dst_.clear();
  vol_.clear();
  finalized_ = true;
}

void Demand::widen(std::size_t n) {
  if (n < nodes_) {
    throw std::invalid_argument("Demand::widen: cannot shrink the fabric");
  }
  nodes_ = n;
}

std::size_t Demand::size() const {
  finalize();
  return src_.size();
}

std::span<const std::uint32_t> Demand::srcs() const {
  finalize();
  return src_;
}

std::span<const std::uint32_t> Demand::dsts() const {
  finalize();
  return dst_;
}

std::span<const double> Demand::volumes() const {
  finalize();
  return vol_;
}

double Demand::volume(std::size_t src, std::size_t dst) const {
  finalize();
  // Binary search the (src,dst) key over the parallel sorted columns.
  std::size_t lo = 0, hi = src_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (src_[mid] < src || (src_[mid] == src && dst_[mid] < dst)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < src_.size() && src_[lo] == src && dst_[lo] == dst) return vol_[lo];
  return 0.0;
}

double Demand::traffic() const {
  finalize();
  double t = 0.0;
  for (const double v : vol_) t += v;
  return t;
}

std::size_t Demand::flow_count(double min_volume) const {
  finalize();
  std::size_t c = 0;
  for (const double v : vol_) {
    if (v > min_volume) ++c;
  }
  return c;
}

std::vector<Flow> Demand::to_flows(double min_volume) const {
  finalize();
  std::vector<Flow> flows;
  flows.reserve(flow_count(min_volume));
  for (std::size_t k = 0; k < vol_.size(); ++k) {
    if (vol_[k] > min_volume) {
      Flow f;
      f.src = src_[k];
      f.dst = dst_[k];
      f.volume = f.remaining = vol_[k];
      flows.push_back(f);
    }
  }
  return flows;
}

Demand::PortMarginals Demand::marginals() const {
  finalize();
  PortMarginals m;
  m.egress.assign(nodes_, 0.0);
  m.ingress.assign(nodes_, 0.0);
  for (std::size_t k = 0; k < vol_.size(); ++k) {
    m.egress[src_[k]] += vol_[k];
    m.ingress[dst_[k]] += vol_[k];
  }
  return m;
}

Demand Demand::from_matrix(const FlowMatrix& flows) {
  Demand d(flows.nodes());
  d.accumulate(flows);
  return d;
}

FlowMatrix Demand::to_matrix() const {
  finalize();
  FlowMatrix m(nodes_);
  for (std::size_t k = 0; k < vol_.size(); ++k) {
    m.set(src_[k], dst_[k], vol_[k]);
  }
  return m;
}

void Demand::finalize() const {
  if (finalized_) return;
  // Stable sort by (src,dst): within one pair the insertion order survives,
  // so the merge below sums duplicates in exactly the order FlowMatrix::add
  // would have accumulated them into the dense cell.
  std::vector<std::size_t> order(src_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (src_[a] != src_[b]) return src_[a] < src_[b];
                     return dst_[a] < dst_[b];
                   });
  std::vector<std::uint32_t> src, dst;
  std::vector<double> vol;
  src.reserve(order.size());
  dst.reserve(order.size());
  vol.reserve(order.size());
  for (const std::size_t k : order) {
    if (!src.empty() && src.back() == src_[k] && dst.back() == dst_[k]) {
      vol.back() += vol_[k];
    } else {
      src.push_back(src_[k]);
      dst.push_back(dst_[k]);
      vol.push_back(vol_[k]);
    }
  }
  src_ = std::move(src);
  dst_ = std::move(dst);
  vol_ = std::move(vol);
  finalized_ = true;
}

}  // namespace ccf::net
