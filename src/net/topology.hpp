// General topology layer (ROADMAP item 1): the fabric beyond the paper's
// single non-blocking switch.
//
// A Topology is a directed capacitated link graph over end hosts plus a
// *route-set*: for every ordered (src, dst) host pair it enumerates one or
// more loop-free paths, each a sequence of LinkIds from src's egress port to
// dst's ingress port. Three families are bundled:
//
//  * leaf_spine  — racks of hosts behind ToR switches, S spine switches,
//    configurable uplink oversubscription; one path per spine (the
//    MultiPathFabric model generalized to per-link storage).
//  * fat_tree    — the k-ary fat-tree of Al-Fares et al.: k pods of k/2 edge
//    and k/2 aggregation switches over (k/2)^2 cores, k^3/4 hosts;
//    (k/2)^2 paths between pods, k/2 inside a pod.
//  * waxman      — seeded BRITE-style irregular topologies (the generator
//    family TopoConfluence drives through ns-3, here native): routers placed
//    in the unit square, edges drawn with the Waxman probability
//    alpha * exp(-d / (beta * L)), connectivity patched deterministically,
//    hosts attached round-robin; the route-set is the k shortest loop-free
//    router paths per pair (Yen's algorithm over BFS hop counts).
//
// Link-id layout (shared with Fabric/RackFabric so fault schedules and the
// default Network::append_egress_links convention keep working): LinkId i in
// [0, n) is host i's egress port, [n, 2n) the ingress ports, switch-level
// links follow from 2n. Paths are stored as *segments* — the switch-level
// links only — grouped by the (src attachment, dst attachment) switch pair,
// so the per-pair table is one u32 and the path store is O(switch pairs),
// not O(host pairs).
//
// A Topology is route-free description; RoutedTopology binds it to a
// RouteChoice (one selected path index per ordered pair) behind the generic
// Network interface, so every allocator, bound, fault schedule and both
// simulator engines work unchanged. Routing policies that *produce* a
// RouteChoice (static ECMP, volume-greedy, and the joint routing×bandwidth
// optimizer) live in multipath.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/demand.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"

namespace ccf::net {

enum class TopologyKind { kLeafSpine, kFatTree, kIrregular };

/// Knobs of the Waxman generator (BRITE's router-level model).
struct WaxmanOptions {
  std::size_t routers = 8;   ///< router count (>= 1)
  double alpha = 0.4;        ///< edge-probability scale in (0, 1]
  double beta = 0.4;         ///< distance decay in (0, 1]
  /// Trunk (router-router) link capacity as a multiple of
  /// hosts_per_router * host_rate; 1.0 = a trunk carries its routers' full
  /// host load.
  double trunk_scale = 1.0;
  std::size_t route_k = 4;   ///< route-set size per router pair (>= 1)
};

/// One parsed `--topology` CLI spec; see parse() for the accepted grammar.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kLeafSpine;
  // leaf-spine
  std::size_t racks = 4;
  std::size_t hosts = 4;
  std::size_t spines = 2;
  /// Rack uplink oversubscription: the S uplinks of a rack share
  /// hosts * host_rate / oversub total capacity. Values below 1 are allowed
  /// (undersubscription); at or below 1/spines the spine layer can never be
  /// the bottleneck, which is the flat-equivalence regime of the tests.
  double oversub = 1.0;
  // fat-tree
  std::size_t fat_k = 4;      ///< even, >= 2; hosts = k^3/4
  double core_scale = 1.0;    ///< oversubscription of the agg<->core layer
  // irregular
  std::size_t nodes = 16;     ///< hosts of the waxman topology
  std::uint64_t seed = 1;
  WaxmanOptions waxman;
  /// Host port rate (bytes/s); callers usually overwrite with --port-rate.
  double host_rate = Fabric::kDefaultPortRate;

  /// Parse "kind[:key=value,...]", e.g.
  ///   "leafspine:racks=32,hosts=16,spines=4,oversub=4"
  ///   "fattree:k=4,core-scale=2"
  ///   "waxman:nodes=24,routers=8,seed=7,paths=4"
  /// Kinds: leafspine | fattree | waxman. Throws std::invalid_argument on
  /// unknown kinds/keys or malformed values. host_rate has no key — set it
  /// from the CLI's --port-rate.
  static TopologySpec parse(std::string_view text);
  /// Canonical round-trippable form of the spec (host_rate omitted).
  std::string to_string() const;
  /// End hosts the described topology will have, without building it
  /// (racks*hosts, k^3/4, or nodes) — what Engine sizes its session to.
  std::size_t node_count() const;
};

/// Immutable topology description: capacitated directed links + route-set.
class Topology {
 public:
  using LinkId = Network::LinkId;

  /// Endpoints of one directed link in the internal graph. Graph nodes
  /// [0, nodes()) are the hosts; switches follow. The property tests walk
  /// these to prove every path is loop-free and connects src to dst.
  struct LinkEnds {
    std::uint32_t tail = 0;
    std::uint32_t head = 0;
  };

  std::size_t nodes() const noexcept { return nodes_; }
  std::size_t link_count() const noexcept { return capacity_.size(); }
  double link_capacity(LinkId link) const { return capacity_.at(link); }
  TopologyKind kind() const noexcept { return kind_; }
  /// Hosts + switches of the internal graph.
  std::size_t graph_nodes() const noexcept { return graph_nodes_; }
  LinkEnds link_ends(LinkId link) const { return ends_.at(link); }

  /// Number of alternative paths of an ordered pair (>= 1; requires
  /// src != dst, both < nodes()).
  std::size_t path_count(std::uint32_t src, std::uint32_t dst) const;
  /// Append path `k`'s full link sequence — egress port, switch segment,
  /// ingress port — to `out`. Requires k < path_count(src, dst).
  void append_path_links(std::uint32_t src, std::uint32_t dst, std::uint32_t k,
                         std::vector<LinkId>& out) const;
  std::vector<LinkId> path_links(std::uint32_t src, std::uint32_t dst,
                                 std::uint32_t k) const {
    std::vector<LinkId> out;
    append_path_links(src, dst, k, out);
    return out;
  }
  /// Largest path_count over all pairs (1 on a single-switch topology).
  std::size_t max_path_count() const noexcept { return max_paths_; }

  // --- factories -----------------------------------------------------
  /// Leaf-spine: `racks` racks of `hosts_per_rack` hosts, one uplink and one
  /// downlink per (rack, spine) pair, each of capacity
  /// hosts_per_rack * host_rate / (oversubscription * spines). Cross-rack
  /// pairs get one path per spine.
  static std::shared_ptr<const Topology> leaf_spine(std::size_t racks,
                                                    std::size_t hosts_per_rack,
                                                    std::size_t spines,
                                                    double host_rate,
                                                    double oversubscription);
  /// k-ary fat-tree at full bisection (all links host_rate) except the
  /// agg<->core layer, scaled down by `core_oversubscription`.
  static std::shared_ptr<const Topology> fat_tree(
      std::size_t k, double host_rate, double core_oversubscription = 1.0);
  /// Seeded Waxman irregular topology; identical seeds produce identical
  /// topologies on every run and thread count (single-threaded Pcg32 build).
  static std::shared_ptr<const Topology> waxman(std::size_t hosts,
                                                double host_rate,
                                                std::uint64_t seed,
                                                const WaxmanOptions& options);

 private:
  friend class TopologyBuilder;
  Topology() = default;

  TopologyKind kind_ = TopologyKind::kLeafSpine;
  std::size_t nodes_ = 0;
  std::size_t graph_nodes_ = 0;
  std::size_t max_paths_ = 1;
  std::vector<double> capacity_;  ///< per LinkId
  std::vector<LinkEnds> ends_;    ///< per LinkId
  // Route-set storage: pair -> attachment group -> segment paths. Segments
  // exclude the host ports, which append_path_links synthesizes, so the
  // store scales with switch pairs.
  std::vector<std::uint32_t> pair_group_;  ///< size nodes^2 (diagonal unused)
  std::vector<std::uint32_t> group_off_;   ///< group -> [path_ids)
  std::vector<std::uint32_t> path_off_;    ///< path -> [links)
  std::vector<LinkId> path_links_;         ///< flat switch-segment links
};

/// Build the topology a spec describes.
std::shared_ptr<const Topology> make_topology(const TopologySpec& spec);

/// One selected path index per ordered (src, dst) pair, indexed
/// src * nodes + dst (diagonal unused). The routing policies in
/// multipath.hpp produce these.
using RouteChoice = std::vector<std::uint32_t>;

/// (topology, route choice) bound as a generic Network.
class RoutedTopology final : public Network {
 public:
  RoutedTopology(std::shared_ptr<const Topology> topology, RouteChoice choice);

  std::size_t nodes() const noexcept override { return topology_->nodes(); }
  std::size_t link_count() const noexcept override {
    return topology_->link_count();
  }
  double link_capacity(LinkId link) const override {
    return topology_->link_capacity(link);
  }
  void append_links(std::uint32_t src, std::uint32_t dst,
                    std::vector<LinkId>& out) const override;

  const Topology& topology() const noexcept { return *topology_; }
  const RouteChoice& choice() const noexcept { return choice_; }

 private:
  std::shared_ptr<const Topology> topology_;
  RouteChoice choice_;
};

/// Static ECMP: path = (src + dst) mod path_count — volume-oblivious, the
/// baseline of production fabrics (matches multipath.hpp's leaf-spine
/// route_ecmp on a leaf-spine topology).
RouteChoice route_ecmp(const Topology& topology);

/// Collapse every route-set to its first path ("k routes collapsed to 1" —
/// the single-path degeneration the equivalence tests pin against).
RouteChoice route_collapsed(const Topology& topology);

/// Volume-greedy: flows in descending volume order each take the path that
/// minimizes the resulting worst utilization over the path's links; pairs
/// without volume keep their ECMP path. The sparse Demand overload is the
/// core implementation; the FlowMatrix overload bridges through
/// Demand::from_matrix bit-identically (same candidate set, same tie order).
RouteChoice route_greedy(const Topology& topology, const Demand& demand);
RouteChoice route_greedy(const Topology& topology, const FlowMatrix& flows);

}  // namespace ccf::net
