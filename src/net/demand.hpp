// Columnar coflow demand.
//
// The paper's co-optimization loop (placement x routing x bandwidth) operates
// on an n x n demand, but realistic datacenter demand is extremely sparse
// (Qiu/Stein/Zhong; Shi et al.) — at 10k racks the dense matrix alone costs
// ~800 MB per coflow while a shuffle touches a few dozen pairs. Demand is the
// sparse-first representation every layer shares: sorted (src,dst,volume)
// triples in columnar storage plus per-port marginals, with a
// from_matrix/to_matrix bridge for the dense reference surface.
//
// Equivalence contract (pinned by tests/net/demand_test.cpp and
// tests/net/demand_equivalence_test.cpp): every consumer of a FlowMatrix that
// iterates entries row-major ascending and skips non-positive volumes sees
// the exact same entry sequence from a Demand's sorted triples, and every
// floating-point accumulation happens in the same order — so metrics,
// routing, ordering and simulation stay bit-identical to the dense path.
// Duplicate (src,dst) insertions merge by summing in insertion order, which
// is FlowMatrix::add's accumulation order.
//
// Invariants:
//  * src != dst (local moves consume no network; Network::append_links
//    requires it) — add() rejects intra-rack entries.
//  * volumes are finite and >= 0; zero-volume insertions are dropped, so the
//    triple set holds strictly positive volumes only.
//  * after finalize (any read accessor), triples are unique per (src,dst) and
//    sorted ascending by (src, dst).
//
// The sort/merge is lazy and cached: appends are O(1), the first read after a
// batch of appends pays one sort. Accessors are const but not thread-safe
// against each other until the demand has been finalized once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/flow.hpp"

namespace ccf::net {

class Demand {
 public:
  /// An empty demand over `nodes` ports (throws std::invalid_argument on 0).
  explicit Demand(std::size_t nodes);

  std::size_t nodes() const noexcept { return nodes_; }

  /// Add `bytes` to the (src,dst) pair. Duplicate pairs merge by summing in
  /// insertion order. Throws std::invalid_argument on src == dst, endpoints
  /// out of range, or a negative/non-finite volume; zero volumes are dropped.
  void add(std::size_t src, std::size_t dst, double bytes);

  /// Accumulate a dense matrix's off-diagonal positive entries (row-major).
  void accumulate(const FlowMatrix& flows);
  /// Accumulate flow records by volume (e.g. a SparseCoflowSpec's flow list).
  /// Validates each record like add().
  void accumulate(std::span<const Flow> flows);
  /// Accumulate another demand's merged triples (in its sorted order).
  void accumulate(const Demand& other);

  /// Drop every triple but keep the node count and the columns' capacity —
  /// the epoch-aggregation reuse path.
  void clear() noexcept;
  /// Re-interpret the triples over a wider fabric (n >= nodes()); used to pad
  /// CSV-ingested demand to a topology's host count without rebuilding.
  void widen(std::size_t n);

  // --- columnar views (finalized: unique pairs, ascending (src,dst)) -------
  std::size_t size() const;  ///< distinct (src,dst) pairs
  bool empty() const { return size() == 0; }
  std::span<const std::uint32_t> srcs() const;
  std::span<const std::uint32_t> dsts() const;
  std::span<const double> volumes() const;

  // --- dense-view adapter --------------------------------------------------
  /// Volume of one pair (0.0 when absent). O(log size) binary search; meant
  /// for small-n consumers and tests, not inner loops — iterate the columns.
  double volume(std::size_t src, std::size_t dst) const;

  /// Sum of all volumes (== FlowMatrix::traffic of the dense view).
  double traffic() const;
  /// Number of pairs with volume > min_volume (== FlowMatrix::flow_count).
  std::size_t flow_count(double min_volume = 1e-6) const;
  /// Materialize pairs above `min_volume` as Flow records, ascending
  /// (src,dst) with remaining = volume — bit-identical to
  /// FlowMatrix::to_flows of the dense view.
  std::vector<Flow> to_flows(double min_volume = 1e-6) const;

  /// Per-port marginal totals (the sparse counterpart of the dense per-port
  /// load vectors; accumulated in sorted-triple order).
  struct PortMarginals {
    std::vector<double> egress;   ///< bytes leaving each node
    std::vector<double> ingress;  ///< bytes entering each node
  };
  PortMarginals marginals() const;

  // --- dense bridge --------------------------------------------------------
  static Demand from_matrix(const FlowMatrix& flows);
  FlowMatrix to_matrix() const;

 private:
  void finalize() const;

  std::size_t nodes_;
  // Columns are mutable so the lazy sort/merge can run under const accessors.
  mutable std::vector<std::uint32_t> src_;
  mutable std::vector<std::uint32_t> dst_;
  mutable std::vector<double> vol_;
  mutable bool finalized_ = true;  ///< sorted, unique pairs
};

}  // namespace ccf::net
