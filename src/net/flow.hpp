// Flows and flow matrices.
//
// A flow is the paper's 3-tuple [src, des, v] (§II-B). A FlowMatrix is the
// n x n aggregate of all data movement of one operator: entry (i,j) is the
// number of bytes node i must send to node j. Tuples that stay local occupy
// the diagonal and consume no network resources; only off-diagonal entries
// become simulated flows. Flows between the same (src,dst) pair are combined
// into a single flow, exactly as the paper notes for plan SP2 in §II-B.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccf::net {

/// One point-to-point transfer inside a coflow.
struct Flow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double volume = 0.0;     ///< original size in bytes
  double remaining = 0.0;  ///< bytes still to transfer (simulation state)
  std::uint32_t coflow = 0;  ///< owning coflow index inside the simulator
  double rate = 0.0;       ///< bytes/s, written by the rate allocator
  double start = 0.0;      ///< absolute activation time (simulation state)
};

/// Dense n x n matrix of transfer volumes in bytes.
class FlowMatrix {
 public:
  explicit FlowMatrix(std::size_t nodes);

  std::size_t nodes() const noexcept { return nodes_; }

  double volume(std::size_t src, std::size_t dst) const noexcept {
    return data_[src * nodes_ + dst];
  }
  void set(std::size_t src, std::size_t dst, double bytes) noexcept {
    data_[src * nodes_ + dst] = bytes;
  }
  void add(std::size_t src, std::size_t dst, double bytes) noexcept {
    data_[src * nodes_ + dst] += bytes;
  }

  /// Network traffic: sum of all off-diagonal volumes (local moves are free).
  double traffic() const noexcept;
  /// Bytes node `src` sends to remote nodes.
  double egress(std::size_t src) const noexcept;
  /// Bytes node `dst` receives from remote nodes.
  double ingress(std::size_t dst) const noexcept;
  /// Number of off-diagonal entries above `min_volume`.
  std::size_t flow_count(double min_volume = 1e-6) const noexcept;

  /// Materialize off-diagonal entries above `min_volume` as Flow records
  /// (remaining = volume, coflow id filled in by the caller/simulator).
  std::vector<Flow> to_flows(double min_volume = 1e-6) const;

  friend bool operator==(const FlowMatrix&, const FlowMatrix&) = default;

 private:
  std::size_t nodes_;
  std::vector<double> data_;
};

}  // namespace ccf::net
