// Rate allocation policies ("coflow schedulers").
//
// Between simulator events, an allocator assigns each active flow a rate
// subject to link capacities (the paper's constraint (1.5): the rates through
// every link of L_ij must fit its capacity). Four policies are provided:
//
//  * FairSharing — per-flow max-min fairness, coflow-agnostic. Models
//    uncoordinated TCP-like sharing; the "worst schedule" of Fig. 2(a).
//  * Madd — FIFO across coflows; within a coflow, MADD (Minimum Allocation
//    for Desired Duration): every flow gets volume/Γ so the whole coflow
//    finishes exactly at its bottleneck bound. For a single coflow this is
//    the provably optimal schedule — the paper applies it to Hash, Mini and
//    CCF alike (§IV-A). Leftover bandwidth backfills later coflows.
//  * Varys — SEBF+MADD (Chowdhury et al., SIGCOMM'14): coflows ordered by
//    smallest effective bottleneck first, MADD within, backfilling.
//  * Aalo — D-CLAS approximation (Chowdhury & Stoica, SIGCOMM'15): coflows
//    prioritized by how many bytes they have already sent (10 MB starting
//    queue, 10x exponent), FIFO within a queue, per-coflow max-min inside.
//
// All policies operate on the generic Network link model, so they work
// unchanged on the flat Fabric and on rack topologies (rack.hpp).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/coflow.hpp"
#include "net/network.hpp"
#include "net/flow.hpp"

namespace ccf::net {

/// Strategy interface: write `rate` into every active flow.
class RateAllocator {
 public:
  virtual ~RateAllocator() = default;

  virtual std::string name() const = 0;

  /// Assign rates. `active` holds only flows of started, uncompleted coflows
  /// with remaining volume; `coflows` is indexed by Flow::coflow. `now` is
  /// the current simulation time (deadline-aware policies need it).
  /// Policies with admission control may set CoflowState::admitted/rejected;
  /// the engine removes a rejected coflow's flows after the call.
  virtual void allocate(std::span<Flow> active,
                        std::span<CoflowState> coflows,
                        const Network& network, double now) = 0;
};

/// Available allocator policies. kVarysDeadline is Varys's second operating
/// mode: earliest-deadline-first with admission control — a coflow whose
/// deadline cannot be met given already-admitted guarantees is rejected at
/// arrival; admitted coflows get the minimum rates that finish them exactly
/// on time, and deadline-free coflows share the leftovers SEBF-style.
enum class AllocatorKind { kFairSharing, kMadd, kVarys, kAalo, kVarysDeadline };

std::unique_ptr<RateAllocator> make_allocator(AllocatorKind kind);
/// By name: "fair", "madd", "varys", "aalo", "varys-edf". Throws on unknown
/// names.
std::unique_ptr<RateAllocator> make_allocator(const std::string& name);

namespace detail {

/// All link capacities of a network, indexed by LinkId (a fresh residual
/// vector for one allocation epoch).
std::vector<double> link_residuals(const Network& network);

/// Max-min water-filling of `flows` against residual link capacities
/// (consumed in place). Shared by FairSharing (one global group) and Aalo
/// (per-coflow groups).
void maxmin_fill(std::span<Flow*> flows, const Network& network,
                 std::span<double> residual);

/// Sequential MADD: for each coflow id in `order`, allocate MADD rates
/// against the residual capacities, then subtract them (backfilling).
/// Shared by Madd (FIFO order) and Varys (SEBF order).
void madd_sequential(std::span<Flow> active,
                     std::span<const std::uint32_t> order,
                     const Network& network, std::span<double> residual);

/// Effective bottleneck of each coflow on pristine capacities: for every
/// started coflow, Γ_c = max over links of (remaining load on link / cap).
/// Returns a vector indexed by coflow id (0 for absent coflows).
std::vector<double> coflow_bottlenecks(std::span<const Flow> active,
                                       std::size_t coflow_count,
                                       const Network& network);

}  // namespace detail

}  // namespace ccf::net
