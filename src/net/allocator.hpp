// Rate allocation policies ("coflow schedulers").
//
// Between simulator events, an allocator assigns each active flow a rate
// subject to link capacities (the paper's constraint (1.5): the rates through
// every link of L_ij must fit its capacity). Four policies are provided:
//
//  * FairSharing — per-flow max-min fairness, coflow-agnostic. Models
//    uncoordinated TCP-like sharing; the "worst schedule" of Fig. 2(a).
//  * Madd — FIFO across coflows; within a coflow, MADD (Minimum Allocation
//    for Desired Duration): every flow gets volume/Γ so the whole coflow
//    finishes exactly at its bottleneck bound. For a single coflow this is
//    the provably optimal schedule — the paper applies it to Hash, Mini and
//    CCF alike (§IV-A). Leftover bandwidth backfills later coflows.
//  * Varys — SEBF+MADD (Chowdhury et al., SIGCOMM'14): coflows ordered by
//    smallest effective bottleneck first, MADD within, backfilling.
//  * Aalo — D-CLAS approximation (Chowdhury & Stoica, SIGCOMM'15): coflows
//    prioritized by how many bytes they have already sent (10 MB starting
//    queue, 10x exponent), FIFO within a queue, per-coflow max-min inside.
//
// All policies operate on the generic Network link model, so they work
// unchanged on the flat Fabric and on rack topologies (rack.hpp).
//
// ## The incremental allocation protocol (DESIGN.md §4)
//
// The simulator calls an allocator once per event. To keep that call cheap,
// each run owns one AllocatorContext: a persistent cache of everything that
// does NOT change between events — link capacities, per-pair link sets, the
// schedulable-coflow set, per-coflow sort keys (Γ for SEBF) — plus reusable
// scratch buffers. The engine invalidates cached per-coflow state only for
// coflows actually touched by an arrival, completion or rejection
// (AllocatorContext::touch); allocators additionally invalidate the keys of
// coflows that progressed (sent bytes) in the epoch they schedule.
//
// Contract between engine and allocator, per allocate() call:
//  * The engine calls ctx.begin_epoch() first, which resets the per-epoch
//    outputs (min_dt, rejection_pending, flow grouping).
//  * The allocator writes `rate` for every active flow and SHOULD report
//    ctx.set_min_dt(min over rated flows of remaining/rate) — computed
//    per-flow, so it is bit-identical to a full scan — letting the engine
//    skip its O(#flows) next-event scan. An allocator that does not call
//    set_min_dt still works; the engine falls back to scanning.
//  * An allocator that sets CoflowState::rejected must also set
//    ctx.rejection_pending so the engine runs its (otherwise skipped)
//    rejected-flow sweep.
//  * The engine consumes completion hints; the dirty list is consumed by the
//    allocator (clear_dirty) after it has updated its cached order/keys.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/coflow.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"

namespace ccf::net {

/// SoA view over the active flows of one scheduling epoch. The engine keeps
/// the hot per-flow fields (`remaining`, `rate`) in structure-of-arrays
/// layout; allocators read `remaining` and write `rate`. `link_ptr[i]` /
/// `link_len[i]` expose flow i's cached link set (the paper's L_ij), resolved
/// once per flow at activation — no virtual Network call in any hot loop.
struct ActiveFlows {
  const std::uint32_t* src = nullptr;
  const std::uint32_t* dst = nullptr;
  const std::uint32_t* coflow = nullptr;
  const double* remaining = nullptr;
  double* rate = nullptr;
  const Network::LinkId* const* link_ptr = nullptr;
  const std::uint32_t* link_len = nullptr;
  std::size_t count = 0;

  std::size_t size() const noexcept { return count; }
  bool empty() const noexcept { return count == 0; }
  std::span<const Network::LinkId> links(std::size_t i) const noexcept {
    return {link_ptr[i], link_len[i]};
  }
};

namespace detail {

/// Link-incidence structure of one member set, the integer skeleton the
/// max-min water-fill runs on. It depends only on the membership and its
/// relative order — not on remaining volumes, rates, or residuals — so a
/// policy with stable per-coflow membership (the engine compacts flows
/// stably) can build it once per coflow and reuse it until the coflow is
/// touched. Rebuilding from an unchanged member list reproduces it exactly.
struct GroupStructure {
  std::vector<Network::LinkId> used;  ///< links in use, ascending ids
  std::vector<std::uint32_t> cnt;     ///< member incidences per used slot
  std::vector<double> cnt_d;          ///< cnt mirrored as doubles — the fill's
                                      ///< bottleneck sweep divides by it, and
                                      ///< a contiguous double lane avoids a
                                      ///< per-element int->fp convert in the
                                      ///< vectorized scan
  std::vector<std::uint32_t> off;     ///< per-slot start into `flat`
  std::vector<std::uint32_t> flat;    ///< member ordinals grouped by slot
  bool all_linked = false;            ///< every member crosses >= 1 link
  bool valid = false;                 ///< reflects the current member list
};

}  // namespace detail

/// Persistent per-run allocator state (see the protocol note above). One
/// context is bound to one (network, coflow population) for a whole
/// simulation; rebinding resets every cache, which is how the reference
/// engine forces full recomputation each event.
class AllocatorContext {
 public:
  static constexpr double kInfDt = std::numeric_limits<double>::infinity();

  AllocatorContext() = default;

  /// Bind to a network and coflow population; resets all cached state.
  void bind(const Network& network, std::size_t coflow_count);
  bool bound() const noexcept { return network_ != nullptr; }
  /// Monotone stamp bumped by bind() and reset_caches(); process-unique, so
  /// allocator-private caches keyed on it can tell a rebound or throwaway
  /// context from the persistent per-run one.
  std::uint64_t generation() const noexcept { return generation_; }
  const Network& network() const noexcept { return *network_; }
  std::size_t coflow_count() const noexcept { return coflow_count_; }
  std::size_t link_count() const noexcept { return capacity_.size(); }
  std::span<const double> capacities() const noexcept { return capacity_; }

  /// Cached L_ij for one (src, dst) pair; resolved via the Network on first
  /// request, then stable for the lifetime of the binding. NOT safe for
  /// concurrent first-touch — the engine warms every pair up front.
  std::span<const Network::LinkId> links(std::uint32_t src, std::uint32_t dst);

  /// Reset the shared residual buffer to the link capacities and return it.
  std::span<double> reset_residual();

  /// Overwrite the cached link capacities with fault-adjusted values
  /// (faults.hpp). Only capacities change: the link table and the per-flow
  /// link spans stay valid because link *topology* never changes. The caller
  /// must follow up with reset_caches() — cached keys (e.g. SEBF Γ) and
  /// allocator-private state derived from the old capacities are stale.
  void update_capacities(std::span<const double> capacities);

  // --- engine-side epoch control -------------------------------------
  /// Called by the engine before each allocate(): clears per-epoch outputs.
  void begin_epoch();

  /// Drop every cross-event cache (keys, order, schedulable set, dirty list)
  /// while keeping the link table and capacities — the cached per-flow link
  /// spans stay valid. The reference engine calls this before every
  /// allocate() to force full recomputation.
  void reset_caches();

  /// Invalidate cached per-coflow state (arrival / completion / rejection).
  void touch(std::uint32_t coflow);
  /// Coflows touched since the last clear_dirty(), deduplicated.
  std::span<const std::uint32_t> dirty() const noexcept { return dirty_; }
  void clear_dirty();

  // --- allocator-side outputs ----------------------------------------
  /// Report the time to the earliest flow completion under the rates just
  /// assigned (min over flows with rate > 0 of remaining/rate; kInfDt when
  /// no flow got a positive rate).
  void set_min_dt(double dt) noexcept {
    min_dt_ = dt;
    min_dt_valid_ = true;
  }
  bool min_dt_valid() const noexcept { return min_dt_valid_; }
  double min_dt() const noexcept { return min_dt_; }

  /// Flag that this allocate() call rejected at least one coflow.
  bool rejection_pending = false;

  // --- shared helpers -------------------------------------------------
  /// Group the active flows by coflow id (counting sort; stable, so members
  /// keep ascending flow-position order). Cached per epoch: repeated calls
  /// within one allocate() are free. Cost is O(active flows + coflows with
  /// active flows) — only the coflows present in the previous epoch are
  /// cleared, so an epoch's cost never depends on the total coflow
  /// population (essential at 10^5 coflows).
  void group_by_coflow(const ActiveFlows& flows);
  /// Active-flow positions of coflow `c` (valid after group_by_coflow;
  /// empty for a coflow with no active flows).
  std::span<const std::uint32_t> members(std::uint32_t c) const noexcept {
    return {group_flow_.data() + group_start_[c], group_len_[c]};
  }

  /// The maintained set of schedulable coflows (started && !completed).
  /// The first call after bind() does one full O(#coflows) priming sweep;
  /// afterwards the set is updated incrementally from the dirty list — no
  /// per-event sweep. Unordered; allocators sort it by their own keys. Does
  /// not clear the dirty list (allocators may still need it for key
  /// invalidation).
  std::span<const std::uint32_t> schedulable(
      std::span<const CoflowState> coflows);

  // --- allocator-owned per-coflow caches ------------------------------
  // (Sized by bind(); owned by whichever policy the run uses.)
  std::vector<double> key;             ///< cached sort key (e.g. SEBF Γ)
  std::vector<std::uint8_t> key_valid; ///< key[c] is current
  std::vector<double> coflow_dt;       ///< per-coflow finish dt of last epoch
  std::vector<std::uint32_t> order;    ///< cached schedule order
  bool order_valid = false;            ///< order reflects all dirty updates

  // Reusable scratch for detail:: helpers (never shrinks during a run).
  // Helpers use these only for the duration of one call; they maintain the
  // invariants noted in allocator.cpp (scratch_u32b all-npos, scratch_f64
  // all-zero on entry/exit) so sparse stamping needs no per-call clear.
  // scratch_f64b/scratch_f64c carry no invariant: the water-fill uses them
  // as per-round share and live-count lanes with fully overwritten prefixes.
  std::vector<std::uint32_t> scratch_u32a, scratch_u32b, scratch_u32c;
  std::vector<std::uint32_t> scratch_u32f;
  std::vector<double> scratch_f64, scratch_f64b, scratch_f64c;
  detail::GroupStructure scratch_group;  ///< throwaway for plain maxmin_fill

 private:
  const Network* network_ = nullptr;
  std::size_t coflow_count_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<double> capacity_;
  std::vector<double> residual_;
  // (src << 32 | dst) -> L_ij. Node-based map: mapped vectors are stable.
  std::unordered_map<std::uint64_t, std::vector<Network::LinkId>> link_table_;
  std::vector<std::uint32_t> dirty_;
  std::vector<std::uint8_t> dirty_flag_;
  // schedulable-set bookkeeping
  std::vector<std::uint32_t> sched_;
  std::vector<std::uint32_t> sched_pos_;  ///< position in sched_, or npos
  std::uint64_t sched_seen_dirty_ = 0;  ///< dirty entries already applied
  bool sched_primed_ = false;           ///< initial full sweep done
  // per-epoch grouping cache, sparse over the coflows that actually have
  // active flows: group_len_[c] == 0 for every absent coflow, and only the
  // coflows listed in group_present_ (last grouped epoch) are ever reset.
  std::vector<std::uint32_t> group_start_, group_len_, group_flow_;
  std::vector<std::uint32_t> group_cursor_, group_present_;
  bool groups_valid_ = false;
  double min_dt_ = kInfDt;
  bool min_dt_valid_ = false;
};

/// Strategy interface: write `rate` into every active flow.
class RateAllocator {
 public:
  virtual ~RateAllocator() = default;

  virtual std::string name() const = 0;

  /// Assign rates (primary, incremental entry point). `flows` holds only
  /// flows of started, uncompleted coflows with remaining volume; `coflows`
  /// is indexed by ActiveFlows::coflow. `now` is the current simulation time
  /// (deadline-aware policies need it). Policies with admission control may
  /// set CoflowState::admitted/rejected (and must set ctx.rejection_pending);
  /// the engine removes a rejected coflow's flows after the call.
  virtual void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                        std::span<CoflowState> coflows, double now) = 0;

  /// Legacy AoS entry point, kept for direct callers and tests. The default
  /// implementation bridges to the SoA overload through a throwaway context
  /// (i.e. full recomputation) and copies the rates back.
  virtual void allocate(std::span<Flow> active, std::span<CoflowState> coflows,
                        const Network& network, double now);
};

/// Available allocator policies. kVarysDeadline is Varys's second operating
/// mode: earliest-deadline-first with admission control — a coflow whose
/// deadline cannot be met given already-admitted guarantees is rejected at
/// arrival; admitted coflows get the minimum rates that finish them exactly
/// on time, and deadline-free coflows share the leftovers SEBF-style.
enum class AllocatorKind { kFairSharing, kMadd, kVarys, kAalo, kVarysDeadline };

std::unique_ptr<RateAllocator> make_allocator(AllocatorKind kind);
/// By name: "fair", "madd", "varys", "aalo", "varys-edf". Throws on unknown
/// names.
std::unique_ptr<RateAllocator> make_allocator(const std::string& name);

namespace detail {

/// Populate `gs` from the member set (discovery, incidence counts, per-link
/// member lists). The counting pass fans out via util::parallel_for above a
/// size threshold. Leaves the ctx scratch invariants intact.
void build_group_structure(const ActiveFlows& flows,
                           std::span<const std::uint32_t> members,
                           AllocatorContext& ctx, GroupStructure& gs);

/// Variant for groups that span (nearly) every link — the fair-sharing
/// global group. Slots equal link ids (`used` is 0..L-1), which skips the
/// discovery pass and sort entirely; links no member crosses keep cnt == 0
/// and are never picked by the bottleneck scan, so rates and tie-breaking
/// match the discovered-and-sorted structure exactly. Prefer the generic
/// builder for small groups: the water-fill scan is O(#used) per round,
/// and here #used is the full link count.
void build_group_structure_dense(const ActiveFlows& flows,
                                 std::span<const std::uint32_t> members,
                                 AllocatorContext& ctx, GroupStructure& gs);

/// Max-min water-filling of `members` against the residual capacities
/// (consumed in place), using a prebuilt structure. `members` must be the
/// exact member list `gs` was built from. Returns the earliest completion dt
/// among the flows it rated (kInfDt if none got a positive rate).
double maxmin_fill_prepared(const ActiveFlows& flows,
                            std::span<const std::uint32_t> members,
                            const GroupStructure& gs, AllocatorContext& ctx,
                            std::span<double> residual);

/// Bottleneck-scan kernel of maxmin_fill_prepared. kVectorized (default) is
/// the branch-light two-pass sweep over the dense slot arrays (value min,
/// then first-index match — auto-vectorizable, optionally AVX2 when built
/// with CCF_SIMD_FILL); kScalarReference is the original branchy
/// first-strict-min scan. Both select the same link and the same share value
/// bit-for-bit (the vectorized path re-reads the share at the matched index,
/// so even the sign of a zero share agrees); the switch exists so the
/// equivalence tests can pin one against the other per allocator.
enum class FillKernel { kVectorized, kScalarReference };
void set_maxmin_fill_kernel(FillKernel kernel) noexcept;
FillKernel maxmin_fill_kernel() noexcept;

/// Max-min water-filling of the flows at positions `members` against the
/// residual link capacities (consumed in place). Shared by FairSharing (one
/// global group) and Aalo (per-coflow groups). Builds a throwaway structure
/// in ctx scratch and runs maxmin_fill_prepared on it. O(total links of
/// members + used_links^2), not O(links * members): the freeze scan walks
/// per-link member lists instead of every flow.
double maxmin_fill(const ActiveFlows& flows,
                   std::span<const std::uint32_t> members,
                   AllocatorContext& ctx, std::span<double> residual);

/// Sequential MADD: for each coflow id in `order`, allocate MADD rates
/// against the residual capacities, then subtract them (backfilling).
/// Shared by Madd (FIFO order) and Varys (SEBF order). Requires
/// ctx.group_by_coflow(flows) to have been called this epoch. Writes each
/// scheduled coflow's finish dt into ctx.coflow_dt (kInfDt when starved) and
/// returns the minimum over them.
double madd_sequential(const ActiveFlows& flows,
                       std::span<const std::uint32_t> order,
                       AllocatorContext& ctx, std::span<double> residual);

/// Effective bottleneck Γ of one coflow on pristine capacities: max over
/// links of (remaining load on link / capacity). `members` are the coflow's
/// active-flow positions. 0.0 for an empty coflow.
double coflow_gamma(const ActiveFlows& flows,
                    std::span<const std::uint32_t> members,
                    AllocatorContext& ctx);

}  // namespace detail

}  // namespace ccf::net
