// FIFO + MADD: coflows served in arrival order; within a coflow every flow
// gets rate remaining/Γ so all flows finish together at the bottleneck bound.
// For a single coflow this is the optimal schedule of Fig. 2(b) and the
// network layer the paper gives to all three placement schedulers (§IV-A).
#include <algorithm>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class MaddAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "madd"; }

  void allocate(std::span<Flow> active, std::span<CoflowState> coflows,
                const Network& network, double) override {
    std::vector<double> residual = detail::link_residuals(network);
    // FIFO: arrival order, coflow id as tiebreak.
    std::vector<std::uint32_t> order;
    order.reserve(coflows.size());
    for (const CoflowState& c : coflows) {
      if (c.started && !c.completed) order.push_back(c.id);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      if (coflows[a].arrival != coflows[b].arrival) {
        return coflows[a].arrival < coflows[b].arrival;
      }
      return a < b;
    });
    detail::madd_sequential(active, order, network, residual);
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_madd_allocator();
std::unique_ptr<RateAllocator> make_madd_allocator() {
  return std::make_unique<MaddAllocator>();
}

}  // namespace ccf::net
