// FIFO + MADD: coflows served in arrival order; within a coflow every flow
// gets rate remaining/Γ so all flows finish together at the bottleneck bound.
// For a single coflow this is the optimal schedule of Fig. 2(b) and the
// network layer the paper gives to all three placement schedulers (§IV-A).
//
// The FIFO order only changes when a coflow starts or completes, so it is
// maintained incrementally: dirty coflows are inserted into / erased from the
// cached sorted order (ctx.order) instead of re-sorting every event.
// ctx.key_valid doubles as the "currently in the order" membership flag.
#include <algorithm>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class MaddAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "madd"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState> coflows, double) override {
    const auto sched = ctx.schedulable(coflows);
    // FIFO: arrival order, coflow id as tiebreak — a total order, so the
    // maintained sequence is identical to sorting from scratch.
    const auto before = [&](std::uint32_t a, std::uint32_t b) {
      if (coflows[a].arrival != coflows[b].arrival) {
        return coflows[a].arrival < coflows[b].arrival;
      }
      return a < b;
    };
    if (!ctx.order_valid) {
      ctx.order.assign(sched.begin(), sched.end());
      std::sort(ctx.order.begin(), ctx.order.end(), before);
      std::fill(ctx.key_valid.begin(), ctx.key_valid.end(), 0);
      for (const std::uint32_t c : ctx.order) ctx.key_valid[c] = 1;
      ctx.order_valid = true;
    } else {
      for (const std::uint32_t c : ctx.dirty()) {
        const bool want = coflows[c].started && !coflows[c].completed;
        const bool have = ctx.key_valid[c] != 0;
        if (want == have) continue;
        const auto it =
            std::lower_bound(ctx.order.begin(), ctx.order.end(), c, before);
        if (want) {
          ctx.order.insert(it, c);
          ctx.key_valid[c] = 1;
        } else {
          ctx.order.erase(it);  // total order: it points exactly at c
          ctx.key_valid[c] = 0;
        }
      }
    }
    ctx.clear_dirty();

    const std::span<double> residual = ctx.reset_residual();
    ctx.group_by_coflow(flows);
    ctx.set_min_dt(detail::madd_sequential(flows, ctx.order, ctx, residual));
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_madd_allocator();
std::unique_ptr<RateAllocator> make_madd_allocator() {
  return std::make_unique<MaddAllocator>();
}

}  // namespace ccf::net
