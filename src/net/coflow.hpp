// The coflow abstraction (Chowdhury & Stoica, HotNets'12; paper §II-B):
// a group of parallel flows sharing a performance goal. The metric of
// interest is the coflow completion time (CCT) — the finish time of the
// slowest flow.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "net/flow.hpp"

namespace ccf::net {

/// One coflow submitted to the simulator.
struct CoflowSpec {
  std::string name = "coflow";
  double arrival = 0.0;  ///< seconds; flows become ready at arrival (+offset)
  FlowMatrix flows;      ///< aggregate volumes; diagonal entries are ignored
  /// Optional per-flow start offsets relative to `arrival` (same shape as
  /// `flows`; entries for zero-volume pairs are ignored). Models the paper's
  /// §II-B "online coflows, e.g. each individual flow starts at a different
  /// time point". Empty = all flows start at `arrival`.
  std::optional<FlowMatrix> start_offsets;
  /// Completion deadline in seconds after `arrival`; 0 = none. Only the
  /// deadline-aware allocator ("varys-edf") acts on it: an infeasible coflow
  /// is rejected at arrival (Varys's admission control), an admitted one is
  /// guaranteed to finish by the deadline.
  double deadline = 0.0;
  /// Relative importance for weighted-CCT objectives (finite, >= 0). The
  /// ordering schedulers (sched/ordering.hpp) minimize Σ weight·CCT; classic
  /// allocators ignore it. 1.0 keeps weighted and unweighted objectives equal.
  double weight = 1.0;

  CoflowSpec(std::string coflow_name, double arrival_time, FlowMatrix matrix)
      : name(std::move(coflow_name)),
        arrival(arrival_time),
        flows(std::move(matrix)) {}
  explicit CoflowSpec(FlowMatrix matrix) : flows(std::move(matrix)) {}
};

/// Sparse companion of CoflowSpec: an explicit flow list instead of a dense
/// n x n matrix. A 2,500-rack matrix is ~50 MB per coflow regardless of how
/// few flows it holds; service-scale workloads (10^4-10^5 coflows averaging
/// ~20 flows each) must enter the simulator in this form. Each Flow supplies
/// src, dst and volume; Flow::start is interpreted as the activation offset
/// relative to `arrival` (0 = at arrival), and the remaining fields are
/// engine-owned. Unlike FlowMatrix, duplicate (src,dst) entries stay
/// separate flows.
struct SparseCoflowSpec {
  std::string name = "coflow";
  double arrival = 0.0;
  std::vector<Flow> flows;
  double deadline = 0.0;  ///< seconds after arrival; 0 = none
  double weight = 1.0;    ///< weighted-CCT importance (see CoflowSpec::weight)
  /// The flow list is already in the simulator's normalized shape — every
  /// entry validated (endpoints in range, src != dst, finite positive
  /// volume above the completion epsilon) with Flow::start a plain relative
  /// offset. add_coflow then fixes starts/remaining in place instead of
  /// revalidating into a fresh vector. For trusted replay callers (the
  /// Engine's plan cache memoizes to_flows output, which is normalized by
  /// construction); hand-built lists should leave this false.
  bool prenormalized = false;

  SparseCoflowSpec(std::string coflow_name, double arrival_time,
                   std::vector<Flow> flow_list)
      : name(std::move(coflow_name)),
        arrival(arrival_time),
        flows(std::move(flow_list)) {}
};

/// Mutable per-coflow bookkeeping shared between the simulator and the
/// allocators. Allocators may flip `admitted`/`rejected` (admission
/// control); everything else is engine-owned.
struct CoflowState {
  std::uint32_t id = 0;
  double arrival = 0.0;
  double deadline = 0.0;         ///< absolute deadline; 0 = none
  double weight = 1.0;           ///< weighted-CCT importance (spec-supplied)
  double bytes_total = 0.0;      ///< sum of all flow volumes
  double bytes_sent = 0.0;       ///< progress so far (drives Aalo's queues)
  std::size_t flows_total = 0;
  std::size_t flows_active = 0;  ///< flows not yet completed
  bool started = false;          ///< arrival reached
  bool completed = false;
  bool admitted = false;         ///< deadline admission granted (varys-edf)
  bool rejected = false;         ///< deadline admission denied (varys-edf)
  double completion = 0.0;       ///< valid when completed
};

}  // namespace ccf::net
