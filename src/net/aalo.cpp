// Aalo-style D-CLAS (Chowdhury & Stoica, SIGCOMM'15), approximated:
// non-clairvoyant priority — a coflow's queue is determined by how many bytes
// it has *already sent* (first threshold 10 MB, exponentially spaced x10).
// Lower queues preempt higher ones; FIFO within a queue; inside a coflow we
// use max-min sharing over the residual capacities (Aalo does per-flow fair
// scheduling within a coflow as it lacks volume knowledge). Documented as an
// approximation in DESIGN.md.
#include <algorithm>
#include <cmath>
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

constexpr double kFirstQueueThreshold = 10e6;  // 10 MB
constexpr double kQueueMultiplier = 10.0;

int queue_of(double bytes_sent) {
  if (bytes_sent < kFirstQueueThreshold) return 0;
  return 1 + static_cast<int>(std::floor(
                 std::log(bytes_sent / kFirstQueueThreshold) /
                 std::log(kQueueMultiplier)));
}

class AaloAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "aalo"; }

  void allocate(std::span<Flow> active, std::span<CoflowState> coflows,
                const Network& network, double) override {
    std::vector<std::uint32_t> order;
    order.reserve(coflows.size());
    for (const CoflowState& c : coflows) {
      if (c.started && !c.completed) order.push_back(c.id);
    }
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      const int qa = queue_of(coflows[a].bytes_sent);
      const int qb = queue_of(coflows[b].bytes_sent);
      if (qa != qb) return qa < qb;
      if (coflows[a].arrival != coflows[b].arrival) {
        return coflows[a].arrival < coflows[b].arrival;
      }
      return a < b;
    });

    std::vector<double> residual = detail::link_residuals(network);
    std::vector<std::vector<Flow*>> by_coflow(coflows.size());
    for (Flow& f : active) {
      f.rate = 0.0;
      by_coflow[f.coflow].push_back(&f);
    }
    for (const std::uint32_t cid : order) {
      if (by_coflow[cid].empty()) continue;
      detail::maxmin_fill(by_coflow[cid], network, residual);
    }
  }
};

}  // namespace

std::unique_ptr<RateAllocator> make_aalo_allocator();
std::unique_ptr<RateAllocator> make_aalo_allocator() {
  return std::make_unique<AaloAllocator>();
}

}  // namespace ccf::net
