// Aalo-style D-CLAS (Chowdhury & Stoica, SIGCOMM'15), approximated:
// non-clairvoyant priority — a coflow's queue is determined by how many bytes
// it has *already sent* (first threshold 10 MB, exponentially spaced x10).
// Lower queues preempt higher ones; FIFO within a queue; inside a coflow we
// use max-min sharing over the residual capacities (Aalo does per-flow fair
// scheduling within a coflow as it lacks volume knowledge). Documented as an
// approximation in DESIGN.md.
#include <algorithm>
#include <cmath>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

constexpr double kFirstQueueThreshold = 10e6;  // 10 MB
constexpr double kQueueMultiplier = 10.0;

int queue_of(double bytes_sent) {
  if (bytes_sent < kFirstQueueThreshold) return 0;
  return 1 + static_cast<int>(std::floor(
                 std::log(bytes_sent / kFirstQueueThreshold) /
                 std::log(kQueueMultiplier)));
}

class AaloAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "aalo"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState> coflows, double) override {
    // Per-coflow water-fill structures survive across epochs: a coflow's
    // member set (and, with the engine's stable compaction, its relative
    // order) only changes when the coflow is touched, so only dirty coflows
    // rebuild. A rebuilt structure is identical to the cached one whenever
    // membership didn't change, which keeps this bit-identical to full
    // recomputation. A new context generation (rebind, throwaway bridge
    // context, reference reset) drops every cached structure.
    if (ctx_seen_ != &ctx || gen_seen_ != ctx.generation()) {
      ctx_seen_ = &ctx;
      gen_seen_ = ctx.generation();
      cache_.assign(ctx.coflow_count(), {});
    }
    const auto sched = ctx.schedulable(coflows);
    for (const std::uint32_t c : ctx.dirty()) cache_[c].valid = false;
    ctx.clear_dirty();
    // Queues are cheap to derive from bytes_sent — compute them fresh each
    // epoch rather than tracking threshold crossings.
    for (const std::uint32_t c : sched) {
      ctx.key[c] = static_cast<double>(queue_of(coflows[c].bytes_sent));
    }
    ctx.order.assign(sched.begin(), sched.end());
    std::sort(ctx.order.begin(), ctx.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (ctx.key[a] != ctx.key[b]) return ctx.key[a] < ctx.key[b];
                if (coflows[a].arrival != coflows[b].arrival) {
                  return coflows[a].arrival < coflows[b].arrival;
                }
                return a < b;
              });

    const std::span<double> residual = ctx.reset_residual();
    ctx.group_by_coflow(flows);
    double min_dt = AllocatorContext::kInfDt;
    for (const std::uint32_t cid : ctx.order) {
      const auto members = ctx.members(cid);
      if (members.empty()) continue;
      detail::GroupStructure& gs = cache_[cid];
      if (!gs.valid) detail::build_group_structure(flows, members, ctx, gs);
      min_dt = std::min(
          min_dt, detail::maxmin_fill_prepared(flows, members, gs, ctx, residual));
    }
    ctx.set_min_dt(min_dt);
  }

 private:
  std::vector<detail::GroupStructure> cache_;
  const AllocatorContext* ctx_seen_ = nullptr;
  std::uint64_t gen_seen_ = 0;
};

}  // namespace

std::unique_ptr<RateAllocator> make_aalo_allocator();
std::unique_ptr<RateAllocator> make_aalo_allocator() {
  return std::make_unique<AaloAllocator>();
}

}  // namespace ccf::net
