// The network model: a non-blocking switch interconnecting all machines
// (paper §II-B, following Varys). Every node has one ingress and one egress
// port; bandwidth contention happens only at ports. This matches full
// bisection bandwidth data-center topologies.
#pragma once

#include <cstddef>
#include <vector>

#include "net/network.hpp"

namespace ccf::net {

/// Non-blocking switch fabric with per-port capacities in bytes/second.
/// As a Network, it exposes 2n links: LinkId i in [0,n) is node i's egress
/// port, LinkId n+j is node j's ingress port; every flow crosses exactly two.
class Fabric : public Network {
 public:
  /// 1 Gbps per port expressed in bytes/second — the default used by all
  /// experiments (the paper leaves the port rate to CoflowSim's defaults;
  /// see DESIGN.md §2 for the calibration argument).
  static constexpr double kDefaultPortRate = 125e6;

  /// Homogeneous fabric: every port has the same capacity.
  explicit Fabric(std::size_t nodes, double port_rate = kDefaultPortRate);

  /// Heterogeneous fabric (extension beyond the paper's model).
  Fabric(std::vector<double> egress_caps, std::vector<double> ingress_caps);

  std::size_t nodes() const noexcept override { return egress_.size(); }
  double egress_capacity(std::size_t node) const { return egress_.at(node); }
  double ingress_capacity(std::size_t node) const { return ingress_.at(node); }

  bool homogeneous() const noexcept;
  /// Capacity of the slowest port.
  double min_capacity() const noexcept;

  /// LinkId of node's egress / ingress port (the fabric's fixed layout;
  /// fault schedules targeting specific ports use these).
  LinkId egress_link(std::size_t node) const noexcept {
    return static_cast<LinkId>(node);
  }
  LinkId ingress_link(std::size_t node) const noexcept {
    return static_cast<LinkId>(nodes() + node);
  }

  // Network interface.
  std::size_t link_count() const noexcept override { return 2 * nodes(); }
  double link_capacity(LinkId link) const override;
  void append_links(std::uint32_t src, std::uint32_t dst,
                    std::vector<LinkId>& out) const override;

 private:
  std::vector<double> egress_;
  std::vector<double> ingress_;
};

}  // namespace ccf::net
