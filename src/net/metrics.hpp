// Analytic network metrics.
//
// The central quantity is Γ (gamma): the minimum possible completion time of
// a single coflow on a given fabric,
//
//   Γ = max( max_i egress_i / E_i , max_j ingress_j / I_j )
//
// (port load over port capacity). MADD achieves exactly Γ for a lone coflow,
// which is what the paper means by "optimal coflow schedule" and what models
// (1)-(3) minimize: T in model (3) is Γ·R for unit-capacity ports.
#pragma once

#include <cstddef>
#include <vector>

#include "net/demand.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"

namespace ccf::net {

/// Per-port load summary of one flow matrix.
struct PortLoads {
  std::vector<double> egress;   ///< bytes leaving each node
  std::vector<double> ingress;  ///< bytes entering each node
  double max_egress = 0.0;
  double max_ingress = 0.0;
  /// max(max_egress, max_ingress) — the paper's T for unit capacities.
  double bottleneck() const noexcept {
    return max_egress > max_ingress ? max_egress : max_ingress;
  }
};

/// Compute per-port loads of a sparse demand (the core implementation; the
/// marginals accumulate in sorted-triple order, which matches the dense
/// row-major order bit-for-bit).
PortLoads port_loads(const Demand& demand);

/// Dense bridge: per-port loads of a flow matrix (off-diagonal volumes only).
PortLoads port_loads(const FlowMatrix& flows);

/// Γ: the single-coflow CCT lower bound, achieved by MADD — the maximum over
/// all links of (bytes through the link / link capacity). Works for any
/// Network (flat fabric or rack topology).
double gamma_bound(const Demand& demand, const Network& network);
double gamma_bound(const FlowMatrix& flows, const Network& network);

/// Γ computed directly from port-load vectors (flat-fabric fast path).
double gamma_bound(const PortLoads& loads, const Fabric& fabric);

/// Per-link byte loads of a demand on a network, indexed by LinkId. The
/// FlowMatrix overload bridges through Demand::from_matrix (identical entry
/// order, so identical loads).
std::vector<double> link_loads(const Demand& demand, const Network& network);
std::vector<double> link_loads(const FlowMatrix& flows, const Network& network);

struct SimReport;  // simulator.hpp

/// Σ weight_c · CCT_c over a report's non-rejected coflows — the objective
/// the ordering schedulers (sched/ordering.hpp) carry guarantees for.
double total_weighted_cct(const SimReport& report);

/// Weighted mean CCT, Σ w·cct / Σ w over non-rejected coflows. The
/// denominator is guarded: an epoch whose coflows all carry zero weight (or
/// an empty report) returns 0.0 instead of NaN.
double weighted_average_cct(const SimReport& report);

}  // namespace ccf::net
