#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ccf::net {

Fabric::Fabric(std::size_t nodes, double port_rate)
    : egress_(nodes, port_rate), ingress_(nodes, port_rate) {
  if (nodes == 0) throw std::invalid_argument("Fabric: nodes must be >= 1");
  if (port_rate <= 0.0) throw std::invalid_argument("Fabric: port rate must be > 0");
}

Fabric::Fabric(std::vector<double> egress_caps, std::vector<double> ingress_caps)
    : egress_(std::move(egress_caps)), ingress_(std::move(ingress_caps)) {
  if (egress_.empty() || egress_.size() != ingress_.size()) {
    throw std::invalid_argument("Fabric: capacity vectors empty or mismatched");
  }
  for (const double c : egress_) {
    if (c <= 0.0) throw std::invalid_argument("Fabric: capacities must be > 0");
  }
  for (const double c : ingress_) {
    if (c <= 0.0) throw std::invalid_argument("Fabric: capacities must be > 0");
  }
}

bool Fabric::homogeneous() const noexcept {
  const double c = egress_.front();
  auto same = [c](double x) { return x == c; };
  return std::all_of(egress_.begin(), egress_.end(), same) &&
         std::all_of(ingress_.begin(), ingress_.end(), same);
}

double Fabric::min_capacity() const noexcept {
  return std::min(*std::min_element(egress_.begin(), egress_.end()),
                  *std::min_element(ingress_.begin(), ingress_.end()));
}

double Fabric::link_capacity(LinkId link) const {
  const std::size_t n = nodes();
  if (link < n) return egress_[link];
  if (link < 2 * n) return ingress_[link - n];
  throw std::out_of_range("Fabric: link id out of range");
}

void Fabric::append_links(std::uint32_t src, std::uint32_t dst,
                          std::vector<LinkId>& out) const {
  assert(src != dst && "Network::append_links requires src != dst");
  out.push_back(src);
  out.push_back(static_cast<LinkId>(nodes() + dst));
}

}  // namespace ccf::net
