#include "net/faults.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ccf::net {

namespace {

void check_time(double time) {
  if (!(time >= 0.0) || !std::isfinite(time)) {
    throw std::invalid_argument("FaultSchedule: event time must be finite, >= 0");
  }
}

void check_factor(double factor) {
  if (!(factor >= 0.0 && factor <= 1.0)) {
    throw std::invalid_argument("FaultSchedule: factor must be in [0, 1]");
  }
}

}  // namespace

void FaultSchedule::insert(FaultEvent event) {
  // Stable insertion by time: equal-time events keep builder-call order, so
  // "degrade then restore at t" means restored (last write wins per link).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.time,
      [](double t, const FaultEvent& e) { return t < e.time; });
  events_.insert(pos, event);
}

FaultSchedule& FaultSchedule::degrade_link(double time, Network::LinkId link,
                                           double factor) {
  check_time(time);
  check_factor(factor);
  FaultEvent e;
  e.time = time;
  e.kind = FaultKind::kDegradeLink;
  e.link = link;
  e.factor = factor;
  insert(e);
  return *this;
}

FaultSchedule& FaultSchedule::restore_link(double time, Network::LinkId link) {
  check_time(time);
  FaultEvent e;
  e.time = time;
  e.kind = FaultKind::kRestoreLink;
  e.link = link;
  e.factor = 1.0;
  insert(e);
  return *this;
}

FaultSchedule& FaultSchedule::degrade_port(double time, std::uint32_t node,
                                           PortSide side, double factor) {
  check_time(time);
  check_factor(factor);
  FaultEvent e;
  e.time = time;
  e.kind = FaultKind::kDegradePort;
  e.node = node;
  e.side = side;
  e.factor = factor;
  insert(e);
  return *this;
}

FaultSchedule& FaultSchedule::restore_port(double time, std::uint32_t node,
                                           PortSide side) {
  check_time(time);
  FaultEvent e;
  e.time = time;
  e.kind = FaultKind::kRestorePort;
  e.node = node;
  e.side = side;
  e.factor = 1.0;
  insert(e);
  return *this;
}

FaultSchedule& FaultSchedule::fail_port(double time, std::uint32_t node,
                                        PortSide side) {
  return degrade_port(time, node, side, 0.0);
}

FaultSchedule& FaultSchedule::slow_node(double time, std::uint32_t node,
                                        double factor) {
  return degrade_port(time, node, PortSide::kBoth, factor);
}

FaultSchedule& FaultSchedule::restore_node(double time, std::uint32_t node) {
  return restore_port(time, node, PortSide::kBoth);
}

void FaultSchedule::validate(const Network& network) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where = "FaultSchedule: event " + std::to_string(i);
    switch (e.kind) {
      case FaultKind::kDegradeLink:
      case FaultKind::kRestoreLink:
        if (e.link >= network.link_count()) {
          throw std::invalid_argument(where + ": link id out of range");
        }
        break;
      case FaultKind::kDegradePort:
      case FaultKind::kRestorePort:
        if (e.node >= network.nodes()) {
          throw std::invalid_argument(where + ": node id out of range");
        }
        break;
    }
  }
}

FaultSchedule FaultSchedule::random(const Network& network,
                                    const RandomFaultOptions& options,
                                    util::Pcg32& rng) {
  if (network.link_count() == 0 || network.nodes() == 0) {
    throw std::invalid_argument("FaultSchedule::random: empty network");
  }
  if (!(options.horizon > 0.0) || !(options.outage > 0.0)) {
    throw std::invalid_argument(
        "FaultSchedule::random: horizon and outage must be > 0");
  }
  FaultSchedule s;
  for (std::size_t i = 0; i < options.link_degradations; ++i) {
    const auto link = static_cast<Network::LinkId>(
        rng.bounded(static_cast<std::uint32_t>(network.link_count())));
    const double t = rng.uniform(0.0, options.horizon);
    const double f = rng.uniform(options.min_factor, 0.9);
    s.degrade_link(t, link, f);
    s.restore_link(t + options.outage, link);
  }
  for (std::size_t i = 0; i < options.port_failures; ++i) {
    const auto node = rng.bounded(static_cast<std::uint32_t>(network.nodes()));
    const double t = rng.uniform(0.0, options.horizon);
    const PortSide side =
        rng.uniform01() < 0.5 ? PortSide::kIngress : PortSide::kEgress;
    s.fail_port(t, node, side);
    s.restore_port(t + options.outage, node, side);
  }
  for (std::size_t i = 0; i < options.stragglers; ++i) {
    const auto node = rng.bounded(static_cast<std::uint32_t>(network.nodes()));
    const double t = rng.uniform(0.0, options.horizon);
    const double f = rng.uniform(options.min_factor, 0.5);
    s.slow_node(t, node, f);
    s.restore_node(t + options.outage, node);
  }
  return s;
}

}  // namespace ccf::net
