// Chunked parallel next-event reduction (the replicant-opera pattern: per-
// chunk cached minima, dirty chunks rescanned, results merged by a
// deterministic reduction — see SNIPPETS.md snippet 1 and DESIGN.md §"Event-
// core data layout").
//
// The engine's fallback next-event time is min over active flows of
// remaining[i]/rate[i] (flows with rate > 0). Minimum over doubles is exact
// and order-independent, so splitting the scan into fixed-boundary chunks
// and merging per-chunk minima is bit-identical to the sequential scan —
// unlike the advance loop's byte sums, no ulp caveat applies. The scanner
// caches each chunk's minimum and rescans only chunks whose flows changed
// (rates rewritten, compaction shifted survivors, arrivals appended);
// untouched chunks are served from the cache. Above a caller-supplied
// threshold the dirty rescans fan out over util::parallel_for and the merge
// runs through util::parallel_reduce, both with deterministic chunk order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/parallel.hpp"

namespace ccf::net {

class NextEventScan {
 public:
  static constexpr std::size_t kDefaultGrain = 2048;

  /// Point the scanner at the engine's SoA columns. The pointers must stay
  /// valid across min_dt calls; rebinding resets the cache.
  void bind(const double* remaining, const double* rate,
            std::size_t grain = kDefaultGrain) {
    remaining_ = remaining;
    rate_ = rate;
    grain_ = grain == 0 ? kDefaultGrain : grain;
    chunk_min_.clear();
    dirty_.clear();
    valid_count_ = 0;
  }

  /// Flows [begin, end) changed (rate or remaining): their chunks rescan on
  /// the next min_dt call.
  void mark_dirty(std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    const std::size_t first = begin / grain_;
    const std::size_t last = (end - 1) / grain_;
    if (dirty_.size() <= last) dirty_.resize(last + 1, 1);
    for (std::size_t k = first; k <= last; ++k) dirty_[k] = 1;
  }

  /// Exact minimum of remaining[i]/rate[i] over i in [0, count) with
  /// rate[i] > 0; +infinity when no flow is rated. Rescans dirty chunks —
  /// in parallel when count >= parallel_threshold — then merges the cached
  /// chunk minima in deterministic chunk order.
  double min_dt(std::size_t count, std::size_t parallel_threshold) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (count == 0) return kInf;
    const std::size_t chunks = util::parallel_chunk_count(count, grain_);
    // A count change redraws the last chunk's boundary (and can expose
    // cached minima of flows past the new end): invalidate every chunk from
    // the smaller boundary chunk up.
    if (count != valid_count_) {
      const std::size_t from = std::min(count, valid_count_) / grain_;
      if (dirty_.size() < chunks) dirty_.resize(chunks, 1);
      for (std::size_t k = from; k < dirty_.size(); ++k) dirty_[k] = 1;
      valid_count_ = count;
    }
    if (chunk_min_.size() < chunks) chunk_min_.resize(chunks, kInf);
    if (dirty_.size() < chunks) dirty_.resize(chunks, 1);

    auto rescan = [&](std::size_t begin, std::size_t end) {
      const std::size_t k = begin / grain_;
      if (!dirty_[k]) return;
      double m = kInf;
      const double* rem = remaining_;
      const double* rate = rate_;
      for (std::size_t i = begin; i < end; ++i) {
        if (rate[i] > 0.0) {
          const double dt = rem[i] / rate[i];
          m = dt < m ? dt : m;
        }
      }
      chunk_min_[k] = m;
      dirty_[k] = 0;
    };
    if (count >= parallel_threshold && chunks > 1) {
      util::parallel_for(count, grain_, rescan);
    } else {
      for (std::size_t k = 0; k < chunks; ++k) {
        rescan(k * grain_, std::min((k + 1) * grain_, count));
      }
    }
    // Merge the chunk minima. Min is order-independent, so the grain only
    // matters for fan-out; kMergeGrain keeps small merges sequential.
    constexpr std::size_t kMergeGrain = 4096;
    return util::parallel_reduce(
        chunks, kMergeGrain, kInf,
        [&](std::size_t b, std::size_t e) {
          double m = kInf;
          for (std::size_t k = b; k < e; ++k) {
            m = chunk_min_[k] < m ? chunk_min_[k] : m;
          }
          return m;
        },
        [](double a, double b) { return b < a ? b : a; });
  }

 private:
  const double* remaining_ = nullptr;
  const double* rate_ = nullptr;
  std::size_t grain_ = kDefaultGrain;
  std::vector<double> chunk_min_;
  std::vector<std::uint8_t> dirty_;
  std::size_t valid_count_ = 0;
};

}  // namespace ccf::net
