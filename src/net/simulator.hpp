// Event-driven coflow simulator — the CoflowSim substitution (DESIGN.md §2).
//
// Flows progress at the rates chosen by a RateAllocator; rates are
// recomputed at every event (flow completion or coflow arrival). The engine
// reports per-coflow completion times (CCTs) and aggregate statistics.
//
// For a single coflow under the Madd allocator the simulated CCT equals the
// analytic bound Γ exactly (property-tested), which is the configuration the
// paper's experiments use.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/allocator.hpp"
#include "net/coflow.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"

namespace ccf::net {

/// Engine limits and numerical knobs.
struct SimConfig {
  /// A flow is complete when its remaining volume drops below this many bytes.
  double completion_epsilon = 1e-6;
  /// Hard ceiling on simulated seconds (guards against starvation bugs).
  double max_time = 1e12;
  /// Hard ceiling on scheduling epochs.
  std::size_t max_events = 100'000'000;
  /// Record a TraceEvent per epoch (costs memory on big runs).
  bool record_trace = false;
};

/// One scheduling epoch in the trace.
struct TraceEvent {
  double time = 0.0;
  std::size_t active_flows = 0;
  std::size_t completed_flows = 0;  ///< cumulative
};

/// Outcome of one coflow.
struct CoflowResult {
  std::string name;
  double arrival = 0.0;
  double completion = 0.0;
  double bytes = 0.0;
  std::size_t flows = 0;
  double deadline = 0.0;  ///< absolute; 0 = none
  bool rejected = false;  ///< denied admission by a deadline-aware allocator

  /// Coflow completion time — the paper's CCT metric.
  double cct() const noexcept { return completion - arrival; }
  /// Completed (not rejected) and, if a deadline was set, within it.
  bool met_deadline() const noexcept {
    return !rejected && (deadline == 0.0 || completion <= deadline + 1e-9);
  }
};

/// Outcome of a whole simulation run.
struct SimReport {
  std::vector<CoflowResult> coflows;
  double makespan = 0.0;     ///< completion time of the last coflow
  double total_bytes = 0.0;  ///< bytes actually moved over the fabric
  std::size_t events = 0;    ///< scheduling epochs executed

  double average_cct() const noexcept;
  /// CCT of the coflow with the given name; throws if absent.
  double cct_of(const std::string& name) const;
};

/// The simulator. Usage:
///   Simulator sim(Fabric(n), make_allocator(AllocatorKind::kMadd));
///   sim.add_coflow(CoflowSpec("shuffle", 0.0, std::move(flows)));
///   SimReport r = sim.run();
class Simulator {
 public:
  Simulator(Fabric fabric, std::unique_ptr<RateAllocator> allocator,
            SimConfig config = {});

  /// Generic topology constructor (e.g. a RackFabric).
  Simulator(std::shared_ptr<const Network> network,
            std::unique_ptr<RateAllocator> allocator, SimConfig config = {});

  /// Enqueue a coflow; its flow matrix must match the fabric size.
  /// Must be called before run().
  void add_coflow(CoflowSpec spec);

  /// Run to completion of all coflows. Can only be called once.
  SimReport run();

  const std::vector<TraceEvent>& trace() const noexcept { return trace_; }
  const Network& network() const noexcept { return *network_; }
  const RateAllocator& allocator() const noexcept { return *allocator_; }

 private:
  std::shared_ptr<const Network> network_;
  std::unique_ptr<RateAllocator> allocator_;
  SimConfig config_;
  std::vector<CoflowSpec> specs_;
  std::vector<TraceEvent> trace_;
  bool ran_ = false;
};

}  // namespace ccf::net
