// Event-driven coflow simulator — the CoflowSim substitution (DESIGN.md §2).
//
// Flows progress at the rates chosen by a RateAllocator; rates are
// recomputed at every event (flow completion or coflow arrival). The engine
// reports per-coflow completion times (CCTs) and aggregate statistics.
//
// Two engine modes share one event loop (DESIGN.md §3):
//  * kIncremental (default) — hot per-flow fields live in SoA columns, the
//    AllocatorContext persists across events (cached link sets, schedulable
//    set, sort keys), next-event times come from allocator hints, and the
//    arrival / zero-flow-coflow sweeps are cursor-based. Per-event cost is
//    O(active flows) for the advance plus O(schedulable coflows) for
//    everything else — no O(#links x #flows) scans, no per-event allocation.
//  * kReference — the allocator context is wiped before every allocate()
//    (forcing full recomputation), the next-event time is an O(#flows) scan,
//    and the rejected-flow sweep runs unconditionally. This reproduces the
//    original engine step-for-step and anchors the equivalence tests.
// Both modes produce bit-identical event sequences; see
// tests/net/engine_equivalence_test.cpp.
//
// For a single coflow under the Madd allocator the simulated CCT equals the
// analytic bound Γ exactly (property-tested), which is the configuration the
// paper's experiments use.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/allocator.hpp"
#include "net/coflow.hpp"
#include "net/fabric.hpp"
#include "net/faults.hpp"
#include "net/flow.hpp"
#include "net/network.hpp"

namespace ccf::util {
class MonotonicArena;
}

namespace ccf::net {

/// Event-engine selection (see the header comment).
enum class SimEngine { kIncremental, kReference };

/// Engine limits and numerical knobs.
struct SimConfig {
  /// A flow is complete when its remaining volume drops below this many bytes.
  double completion_epsilon = 1e-6;
  /// Hard ceiling on simulated seconds (guards against starvation bugs).
  double max_time = 1e12;
  /// Hard ceiling on scheduling epochs. 0 (the default) scales the limit to
  /// the workload: 1,000,000 + 64 x (flows + coflows + fault events), far
  /// above what any terminating run produces (each epoch consumes a
  /// completion, arrival or fault) yet still finite, so runaway allocators
  /// fail fast at 100 racks and at 10,000 alike. Set a concrete value to
  /// pin the limit exactly.
  std::size_t max_events = 0;
  /// Record a TraceEvent per epoch (costs memory on big runs).
  bool record_trace = false;
  /// Optional bump allocator for the engine's per-run scratch (SoA flow
  /// columns, per-flow link tables, parallel-advance accumulators). When
  /// set, run() carves everything from it and frees nothing: a caller that
  /// runs simulations back to back (e.g. core::Engine's drain loop) resets
  /// the arena between runs and recycles the blocks, eliminating
  /// steady-state malloc traffic. When null, run() uses a private arena
  /// with the same lifetime as the call. The arena must outlive run().
  util::MonotonicArena* arena = nullptr;
  /// Which event engine to run (kReference exists for equivalence testing).
  SimEngine engine = SimEngine::kIncremental;
  /// Advance the flows of an epoch via util::parallel_for when at least this
  /// many are active; below it (or at 1 hardware thread) the advance is the
  /// plain sequential loop. Chunk merges happen in deterministic chunk order,
  /// so results do not depend on thread interleaving.
  std::size_t parallel_advance_threshold = 4096;
};

/// One scheduling epoch in the trace.
struct TraceEvent {
  double time = 0.0;
  std::size_t active_flows = 0;
  std::size_t completed_flows = 0;  ///< cumulative
};

/// Outcome of one coflow.
struct CoflowResult {
  std::string name;
  double arrival = 0.0;
  double completion = 0.0;
  double bytes = 0.0;
  std::size_t flows = 0;
  double deadline = 0.0;  ///< absolute; 0 = none
  double weight = 1.0;    ///< weighted-CCT importance (CoflowSpec::weight)
  bool rejected = false;  ///< denied admission by a deadline-aware allocator

  /// Coflow completion time — the paper's CCT metric.
  double cct() const noexcept { return completion - arrival; }
  /// Completed (not rejected) and, if a deadline was set, within it.
  bool met_deadline() const noexcept {
    return !rejected && (deadline == 0.0 || completion <= deadline + 1e-9);
  }
};

/// Outcome of a whole simulation run.
struct SimReport {
  std::vector<CoflowResult> coflows;
  double makespan = 0.0;     ///< completion time of the last coflow
  double total_bytes = 0.0;  ///< bytes actually moved over the fabric
  std::size_t events = 0;    ///< scheduling epochs executed
  std::size_t fault_events = 0;   ///< fault-schedule events applied
  std::size_t replacements = 0;   ///< flows re-placed after a port failure
  /// coflow name -> index into `coflows`, filled by Simulator::run() (first
  /// occurrence wins on duplicate names). Manually assembled reports may
  /// leave it empty; cct_of falls back to a linear scan then.
  std::unordered_map<std::string, std::size_t> name_index;

  double average_cct() const noexcept;
  /// CCT of the coflow with the given name; throws if absent. O(1) via
  /// name_index on reports produced by run().
  double cct_of(const std::string& name) const;
};

/// The simulator. Usage:
///   Simulator sim(Fabric(n), make_allocator(AllocatorKind::kMadd));
///   sim.add_coflow(CoflowSpec("shuffle", 0.0, std::move(flows)));
///   SimReport r = sim.run();
class Simulator {
 public:
  Simulator(Fabric fabric, std::unique_ptr<RateAllocator> allocator,
            SimConfig config = {});

  /// Generic topology constructor (e.g. a RackFabric).
  Simulator(std::shared_ptr<const Network> network,
            std::unique_ptr<RateAllocator> allocator, SimConfig config = {});

  /// Enqueue a coflow; its flow matrix must match the fabric size.
  /// Must be called before run().
  void add_coflow(CoflowSpec spec);

  /// Sparse overload for large fabrics: an explicit flow list instead of an
  /// n x n matrix (see SparseCoflowSpec). Flow::start is the activation
  /// offset relative to the coflow's arrival; entries at or below
  /// completion_epsilon bytes are dropped, like the matrix path's. Both
  /// overloads may be mixed freely before run().
  void add_coflow(SparseCoflowSpec spec);

  /// Install a fault schedule (validated against the network) consumed by
  /// run() as first-class events: at each fault time the affected link
  /// capacities are rescaled and the allocator's capacity-derived caches
  /// invalidated. With options.replace_on_failure, a destination-port
  /// degradation at or below options.replace_threshold re-places the
  /// unfinished remainder of the flows headed there onto surviving nodes
  /// (the CCF greedy over current port loads). An empty schedule is exactly
  /// equivalent to never calling set_faults. Must be called before run().
  void set_faults(FaultSchedule schedule, FaultOptions options = {});

  /// Run to completion of all coflows. Can only be called once per epoch
  /// (see reset_epoch for the steady-state reuse path).
  SimReport run();

  /// Swap the network between epochs — the routed-topology path: the Engine
  /// recomputes the route choice per drain from the epoch's aggregate demand
  /// and installs the resulting RoutedTopology here before registering
  /// coflows. Must be called with no run in flight (construction or right
  /// after reset_epoch); the replacement must have the same node count, and
  /// an installed fault schedule is revalidated against it. Safe because the
  /// allocator context rebinds (and re-resolves every cached link table) at
  /// the start of each run.
  void set_network(std::shared_ptr<const Network> network);

  /// Epoch-reset fast path for always-on callers (core::Engine's drain
  /// loop): clear the enqueued coflows and the ran-once latch while keeping
  /// the network, the allocator instance, the fault schedule and the config
  /// (including a caller-owned arena) — so a long-lived session runs one
  /// Simulator object per shard instead of constructing fabric + allocator
  /// per epoch. Allocator-private caches are keyed on the context
  /// generation(), which bind() refreshes every run, so a reset-and-rerun
  /// epoch is bit-identical to one on a freshly constructed Simulator.
  void reset_epoch() noexcept;

  const std::vector<TraceEvent>& trace() const noexcept { return trace_; }
  const Network& network() const noexcept { return *network_; }
  const RateAllocator& allocator() const noexcept { return *allocator_; }

 private:
  /// Both add_coflow overloads normalize into this form at add time: flows
  /// carry their absolute start time, owning coflow id and remaining volume,
  /// so run() only concatenates and sorts. Dense specs are flattened
  /// immediately, which also releases their n x n matrices before run().
  struct NormalizedCoflow {
    std::string name;
    double arrival = 0.0;
    double deadline = 0.0;  ///< absolute; 0 = none
    double weight = 1.0;
    double bytes_total = 0.0;
    std::vector<Flow> flows;
  };

  void push_normalized(std::string name, double arrival, double deadline_rel,
                       double weight, std::vector<Flow> flows);

  std::shared_ptr<const Network> network_;
  std::unique_ptr<RateAllocator> allocator_;
  SimConfig config_;
  std::vector<NormalizedCoflow> coflows_;
  std::size_t total_flows_ = 0;
  std::vector<TraceEvent> trace_;
  FaultSchedule faults_;
  FaultOptions fault_options_;
  bool ran_ = false;
};

}  // namespace ccf::net
