// Per-flow max-min fair sharing — the coflow-agnostic baseline ("when
// computing nodes use the network without any coordination", §I). Every
// active flow competes individually; no flow is ever idle while its links
// have spare capacity, yet the coflow's slowest flow can finish much later
// than Γ (Fig. 2(a) vs 2(b)).
#include <vector>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class FairSharingAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "fair"; }

  void allocate(std::span<Flow> active, std::span<CoflowState>,
                const Network& network, double) override {
    std::vector<double> residual = detail::link_residuals(network);
    std::vector<Flow*> ptrs;
    ptrs.reserve(active.size());
    for (Flow& f : active) ptrs.push_back(&f);
    detail::maxmin_fill(ptrs, network, residual);
  }
};

}  // namespace

// Defined here (not allocator.cpp) so each policy lives in its own TU.
std::unique_ptr<RateAllocator> make_fair_sharing_allocator();
std::unique_ptr<RateAllocator> make_fair_sharing_allocator() {
  return std::make_unique<FairSharingAllocator>();
}

}  // namespace ccf::net
