// Per-flow max-min fair sharing — the coflow-agnostic baseline ("when
// computing nodes use the network without any coordination", §I). Every
// active flow competes individually; no flow is ever idle while its links
// have spare capacity, yet the coflow's slowest flow can finish much later
// than Γ (Fig. 2(a) vs 2(b)).
#include <numeric>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class FairSharingAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "fair"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState>, double) override {
    // Coflow-agnostic: the dirty list carries no information for this policy.
    ctx.clear_dirty();
    const std::span<double> residual = ctx.reset_residual();
    // One global group holding every active flow. The identity member list
    // only ever grows, so extend it monotonically instead of re-iota-ing
    // every epoch (ctx.order is otherwise unused by this policy).
    if (ctx.order.size() < flows.count) {
      const std::size_t old = ctx.order.size();
      ctx.order.resize(flows.count);
      std::iota(ctx.order.begin() + static_cast<std::ptrdiff_t>(old),
                ctx.order.end(), static_cast<std::uint32_t>(old));
    }
    const std::span<const std::uint32_t> all(ctx.order.data(), flows.count);
    // The group touches essentially every link at high concurrency, where
    // the dense identity-slot builder (no discovery, no sort) wins. At
    // service scale the opposite regime appears: a few thousand active
    // flows on tens of thousands of links, where water-fill rounds over
    // every link dwarf the discovery cost — switch to the generic builder,
    // whose `used` set covers only touched links. Both builders freeze the
    // same flows at the same shares in the same order (see the dense
    // builder's contract), so the choice never changes a rate.
    if (flows.count * 4 < ctx.link_count()) {
      detail::build_group_structure(flows, all, ctx, ctx.scratch_group);
    } else {
      detail::build_group_structure_dense(flows, all, ctx, ctx.scratch_group);
    }
    ctx.set_min_dt(detail::maxmin_fill_prepared(flows, all, ctx.scratch_group,
                                                ctx, residual));
  }
};

}  // namespace

// Defined here (not allocator.cpp) so each policy lives in its own TU.
std::unique_ptr<RateAllocator> make_fair_sharing_allocator();
std::unique_ptr<RateAllocator> make_fair_sharing_allocator() {
  return std::make_unique<FairSharingAllocator>();
}

}  // namespace ccf::net
