// Per-flow max-min fair sharing — the coflow-agnostic baseline ("when
// computing nodes use the network without any coordination", §I). Every
// active flow competes individually; no flow is ever idle while its links
// have spare capacity, yet the coflow's slowest flow can finish much later
// than Γ (Fig. 2(a) vs 2(b)).
#include <numeric>

#include "net/allocator.hpp"

namespace ccf::net {

namespace {

class FairSharingAllocator final : public RateAllocator {
 public:
  std::string name() const override { return "fair"; }

  void allocate(AllocatorContext& ctx, const ActiveFlows& flows,
                std::span<CoflowState>, double) override {
    // Coflow-agnostic: the dirty list carries no information for this policy.
    ctx.clear_dirty();
    const std::span<double> residual = ctx.reset_residual();
    // One global group holding every active flow. It touches essentially
    // every link, so use the dense identity-slot structure builder.
    ctx.order.resize(flows.count);
    std::iota(ctx.order.begin(), ctx.order.end(), 0u);
    detail::build_group_structure_dense(flows, ctx.order, ctx,
                                        ctx.scratch_group);
    ctx.set_min_dt(detail::maxmin_fill_prepared(flows, ctx.order,
                                                ctx.scratch_group, ctx,
                                                residual));
  }
};

}  // namespace

// Defined here (not allocator.cpp) so each policy lives in its own TU.
std::unique_ptr<RateAllocator> make_fair_sharing_allocator();
std::unique_ptr<RateAllocator> make_fair_sharing_allocator() {
  return std::make_unique<FairSharingAllocator>();
}

}  // namespace ccf::net
