// Deterministic fault injection for the fabric (DESIGN.md §6).
//
// Real analytics clusters do not run on the paper's pristine non-blocking
// switch: links degrade, ports flap, nodes straggle. A FaultSchedule is a
// time-sorted list of capacity-change events the simulator consumes as
// first-class events — at each fault epoch the engine rescales the affected
// links, refreshes the allocator's cached capacities, and invalidates the
// capacity-derived caches through the existing dirty/reset path. Everything
// is plain data seeded explicitly, so a faulted run is exactly reproducible
// from (workload seed, schedule) — the property the fault tests pin down.
//
// Capacity changes are expressed as *scale factors* against the pristine
// network: `degrade` sets a link's scale (last write wins per link),
// `restore` sets it back to 1. A factor of 0 models a hard failure; the
// allocators already tolerate zero-capacity links (a flow crossing one is
// simply starved), which is what makes failure a special case of degradation
// rather than a separate code path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace ccf::net {

/// Which side(s) of a node's attachment a port-level event hits.
enum class PortSide : std::uint8_t { kEgress, kIngress, kBoth };

enum class FaultKind : std::uint8_t {
  kDegradeLink,  ///< scale one link's capacity by `factor`
  kRestoreLink,  ///< reset one link's scale to 1
  kDegradePort,  ///< scale a node's port link(s) by `factor`
  kRestorePort,  ///< reset a node's port link(s) to scale 1
};

/// One timed capacity change. Link kinds use `link`; port kinds use
/// `node` + `side` and resolve to links through the network's port mapping
/// (Network::append_egress_links / append_ingress_links).
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::kDegradeLink;
  Network::LinkId link = 0;
  std::uint32_t node = 0;
  PortSide side = PortSide::kBoth;
  double factor = 1.0;  ///< capacity scale in [0, 1]; 0 = hard failure
};

/// Knobs for FaultSchedule::random. Every injected degradation is paired
/// with a restore `outage` seconds later, so a random schedule never leaves
/// a link permanently dead — workloads always run to completion.
struct RandomFaultOptions {
  std::size_t link_degradations = 3;  ///< partial single-link degradations
  std::size_t port_failures = 2;      ///< hard (factor 0) one-sided port cuts
  std::size_t stragglers = 1;         ///< whole-node slow-downs (both sides)
  double horizon = 10.0;              ///< fault times drawn from [0, horizon)
  double outage = 2.0;                ///< seconds until the paired restore
  double min_factor = 0.1;            ///< degradation factors >= this
};

/// Simulator-side fault handling knobs (Simulator::set_faults).
struct FaultOptions {
  /// Re-assign the unfinished remainder of flows whose destination port
  /// degrades to `replace_threshold` or below (CCF's greedy heuristic over
  /// the surviving nodes). Off by default: the baseline rides out the fault.
  bool replace_on_failure = false;
  /// Ingress-scale cutoff: a kDegradePort event with factor <= threshold
  /// triggers re-placement, and nodes at or below it are not candidates.
  double replace_threshold = 0.0;
};

/// A time-sorted fault schedule. Builders keep events sorted by time
/// (stable: equal-time events apply in insertion order, last write wins per
/// link), so the simulator consumes them with a single cursor.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  // --- builders (all return *this for chaining) -----------------------
  FaultSchedule& degrade_link(double time, Network::LinkId link, double factor);
  FaultSchedule& restore_link(double time, Network::LinkId link);
  FaultSchedule& degrade_port(double time, std::uint32_t node, PortSide side,
                              double factor);
  FaultSchedule& restore_port(double time, std::uint32_t node,
                              PortSide side = PortSide::kBoth);
  /// Hard port failure: degrade_port with factor 0.
  FaultSchedule& fail_port(double time, std::uint32_t node,
                           PortSide side = PortSide::kBoth);
  /// Straggler: scale both of a node's ports (slow NIC / CPU-bound node).
  FaultSchedule& slow_node(double time, std::uint32_t node, double factor);
  FaultSchedule& restore_node(double time, std::uint32_t node);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  std::span<const FaultEvent> events() const noexcept { return events_; }

  /// Check every event against a concrete network (link/node ids in range).
  /// Throws std::invalid_argument on the first violation.
  void validate(const Network& network) const;

  /// Seed-reproducible random schedule: `link_degradations` partial link
  /// degradations, `port_failures` hard one-sided port cuts and `stragglers`
  /// node slow-downs, each restored `outage` seconds later.
  static FaultSchedule random(const Network& network,
                              const RandomFaultOptions& options,
                              util::Pcg32& rng);

 private:
  void insert(FaultEvent event);

  std::vector<FaultEvent> events_;  ///< sorted by time, insertion-stable
};

/// Read-through Network decorator exposing the simulator's current
/// (fault-adjusted) capacities: topology delegates to the base network while
/// link_capacity reads an overlay vector the owner mutates as fault events
/// apply. Unlike a pristine Network, link_capacity may legitimately return 0
/// (a failed link); allocators handle that by starving the flows crossing it.
class FaultedNetworkView final : public Network {
 public:
  /// Both referents must outlive the view; `current` must stay sized to
  /// base.link_count().
  FaultedNetworkView(const Network& base, const std::vector<double>& current)
      : base_(&base), current_(&current) {}

  std::size_t nodes() const noexcept override { return base_->nodes(); }
  std::size_t link_count() const noexcept override {
    return base_->link_count();
  }
  double link_capacity(LinkId link) const override {
    return (*current_)[link];
  }
  void append_links(std::uint32_t src, std::uint32_t dst,
                    std::vector<LinkId>& out) const override {
    base_->append_links(src, dst, out);
  }
  void append_egress_links(std::uint32_t node,
                           std::vector<LinkId>& out) const override {
    base_->append_egress_links(node, out);
  }
  void append_ingress_links(std::uint32_t node,
                            std::vector<LinkId>& out) const override {
    base_->append_ingress_links(node, out);
  }

 private:
  const Network* base_;
  const std::vector<double>* current_;
};

}  // namespace ccf::net
