// Coflow trace support in the CoflowSim / Coflow-Benchmark format that
// Varys and Aalo (the paper's back-end simulator lineage) ship with —
// Facebook's "FB2010-1Hr-150-0" style:
//
//   line 1:  <numRacks> <numCoflows>
//   line i:  <id> <arrivalMillis> <numMappers> <m1> ... <mM>
//            <numReducers> <r1:sizeMB> ... <rR:sizeMB>
//
// A coflow's flows go from every mapper rack to every reducer rack; a
// reducer's total shuffle size is split evenly across the mappers, exactly
// as CoflowSim interprets the format. Mapper==reducer flows are local and
// carry no traffic. A synthetic generator with the trace's heavy-tailed
// character (many small narrow coflows, few large wide ones) is provided for
// offline use.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "net/coflow.hpp"
#include "util/rng.hpp"

namespace ccf::net {

/// One coflow record of the trace.
struct TraceCoflow {
  std::string id;
  double arrival_seconds = 0.0;
  std::vector<std::uint32_t> mappers;  ///< rack ids holding map output
  /// (rack id, total shuffle megabytes destined to that reducer).
  std::vector<std::pair<std::uint32_t, double>> reducers;

  /// Total shuffle bytes of the coflow.
  double total_bytes() const noexcept;
};

/// A full trace: the fabric width plus all coflows.
struct CoflowTrace {
  std::size_t racks = 0;
  std::vector<TraceCoflow> coflows;
};

/// Parse a trace. Throws std::invalid_argument on malformed content.
CoflowTrace parse_coflow_trace(std::istream& in);
/// Parse from a file. Throws std::runtime_error if it cannot be opened.
CoflowTrace load_coflow_trace(const std::string& path);

/// Serialize in the same format (round-trips with parse_coflow_trace).
void write_coflow_trace(const CoflowTrace& trace, std::ostream& out);

/// Convert to simulator inputs: one CoflowSpec per trace coflow, with flow
/// (m -> r) volume = reducer_MB * 1e6 / numMappers for m != r.
std::vector<CoflowSpec> to_coflow_specs(const CoflowTrace& trace);

/// Sparse conversion for large fabrics: the same flows as to_coflow_specs
/// but as explicit flow lists, never materializing a racks x racks matrix
/// (which is ~50 MB per coflow at 2,500 racks). Feed the result to
/// Simulator::add_coflow(SparseCoflowSpec). Flows are emitted reducer-major
/// (each reducer's mappers in mapper-list order); duplicate (m, r) pairs —
/// possible when a trace repeats a reducer rack — stay separate flows
/// instead of being summed, so flow counts can differ from the dense path.
std::vector<SparseCoflowSpec> to_sparse_coflow_specs(const CoflowTrace& trace);

/// Knobs for the synthetic generator.
struct SyntheticTraceOptions {
  std::size_t racks = 50;
  std::size_t coflows = 100;
  double duration_seconds = 600.0;  ///< arrivals uniform over this window
  /// Fraction of "long wide" coflows (the FB traces' heavy tail); the rest
  /// are short and narrow.
  double heavy_fraction = 0.15;
  double small_mb_min = 1.0, small_mb_max = 64.0;     ///< per reducer
  double heavy_mb_min = 256.0, heavy_mb_max = 4096.0; ///< per reducer
};

/// Generate a synthetic trace with the FB traces' character.
CoflowTrace generate_synthetic_trace(const SyntheticTraceOptions& options,
                                     util::Pcg32& rng);

}  // namespace ccf::net
