#include "util/calendar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccf::util {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void CalendarQueue::prepare(double origin, double horizon,
                            std::size_t expected_events) {
  if (pending_ != 0) {
    throw std::logic_error("CalendarQueue::prepare: queue not empty");
  }
  // Aim for O(1) expected occupancy per bucket; clamp so degenerate inputs
  // (zero span, NaN, tiny event counts) fall back to a single bucket.
  std::size_t count = expected_events > 1 ? expected_events : 1;
  const double span = horizon - origin;
  if (!(span > 0.0) || !std::isfinite(span)) count = 1;
  buckets_.assign(count, {});
  origin_ = origin;
  inv_width_ = count > 1 ? static_cast<double>(count) / span : 0.0;
  cur_ = 0;
  pos_ = 0;
  cur_sorted_ = true;
}

std::size_t CalendarQueue::bucket_of(double time) const noexcept {
  if (inv_width_ == 0.0) return 0;
  const double rel = (time - origin_) * inv_width_;
  if (!(rel > 0.0)) return 0;  // below origin or NaN -> first bucket
  const std::size_t last = buckets_.size() - 1;
  const std::size_t b = rel >= static_cast<double>(last)
                            ? last
                            : static_cast<std::size_t>(rel);
  return b;
}

void CalendarQueue::push(double time, Payload payload) {
  std::size_t b = bucket_of(time);
  const Event ev{time, next_seq_++, payload};
  if (b < cur_) b = cur_;  // past-time push: deliver on the next pop_due
  auto& bucket = buckets_[b];
  if (b == cur_ && cur_sorted_) {
    // Sorted insert into the undrained tail so the in-progress drain stays
    // ordered. Events before the drain position go right at it.
    auto it = std::lower_bound(
        bucket.begin() + static_cast<std::ptrdiff_t>(pos_), bucket.end(), ev,
        [](const Event& a, const Event& x) {
          return a.time < x.time || (a.time == x.time && a.seq < x.seq);
        });
    bucket.insert(it, ev);
  } else {
    bucket.push_back(ev);
  }
  ++pending_;
}

bool CalendarQueue::advance() {
  for (;;) {
    auto& bucket = buckets_[cur_];
    if (pos_ < bucket.size()) {
      if (!cur_sorted_) {
        std::sort(bucket.begin(), bucket.end(),
                  [](const Event& a, const Event& b) {
                    return a.time < b.time ||
                           (a.time == b.time && a.seq < b.seq);
                  });
        cur_sorted_ = true;
      }
      return true;
    }
    // Exhausted: reclaim the storage and move on (empty is trivially
    // sorted, keeping a later push into this bucket well-defined).
    bucket.clear();
    pos_ = 0;
    cur_sorted_ = true;
    if (cur_ + 1 >= buckets_.size()) return false;
    ++cur_;
    cur_sorted_ = false;
  }
}

double CalendarQueue::next_time() {
  if (pending_ == 0 || !advance()) return kInf;
  return buckets_[cur_][pos_].time;
}

}  // namespace ccf::util
