#include "util/units.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ccf::util {

namespace {

std::string with_unit(double v, const char* unit) {
  char buf[64];
  if (v >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, unit);
  } else if (v >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, unit);
  }
  return buf;
}

}  // namespace

std::string format_bytes(double bytes) {
  const double b = std::fabs(bytes);
  const char* sign = bytes < 0 ? "-" : "";
  if (b >= 1e12) return sign + with_unit(b / 1e12, "TB");
  if (b >= 1e9) return sign + with_unit(b / 1e9, "GB");
  if (b >= 1e6) return sign + with_unit(b / 1e6, "MB");
  if (b >= 1e3) return sign + with_unit(b / 1e3, "kB");
  return sign + with_unit(b, "B");
}

std::string format_seconds(double seconds) {
  char buf[64];
  const double s = std::fabs(seconds);
  const char* sign = seconds < 0 ? "-" : "";
  if (s >= 3600.0) {
    const int h = static_cast<int>(s / 3600.0);
    const int m = static_cast<int>((s - h * 3600.0) / 60.0);
    std::snprintf(buf, sizeof buf, "%s%dh%02dm", sign, h, m);
    return buf;
  }
  if (s >= 60.0) {
    const int m = static_cast<int>(s / 60.0);
    const double rest = s - m * 60.0;
    std::snprintf(buf, sizeof buf, "%s%dm%04.1fs", sign, m, rest);
    return buf;
  }
  if (s >= 1.0) return sign + with_unit(s, "s");
  if (s >= 1e-3) return sign + with_unit(s * 1e3, "ms");
  if (s >= 1e-6) return sign + with_unit(s * 1e6, "us");
  return sign + with_unit(s * 1e9, "ns");
}

std::string format_count(double count) {
  const double c = std::fabs(count);
  const char* sign = count < 0 ? "-" : "";
  if (c >= 1e9) return sign + with_unit(c / 1e9, "B");
  if (c >= 1e6) return sign + with_unit(c / 1e6, "M");
  if (c >= 1e3) return sign + with_unit(c / 1e3, "k");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%.0f", sign, c);
  return buf;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

double parse_scaled(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_scaled: empty string");
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parse_scaled: not a number: " + text);
  }
  if (pos == text.size()) return v;
  if (pos + 1 != text.size()) {
    throw std::invalid_argument("parse_scaled: trailing garbage in: " + text);
  }
  switch (text[pos]) {
    case 'k': case 'K': return v * 1e3;
    case 'm': case 'M': return v * 1e6;
    case 'g': case 'G': return v * 1e9;
    case 't': case 'T': return v * 1e12;
    default:
      throw std::invalid_argument("parse_scaled: unknown suffix in: " + text);
  }
}

}  // namespace ccf::util
