// Tiny leveled logger (stderr). The library itself logs nothing above DEBUG
// by default; benches raise the level for progress reporting.
#pragma once

#include <sstream>
#include <string>

namespace ccf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line "[LEVEL] message" to stderr if level >= the global level.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: log(LogLevel::kInfo, "n=", n, " t=", t).
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append(os, args...);
  log_line(level, os.str());
}

}  // namespace ccf::util
