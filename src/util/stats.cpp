#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccf::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept {
  return n_ == 0 ? 0.0 : mean_;
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double gini(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * v[i];
    cum += v[i];
  }
  if (cum <= 0.0) return 0.0;
  return weighted / (n * cum);
}

double imbalance_ratio(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double mx = xs[0], sum = 0.0;
  for (const double x : xs) {
    mx = std::max(mx, x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  return mean > 0.0 ? mx / mean : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: requires hi > lo");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::edge(std::size_t bucket) const noexcept {
  return lo_ + width_ * static_cast<double>(bucket);
}

}  // namespace ccf::util
