#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace ccf::util {

std::size_t effective_threads(std::size_t requested) noexcept {
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
    if (requested == 0) requested = 1;
  }
  return requested;
}

namespace {

std::size_t resolve_threads(std::size_t threads, std::size_t work_units) {
  return std::min(effective_threads(threads), work_units);
}

/// Drain `units` work items through `run(unit)` on `threads` workers,
/// rethrowing the first exception after the pool joins.
template <typename Run>
void drain(std::size_t units, std::size_t threads, const Run& run) {
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= units) return;
      try {
        run(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  {
    // jthread joins on destruction (CP.25), so the scope is the barrier.
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

namespace detail {

void parallel_indices(std::size_t count, IndexFn fn, void* ctx,
                      std::size_t threads) {
  if (count == 0) return;
  threads = resolve_threads(threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    return;
  }
  drain(count, threads, [&](std::size_t i) { fn(ctx, i); });
}

void parallel_ranges(std::size_t count, std::size_t grain, RangeFn fn,
                     void* ctx, std::size_t threads) {
  if (grain == 0) {
    throw std::invalid_argument("parallel_for: grain must be positive");
  }
  if (count == 0) return;
  const std::size_t chunks = parallel_chunk_count(count, grain);
  threads = resolve_threads(threads, chunks);
  auto run_chunk = [&](std::size_t k) {
    const std::size_t begin = k * grain;
    fn(ctx, begin, std::min(begin + grain, count));
  };
  if (threads == 1) {
    for (std::size_t k = 0; k < chunks; ++k) run_chunk(k);
    return;
  }
  drain(chunks, threads, run_chunk);
}

}  // namespace detail

}  // namespace ccf::util
