// Minimal command-line flag parser for the example and benchmark binaries.
// Supports `--name value`, `--name=value`, boolean `--flag`, and `--help`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccf::util {

/// Declarative flag parser.
///
///   ArgParser args("bench_fig5_nodes", "Reproduces Figure 5");
///   args.add_flag("nodes", "100:1000:100", "node sweep lo:hi:step");
///   args.parse(argc, argv);                 // exits(0) on --help
///   auto n = args.get_int("nodes");
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register a flag with a default value (also its help text default).
  void add_flag(const std::string& name, std::string default_value,
                std::string help);

  /// Parse argv. Unknown flags or missing values throw std::invalid_argument.
  /// `--help` prints usage and std::exit(0)s.
  void parse(int argc, const char* const* argv);

  /// True if the flag was explicitly provided on the command line.
  bool provided(const std::string& name) const;

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// "lo:hi:step" inclusive integer sweep, or a single value "n" -> {n}.
  std::vector<std::int64_t> get_int_sweep(const std::string& name) const;
  /// "lo:hi:step" inclusive floating sweep (step > 0), or single value.
  std::vector<double> get_double_sweep(const std::string& name) const;

  std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::string value;
    bool provided = false;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace ccf::util
