// ASCII table rendering for the benchmark harness. Every bench binary prints
// the rows/series of the paper table or figure it regenerates using this.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ccf::util {

/// Column-aligned ASCII table with a header row and '-' separators.
///
///   Table t({"nodes", "Hash (s)", "CCF (s)"});
///   t.add_row({"100", "812.4", "301.2"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }
  std::size_t column_count() const noexcept { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Render with right-aligned numeric-looking cells, left-aligned text.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment, RFC-ish quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccf::util
