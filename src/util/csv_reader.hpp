// CSV parsing — the read side of csv.hpp's writer. Used by the command-line
// tools (tools/ccf_sim, tools/ccf_schedule) to ingest user-provided flow and
// chunk matrices. Handles RFC-4180-style quoting (the format CsvWriter
// emits): quoted fields, escaped quotes (""), commas and newlines inside
// quotes.
#pragma once

#include <istream>
#include <string>
#include <vector>

namespace ccf::util {

/// Parse an entire CSV stream into rows of cells. Empty lines are skipped.
/// Throws std::invalid_argument on malformed quoting.
std::vector<std::vector<std::string>> read_csv(std::istream& in);

/// Parse a CSV file. Throws std::runtime_error if it cannot be opened.
std::vector<std::vector<std::string>> read_csv_file(const std::string& path);

}  // namespace ccf::util
