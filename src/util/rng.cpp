#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ccf::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1u) | 1u) {
  (*this)();
  state_ += seed;
  (*this)();
}

std::uint32_t Pcg32::operator()() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Pcg32::bounded(std::uint32_t bound) noexcept {
  // Lemire (2019): unbiased bounded generation with one multiply most times.
  std::uint64_t m = std::uint64_t{(*this)()} * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    while (lo < threshold) {
      m = std::uint64_t{(*this)()} * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

std::int64_t Pcg32::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>((std::uint64_t{(*this)()} << 32) |
                                     (*this)());
  }
  if (span <= 0xffffffffULL) {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint32_t>(span)));
  }
  // Rejection sample over 64 bits for large spans.
  const std::uint64_t limit = span * ((~0ULL) / span);
  for (;;) {
    const std::uint64_t r = (std::uint64_t{(*this)()} << 32) | (*this)();
    if (r < limit) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Pcg32::uniform01() noexcept {
  const std::uint64_t r = (std::uint64_t{(*this)()} << 32) | (*this)();
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

double Pcg32::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Pcg32::normal() noexcept {
  // Box-Muller; uniform01() can return 0, so flip to (0,1].
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Pcg32 Pcg32::fork(std::uint64_t salt) noexcept {
  const std::uint64_t s = (std::uint64_t{(*this)()} << 32) | (*this)();
  return Pcg32(s ^ salt, salt * 0x9e3779b97f4a7c15ULL + 1);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  SplitMix64 sm(master ^ (index * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
  sm();
  return sm();
}

}  // namespace ccf::util
