#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ccf::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, std::string default_value,
                         std::string help) {
  Flag f;
  f.value = f.default_value = std::move(default_value);
  f.help = std::move(help);
  if (!flags_.emplace(name, std::move(f)).second) {
    throw std::logic_error("ArgParser: duplicate flag --" + name);
  }
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("ArgParser: unexpected positional: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw std::invalid_argument("ArgParser: unknown flag --" + arg);
    }
    if (!has_value) {
      // Boolean flags may omit the value; otherwise consume the next token.
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool && (i + 1 >= argc ||
                      std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("ArgParser: missing value for --" + arg);
      }
    }
    it->second.value = value;
    it->second.provided = true;
  }
}

const ArgParser::Flag& ArgParser::find(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("ArgParser: flag not registered: --" + name);
  }
  return it->second;
}

bool ArgParser::provided(const std::string& name) const {
  return find(name).provided;
}

std::string ArgParser::get(const std::string& name) const {
  return find(name).value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("ArgParser: not a boolean for --" + name + ": " + v);
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

}  // namespace

std::vector<std::int64_t> ArgParser::get_int_sweep(const std::string& name) const {
  const auto parse = [&](const std::string& s) {
    try {
      return std::stoll(s);
    } catch (const std::exception&) {
      throw std::invalid_argument("ArgParser: non-integer sweep value \"" + s +
                                  "\" for --" + name);
    }
  };
  const auto parts = split(get(name), ':');
  if (parts.size() == 1) return {parse(parts[0])};
  if (parts.size() != 3) {
    throw std::invalid_argument("ArgParser: sweep must be lo:hi:step: --" + name);
  }
  const std::int64_t lo = parse(parts[0]);
  const std::int64_t hi = parse(parts[1]);
  const std::int64_t step = parse(parts[2]);
  if (step <= 0 || hi < lo) {
    throw std::invalid_argument("ArgParser: bad sweep bounds for --" + name);
  }
  std::vector<std::int64_t> out;
  for (std::int64_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

std::vector<double> ArgParser::get_double_sweep(const std::string& name) const {
  const auto parts = split(get(name), ':');
  if (parts.size() == 1) return {std::stod(parts[0])};
  if (parts.size() != 3) {
    throw std::invalid_argument("ArgParser: sweep must be lo:hi:step: --" + name);
  }
  const double lo = std::stod(parts[0]);
  const double hi = std::stod(parts[1]);
  const double step = std::stod(parts[2]);
  if (step <= 0.0 || hi < lo) {
    throw std::invalid_argument("ArgParser: bad sweep bounds for --" + name);
  }
  std::vector<double> out;
  for (double v = lo; v <= hi + step * 1e-9; v += step) out.push_back(v);
  return out;
}

std::string ArgParser::usage() const {
  std::stringstream ss;
  ss << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    ss << "  --" << name << " <value>   " << flag.help
       << " (default: " << flag.default_value << ")\n";
  }
  return ss.str();
}

}  // namespace ccf::util
