// Calendar (bucket) queue for time-ordered event dispatch (Brown 1988's
// calendar queue, simplified for a monotone simulation clock). Events are
// hashed into fixed-width time buckets on push (O(1)); each bucket is sorted
// lazily by (time, insertion sequence) the first time the clock reaches it,
// so total cost is O(n) bucket scatter + O(Σ b_i log b_i) for the per-bucket
// sorts — with buckets sized to O(1) expected occupancy this beats one
// global O(n log n) sort and, unlike a binary heap, pops are branch-light
// cursor advances. Ties on time deliver in push order, which is exactly the
// (time, id) order the simulator's former sorted-vector cursors used.
//
// The queue is monotone: pop_due(now) only moves forward. A push with a time
// at or before the current drain point is delivered by the next pop_due call
// rather than lost. Not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ccf::util {

class CalendarQueue {
 public:
  /// Payload type: an index into caller-owned event state.
  using Payload = std::uint32_t;

  CalendarQueue() = default;

  /// Configure the bucket layout for times in [origin, horizon] with room
  /// for ~expected_events. Must be called on an empty queue (drained or
  /// fresh); discards nothing. Times outside the range are clamped into the
  /// first/last bucket, so prepare() is a performance hint, never a
  /// correctness constraint. An unprepared queue uses a single bucket
  /// (degenerating to one lazily sorted vector).
  void prepare(double origin, double horizon, std::size_t expected_events);

  /// Insert an event. O(1) for future buckets; a push into the bucket
  /// currently being drained does a sorted insert into its undrained tail.
  void push(double time, Payload payload);

  bool empty() const noexcept { return pending_ == 0; }
  std::size_t pending() const noexcept { return pending_; }

  /// Time of the earliest undrained event, +infinity when empty. Lazily
  /// sorts the bucket the cursor lands on.
  double next_time();

  /// Deliver every event with time <= now, ordered by (time, push order),
  /// as fn(time, payload). fn may push() new events, including ones due at
  /// or before `now` — they are delivered within the same call.
  template <typename F>
  void pop_due(double now, F&& fn) {
    while (pending_ > 0 && advance()) {
      auto& bucket = buckets_[cur_];
      if (bucket[pos_].time > now) return;
      const Event ev = bucket[pos_];
      ++pos_;
      --pending_;
      fn(ev.time, ev.payload);
    }
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Payload payload;
  };

  std::size_t bucket_of(double time) const noexcept;
  /// Position the cursor on the next undrained event: skips exhausted
  /// buckets (reclaiming their storage) and sorts the new current bucket.
  /// Returns false when the queue is empty.
  bool advance();

  std::vector<std::vector<Event>> buckets_{1};
  double origin_ = 0.0;
  double inv_width_ = 0.0;  // 0 => single-bucket layout
  std::size_t cur_ = 0;     // bucket the drain cursor is in
  std::size_t pos_ = 0;     // undrained prefix position within buckets_[cur_]
  bool cur_sorted_ = true;  // buckets_[cur_] sorted and pos_ valid
  std::size_t pending_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ccf::util
