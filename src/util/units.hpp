// Human-readable unit formatting for benchmark/table output
// (bytes -> "1.23 GB", seconds -> "4m32s", counts -> "1.2M").
#pragma once

#include <cstdint>
#include <string>

namespace ccf::util {

/// Bytes with binary-free decimal units (kB/MB/GB/TB), 3 significant digits.
/// The paper reports GB with decimal semantics, so we do too.
std::string format_bytes(double bytes);

/// Seconds as "123.4 s", "12.3 ms", "1h02m" etc. depending on magnitude.
std::string format_seconds(double seconds);

/// Plain count with k/M/B suffixes.
std::string format_count(double count);

/// Fixed-precision double (printf "%.*f") as a std::string.
std::string format_fixed(double value, int precision);

/// Parse strings like "600", "1.5G", "250M", "4k" into a double
/// (decimal suffixes k=1e3, M=1e6, G=1e9, T=1e12). Throws std::invalid_argument
/// on malformed input.
double parse_scaled(const std::string& text);

}  // namespace ccf::util
