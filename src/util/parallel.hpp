// Minimal task parallelism for embarrassingly parallel work (CP.4: think in
// terms of tasks). Used by the benchmark harness to evaluate independent
// sweep points concurrently — each point generates its own workload and owns
// all of its state, so no synchronization beyond the index counter is
// needed.
#pragma once

#include <cstddef>
#include <functional>

namespace ccf::util {

/// Run fn(i) for every i in [0, count) on up to `threads` worker threads
/// (0 = hardware concurrency). Blocks until all iterations finish. The first
/// exception thrown by any iteration is rethrown on the calling thread after
/// the pool drains. fn must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace ccf::util
