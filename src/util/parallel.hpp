// Minimal task parallelism for embarrassingly parallel work (CP.4: think in
// terms of tasks). Used by the benchmark harness to evaluate independent
// sweep points concurrently and by the simulator's flow-advance loop — each
// unit of work owns all of its state, so no synchronization beyond the index
// counter is needed.
#pragma once

#include <cstddef>
#include <functional>

namespace ccf::util {

/// Run fn(i) for every i in [0, count) on up to `threads` worker threads
/// (0 = hardware concurrency). Blocks until all iterations finish. The first
/// exception thrown by any iteration is rethrown on the calling thread after
/// the pool drains. fn must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Chunked variant: fn(begin, end) is invoked once per chunk of up to `grain`
/// consecutive indices, avoiding per-index std::function dispatch on hot
/// loops. Chunk k always covers [k*grain, min((k+1)*grain, count)), so a
/// caller may map `begin / grain` to a stable per-chunk scratch slot. With
/// one effective thread the chunks run sequentially in ascending order.
/// `grain` == 0 is invalid (throws std::invalid_argument). Exception
/// propagation matches the per-index overload: the first exception thrown by
/// any chunk is rethrown after all workers drain.
void parallel_for(std::size_t count, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn,
                  std::size_t threads = 0);

/// Worker threads a parallel_for with `requested` threads will actually use
/// for unbounded work: `requested`, or hardware concurrency when 0 (minimum
/// 1). Callers sizing a task fan-out (e.g. the branch-and-bound subtree
/// split) use this to know the real pool width before submitting.
std::size_t effective_threads(std::size_t requested = 0) noexcept;

/// Number of chunks the chunked overload will execute: ceil(count / grain).
constexpr std::size_t parallel_chunk_count(std::size_t count,
                                           std::size_t grain) noexcept {
  return grain == 0 ? 0 : (count + grain - 1) / grain;
}

}  // namespace ccf::util
