// Minimal task parallelism for embarrassingly parallel work (CP.4: think in
// terms of tasks). Used by the benchmark harness to evaluate independent
// sweep points concurrently, by the simulator's flow-advance loop and
// next-event reduction, and by the optimizer fan-outs — each unit of work
// owns all of its state, so no synchronization beyond the index counter is
// needed.
//
// The entry points are templates that capture the callable by reference and
// hand the backend a single raw function pointer + context pointer, so the
// hot path pays one indirect call per work unit instead of a std::function
// dispatch (and never heap-allocates a closure).
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace ccf::util {

namespace detail {

using IndexFn = void (*)(void*, std::size_t);
using RangeFn = void (*)(void*, std::size_t, std::size_t);

/// Backend for the per-index overload: invokes fn(ctx, i) for i in
/// [0, count) across the pool. Defined in parallel.cpp.
void parallel_indices(std::size_t count, IndexFn fn, void* ctx,
                      std::size_t threads);

/// Backend for the chunked overloads: invokes fn(ctx, begin, end) once per
/// chunk of up to `grain` indices. Chunk k always covers
/// [k*grain, min((k+1)*grain, count)). Defined in parallel.cpp.
void parallel_ranges(std::size_t count, std::size_t grain, RangeFn fn,
                     void* ctx, std::size_t threads);

}  // namespace detail

/// Run fn(i) for every i in [0, count) on up to `threads` worker threads
/// (0 = hardware concurrency). Blocks until all iterations finish. The first
/// exception thrown by any iteration is rethrown on the calling thread after
/// the pool drains. fn must be safe to invoke concurrently for distinct i.
template <typename F>
  requires std::is_invocable_v<F&, std::size_t>
void parallel_for(std::size_t count, F&& fn, std::size_t threads = 0) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_indices(
      count,
      [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
      const_cast<std::remove_const_t<Fn>*>(std::addressof(fn)), threads);
}

/// Chunked variant: fn(begin, end) is invoked once per chunk of up to `grain`
/// consecutive indices, avoiding per-index dispatch on hot loops. Chunk k
/// always covers [k*grain, min((k+1)*grain, count)), so a caller may map
/// `begin / grain` to a stable per-chunk scratch slot. With one effective
/// thread the chunks run sequentially in ascending order. `grain` == 0 is
/// invalid (throws std::invalid_argument). Exception propagation matches the
/// per-index overload: the first exception thrown by any chunk is rethrown
/// after all workers drain.
template <typename F>
  requires std::is_invocable_v<F&, std::size_t, std::size_t>
void parallel_for(std::size_t count, std::size_t grain, F&& fn,
                  std::size_t threads = 0) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_ranges(
      count, grain,
      [](void* ctx, std::size_t begin, std::size_t end) {
        (*static_cast<Fn*>(ctx))(begin, end);
      },
      const_cast<std::remove_const_t<Fn>*>(std::addressof(fn)), threads);
}

/// Worker threads a parallel_for with `requested` threads will actually use
/// for unbounded work: `requested`, or hardware concurrency when 0 (minimum
/// 1). Callers sizing a task fan-out (e.g. the branch-and-bound subtree
/// split) use this to know the real pool width before submitting.
std::size_t effective_threads(std::size_t requested = 0) noexcept;

/// Number of chunks the chunked overload will execute: ceil(count / grain).
constexpr std::size_t parallel_chunk_count(std::size_t count,
                                           std::size_t grain) noexcept {
  return grain == 0 ? 0 : (count + grain - 1) / grain;
}

/// Deterministic chunked reduction: map(begin, end) -> T computes one
/// partial per chunk (in parallel, chunk boundaries as in the chunked
/// parallel_for), then the partials are combined *sequentially in ascending
/// chunk order* as acc = combine(acc, partial_k) starting from `identity`.
/// The combine order is therefore independent of thread count and schedule:
/// the result is bit-identical to the single-threaded left fold over chunks.
/// For order-insensitive monoids (min, max, argmin with explicit index
/// tie-breaks) this equals the plain sequential reduction over [0, count).
/// Returns `identity` when count == 0.
template <typename T, typename Map, typename Combine>
  requires std::is_invocable_r_v<T, Map&, std::size_t, std::size_t> &&
           std::is_invocable_r_v<T, Combine&, T, T>
T parallel_reduce(std::size_t count, std::size_t grain, T identity, Map&& map,
                  Combine&& combine, std::size_t threads = 0) {
  const std::size_t chunks = parallel_chunk_count(count, grain);
  if (chunks == 0) {
    if (grain == 0 && count > 0) {
      // Surface the misuse through the same path the chunked for takes.
      parallel_for(count, grain, [](std::size_t, std::size_t) {}, threads);
    }
    return identity;
  }
  if (chunks == 1) return combine(std::move(identity), map(0, count));
  std::vector<T> partials(chunks, identity);
  parallel_for(
      count, grain,
      [&](std::size_t begin, std::size_t end) {
        partials[begin / grain] = map(begin, end);
      },
      threads);
  T acc = std::move(identity);
  for (std::size_t k = 0; k < chunks; ++k) {
    acc = combine(std::move(acc), std::move(partials[k]));
  }
  return acc;
}

}  // namespace ccf::util
