#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace ccf::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      os << "| ";
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << ' ';
    }
    os << "|\n";
  };
  auto rule = [&] {
    for (const std::size_t w : width) os << '+' << std::string(w + 2, '-');
    os << "+\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ccf::util
