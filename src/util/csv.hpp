// CSV output for benchmark series. Every bench binary can optionally dump its
// data points as CSV (via --csv <path>) so figures can be re-plotted.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace ccf::util {

/// Streaming CSV writer; opens the file on construction, flushes on
/// destruction. Throws std::runtime_error if the file cannot be opened.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  /// Write the header row (once, before any data rows).
  void header(std::initializer_list<std::string> columns);
  void header(const std::vector<std::string>& columns);

  /// Write one data row; width must match the header if one was written.
  void row(const std::vector<std::string>& cells);

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void write_row(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace ccf::util
