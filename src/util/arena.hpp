// Monotonic bump allocator for per-epoch scratch (R.5: prefer scoped
// ownership; here the scope is an explicit reset boundary). The simulator
// carves its SoA flow columns and per-flow link tables out of one of these
// at the start of every run; the multi-query engine owns a single arena and
// resets it at each drain boundary, so steady-state drains perform no
// malloc/free traffic for simulator scratch at all — the blocks allocated by
// the first drain are recycled verbatim by every later one.
//
// Not thread-safe: one arena belongs to one simulator run at a time.
// Allocations are never individually freed; reset() recycles everything.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace ccf::util {

class MonotonicArena {
 public:
  /// `block_bytes` is the granularity of the backing blocks; requests larger
  /// than it get a dedicated block of exactly the requested size.
  explicit MonotonicArena(std::size_t block_bytes = 1 << 20)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Raw storage, aligned to `align` (power of two, at most
  /// alignof(std::max_align_t)). Contents are indeterminate — callers that
  /// need zeroed memory fill it themselves.
  void* allocate_bytes(std::size_t bytes,
                       std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (current_ >= blocks_.size() || offset + bytes > blocks_[current_].size) {
      next_block(bytes, align);
      offset = 0;  // fresh blocks are max_align_t-aligned
    }
    cursor_ = offset + bytes;
    return blocks_[current_].data.get() + offset;
  }

  /// Uninitialized array of `count` trivially-destructible T. The arena never
  /// runs destructors, so non-trivial types are rejected at compile time.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena never runs destructors");
    return static_cast<T*>(allocate_bytes(count * sizeof(T), alignof(T)));
  }

  /// Recycle every allocation while keeping the backing blocks: subsequent
  /// allocations reuse them front to back. Pointers handed out before the
  /// reset are invalidated.
  void reset() noexcept {
    current_ = 0;
    cursor_ = 0;
  }

  /// Release the backing blocks themselves (reset() plus free).
  void release() noexcept {
    blocks_.clear();
    reset();
  }

  /// Total bytes of backing storage currently owned (diagnostics/tests).
  std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Advance to the next block able to hold `bytes` (skipping kept blocks
  /// that are too small), allocating one when none exists.
  void next_block(std::size_t bytes, std::size_t align) {
    if (align > alignof(std::max_align_t)) {
      throw std::bad_alloc();  // over-aligned requests are not supported
    }
    std::size_t k = (current_ >= blocks_.size()) ? 0 : current_ + 1;
    while (k < blocks_.size() && blocks_[k].size < bytes) ++k;
    if (k == blocks_.size()) {
      const std::size_t size = bytes > block_bytes_ ? bytes : block_bytes_;
      blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    }
    current_ = k;
    cursor_ = 0;
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // index of the block cursor_ points into
  std::size_t cursor_ = 0;   // bytes used in blocks_[current_]
};

}  // namespace ccf::util
