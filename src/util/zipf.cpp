#include "util/zipf.hpp"

#include <cmath>
#include <stdexcept>

namespace ccf::util {

double generalized_harmonic(std::size_t n, double theta) {
  double h = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    h += std::pow(static_cast<double>(r), -theta);
  }
  return h;
}

std::vector<double> zipf_weights(std::size_t n, double theta) {
  if (n == 0) throw std::invalid_argument("zipf_weights: n must be >= 1");
  if (theta < 0.0) throw std::invalid_argument("zipf_weights: theta must be >= 0");
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -theta);
    sum += w[r];
  }
  for (double& x : w) x /= sum;
  return w;
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
    : theta_(theta), weights_(zipf_weights(n, theta)), prob_(n), alias_(n) {
  // Walker/Vose alias table construction.
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t l : large) prob_[l] = 1.0;
  for (const std::uint32_t s : small) prob_[s] = 1.0;  // numerical leftovers
}

std::size_t ZipfSampler::operator()(Pcg32& rng) const noexcept {
  const auto i = static_cast<std::size_t>(
      rng.bounded(static_cast<std::uint32_t>(prob_.size())));
  return rng.uniform01() < prob_[i] ? i : alias_[i];
}

}  // namespace ccf::util
