#include "util/csv.hpp"

#include <stdexcept>

namespace ccf::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::header(std::initializer_list<std::string> columns) {
  header(std::vector<std::string>(columns));
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (columns_ != 0) throw std::logic_error("CsvWriter: header written twice");
  columns_ = columns.size();
  write_row(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (columns_ != 0 && cells.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width does not match header");
  }
  write_row(cells);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    const std::string& s = cells[i];
    if (s.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (const char c : s) {
        if (c == '"') out_ << "\"\"";
        else out_ << c;
      }
      out_ << '"';
    } else {
      out_ << s;
    }
  }
  out_ << '\n';
}

}  // namespace ccf::util
