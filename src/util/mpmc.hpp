// Bounded lock-free MPMC queue (Vyukov's array-based design) — the
// submission fabric of core::Service. Producers are client threads calling
// Service::submit; the single consumer per shard is its driver thread, but
// the queue supports many consumers, so shards can be rebalanced or drained
// from a flush path without changing the structure.
//
// Every cell carries a sequence number. A producer claims a cell by CAS on
// the enqueue cursor and publishes it by writing seq = pos + 1; a consumer
// claims with CAS on the dequeue cursor and releases with seq = pos +
// capacity. The cursors are the only contended words; a push/pop is one CAS
// plus two cell accesses, with no locks anywhere. Capacity is rounded up to
// a power of two so the ring index is a mask.
//
// FIFO per producer: the queue linearizes pushes, and a single consumer
// observes them in claim order — the property core::Service's determinism
// replay relies on (one submitting thread => one deterministic batch order).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ccf::util {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy (exact when no push/pop is in flight).
  std::size_t size_approx() const noexcept {
    const std::size_t e = enqueue_.load(std::memory_order_relaxed);
    const std::size_t d = dequeue_.load(std::memory_order_relaxed);
    return e >= d ? e - d : 0;
  }

  /// Enqueue by move; returns false when the ring is full.
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = enqueue_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // cell still holds an unconsumed value: full
      } else {
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue into `out`; returns false when the ring is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // cell not yet published: empty
      } else {
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Drain up to `max` values into `out` (appended); returns the count.
  /// The batched form the Service drivers use: one call per pump iteration
  /// instead of a try_pop per query.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    T value;
    while (n < max && try_pop(value)) {
      out.push_back(std::move(value));
      ++n;
    }
    return n;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  // The cursors sit on their own cache lines so producers and consumers do
  // not false-share.
  alignas(64) std::atomic<std::size_t> enqueue_{0};
  alignas(64) std::atomic<std::size_t> dequeue_{0};
  alignas(64) std::size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
};

}  // namespace ccf::util
