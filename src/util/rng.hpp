// Deterministic, fast pseudo-random number generation.
//
// Everything in this reproduction that involves randomness (data generation,
// skew injection, random instances in tests and benches) is seeded explicitly
// so that every experiment is exactly reproducible from its command line.
//
// We provide two generators:
//   * SplitMix64 — stateless-feeling 64-bit mixer, used to derive seeds.
//   * Pcg32      — the PCG-XSH-RR 32-bit generator, the workhorse. It is an
//                  STL-compatible UniformRandomBitGenerator.
#pragma once

#include <cstdint>
#include <limits>

namespace ccf::util {

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator.
/// Primarily used to expand one user-provided seed into independent
/// per-subsystem seeds (seed sequences without std::seed_seq overhead).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 random bits.
  constexpr std::uint64_t operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR variant): small, fast, statistically strong 32-bit generator.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions,
/// but the members below avoid <random>'s per-platform divergence, keeping
/// generated datasets identical across standard libraries.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// Construct from a seed and an (odd-ified) stream id. Two generators with
  /// the same seed but different streams produce independent sequences.
  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Next 32 random bits.
  std::uint32_t operator()() noexcept;

  /// Uniform integer in [0, bound). bound == 0 is undefined.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint32_t bounded(std::uint32_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (no cached spare; branch-free reproducible).
  double normal() noexcept;

  /// Fork an independent child generator; deterministic in (this state, salt).
  Pcg32 fork(std::uint64_t salt) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derive the i-th independent 64-bit seed from a master seed.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept;

}  // namespace ccf::util
