#include "util/csv_reader.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccf::util {

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;  // row has at least one cell boundary
  char c;

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = true;
  };
  auto end_row = [&] {
    if (cell_started || !cell.empty()) {
      end_cell();
      rows.push_back(std::move(row));
    }
    row.clear();
    cell_started = false;
  };

  while (in.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          cell += '"';
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty()) {
          throw std::invalid_argument("read_csv: quote inside unquoted cell");
        }
        in_quotes = true;
        break;
      case ',':
        end_cell();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        cell += c;
    }
  }
  if (in_quotes) throw std::invalid_argument("read_csv: unterminated quote");
  end_row();  // final line without trailing newline
  return rows;
}

std::vector<std::vector<std::string>> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

}  // namespace ccf::util
