// Zipfian distributions.
//
// The paper (§IV-A2) makes the per-node chunk sizes of every data partition
// follow a Zipf distribution across the n nodes ("zipf" factor 0..1, default
// 0.8, with node 0 always holding the largest chunk). Two facilities:
//
//   * zipf_weights(n, theta)  — the normalized rank weights w_r ∝ r^{-theta},
//     used to split partition volume across nodes analytically.
//   * ZipfSampler             — draws ranks with probability w_r; used by the
//     tuple-level generator so that small-scale tuple data matches the
//     distribution-level matrices in expectation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ccf::util {

/// Normalized Zipf weights over ranks 1..n: w_r = r^{-theta} / H_{n,theta}.
/// theta == 0 gives the uniform distribution. Requires n >= 1, theta >= 0.
std::vector<double> zipf_weights(std::size_t n, double theta);

/// Generalized harmonic number H_{n,theta} = sum_{r=1..n} r^{-theta}.
double generalized_harmonic(std::size_t n, double theta);

/// Draws ranks in [0, n) with P(rank = r) = zipf_weights(n, theta)[r].
/// Implemented with Walker's alias method: O(n) build, O(1) per sample,
/// exact (up to floating point) for any theta >= 0.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  /// Sample a rank in [0, n).
  std::size_t operator()(Pcg32& rng) const noexcept;

  std::size_t size() const noexcept { return prob_.size(); }
  double theta() const noexcept { return theta_; }

  /// The exact probability of each rank (the alias tables are built from it).
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  double theta_;
  std::vector<double> weights_;  // normalized rank probabilities
  std::vector<double> prob_;     // alias-method acceptance probabilities
  std::vector<std::uint32_t> alias_;
};

}  // namespace ccf::util
