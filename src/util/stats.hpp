// Small statistics helpers used by metrics reporting, load-balance analysis,
// and tests (e.g. verifying that generated chunk sizes follow the requested
// Zipf shape, or quantifying imbalance of a placement).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccf::util {

/// Streaming accumulator: count / mean / variance (Welford) / min / max / sum.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th percentile (q in [0,1]) with linear interpolation; copies and sorts.
/// Returns 0 for an empty span.
double percentile(std::span<const double> xs, double q);

/// Gini coefficient of non-negative values — 0 is perfectly balanced,
/// -> 1 is maximally concentrated. Used to quantify load imbalance.
double gini(std::span<const double> xs);

/// max(xs)/mean(xs); 1.0 means perfectly balanced. Returns 0 for empty input.
double imbalance_ratio(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside the
/// range clamp into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const noexcept { return total_; }
  /// Inclusive lower edge of a bucket.
  double edge(std::size_t bucket) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ccf::util
