// Capacity-aware CCF placement (extension; the paper's model (1)/(2) already
// carries per-link capacities R_l before specializing to uniform ports, and
// its future work targets robustness "in the presence of ... different
// network configurations").
//
// Algorithm 1 measures load in bytes, which implicitly assumes homogeneous
// ports. On a fabric with stragglers (a node with a slow NIC, a degraded
// link) the byte-bottleneck and the *time* bottleneck diverge. This variant
// runs the identical greedy but scores candidates in seconds — every load
// divided by its port's capacity — so slow ports attract proportionally
// less traffic.
#pragma once

#include "join/schedulers.hpp"
#include "net/fabric.hpp"

namespace ccf::join {

class HeteroCcfScheduler final : public PartitionScheduler {
 public:
  /// The fabric is captured by reference; keep it alive while scheduling.
  explicit HeteroCcfScheduler(const net::Fabric& fabric) : fabric_(&fabric) {}

  std::string name() const override { return "ccf-hetero"; }

  Assignment schedule(const AssignmentProblem& problem) override;

 private:
  const net::Fabric* fabric_;
};

}  // namespace ccf::join
