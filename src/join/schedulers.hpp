// Application-level placement schedulers: decide the destination node of
// every data partition (the x_{jk} variables of the paper's model).
//
//  * Hash — the classical hash join baseline: dest(k) = k mod n. Spreads
//    load blindly; the paper's "Hash".
//  * Mini — minimizes network traffic: every partition goes to the node that
//    already holds its largest chunk (per-partition optimal, hence globally
//    traffic-optimal since partitions are independent). The paper's "Mini",
//    standing in for track-join-style techniques.
//  * Ccf — the paper's Algorithm 1: partitions in descending max-chunk order,
//    each placed to minimize the current bottleneck T. O(p·n) here via
//    incremental loads and top-2 maxima (the paper's motivation: Gurobi took
//    >30 min at n=500, p=7500; this runs in milliseconds).
//  * CcfLs — Ccf followed by local-search refinement (extension).
//  * Portfolio — GRASP multi-start: parallel randomized-greedy constructions
//    + local search across diversified seeds, never worse than CcfLs (its
//    deterministic start 0 *is* CcfLs).
//  * Exact — branch-and-bound to proven optimality (small instances; the
//    parallel portfolio mode fans subtrees out over worker threads).
//  * Random — uniform random destinations (property-test baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "opt/bnb.hpp"
#include "opt/local_search.hpp"
#include "opt/model.hpp"

namespace ccf::join {

using opt::Assignment;
using opt::AssignmentProblem;

/// Strategy interface for partition placement.
class PartitionScheduler {
 public:
  virtual ~PartitionScheduler() = default;
  virtual std::string name() const = 0;
  /// Produce one destination per partition.
  virtual Assignment schedule(const AssignmentProblem& problem) = 0;
};

class HashScheduler final : public PartitionScheduler {
 public:
  std::string name() const override { return "hash"; }
  Assignment schedule(const AssignmentProblem& problem) override;
};

class MiniScheduler final : public PartitionScheduler {
 public:
  std::string name() const override { return "mini"; }
  Assignment schedule(const AssignmentProblem& problem) override;
};

class CcfScheduler final : public PartitionScheduler {
 public:
  std::string name() const override { return "ccf"; }
  Assignment schedule(const AssignmentProblem& problem) override;
};

class CcfLsScheduler final : public PartitionScheduler {
 public:
  std::string name() const override { return "ccf-ls"; }
  Assignment schedule(const AssignmentProblem& problem) override;
};

class PortfolioScheduler final : public PartitionScheduler {
 public:
  explicit PortfolioScheduler(opt::GraspOptions options = {})
      : options_(options) {}
  std::string name() const override { return "ccf-portfolio"; }
  Assignment schedule(const AssignmentProblem& problem) override;
  /// Makespan of the last schedule() result.
  double last_makespan() const noexcept { return last_T_; }
  /// Which start won the last portfolio (0 = the deterministic ccf-ls run).
  std::size_t last_best_start() const noexcept { return last_best_start_; }

 private:
  opt::GraspOptions options_;
  double last_T_ = 0.0;
  std::size_t last_best_start_ = 0;
};

class ExactScheduler final : public PartitionScheduler {
 public:
  explicit ExactScheduler(opt::BnbOptions options = {}) : options_(options) {}
  std::string name() const override { return "exact"; }
  Assignment schedule(const AssignmentProblem& problem) override;
  /// Whether the last schedule() call proved optimality.
  bool last_was_optimal() const noexcept { return last_optimal_; }

 private:
  opt::BnbOptions options_;
  bool last_optimal_ = false;
};

class RandomScheduler final : public PartitionScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "random"; }
  Assignment schedule(const AssignmentProblem& problem) override;

 private:
  std::uint64_t seed_;
};

/// Factory by name: "hash", "mini", "ccf", "ccf-ls", "ccf-portfolio",
/// "exact", "random".
std::unique_ptr<PartitionScheduler> make_scheduler(const std::string& name);

/// Failure-aware re-planning (the application-level face of the simulator's
/// re-placement hook, DESIGN.md §6): given a placement and the nodes whose
/// *destination* role failed (dead ingress port — the node can still read
/// and send its local chunks), re-assign every partition currently headed
/// to a failed node with the Algorithm-1 greedy over the surviving nodes.
/// Healthy partitions keep their destinations and their loads are the
/// greedy's starting state, so the patch disturbs nothing that still works.
/// Any initial_ingress load on a failed node is treated as stranded and
/// excluded from the bottleneck. Throws std::invalid_argument if `failed`
/// contains an out-of-range node or covers every node.
Assignment replace_failed_destinations(const AssignmentProblem& problem,
                                       Assignment dest,
                                       std::span<const std::uint32_t> failed);

}  // namespace ccf::join
