// Distributed aggregation and duplicate elimination (paper §I: "the proposed
// techniques can be similarly applied to other distributed operators, such
// as aggregation and duplicate elimination").
//
// Both operators need all tuples with equal keys co-located, i.e. the exact
// redistribution problem of the join — so the same chunk matrices, the same
// placement schedulers, and the same coflow execution apply verbatim. The
// operator-specific twist is the *combiner* (pre-aggregation): a node can
// collapse its local tuples to one record per distinct key before shuffling,
// which shrinks the chunk matrix and thus changes what the co-optimizer sees.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/chunk_matrix.hpp"
#include "data/relation.hpp"
#include "net/flow.hpp"

namespace ccf::join {

/// Chunk matrix for a group-by/distinct over `input`.
/// Without pre-aggregation, h(k,i) counts every tuple's payload (as in a
/// join shuffle). With pre-aggregation, each distinct key on a node becomes
/// one `record_bytes`-sized combiner record — usually a big reduction.
data::ChunkMatrix aggregation_chunk_matrix(const data::DistributedRelation& input,
                                           std::size_t partitions,
                                           bool pre_aggregate,
                                           std::uint32_t record_bytes);

/// Result of a tuple-level distributed COUNT group-by.
struct AggregationResult {
  /// Global key -> tuple count (merged across nodes for verification).
  std::unordered_map<std::uint64_t, std::uint64_t> group_counts;
  std::vector<std::size_t> groups_per_node;  ///< groups finalized per node
  net::FlowMatrix flows;                     ///< measured shuffle bytes

  explicit AggregationResult(std::size_t nodes)
      : groups_per_node(nodes, 0), flows(nodes) {}
};

/// Execute SELECT key, COUNT(*) GROUP BY key under the given placement.
/// With `pre_aggregate`, nodes ship one combiner record per distinct local
/// key (record_bytes on the wire) instead of raw tuples.
AggregationResult execute_distributed_aggregation(
    const data::DistributedRelation& input, std::size_t partitions,
    std::span<const std::uint32_t> dest, bool pre_aggregate,
    std::uint32_t record_bytes);

/// Reference: group counts computed centrally.
std::unordered_map<std::uint64_t, std::uint64_t> reference_group_counts(
    const data::DistributedRelation& input);

/// Result of a tuple-level distributed DISTINCT.
struct DistinctResult {
  std::uint64_t distinct_keys = 0;
  net::FlowMatrix flows;

  explicit DistinctResult(std::size_t nodes) : flows(nodes) {}
};

/// Execute SELECT DISTINCT key under the given placement. `local_dedup`
/// plays the combiner role: each node ships each distinct key once.
DistinctResult execute_distributed_distinct(
    const data::DistributedRelation& input, std::size_t partitions,
    std::span<const std::uint32_t> dest, bool local_dedup,
    std::uint32_t record_bytes);

/// Reference: distinct-key count computed centrally.
std::uint64_t reference_distinct_count(const data::DistributedRelation& input);

}  // namespace ccf::join
