#include "join/schedulers.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "opt/local_search.hpp"
#include "util/rng.hpp"

namespace ccf::join {

Assignment HashScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const std::size_t n = problem.nodes();
  Assignment dest(problem.partitions());
  for (std::size_t k = 0; k < dest.size(); ++k) {
    dest[k] = static_cast<std::uint32_t>(k % n);
  }
  return dest;
}

Assignment MiniScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  Assignment dest(m.partitions());
  for (std::size_t k = 0; k < dest.size(); ++k) {
    dest[k] = static_cast<std::uint32_t>(m.partition_argmax(k));
  }
  return dest;
}

Assignment CcfScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();

  // Algorithm 1 line 1: partitions in descending max-chunk order.
  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });

  std::vector<double> egress(n), ingress(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
  }

  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);

    // Lines 4-8, done in O(n) total instead of O(n^2): for candidate d only
    // two quantities differ from the global maxima — node d's egress stays
    // put and node d's ingress gains (S_k - h_{dk}) — so the top-2 of
    // (egress[i] + h_{ik}) and of ingress[] decide every candidate in O(1).
    double eg_max = -1.0, eg_second = -1.0;
    std::size_t eg_arg = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = egress[i] + m.h(k, i);
      if (v > eg_max) {
        eg_second = eg_max;
        eg_max = v;
        eg_arg = i;
      } else if (v > eg_second) {
        eg_second = v;
      }
    }
    double in_max = -1.0, in_second = -1.0;
    std::size_t in_arg = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (ingress[i] > in_max) {
        in_second = in_max;
        in_max = ingress[i];
        in_arg = i;
      } else if (ingress[i] > in_second) {
        in_second = ingress[i];
      }
    }

    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      const double egress_part =
          std::max(d == eg_arg ? eg_second : eg_max, egress[d]);
      const double ingress_part =
          std::max(d == in_arg ? in_second : in_max,
                   ingress[d] + (sk - m.h(k, d)));
      const double t = std::max(egress_part, ingress_part);
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }

    // Line 9: commit the best destination and update the loads.
    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += m.h(k, i);
    }
    ingress[best_d] += sk - m.h(k, best_d);
  }
  return dest;
}

Assignment CcfLsScheduler::schedule(const AssignmentProblem& problem) {
  Assignment dest = CcfScheduler().schedule(problem);
  opt::refine(problem, dest);
  return dest;
}

Assignment ExactScheduler::schedule(const AssignmentProblem& problem) {
  const opt::BnbResult r = opt::solve_exact(problem, options_);
  last_optimal_ = r.optimal;
  return r.dest;
}

Assignment RandomScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  util::Pcg32 rng(util::derive_seed(seed_, 3), 3);
  Assignment dest(problem.partitions());
  for (std::uint32_t& d : dest) {
    d = rng.bounded(static_cast<std::uint32_t>(problem.nodes()));
  }
  return dest;
}

std::unique_ptr<PartitionScheduler> make_scheduler(const std::string& name) {
  if (name == "hash") return std::make_unique<HashScheduler>();
  if (name == "mini") return std::make_unique<MiniScheduler>();
  if (name == "ccf") return std::make_unique<CcfScheduler>();
  if (name == "ccf-ls") return std::make_unique<CcfLsScheduler>();
  if (name == "exact") return std::make_unique<ExactScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>();
  throw std::invalid_argument("make_scheduler: unknown scheduler: " + name);
}

}  // namespace ccf::join
