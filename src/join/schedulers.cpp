#include "join/schedulers.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "opt/bounds.hpp"
#include "opt/local_search.hpp"
#include "util/rng.hpp"

namespace ccf::join {

Assignment HashScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const std::size_t n = problem.nodes();
  Assignment dest(problem.partitions());
  for (std::size_t k = 0; k < dest.size(); ++k) {
    dest[k] = static_cast<std::uint32_t>(k % n);
  }
  return dest;
}

Assignment MiniScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  Assignment dest(m.partitions());
  for (std::size_t k = 0; k < dest.size(); ++k) {
    dest[k] = static_cast<std::uint32_t>(m.partition_argmax(k));
  }
  return dest;
}

Assignment CcfScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();

  // Algorithm 1 line 1: partitions in descending max-chunk order.
  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });

  std::vector<double> egress(n), ingress(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
  }

  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);
    const std::span<const double> row = m.partition_row(k);

    // Lines 4-8, done in O(n) total instead of O(n^2): for candidate d only
    // two quantities differ from the global maxima — node d's egress stays
    // put and node d's ingress gains (S_k - h_{dk}) — so the top-2 of
    // (egress[i] + h_{ik}) and of ingress[] decide every candidate in O(1).
    // The kernel is shared with local search, GRASP and the B&B child
    // scoring (opt/bounds.hpp).
    const opt::Top2 eg = opt::top2_sum(egress, row);
    const opt::Top2 in = opt::top2(ingress);

    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      const double t = opt::placement_bottleneck(eg, in, egress[d], ingress[d],
                                                 sk, row[d], d);
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }

    // Line 9: commit the best destination and update the loads.
    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += row[i];
    }
    ingress[best_d] += sk - row[best_d];
  }
  return dest;
}

Assignment CcfLsScheduler::schedule(const AssignmentProblem& problem) {
  Assignment dest = CcfScheduler().schedule(problem);
  opt::refine(problem, dest);
  return dest;
}

Assignment PortfolioScheduler::schedule(const AssignmentProblem& problem) {
  opt::GraspResult r = opt::grasp(problem, options_);
  last_T_ = r.T;
  last_best_start_ = r.best_start;
  return std::move(r.dest);
}

Assignment ExactScheduler::schedule(const AssignmentProblem& problem) {
  const opt::BnbResult r = opt::solve_exact(problem, options_);
  last_optimal_ = r.optimal;
  return r.dest;
}

Assignment RandomScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  util::Pcg32 rng(util::derive_seed(seed_, 3), 3);
  Assignment dest(problem.partitions());
  for (std::uint32_t& d : dest) {
    d = rng.bounded(static_cast<std::uint32_t>(problem.nodes()));
  }
  return dest;
}

Assignment replace_failed_destinations(const AssignmentProblem& problem,
                                       Assignment dest,
                                       std::span<const std::uint32_t> failed) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const std::size_t n = m.nodes();
  const std::size_t p = m.partitions();
  if (dest.size() != p) {
    throw std::invalid_argument(
        "replace_failed_destinations: placement size mismatch");
  }
  std::vector<char> dead(n, 0);
  for (const std::uint32_t f : failed) {
    if (f >= n) {
      throw std::invalid_argument(
          "replace_failed_destinations: failed node out of range");
    }
    dead[f] = 1;
  }
  if (static_cast<std::size_t>(std::count(dead.begin(), dead.end(), 1)) == n) {
    throw std::invalid_argument(
        "replace_failed_destinations: every node failed");
  }

  // Seed the greedy's load state from everything that survives: initial
  // loads plus the kept (healthy-destination) placements. A failed node
  // keeps sending — its chunks are still locally readable — so its egress
  // accrues normally; its ingress stays 0 (initial ingress there is
  // stranded, and nothing new may land on it).
  std::vector<double> egress(n), ingress(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = dead[i] ? 0.0 : problem.initial_ingress_at(i);
  }
  std::vector<std::uint32_t> affected;
  for (std::size_t k = 0; k < p; ++k) {
    if (dest[k] >= n) {
      throw std::invalid_argument(
          "replace_failed_destinations: placement refers to unknown node");
    }
    if (dead[dest[k]]) {
      affected.push_back(static_cast<std::uint32_t>(k));
      continue;
    }
    const std::span<const double> row = m.partition_row(k);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != dest[k]) egress[i] += row[i];
    }
    ingress[dest[k]] += m.partition_total(k) - row[dest[k]];
  }
  if (affected.empty()) return dest;

  // Re-place the stranded partitions with the Algorithm-1 greedy, restricted
  // to surviving destinations. Dead nodes still participate in the top-2
  // egress (they send) and sit at ingress 0, which is their true ingress
  // time — nothing may flow to them.
  std::stable_sort(affected.begin(), affected.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });
  for (const std::uint32_t k : affected) {
    const double sk = m.partition_total(k);
    const std::span<const double> row = m.partition_row(k);
    const opt::Top2 eg = opt::top2_sum(egress, row);
    const opt::Top2 in = opt::top2(ingress);
    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      if (dead[d]) continue;
      const double t = opt::placement_bottleneck(eg, in, egress[d], ingress[d],
                                                 sk, row[d], d);
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }
    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += row[i];
    }
    ingress[best_d] += sk - row[best_d];
  }
  return dest;
}

std::unique_ptr<PartitionScheduler> make_scheduler(const std::string& name) {
  if (name == "hash") return std::make_unique<HashScheduler>();
  if (name == "mini") return std::make_unique<MiniScheduler>();
  if (name == "ccf") return std::make_unique<CcfScheduler>();
  if (name == "ccf-ls") return std::make_unique<CcfLsScheduler>();
  if (name == "ccf-portfolio") return std::make_unique<PortfolioScheduler>();
  if (name == "exact") return std::make_unique<ExactScheduler>();
  if (name == "random") return std::make_unique<RandomScheduler>();
  throw std::invalid_argument("make_scheduler: unknown scheduler: " + name);
}

}  // namespace ccf::join
