#include "join/exec.hpp"

#include <stdexcept>

#include "data/partitioner.hpp"
#include "join/local_join.hpp"

namespace ccf::join {

DistributedJoinResult execute_distributed_join(
    const data::DistributedRelation& build,
    const data::DistributedRelation& probe, std::size_t partitions,
    std::span<const std::uint32_t> dest, const data::SkewInfo* skew) {
  if (build.node_count() != probe.node_count()) {
    throw std::invalid_argument("execute_distributed_join: cluster mismatch");
  }
  if (dest.size() != partitions) {
    throw std::invalid_argument("execute_distributed_join: assignment size");
  }
  const std::size_t n = build.node_count();
  const bool dedup_hot = skew != nullptr && skew->present;
  const std::uint64_t hot_key = dedup_hot ? skew->hot_key : 0;

  DistributedJoinResult result(n);

  // Redistribution stage: materialize the post-shuffle fragments.
  std::vector<std::vector<data::Tuple>> build_at(n), probe_at(n);
  for (std::size_t src = 0; src < n; ++src) {
    for (const data::Tuple& t : build.shard(src).tuples()) {
      if (dedup_hot && t.key == hot_key) {
        // Partial duplication: broadcast the build-side hot tuples.
        for (std::size_t dst = 0; dst < n; ++dst) {
          build_at[dst].push_back(t);
          if (dst != src) result.flows.add(src, dst, t.payload_bytes);
        }
        continue;
      }
      const std::size_t d = dest[data::partition_of(t.key, partitions)];
      build_at[d].push_back(t);
      if (d != src) result.flows.add(src, d, t.payload_bytes);
    }
    for (const data::Tuple& t : probe.shard(src).tuples()) {
      if (dedup_hot && t.key == hot_key) {
        // Partial duplication: hot probe tuples never move.
        probe_at[src].push_back(t);
        continue;
      }
      const std::size_t d = dest[data::partition_of(t.key, partitions)];
      probe_at[d].push_back(t);
      if (d != src) result.flows.add(src, d, t.payload_bytes);
    }
  }

  // Local join stage (no inter-machine communication).
  for (std::size_t node = 0; node < n; ++node) {
    result.result_per_node[node] =
        hash_join_count(build_at[node], probe_at[node]);
    result.result_tuples += result.result_per_node[node];
  }
  return result;
}

}  // namespace ccf::join
