#include "join/hetero_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ccf::join {

Assignment HeteroCcfScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const net::Fabric& fabric = *fabric_;
  const std::size_t n = m.nodes();
  if (n != fabric.nodes()) {
    throw std::invalid_argument(
        "HeteroCcfScheduler: matrix nodes != fabric nodes");
  }
  const std::size_t p = m.partitions();

  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });

  // Loads kept in bytes; comparisons normalized to seconds via capacities.
  std::vector<double> egress(n), ingress(n), ecap(n), icap(n);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
    ecap[i] = fabric.egress_capacity(i);
    icap[i] = fabric.ingress_capacity(i);
  }

  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);

    // Top-2 of normalized egress-if-sending and of normalized ingress.
    double eg_max = -1.0, eg_second = -1.0;
    std::size_t eg_arg = 0;
    double in_max = -1.0, in_second = -1.0;
    std::size_t in_arg = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double e = (egress[i] + m.h(k, i)) / ecap[i];
      if (e > eg_max) {
        eg_second = eg_max;
        eg_max = e;
        eg_arg = i;
      } else if (e > eg_second) {
        eg_second = e;
      }
      const double in = ingress[i] / icap[i];
      if (in > in_max) {
        in_second = in_max;
        in_max = in;
        in_arg = i;
      } else if (in > in_second) {
        in_second = in;
      }
    }

    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      const double egress_part =
          std::max(d == eg_arg ? eg_second : eg_max, egress[d] / ecap[d]);
      const double ingress_part =
          std::max(d == in_arg ? in_second : in_max,
                   (ingress[d] + (sk - m.h(k, d))) / icap[d]);
      const double t = std::max(egress_part, ingress_part);
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }

    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += m.h(k, i);
    }
    ingress[best_d] += sk - m.h(k, best_d);
  }
  return dest;
}

}  // namespace ccf::join
