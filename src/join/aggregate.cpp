#include "join/aggregate.hpp"

#include <stdexcept>
#include <unordered_set>

#include "data/partitioner.hpp"

namespace ccf::join {

namespace {

void validate(const data::DistributedRelation& input, std::size_t partitions,
              std::span<const std::uint32_t> dest) {
  if (dest.size() != partitions) {
    throw std::invalid_argument("operators: assignment size != partitions");
  }
  for (const std::uint32_t d : dest) {
    if (d >= input.node_count()) {
      throw std::invalid_argument("operators: destination out of range");
    }
  }
}

}  // namespace

data::ChunkMatrix aggregation_chunk_matrix(const data::DistributedRelation& input,
                                           std::size_t partitions,
                                           bool pre_aggregate,
                                           std::uint32_t record_bytes) {
  data::ChunkMatrix m(partitions, input.node_count());
  if (!pre_aggregate) {
    for (std::size_t node = 0; node < input.node_count(); ++node) {
      for (const data::Tuple& t : input.shard(node).tuples()) {
        m.add(data::partition_of(t.key, partitions), node,
              static_cast<double>(t.payload_bytes));
      }
    }
    return m;
  }
  // Combiner: one record per distinct (node, key).
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t node = 0; node < input.node_count(); ++node) {
    seen.clear();
    for (const data::Tuple& t : input.shard(node).tuples()) {
      if (seen.insert(t.key).second) {
        m.add(data::partition_of(t.key, partitions), node,
              static_cast<double>(record_bytes));
      }
    }
  }
  return m;
}

AggregationResult execute_distributed_aggregation(
    const data::DistributedRelation& input, std::size_t partitions,
    std::span<const std::uint32_t> dest, bool pre_aggregate,
    std::uint32_t record_bytes) {
  validate(input, partitions, dest);
  const std::size_t n = input.node_count();
  AggregationResult result(n);

  // Per-destination partial counts after the shuffle.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> partial(n);
  for (std::size_t src = 0; src < n; ++src) {
    if (pre_aggregate) {
      // Combine locally, then ship one record per distinct key.
      std::unordered_map<std::uint64_t, std::uint64_t> local;
      for (const data::Tuple& t : input.shard(src).tuples()) ++local[t.key];
      for (const auto& [key, count] : local) {
        const std::size_t d = dest[data::partition_of(key, partitions)];
        partial[d][key] += count;
        if (d != src) result.flows.add(src, d, record_bytes);
      }
    } else {
      for (const data::Tuple& t : input.shard(src).tuples()) {
        const std::size_t d = dest[data::partition_of(t.key, partitions)];
        ++partial[d][t.key];
        if (d != src) result.flows.add(src, d, t.payload_bytes);
      }
    }
  }

  for (std::size_t node = 0; node < n; ++node) {
    result.groups_per_node[node] = partial[node].size();
    for (const auto& [key, count] : partial[node]) {
      result.group_counts[key] += count;
    }
  }
  return result;
}

std::unordered_map<std::uint64_t, std::uint64_t> reference_group_counts(
    const data::DistributedRelation& input) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (std::size_t node = 0; node < input.node_count(); ++node) {
    for (const data::Tuple& t : input.shard(node).tuples()) ++counts[t.key];
  }
  return counts;
}

DistinctResult execute_distributed_distinct(
    const data::DistributedRelation& input, std::size_t partitions,
    std::span<const std::uint32_t> dest, bool local_dedup,
    std::uint32_t record_bytes) {
  validate(input, partitions, dest);
  const std::size_t n = input.node_count();
  DistinctResult result(n);

  std::vector<std::unordered_set<std::uint64_t>> at_dest(n);
  std::unordered_set<std::uint64_t> local;
  for (std::size_t src = 0; src < n; ++src) {
    local.clear();
    for (const data::Tuple& t : input.shard(src).tuples()) {
      if (local_dedup && !local.insert(t.key).second) continue;  // shipped once
      const std::size_t d = dest[data::partition_of(t.key, partitions)];
      at_dest[d].insert(t.key);
      if (d != src) {
        result.flows.add(src, d,
                         local_dedup ? record_bytes : t.payload_bytes);
      }
    }
  }
  for (const auto& keys : at_dest) result.distinct_keys += keys.size();
  return result;
}

std::uint64_t reference_distinct_count(const data::DistributedRelation& input) {
  std::unordered_set<std::uint64_t> keys;
  for (std::size_t node = 0; node < input.node_count(); ++node) {
    for (const data::Tuple& t : input.shard(node).tuples()) keys.insert(t.key);
  }
  return keys.size();
}

}  // namespace ccf::join
