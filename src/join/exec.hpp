// Tuple-level distributed join executor — the "data processing layer" of the
// CCF architecture (Fig. 3). Given a placement decision it actually moves
// tuples between simulated nodes, measures the resulting flow matrix, runs
// the local joins and returns the exact join cardinality.
//
// Used to verify end-to-end that (a) every placement scheduler yields the
// same, correct join result, (b) the measured tuple-level flows equal the
// analytic assignment_flows() for the same inputs, and (c) the partial-
// duplication skew path preserves correctness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/relation.hpp"
#include "data/workload.hpp"
#include "net/flow.hpp"

namespace ccf::join {

struct DistributedJoinResult {
  std::uint64_t result_tuples = 0;
  std::vector<std::uint64_t> result_per_node;
  net::FlowMatrix flows;  ///< measured bytes moved src -> dst (diag = local)

  explicit DistributedJoinResult(std::size_t nodes)
      : result_per_node(nodes, 0), flows(nodes) {}
};

/// Execute CUSTOMER(build) ⋈ ORDERS(probe) under the given partition
/// assignment. If `skew` is non-null and present, partial duplication is
/// applied: probe tuples carrying the hot key stay local and the matching
/// build tuples are broadcast to every other node (paper §III-C).
DistributedJoinResult execute_distributed_join(
    const data::DistributedRelation& build,
    const data::DistributedRelation& probe, std::size_t partitions,
    std::span<const std::uint32_t> dest, const data::SkewInfo* skew = nullptr);

}  // namespace ccf::join
