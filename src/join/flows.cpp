#include "join/flows.hpp"

#include <stdexcept>

namespace ccf::join {

net::FlowMatrix assignment_flows(const data::ChunkMatrix& matrix,
                                 std::span<const std::uint32_t> dest) {
  return assignment_flows(matrix, dest, net::FlowMatrix(matrix.nodes()));
}

net::FlowMatrix assignment_flows(const data::ChunkMatrix& matrix,
                                 std::span<const std::uint32_t> dest,
                                 const net::FlowMatrix& initial) {
  if (dest.size() != matrix.partitions()) {
    throw std::invalid_argument("assignment_flows: assignment size mismatch");
  }
  if (initial.nodes() != matrix.nodes()) {
    throw std::invalid_argument("assignment_flows: initial flows size mismatch");
  }
  net::FlowMatrix flows = initial;
  const std::size_t n = matrix.nodes();
  for (std::size_t k = 0; k < matrix.partitions(); ++k) {
    const std::uint32_t d = dest[k];
    if (d >= n) {
      throw std::invalid_argument("assignment_flows: destination out of range");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double h = matrix.h(k, i);
      if (h > 0.0) flows.add(i, d, h);
    }
  }
  return flows;
}

}  // namespace ccf::join
