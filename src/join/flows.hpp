// Turning a placement decision into network flows: the bridge between the
// application-level scheduler output (x_{jk}) and the coflow the network
// layer executes (f_{ij} = [src, des, v], §II-B).
#pragma once

#include <cstdint>
#include <span>

#include "data/chunk_matrix.hpp"
#include "net/flow.hpp"

namespace ccf::join {

/// Aggregate flow matrix induced by an assignment: node i sends h_{ik} to
/// dest[k] for every partition k (diagonal = local moves, zero traffic).
net::FlowMatrix assignment_flows(const data::ChunkMatrix& matrix,
                                 std::span<const std::uint32_t> dest);

/// Same, starting from pre-existing flows (the skew handler's broadcasts).
net::FlowMatrix assignment_flows(const data::ChunkMatrix& matrix,
                                 std::span<const std::uint32_t> dest,
                                 const net::FlowMatrix& initial);

}  // namespace ccf::join
