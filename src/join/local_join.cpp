#include "join/local_join.hpp"

namespace ccf::join {

void HashTable::insert_all(std::span<const data::Tuple> tuples) {
  for (const data::Tuple& t : tuples) insert(t.key);
}

std::uint64_t HashTable::probe(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t hash_join_count(std::span<const data::Tuple> build,
                              std::span<const data::Tuple> probe) {
  HashTable table;
  table.insert_all(build);
  std::uint64_t result = 0;
  for (const data::Tuple& t : probe) result += table.probe(t.key);
  return result;
}

std::uint64_t reference_join_cardinality(const data::DistributedRelation& build,
                                         const data::DistributedRelation& probe) {
  HashTable table;
  for (std::size_t node = 0; node < build.node_count(); ++node) {
    table.insert_all(build.shard(node).tuples());
  }
  std::uint64_t result = 0;
  for (std::size_t node = 0; node < probe.node_count(); ++node) {
    for (const data::Tuple& t : probe.shard(node).tuples()) {
      result += table.probe(t.key);
    }
  }
  return result;
}

}  // namespace ccf::join
