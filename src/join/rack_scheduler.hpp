// Rack-aware CCF placement (extension, §III-A note on complex networks).
//
// On a two-tier topology a cross-rack flow also consumes rack uplink
// bandwidth, so the makespan objective generalizes from the 2n-port
// bottleneck to
//
//   T = max( host-egress_i/ce, host-ingress_j/ci,
//            uplink-out_r/cu,  uplink-in_r/cu )        (normalized seconds)
//
// This scheduler runs the same greedy as Algorithm 1 but scores every
// candidate destination against all four link families, in O(p·(n + r))
// total via the same top-2 trick. With oversubscription 1.0 the uplinks can
// still bind (a rack's aggregate traffic exceeding its uplink), so this can
// beat the flat heuristic even on full-bisection rack fabrics.
#pragma once

#include "join/schedulers.hpp"
#include "net/flow.hpp"
#include "net/rack.hpp"

namespace ccf::join {

class RackCcfScheduler final : public PartitionScheduler {
 public:
  /// The topology is captured by reference; keep it alive while scheduling.
  explicit RackCcfScheduler(const net::RackFabric& topology)
      : topology_(&topology) {}

  std::string name() const override { return "ccf-rack"; }

  /// Optional pre-existing flows (e.g. skew-handler broadcasts) whose
  /// uplink usage should be accounted as initial load. The matrix must
  /// outlive schedule() calls. Pass nullptr to clear.
  void set_initial_flows(const net::FlowMatrix* flows) {
    initial_flows_ = flows;
  }

  Assignment schedule(const AssignmentProblem& problem) override;

 private:
  const net::RackFabric* topology_;
  const net::FlowMatrix* initial_flows_ = nullptr;
};

}  // namespace ccf::join
