// The local join phase (paper §II-A): once all tuples with the same key are
// co-located, each node joins its fragments independently with no further
// network traffic. We implement a classic build/probe hash join over key
// counts — enough to produce exact join cardinalities for verification.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "data/relation.hpp"

namespace ccf::join {

/// Multiset of build-side keys, ready to probe.
class HashTable {
 public:
  void insert(std::uint64_t key) { ++counts_[key]; }
  void insert_all(std::span<const data::Tuple> tuples);
  /// Number of build tuples with this key.
  std::uint64_t probe(std::uint64_t key) const;
  std::size_t distinct_keys() const noexcept { return counts_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

/// |build ⋈ probe| on the key attribute.
std::uint64_t hash_join_count(std::span<const data::Tuple> build,
                              std::span<const data::Tuple> probe);

/// Exact cardinality of the full distributed join computed centrally —
/// the ground truth the distributed executor must reproduce.
std::uint64_t reference_join_cardinality(const data::DistributedRelation& build,
                                         const data::DistributedRelation& probe);

}  // namespace ccf::join
