#include "join/rack_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace ccf::join {

namespace {

// Top-2 tracker over a family of candidate-dependent values.
struct Top2 {
  double max = -1.0;
  double second = -1.0;
  std::size_t arg = 0;

  void feed(double v, std::size_t idx) noexcept {
    if (v > max) {
      second = max;
      max = v;
      arg = idx;
    } else if (v > second) {
      second = v;
    }
  }
  double excluding(std::size_t idx) const noexcept {
    return idx == arg ? second : max;
  }
};

}  // namespace

Assignment RackCcfScheduler::schedule(const AssignmentProblem& problem) {
  problem.validate();
  const data::ChunkMatrix& m = *problem.matrix;
  const net::RackFabric& topo = *topology_;
  const std::size_t n = m.nodes();
  if (n != topo.nodes()) {
    throw std::invalid_argument(
        "RackCcfScheduler: matrix nodes != topology nodes");
  }
  const std::size_t r = topo.racks();
  const std::size_t p = m.partitions();
  const double ce = topo.host_rate();
  const double cu = topo.uplink_rate();

  // Partition order: descending max chunk, as in Algorithm 1.
  std::vector<std::uint32_t> order(p);
  for (std::size_t k = 0; k < p; ++k) order[k] = static_cast<std::uint32_t>(k);
  std::stable_sort(order.begin(), order.end(),
                   [&m](std::uint32_t a, std::uint32_t b) {
                     return m.partition_max(a) > m.partition_max(b);
                   });

  // Running loads in bytes.
  std::vector<double> egress(n), ingress(n), up_out(r, 0.0), up_in(r, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    egress[i] = problem.initial_egress_at(i);
    ingress[i] = problem.initial_ingress_at(i);
  }
  if (initial_flows_ != nullptr) {
    if (initial_flows_->nodes() != n) {
      throw std::invalid_argument("RackCcfScheduler: initial flows size");
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double v = initial_flows_->volume(i, j);
        if (v <= 0.0) continue;
        const std::size_t ri = topo.rack_of(i);
        const std::size_t rj = topo.rack_of(j);
        if (ri != rj) {
          up_out[ri] += v;
          up_in[rj] += v;
        }
      }
    }
  }

  std::vector<double> rack_mass(r);  // per-partition bytes per rack
  Assignment dest(p, 0);
  for (const std::uint32_t k : order) {
    const double sk = m.partition_total(k);
    std::fill(rack_mass.begin(), rack_mass.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      rack_mass[topo.rack_of(i)] += m.h(k, i);
    }

    // Candidate-independent top-2s (normalized to seconds by capacity).
    Top2 t_egress;   // (egress_i + h_i)/ce over hosts
    Top2 t_ingress;  // ingress_j/ce over hosts
    for (std::size_t i = 0; i < n; ++i) {
      t_egress.feed((egress[i] + m.h(k, i)) / ce, i);
      t_ingress.feed(ingress[i] / ce, i);
    }
    Top2 t_up_out;  // (up_out_r + rack_mass_r)/cu over racks
    Top2 t_up_in;   // up_in_r/cu over racks
    for (std::size_t rr = 0; rr < r; ++rr) {
      t_up_out.feed((up_out[rr] + rack_mass[rr]) / cu, rr);
      t_up_in.feed(up_in[rr] / cu, rr);
    }

    double best_t = 0.0;
    std::uint32_t best_d = 0;
    bool first = true;
    for (std::uint32_t d = 0; d < n; ++d) {
      const std::size_t rd = topo.rack_of(d);
      // Host egress: every holder i != d sends; d's own port stays put.
      const double eg = std::max(t_egress.excluding(d), egress[d] / ce);
      // Host ingress: d gains S_k - h_dk.
      const double in =
          std::max(t_ingress.excluding(d),
                   (ingress[d] + (sk - m.h(k, d))) / ce);
      // Uplink out: every rack other than rd ships its whole rack mass up;
      // rd's uplink is untouched by this partition.
      const double uo = std::max(t_up_out.excluding(rd), up_out[rd] / cu);
      // Uplink in: rd receives everything outside it; other racks unchanged.
      const double ui = std::max(t_up_in.excluding(rd),
                                 (up_in[rd] + (sk - rack_mass[rd])) / cu);
      const double t = std::max(std::max(eg, in), std::max(uo, ui));
      if (first || t < best_t) {
        best_t = t;
        best_d = d;
        first = false;
      }
    }

    // Commit.
    const std::size_t rd = topo.rack_of(best_d);
    dest[k] = best_d;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best_d) egress[i] += m.h(k, i);
    }
    ingress[best_d] += sk - m.h(k, best_d);
    for (std::size_t rr = 0; rr < r; ++rr) {
      if (rr != rd) up_out[rr] += rack_mass[rr];
    }
    up_in[rd] += sk - rack_mass[rd];
  }
  return dest;
}

}  // namespace ccf::join
