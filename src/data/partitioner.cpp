#include "data/partitioner.hpp"

#include <stdexcept>

namespace ccf::data {

namespace {

void accumulate(const DistributedRelation& relation, std::size_t partitions,
                ChunkMatrix& m) {
  for (std::size_t node = 0; node < relation.node_count(); ++node) {
    for (const Tuple& t : relation.shard(node).tuples()) {
      m.add(partition_of(t.key, partitions), node,
            static_cast<double>(t.payload_bytes));
    }
  }
}

}  // namespace

ChunkMatrix build_chunk_matrix(const DistributedRelation& relation,
                               std::size_t partitions) {
  ChunkMatrix m(partitions, relation.node_count());
  accumulate(relation, partitions, m);
  return m;
}

ChunkMatrix build_chunk_matrix(const DistributedRelation& build_side,
                               const DistributedRelation& probe_side,
                               std::size_t partitions) {
  if (build_side.node_count() != probe_side.node_count()) {
    throw std::invalid_argument(
        "build_chunk_matrix: relations live on different cluster sizes");
  }
  ChunkMatrix m(partitions, build_side.node_count());
  accumulate(build_side, partitions, m);
  accumulate(probe_side, partitions, m);
  return m;
}

}  // namespace ccf::data
