#include "data/io.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/csv_reader.hpp"

namespace ccf::data {

namespace {

bool numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

}  // namespace

ChunkMatrix chunk_matrix_from_csv(const std::string& path,
                                  std::size_t partitions, std::size_t nodes) {
  auto rows = util::read_csv_file(path);
  if (!rows.empty() && !rows.front().empty() && !numeric_cell(rows.front()[0])) {
    rows.erase(rows.begin());
  }
  struct Entry {
    std::size_t partition, node;
    double bytes;
  };
  std::vector<Entry> entries;
  std::size_t max_partition = 0, max_node = 0;
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::invalid_argument(
          "chunk_matrix_from_csv: expected partition,node,bytes rows");
    }
    Entry e{};
    e.partition = static_cast<std::size_t>(std::stoull(row[0]));
    e.node = static_cast<std::size_t>(std::stoull(row[1]));
    e.bytes = std::stod(row[2]);
    if (e.bytes < 0.0) {
      throw std::invalid_argument("chunk_matrix_from_csv: negative bytes");
    }
    max_partition = std::max(max_partition, e.partition);
    max_node = std::max(max_node, e.node);
    entries.push_back(e);
  }
  const std::size_t p = partitions == 0 ? max_partition + 1 : partitions;
  const std::size_t n = nodes == 0 ? max_node + 1 : nodes;
  if (max_partition >= p || max_node >= n) {
    throw std::invalid_argument("chunk_matrix_from_csv: index out of range");
  }
  ChunkMatrix m(p, n);
  for (const Entry& e : entries) m.add(e.partition, e.node, e.bytes);
  return m;
}

void chunk_matrix_to_csv(const ChunkMatrix& matrix, const std::string& path) {
  util::CsvWriter out(path);
  out.header({"partition", "node", "bytes"});
  char buf[64];
  for (std::size_t k = 0; k < matrix.partitions(); ++k) {
    for (std::size_t i = 0; i < matrix.nodes(); ++i) {
      const double v = matrix.h(k, i);
      if (v <= 0.0) continue;
      std::snprintf(buf, sizeof buf, "%.17g", v);
      out.row({std::to_string(k), std::to_string(i), buf});
    }
  }
}

}  // namespace ccf::data
