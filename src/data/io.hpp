// Chunk-matrix serialization: "partition,node,bytes" CSV (with an optional
// header row), the interchange format of the ccf_schedule tool.
#pragma once

#include <string>

#include "data/chunk_matrix.hpp"

namespace ccf::data {

/// Parse a chunk list CSV. `partitions`/`nodes` == 0 infer the dimensions
/// from the maximum indices seen. A non-numeric first row is skipped as a
/// header. Repeated (partition,node) rows accumulate.
ChunkMatrix chunk_matrix_from_csv(const std::string& path,
                                  std::size_t partitions = 0,
                                  std::size_t nodes = 0);

/// Write the non-zero entries as "partition,node,bytes" with a header row.
void chunk_matrix_to_csv(const ChunkMatrix& matrix, const std::string& path);

}  // namespace ccf::data
