// The h_{ik} chunk-size matrix — the central data structure of the paper's
// optimization model (Table I): h_{ik} is the size in bytes of the data chunk
// of partition k resident on node i. Everything the placement schedulers need
// is derived from this matrix.
//
// Storage is row-major by partition (p rows, n columns) because the
// schedulers iterate "for each partition, over all nodes".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccf::data {

/// Dense p x n matrix of chunk sizes in bytes (double: the analytic generator
/// produces fractional expectations; tuple-level builders produce integers).
class ChunkMatrix {
 public:
  ChunkMatrix(std::size_t partitions, std::size_t nodes);

  std::size_t partitions() const noexcept { return partitions_; }
  std::size_t nodes() const noexcept { return nodes_; }

  /// Chunk size of partition k on node i.
  double h(std::size_t k, std::size_t i) const noexcept {
    return data_[k * nodes_ + i];
  }
  void set(std::size_t k, std::size_t i, double bytes) noexcept {
    data_[k * nodes_ + i] = bytes;
  }
  void add(std::size_t k, std::size_t i, double bytes) noexcept {
    data_[k * nodes_ + i] += bytes;
  }

  /// All chunk sizes of partition k (one per node), contiguous.
  std::span<const double> partition_row(std::size_t k) const noexcept {
    return {data_.data() + k * nodes_, nodes_};
  }

  /// Total bytes of partition k across all nodes (S_k in the paper's terms).
  double partition_total(std::size_t k) const noexcept;
  /// Largest chunk of partition k: max_i h_{ik}.
  double partition_max(std::size_t k) const noexcept;
  /// Node holding the largest chunk of partition k (ties: lowest index).
  std::size_t partition_argmax(std::size_t k) const noexcept;

  /// Total bytes resident on node i across all partitions.
  double node_total(std::size_t i) const noexcept;
  /// Grand total of all bytes.
  double total() const noexcept;

  friend bool operator==(const ChunkMatrix&, const ChunkMatrix&) = default;

 private:
  std::size_t partitions_;
  std::size_t nodes_;
  std::vector<double> data_;
};

/// Max absolute elementwise difference between two same-shape matrices
/// (used by tests comparing tuple-level and analytic builds).
double max_abs_diff(const ChunkMatrix& a, const ChunkMatrix& b);

}  // namespace ccf::data
