#include "data/skew.hpp"

#include <stdexcept>

namespace ccf::data {

std::uint64_t inject_skew(DistributedRelation& relation, double fraction,
                          std::uint64_t hot_key, ccf::util::Pcg32& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("inject_skew: fraction must be in [0,1]");
  }
  std::uint64_t rewritten = 0;
  for (std::size_t node = 0; node < relation.node_count(); ++node) {
    for (Tuple& t : relation.shard(node).mutable_tuples()) {
      if (rng.uniform01() < fraction) {
        t.key = hot_key;
        ++rewritten;
      }
    }
  }
  return rewritten;
}

std::uint64_t count_key(const DistributedRelation& relation,
                        std::uint64_t key) {
  std::uint64_t c = 0;
  for (std::size_t node = 0; node < relation.node_count(); ++node) {
    for (const Tuple& t : relation.shard(node).tuples()) {
      if (t.key == key) ++c;
    }
  }
  return c;
}

}  // namespace ccf::data
