#include "data/workload.hpp"

#include <numeric>
#include <stdexcept>

#include "data/partitioner.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace ccf::data {

WorkloadSpec WorkloadSpec::paper_default(std::size_t nodes) {
  WorkloadSpec s;
  s.nodes = nodes;
  s.partitions = 15 * nodes;
  return s;
}

double SkewInfo::skewed_bytes_total() const noexcept {
  return std::accumulate(skewed_bytes_per_node.begin(),
                         skewed_bytes_per_node.end(), 0.0);
}

Workload generate_workload(const WorkloadSpec& spec) {
  if (spec.nodes == 0 || spec.partitions == 0) {
    throw std::invalid_argument("generate_workload: nodes/partitions >= 1");
  }
  if (spec.skew < 0.0 || spec.skew > 1.0) {
    throw std::invalid_argument("generate_workload: skew must be in [0,1]");
  }
  const std::size_t n = spec.nodes;
  const std::size_t p = spec.partitions;

  util::Pcg32 rng(util::derive_seed(spec.seed, 7), 7);
  const std::vector<double> w = util::zipf_weights(n, spec.zipf_theta);

  // Partition totals: non-skewed mass spread evenly with jitter, then
  // renormalized so the byte total is exact.
  const double base_total =
      spec.customer_bytes + spec.orders_bytes * (1.0 - spec.skew);
  std::vector<double> part_bytes(p);
  double jitter_sum = 0.0;
  for (std::size_t k = 0; k < p; ++k) {
    part_bytes[k] = 1.0 + rng.uniform(-spec.jitter, spec.jitter);
    jitter_sum += part_bytes[k];
  }
  for (double& b : part_bytes) b *= base_total / jitter_sum;

  ChunkMatrix m(p, n);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t k = 0; k < p; ++k) {
    if (!spec.align_zipf_ranks) {
      // Fresh random rank->node permutation per partition (ablation mode).
      for (std::size_t i = n; i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng.bounded(static_cast<std::uint32_t>(i)));
        std::swap(perm[i - 1], perm[j]);
      }
    }
    for (std::size_t rank = 0; rank < n; ++rank) {
      m.set(k, perm[rank], part_bytes[k] * w[rank]);
    }
  }

  SkewInfo info;
  if (spec.skew > 0.0) {
    info.present = true;
    info.hot_key = spec.hot_key;
    info.hot_partition = partition_of(spec.hot_key, p);
    info.skewed_bytes_per_node.resize(n, 0.0);
    const double skewed_total = spec.orders_bytes * spec.skew;
    // Rewritten tuples are picked uniformly from ORDERS, so across nodes they
    // follow the (aligned) tuple placement distribution.
    for (std::size_t rank = 0; rank < n; ++rank) {
      const double share = skewed_total * w[rank];
      info.skewed_bytes_per_node[rank] = share;
      m.add(info.hot_partition, rank, share);
    }
    // The single build-side tuple with the hot key; place it on the most
    // likely node under the placement distribution (rank 0).
    info.broadcast_source = 0;
    info.broadcast_bytes = spec.payload_bytes;
  }

  return Workload{std::move(m), std::move(info), spec};
}

Workload workload_from_tuples(const DistributedRelation& customer,
                              const DistributedRelation& orders,
                              std::size_t partitions, std::uint64_t hot_key) {
  if (customer.node_count() != orders.node_count()) {
    throw std::invalid_argument("workload_from_tuples: cluster size mismatch");
  }
  const std::size_t n = customer.node_count();
  ChunkMatrix m = build_chunk_matrix(customer, orders, partitions);

  SkewInfo info;
  info.hot_key = hot_key;
  info.hot_partition = partition_of(hot_key, partitions);
  info.skewed_bytes_per_node.assign(n, 0.0);
  double hot_orders_total = 0.0;
  for (std::size_t node = 0; node < n; ++node) {
    for (const Tuple& t : orders.shard(node).tuples()) {
      if (t.key == hot_key) {
        info.skewed_bytes_per_node[node] += t.payload_bytes;
        hot_orders_total += t.payload_bytes;
      }
    }
  }
  double hot_customer_bytes = 0.0;
  std::size_t hot_customer_node = 0;
  for (std::size_t node = 0; node < n; ++node) {
    for (const Tuple& t : customer.shard(node).tuples()) {
      if (t.key == hot_key) {
        hot_customer_bytes += t.payload_bytes;
        hot_customer_node = node;
      }
    }
  }
  info.broadcast_source = hot_customer_node;
  info.broadcast_bytes = hot_customer_bytes;
  info.present = hot_orders_total > 0.0;

  WorkloadSpec spec;
  spec.nodes = n;
  spec.partitions = partitions;
  spec.customer_bytes = static_cast<double>(customer.total_bytes());
  spec.orders_bytes = static_cast<double>(orders.total_bytes());
  spec.hot_key = hot_key;
  spec.skew = spec.orders_bytes > 0.0 ? hot_orders_total / spec.orders_bytes : 0.0;

  return Workload{std::move(m), std::move(info), spec};
}

}  // namespace ccf::data
