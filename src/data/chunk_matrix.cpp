#include "data/chunk_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ccf::data {

ChunkMatrix::ChunkMatrix(std::size_t partitions, std::size_t nodes)
    : partitions_(partitions), nodes_(nodes), data_(partitions * nodes, 0.0) {
  if (partitions == 0 || nodes == 0) {
    throw std::invalid_argument("ChunkMatrix: partitions and nodes must be >= 1");
  }
}

double ChunkMatrix::partition_total(std::size_t k) const noexcept {
  double s = 0.0;
  for (const double v : partition_row(k)) s += v;
  return s;
}

double ChunkMatrix::partition_max(std::size_t k) const noexcept {
  const auto row = partition_row(k);
  return *std::max_element(row.begin(), row.end());
}

std::size_t ChunkMatrix::partition_argmax(std::size_t k) const noexcept {
  const auto row = partition_row(k);
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

double ChunkMatrix::node_total(std::size_t i) const noexcept {
  double s = 0.0;
  for (std::size_t k = 0; k < partitions_; ++k) s += h(k, i);
  return s;
}

double ChunkMatrix::total() const noexcept {
  double s = 0.0;
  for (const double v : data_) s += v;
  return s;
}

double max_abs_diff(const ChunkMatrix& a, const ChunkMatrix& b) {
  if (a.partitions() != b.partitions() || a.nodes() != b.nodes()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double d = 0.0;
  for (std::size_t k = 0; k < a.partitions(); ++k) {
    for (std::size_t i = 0; i < a.nodes(); ++i) {
      d = std::max(d, std::fabs(a.h(k, i) - b.h(k, i)));
    }
  }
  return d;
}

}  // namespace ccf::data
