#include "data/relation.hpp"

#include <stdexcept>

namespace ccf::data {

void Shard::recount() noexcept {
  bytes_ = 0;
  for (const Tuple& t : tuples_) bytes_ += t.payload_bytes;
}

DistributedRelation::DistributedRelation(std::string name, std::size_t nodes)
    : name_(std::move(name)), shards_(nodes) {
  if (nodes == 0) {
    throw std::invalid_argument("DistributedRelation: nodes must be >= 1");
  }
}

std::size_t DistributedRelation::tuple_count() const noexcept {
  std::size_t c = 0;
  for (const Shard& s : shards_) c += s.size();
  return c;
}

std::uint64_t DistributedRelation::total_bytes() const noexcept {
  std::uint64_t b = 0;
  for (const Shard& s : shards_) b += s.bytes();
  return b;
}

}  // namespace ccf::data
