// Distribution-level workload generation for paper-scale experiments.
//
// The schedulers and the coflow simulator consume only (a) the p x n chunk
// matrix h_{ik} and (b) skew metadata — never tuple contents. At the paper's
// scale (SF 600, ~1 TB, up to 1000 nodes, p = 15n partitions) materializing
// 990 M tuples is pointless, so this generator builds h_{ik} directly from the
// same distributions the tuple-level generator samples:
//
//   * partition totals: uniform keys => (customer+orders) bytes split evenly
//     over p partitions, with a small multiplicative jitter;
//   * per-partition split across nodes: Zipf(theta) rank weights, rank-aligned
//     (node 0 holds the largest chunk of every partition — §IV-B1) unless
//     align_zipf_ranks is false, in which case each partition gets an
//     independent random rank->node permutation (ablation only; the
//     tuple-level generator cannot express this because node placement
//     happens before partitioning);
//   * skew: a fraction `skew` of ORDERS bytes is rewritten to `hot_key`,
//     i.e. removed proportionally from all partitions' orders mass and added
//     to partition (hot_key mod p), spread over nodes with the aligned Zipf
//     weights (rewritten tuples are chosen uniformly at random, so they
//     inherit the tuple placement distribution).
#pragma once

#include <cstdint>
#include <vector>

#include "data/chunk_matrix.hpp"
#include "data/relation.hpp"

namespace ccf::data {

/// Full parameter set of one experiment data point.
struct WorkloadSpec {
  std::size_t nodes = 100;
  std::size_t partitions = 1500;   ///< paper default: p = 15 * nodes
  double customer_bytes = 90e9;    ///< SF600: 90 M tuples x 1000 B
  double orders_bytes = 900e9;     ///< SF600: 900 M tuples x 1000 B
  double payload_bytes = 1000.0;   ///< per-tuple wire size
  double zipf_theta = 0.8;         ///< "zipf" factor of §IV (default 0.8)
  double skew = 0.2;               ///< "skew" fraction of §IV (default 20%)
  std::uint64_t hot_key = 1;       ///< the key skewed tuples are rewritten to
  bool align_zipf_ranks = true;    ///< node 0 largest everywhere (paper)
  double jitter = 0.01;            ///< relative partition-size jitter
  std::uint64_t seed = 42;

  /// The paper's configuration for a given node count: p = 15n, TPC-H SF 600.
  static WorkloadSpec paper_default(std::size_t nodes);

  double total_bytes() const noexcept { return customer_bytes + orders_bytes; }
};

/// Skew metadata consumed by the partial-duplication handler (core/skew).
struct SkewInfo {
  bool present = false;
  std::uint64_t hot_key = 0;
  std::size_t hot_partition = 0;
  /// Probe-side (ORDERS) bytes carrying the hot key, per node. Under partial
  /// duplication these stay local and never enter the coflow.
  std::vector<double> skewed_bytes_per_node;
  /// Node holding the build-side (CUSTOMER) tuples with the hot key.
  std::size_t broadcast_source = 0;
  /// Build-side hot bytes broadcast to each *other* node.
  double broadcast_bytes = 0.0;

  double skewed_bytes_total() const noexcept;
};

/// A generated experiment input: what every scheduler sees.
struct Workload {
  ChunkMatrix matrix;  ///< includes the skewed mass (what Hash redistributes)
  SkewInfo skew;
  WorkloadSpec spec;
};

/// Build a workload analytically from a spec (paper-scale path).
Workload generate_workload(const WorkloadSpec& spec);

/// Build the same Workload structure from real tuple relations (small-scale
/// path used by tests/examples): the matrix comes from hash-partitioning the
/// tuples, and SkewInfo from counting hot-key tuples. `hot_key` tuples in
/// `orders` are treated as skew if any exist beyond the uniform expectation.
Workload workload_from_tuples(const DistributedRelation& customer,
                              const DistributedRelation& orders,
                              std::size_t partitions, std::uint64_t hot_key);

}  // namespace ccf::data
