// Tuple-level data containers.
//
// The scheduler/simulator stack works on distribution-level chunk-size
// matrices (see chunk_matrix.hpp), but the reproduction also carries a real
// tuple-level substrate: relations sharded over the nodes of the simulated
// cluster. It is used by the examples, by the distributed-join correctness
// tests, and to validate that the analytic generator and the tuple generator
// agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccf::data {

/// One relational tuple, reduced to what the reproduction needs: the join key
/// and the number of payload bytes it carries over the wire (the paper fixes
/// this at 1000 B so flow volume == tuple count x 1000).
struct Tuple {
  std::uint64_t key = 0;
  std::uint32_t payload_bytes = 0;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// The fragment of a relation resident on one node.
class Shard {
 public:
  void add(Tuple t) {
    bytes_ += t.payload_bytes;
    tuples_.push_back(t);
  }
  const std::vector<Tuple>& tuples() const noexcept { return tuples_; }
  std::size_t size() const noexcept { return tuples_.size(); }
  bool empty() const noexcept { return tuples_.empty(); }
  /// Total payload bytes in this shard.
  std::uint64_t bytes() const noexcept { return bytes_; }

  std::vector<Tuple>& mutable_tuples() noexcept { return tuples_; }
  /// Recompute bytes_ after external mutation through mutable_tuples().
  void recount() noexcept;

 private:
  std::vector<Tuple> tuples_;
  std::uint64_t bytes_ = 0;
};

/// A relation horizontally partitioned over the n nodes of a cluster.
class DistributedRelation {
 public:
  DistributedRelation(std::string name, std::size_t nodes);

  const std::string& name() const noexcept { return name_; }
  std::size_t node_count() const noexcept { return shards_.size(); }

  Shard& shard(std::size_t node) { return shards_.at(node); }
  const Shard& shard(std::size_t node) const { return shards_.at(node); }

  /// Total tuples across all shards.
  std::size_t tuple_count() const noexcept;
  /// Total payload bytes across all shards.
  std::uint64_t total_bytes() const noexcept;

 private:
  std::string name_;
  std::vector<Shard> shards_;
};

}  // namespace ccf::data
