// Skew injection (paper §IV-A2): "we randomly choose a portion of data and
// change their custkey to a specified value", e.g. 20% of the tuples get key 1
// making the skewness 20%. We apply this to the probe-side relation (ORDERS),
// the only reading consistent with the partial-duplication skew handler of
// §III-C (skewed big-relation tuples stay local, matching small-relation
// tuples broadcast).
#pragma once

#include <cstdint>

#include "data/relation.hpp"
#include "util/rng.hpp"

namespace ccf::data {

/// Rewrite each tuple's key to `hot_key` independently with probability
/// `fraction` (in [0,1]). Returns the number of rewritten tuples.
/// Deterministic in (relation contents, rng state).
std::uint64_t inject_skew(DistributedRelation& relation, double fraction,
                          std::uint64_t hot_key, ccf::util::Pcg32& rng);

/// Count tuples in `relation` carrying exactly `key`.
std::uint64_t count_key(const DistributedRelation& relation, std::uint64_t key);

}  // namespace ccf::data
