#include "data/tpch.hpp"

#include <stdexcept>

#include "util/zipf.hpp"

namespace ccf::data {

namespace {

// Shared placement logic: returns the node for the next tuple.
class NodePlacer {
 public:
  NodePlacer(const TpchConfig& cfg, std::uint64_t stream)
      : sampler_(cfg.nodes, cfg.zipf_theta),
        rng_(ccf::util::derive_seed(cfg.seed, stream), stream),
        perm_(cfg.nodes) {
    // With aligned ranks, rank r maps to node r (node 0 largest). Otherwise a
    // fixed random permutation decouples "rank" from node index.
    for (std::size_t i = 0; i < cfg.nodes; ++i) perm_[i] = i;
    if (!cfg.align_zipf_ranks) {
      for (std::size_t i = cfg.nodes; i > 1; --i) {
        const auto j = static_cast<std::size_t>(
            rng_.bounded(static_cast<std::uint32_t>(i)));
        std::swap(perm_[i - 1], perm_[j]);
      }
    }
  }

  std::size_t next() { return perm_[sampler_(rng_)]; }
  ccf::util::Pcg32& rng() noexcept { return rng_; }

 private:
  ccf::util::ZipfSampler sampler_;
  ccf::util::Pcg32 rng_;
  std::vector<std::size_t> perm_;
};

void validate(const TpchConfig& cfg) {
  if (cfg.nodes == 0) throw std::invalid_argument("TpchConfig: nodes >= 1");
  if (cfg.scale_factor <= 0.0) {
    throw std::invalid_argument("TpchConfig: scale_factor > 0");
  }
  if (cfg.customer_rows() == 0) {
    throw std::invalid_argument("TpchConfig: scale factor too small, no customers");
  }
}

}  // namespace

DistributedRelation generate_customer(const TpchConfig& cfg) {
  validate(cfg);
  DistributedRelation rel("CUSTOMER", cfg.nodes);
  NodePlacer placer(cfg, /*stream=*/1);
  const std::uint64_t rows = cfg.customer_rows();
  for (std::uint64_t key = 1; key <= rows; ++key) {
    rel.shard(placer.next()).add(Tuple{key, cfg.payload_bytes});
  }
  return rel;
}

DistributedRelation generate_orders(const TpchConfig& cfg) {
  validate(cfg);
  DistributedRelation rel("ORDERS", cfg.nodes);
  NodePlacer placer(cfg, /*stream=*/2);
  const std::uint64_t customers = cfg.customer_rows();
  const std::uint64_t rows = cfg.orders_rows();
  for (std::uint64_t i = 0; i < rows; ++i) {
    auto key = static_cast<std::uint64_t>(
        placer.rng().uniform_int(1, static_cast<std::int64_t>(customers)));
    if (cfg.sparse_customers) {
      // TPC-H: custkeys divisible by 3 never appear in ORDERS. Resample by
      // shifting to the nearest valid key (keeps the draw O(1) and uniform
      // over valid keys up to edge effects at the domain boundary).
      while (key % 3 == 0) {
        key = key > 1 ? key - 1 : key + 1;
      }
    }
    rel.shard(placer.next()).add(Tuple{key, cfg.payload_bytes});
  }
  return rel;
}

std::uint64_t expected_join_cardinality(const TpchConfig& cfg) noexcept {
  return cfg.orders_rows();
}

}  // namespace ccf::data
