// Hash partitioning (paper §IV-A3: "we just use a simple hash function
// f(k) = k mod p to partition data tuples") and builders turning tuple-level
// relations into the h_{ik} chunk-size matrix.
#pragma once

#include <cstdint>

#include "data/chunk_matrix.hpp"
#include "data/relation.hpp"

namespace ccf::data {

/// The paper's partition function: f(key) = key mod p.
constexpr std::size_t partition_of(std::uint64_t key, std::size_t p) noexcept {
  return static_cast<std::size_t>(key % p);
}

/// Build the p x n chunk matrix of a single relation: h(k,i) = payload bytes
/// of tuples on node i whose key hashes to partition k.
ChunkMatrix build_chunk_matrix(const DistributedRelation& relation,
                               std::size_t partitions);

/// Build the combined chunk matrix of a two-relation join input: both sides
/// are partitioned on the join key, and a partition's chunk on a node is the
/// sum of both relations' bytes there (both sides move together in the
/// redistribution stage). The relations must live on the same cluster.
ChunkMatrix build_chunk_matrix(const DistributedRelation& build_side,
                               const DistributedRelation& probe_side,
                               std::size_t partitions);

}  // namespace ccf::data
