// TPC-H-shaped data generation (substitution for dbgen, see DESIGN.md §2).
//
// The paper joins CUSTOMER and ORDERS on CUSTKEY at scale factor 600:
// 90 M customer tuples, 900 M orders tuples, 1000-byte payloads (~1 TB).
// TPC-H defines |CUSTOMER| = SF * 150'000 and |ORDERS| = SF * 1'500'000,
// which is exactly the ratio the paper reports, so we generate:
//
//   * CUSTOMER: keys 1..SF*150'000, one tuple per key.
//   * ORDERS:   SF*1'500'000 tuples, custkey uniform over the customer keys.
//
// Tuples are placed on nodes by sampling the same Zipf(theta) rank
// distribution the analytic matrix generator uses (node 0 = rank 1 holds the
// most data when ranks are aligned), so the tuple-level and analytic paths
// agree in expectation.
#pragma once

#include <cstdint>

#include "data/relation.hpp"
#include "util/rng.hpp"

namespace ccf::data {

/// Parameters for the tuple-level generator. Intended for small scale factors
/// (tests/examples); the paper-scale experiments use the analytic generator
/// in workload.hpp.
struct TpchConfig {
  double scale_factor = 0.001;      ///< TPC-H SF; 600 is the paper's setting.
  std::size_t nodes = 4;            ///< cluster size n
  std::uint32_t payload_bytes = 1000;  ///< bytes carried per tuple (paper: 1000)
  double zipf_theta = 0.8;          ///< node-placement skew (paper default 0.8)
  bool align_zipf_ranks = true;     ///< node 0 always gets the largest share
  /// TPC-H fidelity detail: the spec populates ORDERS only for customers
  /// whose key is not divisible by 3 (one third of customers have no
  /// orders). Off by default — the paper's description doesn't rely on it —
  /// but available for fidelity studies.
  bool sparse_customers = false;
  std::uint64_t seed = 42;

  /// TPC-H row counts at this scale factor.
  std::uint64_t customer_rows() const noexcept {
    return static_cast<std::uint64_t>(scale_factor * 150'000.0);
  }
  std::uint64_t orders_rows() const noexcept {
    return static_cast<std::uint64_t>(scale_factor * 1'500'000.0);
  }
};

/// Generate the CUSTOMER relation: one tuple per key 1..customer_rows().
DistributedRelation generate_customer(const TpchConfig& cfg);

/// Generate the ORDERS relation: orders_rows() tuples with custkey drawn
/// uniformly from the customer key domain.
DistributedRelation generate_orders(const TpchConfig& cfg);

/// Exact cardinality of CUSTOMER ⋈ ORDERS on CUSTKEY for relations produced by
/// the two generators above *before* any skew injection: every orders tuple
/// matches exactly one customer, so it equals orders_rows().
std::uint64_t expected_join_cardinality(const TpchConfig& cfg) noexcept;

}  // namespace ccf::data
