// Scaling benchmark and perf-regression harness for the exact optimizer.
//
// Sweeps #nodes x #partitions, solving each instance with the reference
// sequential branch-and-bound (BnbMode::kReference, the seed algorithm:
// averaging bound, O(n²) child rescans) and the parallel portfolio solver
// (BnbMode::kParallel: GRASP warm start, subtree fan-out, top-2 child
// scoring, water-fill + argmax-concentration + egress-drain pruning) across a
// thread sweep, verifying that whenever both modes prove optimality they
// agree on T. Full mode writes BENCH_opt.json (one result object per line).
//
// --smoke re-times the reference cell (5 nodes x 15 partitions, 8 threads)
// and compares the parallel solver against a checked-in baseline
// (--baseline BENCH_opt.json), failing with exit code 1 if it regressed more
// than 2x beyond a small noise floor, if either mode fails to prove
// optimality, if the two modes disagree on T, or if the parallel speedup
// falls under 3x. Wired up as the `perf_smoke_opt` ctest.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "data/workload.hpp"
#include "opt/bnb.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// The smoke comparison cell; the default sweep must include it.
constexpr std::size_t kSmokeNodes = 5;
constexpr std::size_t kSmokePartitions = 15;
constexpr std::size_t kSmokeThreads = 8;

ccf::data::Workload make_problem(std::size_t nodes, std::size_t partitions,
                                 std::uint64_t seed) {
  ccf::data::WorkloadSpec spec;
  spec.nodes = nodes;
  spec.partitions = partitions;
  spec.customer_bytes = 1e6;
  spec.orders_bytes = 1e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.0;
  spec.align_zipf_ranks = false;
  spec.seed = seed;
  return ccf::data::generate_workload(spec);
}

struct RunResult {
  ccf::opt::BnbResult result;
  double ms = 0.0;
};

RunResult run_once(const ccf::opt::AssignmentProblem& problem,
                   ccf::opt::BnbMode mode, std::size_t threads) {
  ccf::opt::BnbOptions opts;
  opts.mode = mode;
  opts.threads = threads;
  opts.time_limit_s = 30.0;
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.result = ccf::opt::solve_exact(problem, opts);
  r.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  return r;
}

/// Min-of-`reps` wall clock (keeps the last result). Minimum, not mean:
/// interference only ever adds time, so the minimum is the cleanest estimate.
RunResult run_best(const ccf::opt::AssignmentProblem& problem,
                   ccf::opt::BnbMode mode, std::size_t threads, int reps) {
  RunResult best;
  best.ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto r = run_once(problem, mode, threads);
    best.ms = std::min(best.ms, r.ms);
    best.result = std::move(r.result);
  }
  return best;
}

bool close_rel(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// When both modes prove optimality their T must agree exactly; when only
/// one proves, the other's incumbent cannot be better than the proven value.
bool modes_agree(const ccf::opt::BnbResult& ref,
                 const ccf::opt::BnbResult& par, std::string& why) {
  std::ostringstream os;
  if (ref.optimal && par.optimal && !close_rel(ref.T, par.T)) {
    os << "both proven but T " << ref.T << " vs " << par.T;
  } else if (ref.optimal && par.T < ref.T && !close_rel(ref.T, par.T)) {
    os << "parallel incumbent " << par.T << " beats proven optimum " << ref.T;
  } else if (par.optimal && ref.T < par.T && !close_rel(ref.T, par.T)) {
    os << "reference incumbent " << ref.T << " beats proven optimum " << par.T;
  }
  why = os.str();
  return why.empty();
}

// --- naive line-oriented JSON helpers (one result object per line) ---------

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  const auto colon = line.find(':', p);
  if (colon == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(colon + 1));
  } catch (...) {
    return std::nan("");
  }
}

struct BaselineEntry {
  std::size_t nodes = 0, partitions = 0, threads = 0;
  double parallel_ms = 0.0;
  double T = 0.0;
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"parallel_ms\"") == std::string::npos) continue;
    BaselineEntry e;
    e.nodes = static_cast<std::size_t>(json_number(line, "nodes"));
    e.partitions = static_cast<std::size_t>(json_number(line, "partitions"));
    e.threads = static_cast<std::size_t>(json_number(line, "threads"));
    e.parallel_ms = json_number(line, "parallel_ms");
    e.T = json_number(line, "T");
    if (e.nodes > 0 && std::isfinite(e.parallel_ms)) {
      entries.push_back(e);
    }
  }
  return entries;
}

int run_smoke(const std::string& baseline_path, std::uint64_t seed) {
  const auto baseline = load_baseline(baseline_path);
  if (baseline.empty()) {
    std::cerr << "perf-smoke: no baseline entries in " << baseline_path
              << "\n";
    return 1;
  }
  const auto w = make_problem(kSmokeNodes, kSmokePartitions, seed);
  ccf::opt::AssignmentProblem problem;
  problem.matrix = &w.matrix;

  const auto ref =
      run_best(problem, ccf::opt::BnbMode::kReference, kSmokeThreads, 2);
  const auto par =
      run_best(problem, ccf::opt::BnbMode::kParallel, kSmokeThreads, 3);

  bool ok = true;
  std::string why;
  if (!ref.result.optimal || !par.result.optimal) {
    std::cerr << "perf-smoke: optimality not proven (reference="
              << ref.result.optimal << ", parallel=" << par.result.optimal
              << ")\n";
    ok = false;
  } else if (!modes_agree(ref.result, par.result, why)) {
    std::cerr << "perf-smoke: mode disagreement: " << why << "\n";
    ok = false;
  }

  double base_ms = std::nan(""), base_T = std::nan("");
  for (const auto& e : baseline) {
    if (e.nodes == kSmokeNodes && e.partitions == kSmokePartitions &&
        e.threads == kSmokeThreads) {
      base_ms = e.parallel_ms;
      base_T = e.T;
    }
  }
  const double speedup = par.ms > 0.0 ? ref.ms / par.ms : 0.0;
  std::string status = "ok";
  if (!std::isfinite(base_ms)) {
    std::cerr << "perf-smoke: no baseline entry for the smoke cell\n";
    status = "no baseline";
    ok = false;
  } else {
    if (par.result.optimal && std::isfinite(base_T) &&
        !close_rel(par.result.T, base_T)) {
      // The proven optimum is a deterministic function of the instance; any
      // drift means the solver (or the workload generator) changed semantics.
      std::cerr << "perf-smoke: proven T " << par.result.T
                << " differs from baseline " << base_T << "\n";
      status = "T DRIFT";
      ok = false;
    }
    if (par.ms > 2.0 * base_ms && par.ms - base_ms > 25.0) {
      // >2x the checked-in time AND past a 25 ms noise floor.
      status = "REGRESSED";
      ok = false;
    }
  }
  if (ok && speedup < 3.0) {
    // The whole point of the parallel solver: stay >=3x over the seed search
    // at the reference cell. Both runs share the machine, so the ratio is
    // robust to absolute-speed noise.
    std::cerr << "perf-smoke: parallel speedup " << speedup << "x < 3x\n";
    status = "SLOW";
    ok = false;
  }

  ccf::util::Table t({"cell", "reference ms", "parallel ms", "baseline ms",
                      "speedup", "status"});
  std::ostringstream cell, rms, pms, bms, sp;
  cell << kSmokeNodes << "x" << kSmokePartitions << "@" << kSmokeThreads;
  rms.precision(2);
  rms << std::fixed << ref.ms;
  pms.precision(2);
  pms << std::fixed << par.ms;
  bms.precision(2);
  bms << std::fixed << (std::isfinite(base_ms) ? base_ms : 0.0);
  sp.precision(1);
  sp << std::fixed << speedup << "x";
  t.add_row({cell.str(), rms.str(), pms.str(), bms.str(), sp.str(), status});
  t.print(std::cout);
  if (!ok) {
    std::cerr << "perf-smoke FAILED (see above; baseline " << baseline_path
              << ")\n";
    return 1;
  }
  std::cout << "perf-smoke passed\n";
  return 0;
}

int run_main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_opt_scale",
                            "Optimizer scaling sweep + perf-regression harness");
  // The default sweep must include the 5x15 @ 8 threads smoke cell.
  args.add_flag("nodes", "5:6:1", "cluster-node sweep lo:hi:step");
  args.add_flag("partitions", "12:18:3", "partition-count sweep lo:hi:step");
  args.add_flag("threads", "1:8:7", "parallel-solver thread sweep lo:hi:step");
  args.add_flag("seed", "7", "workload rng seed");
  args.add_flag("reps", "2", "timing repetitions per cell (min taken)");
  args.add_flag("out", "BENCH_opt.json", "output JSON path (full mode)");
  args.add_flag("smoke", "false",
                "regression check against --baseline and exit");
  args.add_flag("baseline", "BENCH_opt.json",
                "baseline JSON for --smoke comparisons");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps")));

  if (args.provided("smoke")) return run_smoke(args.get("baseline"), seed);

  std::ostringstream json;
  // Full precision: --smoke compares the proven T against the baseline
  // exactly (it is a deterministic function of the instance).
  json.precision(17);
  json << "{\n  \"bench\": \"bench_opt_scale\",\n  \"seed\": " << seed
       << ",\n  \"results\": [\n";
  bool first = true, ok = true;
  ccf::util::Table t({"instance", "threads", "ref ms", "par ms", "ref nodes",
                      "par nodes", "proven", "speedup"});
  for (const std::int64_t nodes : args.get_int_sweep("nodes")) {
    for (const std::int64_t partitions : args.get_int_sweep("partitions")) {
      const auto w = make_problem(static_cast<std::size_t>(nodes),
                                  static_cast<std::size_t>(partitions), seed);
      ccf::opt::AssignmentProblem problem;
      problem.matrix = &w.matrix;
      // The reference solver is single-threaded; time it once per instance.
      const auto ref =
          run_best(problem, ccf::opt::BnbMode::kReference, 1, reps);
      for (const std::int64_t threads : args.get_int_sweep("threads")) {
        const auto par = run_best(problem, ccf::opt::BnbMode::kParallel,
                                  static_cast<std::size_t>(threads), reps);
        std::string why;
        if (!modes_agree(ref.result, par.result, why)) {
          std::cerr << "MODE MISMATCH (" << nodes << "x" << partitions << " @"
                    << threads << "): " << why << "\n";
          ok = false;
        }
        const double speedup = par.ms > 0.0 ? ref.ms / par.ms : 0.0;
        std::ostringstream inst, th, rms, pms, rn, pn, pv, sp;
        inst << nodes << "x" << partitions;
        th << threads;
        rms.precision(2);
        rms << std::fixed << ref.ms;
        pms.precision(2);
        pms << std::fixed << par.ms;
        rn << ref.result.nodes_explored;
        pn << par.result.nodes_explored;
        pv << (ref.result.optimal ? "ref " : "") +
                  std::string(par.result.optimal ? "par" : "");
        sp.precision(1);
        sp << std::fixed << speedup << "x";
        t.add_row({inst.str(), th.str(), rms.str(), pms.str(), rn.str(),
                   pn.str(), pv.str(), sp.str()});
        if (!first) json << ",\n";
        first = false;
        json << "    {\"nodes\": " << nodes << ", \"partitions\": "
             << partitions << ", \"threads\": " << threads
             << ", \"reference_ms\": " << ref.ms
             << ", \"parallel_ms\": " << par.ms
             << ", \"reference_nodes\": " << ref.result.nodes_explored
             << ", \"parallel_nodes\": " << par.result.nodes_explored
             << ", \"reference_optimal\": " << (ref.result.optimal ? 1 : 0)
             << ", \"parallel_optimal\": " << (par.result.optimal ? 1 : 0)
             << ", \"subtree_tasks\": " << par.result.subtree_tasks
             << ", \"T\": " << par.result.T << "}";
      }
    }
  }
  json << "\n  ]\n}\n";
  t.print(std::cout);
  if (!ok) return 1;

  std::ofstream out(args.get("out"));
  out << json.str();
  std::cout << "\nwrote " << args.get("out") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_opt_scale: " << e.what() << "\n";
    return 1;
  }
}
