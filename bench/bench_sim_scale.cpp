// Scaling benchmark and perf-regression harness for the event engine.
//
// Sweeps #coflows x #racks over all five allocators, running every workload
// under both engine modes (SimEngine::kReference vs kIncremental), verifying
// that their SimReports agree (events exactly, times/bytes within 1e-9
// relative) and recording the wall-clock of each. Full mode writes
// BENCH_sim.json (one result object per line, greppable/diffable).
//
// --smoke re-times a reduced sweep and compares the incremental engine
// against a checked-in baseline (--baseline BENCH_sim.json), failing with
// exit code 1 if any allocator regressed more than 2x beyond a small noise
// floor. Wired up as the `perf_smoke` ctest.
//
// --scale appends extreme-scale rows (2.5k-10k racks, 10k-100k coflows) to
// the full sweep: sparse coflow ingestion, incremental engine only. The
// reference engine rebuilds a per-event AoS view and would take hours at
// these sizes, so correctness at scale rests on the engine-equivalence
// suites at sweep sizes plus the sparse-vs-dense ingestion tests.
// --smoke-scale gates the smallest scale point (2,500 racks x 10,000
// coflows) against the checked-in baseline; wired up as `perf_smoke_scale`.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/simulator.hpp"
#include "net/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kAllocators[] = {"fair", "madd", "varys", "aalo",
                                       "varys-edf"};

std::vector<ccf::net::CoflowSpec> make_workload(std::size_t racks,
                                                std::size_t coflows,
                                                std::uint64_t seed) {
  ccf::net::SyntheticTraceOptions opts;
  opts.racks = racks;
  opts.coflows = coflows;
  opts.duration_seconds = 60.0;
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 81), 81);
  const auto trace = ccf::net::generate_synthetic_trace(opts, rng);
  auto specs = ccf::net::to_coflow_specs(trace);
  // Give every third coflow a deadline at 1.5x its standalone bottleneck
  // bound so varys-edf exercises both admission and rejection. The field is
  // inert under the other allocators.
  for (std::size_t c = 0; c < specs.size(); c += 3) {
    double gamma = 0.0;
    for (std::size_t node = 0; node < racks; ++node) {
      gamma = std::max(gamma, std::max(specs[c].flows.egress(node),
                                       specs[c].flows.ingress(node)) /
                                  ccf::net::Fabric::kDefaultPortRate);
    }
    if (gamma > 0.0) specs[c].deadline = 1.5 * gamma;
  }
  return specs;
}

struct RunResult {
  ccf::net::SimReport report;
  double ms = 0.0;
};

// --- extreme-scale sweep (sparse ingestion, incremental engine only) -------

/// Fair sharing is excluded: its per-epoch water-filling is quadratic in
/// active flows and infeasible at these sizes. varys-edf is excluded because
/// the synthetic scale trace carries no deadlines.
constexpr const char* kScaleAllocators[] = {"madd", "varys", "aalo"};

/// Aalo's D-CLAS queue transitions re-epoch every active coflow crossing a
/// threshold, multiplying scheduling epochs ~8x over madd/varys (162k vs 20k
/// at the 10k-coflow point, ~9 min wall). Its rows stay meaningful at the
/// smallest scale point but would take hours beyond it, so larger points
/// skip aalo — noted in the output rather than silently dropped.
constexpr std::size_t kAaloScaleCoflowCap = 10'000;

std::vector<ccf::net::SparseCoflowSpec> make_scale_workload(
    std::size_t racks, std::size_t coflows, std::uint64_t seed) {
  ccf::net::SyntheticTraceOptions opts;
  opts.racks = racks;
  opts.coflows = coflows;
  // Arrival window proportional to coflow count keeps the in-flight
  // concurrency roughly constant across the sweep (~167 arrivals/sec, the
  // default sweep's load at its densest point), so scale rows measure
  // throughput at scale rather than an ever-deepening backlog.
  opts.duration_seconds = 6e-3 * static_cast<double>(coflows);
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 83), 83);
  return ccf::net::to_sparse_coflow_specs(
      ccf::net::generate_synthetic_trace(opts, rng));
}

struct ScalePoint {
  std::size_t racks = 0, coflows = 0;
};

/// Parses "2500x10000,5000x30000" (racks x coflows per point).
std::vector<ScalePoint> parse_scale_points(const std::string& s) {
  std::vector<ScalePoint> points;
  std::istringstream in(s);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    const auto x = tok.find('x');
    if (x == std::string::npos) {
      throw std::invalid_argument("bad --scale-points token: " + tok);
    }
    ScalePoint p;
    p.racks = static_cast<std::size_t>(std::stoull(tok.substr(0, x)));
    p.coflows = static_cast<std::size_t>(std::stoull(tok.substr(x + 1)));
    points.push_back(p);
  }
  return points;
}

RunResult run_scale_once(const std::vector<ccf::net::SparseCoflowSpec>& specs,
                         std::size_t racks, const std::string& allocator) {
  ccf::net::SimConfig config;
  config.engine = ccf::net::SimEngine::kIncremental;
  ccf::net::Simulator sim(ccf::net::Fabric(racks),
                          ccf::net::make_allocator(allocator), config);
  for (const auto& spec : specs) sim.add_coflow(spec);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.report = sim.run();
  r.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  return r;
}

RunResult run_scale_best(const std::vector<ccf::net::SparseCoflowSpec>& specs,
                         std::size_t racks, const std::string& allocator,
                         int reps) {
  RunResult best;
  best.ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto r = run_scale_once(specs, racks, allocator);
    best.ms = std::min(best.ms, r.ms);
    best.report = std::move(r.report);
  }
  return best;
}

/// Every coflow must have been driven to completion (the engine throws on
/// starvation, but a silent no-op run would also be a bug worth catching).
bool scale_report_sane(const ccf::net::SimReport& report, std::size_t coflows,
                       std::string& why) {
  std::ostringstream os;
  if (report.coflows.size() != coflows) {
    os << "coflow count " << report.coflows.size() << " vs " << coflows;
  } else if (report.events == 0) {
    os << "no scheduling epochs ran";
  } else if (!std::isfinite(report.makespan) || report.makespan <= 0.0) {
    os << "bad makespan " << report.makespan;
  }
  why = os.str();
  return why.empty();
}

/// Deterministic fault mix for the faulted timing column: a handful of link
/// degradations, port cuts and stragglers inside the trace window, every one
/// restored so the workload still completes.
ccf::net::FaultSchedule make_fault_schedule(std::size_t racks,
                                            std::uint64_t seed) {
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 82), 82);
  ccf::net::RandomFaultOptions opts;
  opts.horizon = 30.0;
  opts.outage = 5.0;
  return ccf::net::FaultSchedule::random(ccf::net::Fabric(racks), opts, rng);
}

RunResult run_once(const std::vector<ccf::net::CoflowSpec>& specs,
                   std::size_t racks, const std::string& allocator,
                   ccf::net::SimEngine engine,
                   const ccf::net::FaultSchedule* faults = nullptr) {
  ccf::net::SimConfig config;
  config.engine = engine;
  ccf::net::Simulator sim(ccf::net::Fabric(racks),
                          ccf::net::make_allocator(allocator), config);
  if (faults != nullptr) sim.set_faults(*faults);
  for (const auto& spec : specs) sim.add_coflow(spec);
  const auto t0 = std::chrono::steady_clock::now();
  RunResult r;
  r.report = sim.run();
  r.ms = std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
             .count();
  return r;
}

/// Min-of-`reps` wall clock (keeps the last report). Minimum, not mean:
/// interference only ever adds time, so the minimum is the cleanest estimate.
RunResult run_best(const std::vector<ccf::net::CoflowSpec>& specs,
                   std::size_t racks, const std::string& allocator,
                   ccf::net::SimEngine engine, int reps,
                   const ccf::net::FaultSchedule* faults = nullptr) {
  RunResult best;
  best.ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    auto r = run_once(specs, racks, allocator, engine, faults);
    best.ms = std::min(best.ms, r.ms);
    best.report = std::move(r.report);
  }
  return best;
}

bool close_rel(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

/// Reference-vs-incremental report agreement; prints the first mismatch.
bool reports_agree(const ccf::net::SimReport& ref,
                   const ccf::net::SimReport& inc, std::string& why) {
  std::ostringstream os;
  if (ref.events != inc.events) {
    os << "events " << ref.events << " vs " << inc.events;
  } else if (!close_rel(ref.makespan, inc.makespan)) {
    os << "makespan " << ref.makespan << " vs " << inc.makespan;
  } else if (!close_rel(ref.total_bytes, inc.total_bytes)) {
    os << "total_bytes " << ref.total_bytes << " vs " << inc.total_bytes;
  } else {
    for (std::size_t c = 0; c < ref.coflows.size(); ++c) {
      if (ref.coflows[c].rejected != inc.coflows[c].rejected) {
        os << "coflow " << c << " rejected flag mismatch";
        break;
      }
      if (!close_rel(ref.coflows[c].completion, inc.coflows[c].completion)) {
        os << "coflow " << c << " completion " << ref.coflows[c].completion
           << " vs " << inc.coflows[c].completion;
        break;
      }
    }
  }
  why = os.str();
  return why.empty();
}

// --- naive line-oriented JSON helpers (one result object per line) ---------

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  const auto colon = line.find(':', p);
  if (colon == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(colon + 1));
  } catch (...) {
    return std::nan("");
  }
}

std::string json_string(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return {};
  const auto open = line.find('"', line.find(':', p) + 1);
  if (open == std::string::npos) return {};
  const auto close = line.find('"', open + 1);
  if (close == std::string::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

struct BaselineEntry {
  std::string allocator;
  std::size_t coflows = 0, racks = 0;
  double incremental_ms = 0.0;
  double faulted_ms = std::nan("");  ///< absent in pre-fault baselines
};

std::vector<BaselineEntry> load_baseline(const std::string& path) {
  std::vector<BaselineEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"allocator\"") == std::string::npos) continue;
    BaselineEntry e;
    e.allocator = json_string(line, "allocator");
    e.coflows = static_cast<std::size_t>(json_number(line, "coflows"));
    e.racks = static_cast<std::size_t>(json_number(line, "racks"));
    e.incremental_ms = json_number(line, "incremental_ms");
    e.faulted_ms = json_number(line, "faulted_ms");
    if (!e.allocator.empty() && std::isfinite(e.incremental_ms)) {
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

int run_smoke(const std::string& baseline_path, std::uint64_t seed) {
  const std::size_t kRacks = 50, kCoflows = 120;
  const auto baseline = load_baseline(baseline_path);
  if (baseline.empty()) {
    std::cerr << "perf-smoke: no baseline entries in " << baseline_path
              << "\n";
    return 1;
  }
  const auto specs = make_workload(kRacks, kCoflows, seed);
  const auto faults = make_fault_schedule(kRacks, seed);
  bool ok = true;
  ccf::util::Table t({"allocator", "now ms", "baseline ms", "ratio",
                      "faulted ms", "status"});
  for (const char* name : kAllocators) {
    // Equivalence sanity on every smoke run, on top of the timing check.
    const auto ref = run_once(specs, kRacks, name, ccf::net::SimEngine::kReference);
    const auto inc =
        run_best(specs, kRacks, name, ccf::net::SimEngine::kIncremental, 3);
    const double ms = inc.ms;
    std::string why;
    if (!reports_agree(ref.report, inc.report, why)) {
      std::cerr << "perf-smoke: " << name
                << " engine disagreement vs reference: " << why << "\n";
      ok = false;
    }
    // Faulted variant: same workload under the random fault mix. Engines
    // must still agree, and the timing is held to the same 2x rule against
    // the baseline's faulted_ms (absent in pre-fault baselines: skipped).
    const auto fref = run_once(specs, kRacks, name,
                               ccf::net::SimEngine::kReference, &faults);
    const auto finc = run_best(specs, kRacks, name,
                               ccf::net::SimEngine::kIncremental, 3, &faults);
    if (!reports_agree(fref.report, finc.report, why)) {
      std::cerr << "perf-smoke: " << name
                << " faulted engine disagreement vs reference: " << why << "\n";
      ok = false;
    }
    if (finc.report.fault_events == 0) {
      std::cerr << "perf-smoke: " << name << " faulted run applied no faults\n";
      ok = false;
    }
    double base = std::nan(""), fbase = std::nan("");
    for (const auto& e : baseline) {
      if (e.allocator == name && e.coflows == kCoflows && e.racks == kRacks) {
        base = e.incremental_ms;
        fbase = e.faulted_ms;
      }
    }
    std::string status = "ok";
    if (!std::isfinite(base)) {
      status = "no baseline";  // not fatal: new allocator since the baseline
    } else if (ms > 2.0 * base && ms - base > 25.0) {
      // >2x the checked-in time AND past a 25 ms noise floor.
      status = "REGRESSED";
      ok = false;
    } else if (std::isfinite(fbase) && finc.ms > 2.0 * fbase &&
               finc.ms - fbase > 25.0) {
      status = "REGRESSED (faulted)";
      ok = false;
    }
    std::ostringstream ratio;
    ratio.precision(2);
    ratio << std::fixed << (std::isfinite(base) ? ms / base : 0.0) << "x";
    std::ostringstream mss, bss, fss;
    mss.precision(2);
    mss << std::fixed << ms;
    bss.precision(2);
    bss << std::fixed << (std::isfinite(base) ? base : 0.0);
    fss.precision(2);
    fss << std::fixed << finc.ms;
    t.add_row({name, mss.str(), bss.str(), ratio.str(), fss.str(), status});
  }
  t.print(std::cout);
  if (!ok) {
    std::cerr << "perf-smoke FAILED (engine mismatch or >2x regression vs "
              << baseline_path << ")\n";
    return 1;
  }
  std::cout << "perf-smoke passed\n";
  return 0;
}

/// Gates the smallest scale point: the run must complete sanely and the
/// incremental engine must stay within 2x of the checked-in scale row past a
/// noise floor sized for second-scale timings. madd and varys only — aalo
/// takes ~9 min at this point (see kAaloScaleCoflowCap), too slow for a
/// smoke gate; its scale row is still regenerated and checked by --scale.
int run_smoke_scale(const std::string& baseline_path, std::uint64_t seed) {
  const std::size_t kRacks = 2'500, kCoflows = 10'000;
  const auto baseline = load_baseline(baseline_path);
  const auto specs = make_scale_workload(kRacks, kCoflows, seed);
  bool ok = true;
  ccf::util::Table t(
      {"allocator", "events", "now ms", "baseline ms", "ratio", "status"});
  for (const char* name : {"madd", "varys"}) {
    const auto r = run_scale_once(specs, kRacks, name);
    std::string why;
    if (!scale_report_sane(r.report, kCoflows, why)) {
      std::cerr << "perf-smoke-scale: " << name << " run insane: " << why
                << "\n";
      ok = false;
    }
    double base = std::nan("");
    for (const auto& e : baseline) {
      if (e.allocator == name && e.coflows == kCoflows && e.racks == kRacks) {
        base = e.incremental_ms;
      }
    }
    std::string status = "ok";
    if (!std::isfinite(base)) {
      status = "no baseline";  // not fatal: scale row absent from baseline
    } else if (r.ms > 2.0 * base && r.ms - base > 500.0) {
      status = "REGRESSED";
      ok = false;
    }
    std::ostringstream ev, mss, bss, ratio;
    ev << r.report.events;
    mss.precision(1);
    mss << std::fixed << r.ms;
    bss.precision(1);
    bss << std::fixed << (std::isfinite(base) ? base : 0.0);
    ratio.precision(2);
    ratio << std::fixed << (std::isfinite(base) ? r.ms / base : 0.0) << "x";
    t.add_row({name, ev.str(), mss.str(), bss.str(), ratio.str(), status});
  }
  t.print(std::cout);
  if (!ok) {
    std::cerr << "perf-smoke-scale FAILED (insane run or >2x regression vs "
              << baseline_path << ")\n";
    return 1;
  }
  std::cout << "perf-smoke-scale passed (" << kCoflows << " coflows on "
            << kRacks << " racks)\n";
  return 0;
}

int run_main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_sim_scale",
                            "Engine scaling sweep + perf-regression harness");
  // The default sweep must include the 120x50 point that --smoke compares at.
  args.add_flag("coflows", "60:240:60", "coflow-count sweep lo:hi:step");
  args.add_flag("racks", "25:50:25", "rack-count sweep lo:hi:step");
  args.add_flag("seed", "11", "workload rng seed");
  args.add_flag("reps", "3", "timing repetitions per cell (min taken)");
  args.add_flag("out", "BENCH_sim.json", "output JSON path (full mode)");
  args.add_flag("smoke", "false",
                "regression check against --baseline and exit");
  args.add_flag("smoke-scale", "false",
                "scale-point regression check against --baseline and exit");
  args.add_flag("baseline", "BENCH_sim.json",
                "baseline JSON for --smoke comparisons");
  args.add_flag("scale", "false",
                "also run the extreme-scale points (sparse ingestion, "
                "incremental engine only) and append their rows");
  args.add_flag("scale-points", "2500x10000,5000x30000,10000x100000",
                "comma-separated racks x coflows scale points");
  args.add_flag("scale-reps", "1",
                "timing repetitions per scale point (min taken)");
  args.parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps")));

  if (args.provided("smoke")) return run_smoke(args.get("baseline"), seed);
  if (args.provided("smoke-scale")) {
    return run_smoke_scale(args.get("baseline"), seed);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"bench_sim_scale\",\n  \"seed\": " << seed
       << ",\n  \"results\": [\n";
  bool first = true, ok = true;
  ccf::util::Table t({"workload", "allocator", "events", "reference ms",
                      "incremental ms", "speedup", "faulted ms"});
  for (const std::int64_t coflows : args.get_int_sweep("coflows")) {
    for (const std::int64_t racks : args.get_int_sweep("racks")) {
      const auto specs = make_workload(static_cast<std::size_t>(racks),
                                       static_cast<std::size_t>(coflows), seed);
      const auto faults =
          make_fault_schedule(static_cast<std::size_t>(racks), seed);
      for (const char* name : kAllocators) {
        const auto ref = run_best(specs, static_cast<std::size_t>(racks), name,
                                  ccf::net::SimEngine::kReference, reps);
        const auto inc = run_best(specs, static_cast<std::size_t>(racks), name,
                                  ccf::net::SimEngine::kIncremental, reps);
        const auto finc =
            run_best(specs, static_cast<std::size_t>(racks), name,
                     ccf::net::SimEngine::kIncremental, reps, &faults);
        const auto fref =
            run_once(specs, static_cast<std::size_t>(racks), name,
                     ccf::net::SimEngine::kReference, &faults);
        std::string why;
        if (!reports_agree(ref.report, inc.report, why)) {
          std::cerr << "ENGINE MISMATCH (" << coflows << "x" << racks << ", "
                    << name << "): " << why << "\n";
          ok = false;
        }
        if (!reports_agree(fref.report, finc.report, why)) {
          std::cerr << "FAULTED ENGINE MISMATCH (" << coflows << "x" << racks
                    << ", " << name << "): " << why << "\n";
          ok = false;
        }
        const double speedup = inc.ms > 0.0 ? ref.ms / inc.ms : 0.0;
        std::ostringstream wl, ev, rms, ims, sp, fms;
        wl << coflows << "x" << racks;
        ev << inc.report.events;
        rms.precision(2);
        rms << std::fixed << ref.ms;
        ims.precision(2);
        ims << std::fixed << inc.ms;
        sp.precision(1);
        sp << std::fixed << speedup << "x";
        fms.precision(2);
        fms << std::fixed << finc.ms;
        t.add_row({wl.str(), name, ev.str(), rms.str(), ims.str(), sp.str(),
                   fms.str()});
        if (!first) json << ",\n";
        first = false;
        json << "    {\"allocator\": \"" << name
             << "\", \"coflows\": " << coflows << ", \"racks\": " << racks
             << ", \"events\": " << inc.report.events
             << ", \"reference_ms\": " << ref.ms
             << ", \"incremental_ms\": " << inc.ms
             << ", \"faulted_ms\": " << finc.ms << "}";
      }
    }
  }
  t.print(std::cout);

  if (args.provided("scale")) {
    const int scale_reps =
        std::max(1, static_cast<int>(args.get_int("scale-reps")));
    ccf::util::Table st({"workload", "allocator", "flows", "events",
                         "incremental ms", "events/sec"});
    for (const ScalePoint& p : parse_scale_points(args.get("scale-points"))) {
      const auto specs = make_scale_workload(p.racks, p.coflows, seed);
      std::size_t flows = 0;
      for (const auto& s : specs) flows += s.flows.size();
      for (const char* name : kScaleAllocators) {
        if (std::string(name) == "aalo" && p.coflows > kAaloScaleCoflowCap) {
          std::cout << "scale: skipping aalo at " << p.coflows << "x"
                    << p.racks << " (D-CLAS epoch blow-up, see header)\n";
          continue;
        }
        const auto r = run_scale_best(specs, p.racks, name, scale_reps);
        std::string why;
        if (!scale_report_sane(r.report, p.coflows, why)) {
          std::cerr << "SCALE RUN INSANE (" << p.coflows << "x" << p.racks
                    << ", " << name << "): " << why << "\n";
          ok = false;
        }
        std::ostringstream wl, fl, ev, ims, eps;
        wl << p.coflows << "x" << p.racks;
        fl << flows;
        ev << r.report.events;
        ims.precision(1);
        ims << std::fixed << r.ms;
        eps.precision(0);
        eps << std::fixed
            << (r.ms > 0.0 ? 1e3 * static_cast<double>(r.report.events) / r.ms
                           : 0.0);
        st.add_row({wl.str(), name, fl.str(), ev.str(), ims.str(), eps.str()});
        if (!first) json << ",\n";
        first = false;
        json << "    {\"allocator\": \"" << name
             << "\", \"coflows\": " << p.coflows << ", \"racks\": " << p.racks
             << ", \"flows\": " << flows
             << ", \"events\": " << r.report.events
             << ", \"incremental_ms\": " << r.ms << "}";
      }
    }
    std::cout << "\n";
    st.print(std::cout);
  }

  json << "\n  ]\n}\n";
  if (!ok) return 1;

  std::ofstream out(args.get("out"));
  out << json.str();
  std::cout << "\nwrote " << args.get("out") << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_sim_scale: " << e.what() << "\n";
    return 1;
  }
}
