// bench_topology — the routing x bandwidth co-optimization sweep over the
// general topology layer (net/topology.hpp + net::route_joint).
//
// Workload: heavy-tailed MapReduce-style shuffles (zipf-distributed reducer
// shares blown up from group-level fat pairs), the regime where static ECMP
// hashing collides elephant flows onto the same spine links and routing has
// real headroom. Each point simulates one shuffle coflow per seed under the
// MADD allocator on the routed topology and reports the mean CCT per
// routing policy (ecmp | greedy | joint).
//
// Full mode sweeps leaf-spine oversubscription (32 racks x 8 hosts, 4
// spines), a k=8 fat-tree with an oversubscribed core, and a seeded Waxman
// irregular topology, then prints BENCH_sim.json rows for the checked-in
// baseline.
//
// --smoke gates the oversubscribed (4:1) leaf-spine point against
// --baseline BENCH_sim.json: joint must improve the mean CCT over static
// ECMP by >= 10%, the simulated CCTs must reproduce the checked-in values
// (determinism guard), and the wall time must stay within 2x of the
// baseline past a 25 ms noise floor. Wired up as `perf_smoke_topology`.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "net/demand.hpp"
#include "net/multipath.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "util/zipf.hpp"

namespace {

constexpr const char* kRoutings[] = {"ecmp", "greedy", "joint"};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

/// Heavy-tailed shuffle on `groups` blocks of `width` hosts: every group
/// pair draws a fat aggregate volume, split across random host pairs with
/// zipf shares — a few elephant flows dominate every pair, like a skewed
/// reducer distribution.
ccf::net::Demand heavy_shuffle(std::size_t groups, std::size_t width,
                               double host_rate, std::uint64_t seed) {
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 95), 95);
  const std::size_t nodes = groups * width;
  ccf::net::Demand demand(nodes);
  const auto shares = ccf::util::zipf_weights(width, 1.5);
  for (std::size_t i = 0; i < groups; ++i) {
    for (std::size_t j = 0; j < groups; ++j) {
      if (i == j || rng.uniform01() >= 0.3) continue;
      // Aggregate group-pair volume: 20-120 s of one host port.
      const double volume = host_rate * rng.uniform(20.0, 120.0);
      for (std::size_t s = 0; s < width; ++s) {
        const auto src =
            i * width + rng.bounded(static_cast<std::uint32_t>(width));
        const auto dst =
            j * width + rng.bounded(static_cast<std::uint32_t>(width));
        // Repeated pairs merge by summing in insertion order — the same
        // accumulation FlowMatrix::add used to perform here.
        if (src != dst) demand.add(src, dst, volume * shares[s]);
      }
    }
  }
  if (demand.traffic() <= 0.0) demand.add(0, 1, host_rate);
  return demand;
}

struct RoutingPoint {
  double mean_cct_s = 0.0;
  double wall_ms = 0.0;  ///< route choice + simulation, summed over seeds
};

/// Mean CCT of the shuffle under one routing policy across the seed set.
RoutingPoint run_point(const std::shared_ptr<const ccf::net::Topology>& topo,
                       const std::string& routing, std::size_t groups) {
  const auto policy = ccf::net::make_routing_policy(routing);
  const std::size_t width = topo->nodes() / groups;
  RoutingPoint point;
  const auto start = std::chrono::steady_clock::now();
  for (const auto seed : kSeeds) {
    const ccf::net::Demand demand = heavy_shuffle(groups, width, 10.0, seed);
    ccf::net::Simulator sim(std::make_shared<const ccf::net::RoutedTopology>(
                                topo, policy->choose(*topo, demand)),
                            ccf::net::make_allocator("madd"));
    sim.add_coflow(
        ccf::net::SparseCoflowSpec("shuffle", 0.0, demand.to_flows()));
    point.mean_cct_s += sim.run().coflows[0].cct();
  }
  point.mean_cct_s /= static_cast<double>(std::size(kSeeds));
  point.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return point;
}

constexpr const char* kGatedSpec =
    "leafspine:racks=32,hosts=8,spines=4,oversub=4";

std::shared_ptr<const ccf::net::Topology> build(const std::string& spec_text) {
  ccf::net::TopologySpec spec = ccf::net::TopologySpec::parse(spec_text);
  spec.host_rate = 10.0;  // simulated seconds are rate-relative anyway
  return ccf::net::make_topology(spec);
}

/// Shuffle group count per topology: racks for leaf-spine, 8-host blocks
/// otherwise (the generator only needs *some* block structure).
std::size_t groups_of(const ccf::net::TopologySpec& spec) {
  if (spec.kind == ccf::net::TopologyKind::kLeafSpine) return spec.racks;
  return spec.node_count() / 8;
}

// --- baseline (BENCH_sim.json) lookup --------------------------------

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  const auto colon = line.find(':', p);
  if (colon == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(colon + 1));
  } catch (...) {
    return std::nan("");
  }
}

struct BaselineRow {
  double mean_cct_s = std::nan("");
  double wall_ms = std::nan("");
};

BaselineRow load_baseline_row(const std::string& path,
                              const std::string& topology,
                              const std::string& routing) {
  BaselineRow row;
  std::ifstream in(path);
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.find("\"bench\": \"topology_routing\"") == std::string::npos ||
        line.find("\"" + topology + "\"") == std::string::npos ||
        line.find("\"" + routing + "\"") == std::string::npos) {
      continue;
    }
    row.mean_cct_s = json_number(line, "mean_cct_s");
    row.wall_ms = json_number(line, "wall_ms");
  }
  return row;
}

int run_smoke(const std::string& baseline_path) {
  const auto topo = build(kGatedSpec);
  const std::size_t groups = 32;
  const RoutingPoint ecmp = run_point(topo, "ecmp", groups);
  const RoutingPoint joint = run_point(topo, "joint", groups);
  const double improvement = 1.0 - joint.mean_cct_s / ecmp.mean_cct_s;

  bool ok = true;
  std::cout << "perf-smoke-topology: " << kGatedSpec << "\n"
            << "  ecmp mean CCT  " << ecmp.mean_cct_s << " s\n"
            << "  joint mean CCT " << joint.mean_cct_s << " s  ("
            << ccf::util::format_fixed(improvement * 100.0, 1)
            << "% better)\n";
  if (!(improvement >= 0.10)) {
    std::cerr << "perf-smoke-topology: joint improvement "
              << improvement * 100.0 << "% is below the 10% gate\n";
    ok = false;
  }
  for (const auto& [routing, point] :
       {std::pair<std::string, const RoutingPoint&>{"ecmp", ecmp},
        {"joint", joint}}) {
    const BaselineRow base =
        load_baseline_row(baseline_path, kGatedSpec, routing);
    if (!std::isfinite(base.mean_cct_s)) {
      std::cout << "  " << routing << ": no baseline row (not fatal)\n";
      continue;
    }
    // Simulated time is deterministic: any drift is a real behavior change.
    if (std::abs(point.mean_cct_s - base.mean_cct_s) >
        1e-6 * (1.0 + base.mean_cct_s)) {
      std::cerr << "perf-smoke-topology: " << routing << " mean CCT "
                << point.mean_cct_s << " s drifted from checked-in "
                << base.mean_cct_s << " s\n";
      ok = false;
    }
    if (std::isfinite(base.wall_ms) && point.wall_ms > 2.0 * base.wall_ms &&
        point.wall_ms - base.wall_ms > 25.0) {
      std::cerr << "perf-smoke-topology: " << routing << " wall "
                << point.wall_ms << " ms regressed >2x vs checked-in "
                << base.wall_ms << " ms\n";
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "perf-smoke-topology FAILED vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "perf-smoke-topology passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args(
      "bench_topology",
      "routing x bandwidth co-optimization across topology families");
  args.add_flag("smoke", "false",
                "gate the 4:1 leaf-spine point against --baseline and exit");
  args.add_flag("baseline", "BENCH_sim.json",
                "checked-in baseline for --smoke");
  args.parse(argc, argv);

  if (args.get_bool("smoke")) return run_smoke(args.get("baseline"));

  const std::vector<std::string> specs = {
      "leafspine:racks=32,hosts=8,spines=4,oversub=1",
      "leafspine:racks=32,hosts=8,spines=4,oversub=2",
      kGatedSpec,
      "leafspine:racks=32,hosts=8,spines=4,oversub=8",
      "fattree:k=8,core-scale=4",
      "waxman:nodes=64,routers=12,seed=5,trunk-scale=0.5,paths=4",
  };

  ccf::util::Table t(
      {"topology", "routing", "mean CCT", "vs ecmp", "wall ms"});
  std::ostringstream json;
  // Enough digits that the smoke mode's determinism check (1e-6 relative)
  // can reproduce the checked-in CCTs from the printed rows.
  json << std::setprecision(12);
  for (const auto& spec_text : specs) {
    const auto spec = ccf::net::TopologySpec::parse(spec_text);
    const auto topo = build(spec_text);
    const std::size_t groups = groups_of(spec);
    double ecmp_cct = 0.0;
    for (const char* routing : kRoutings) {
      const RoutingPoint point = run_point(topo, routing, groups);
      if (std::string(routing) == "ecmp") ecmp_cct = point.mean_cct_s;
      t.add_row({spec_text, routing,
                 ccf::util::format_seconds(point.mean_cct_s),
                 ccf::util::format_fixed(ecmp_cct / point.mean_cct_s, 2) + "x",
                 ccf::util::format_fixed(point.wall_ms, 1)});
      json << "    {\"bench\": \"topology_routing\", \"topology\": \""
           << spec_text << "\", \"routing\": \"" << routing
           << "\", \"seeds\": " << std::size(kSeeds)
           << ", \"mean_cct_s\": " << point.mean_cct_s
           << ", \"wall_ms\": " << ccf::util::format_fixed(point.wall_ms, 1)
           << "},\n";
    }
  }
  t.print(std::cout);
  std::cout << "\nBENCH_sim.json rows:\n" << json.str();
  return 0;
}
