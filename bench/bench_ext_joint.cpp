// Extension bench: joint co-optimization of concurrent operators. The paper
// places one operator at a time; when several shuffles share the fabric,
// stacking their partitions into one Algorithm-1 instance balances the
// *combined* port loads. This bench measures the union makespan of k
// concurrent join shuffles placed independently vs jointly.
#include <iostream>

#include "core/ccf.hpp"
#include "core/concurrent.hpp"
#include "core/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_joint",
                            "Independent vs joint placement of concurrent ops");
  args.add_flag("nodes", "100", "number of nodes");
  args.add_flag("operators", "1:6:1", "concurrent-operator sweep");
  args.add_flag("ratio", "0.5",
                "partitions per operator as a fraction of nodes — joint "
                "placement matters when operators are coarse-grained (<1)");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  args.add_flag("allocator", "madd",
                ccf::core::registry::allocator_name_list());
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  const std::string allocator = args.get("allocator");
  std::cout << "Joint co-optimization: k concurrent join shuffles on "
            << nodes << " nodes (CCF placement, " << allocator
            << " network)\n\n";

  auto sweep_with = [&](bool identical_ops, std::size_t partitions) {
    ccf::util::Table t({"operators", "union Γ indep.", "union Γ joint",
                        "joint gain"});
    for (const auto count : args.get_int_sweep("operators")) {
      std::vector<ccf::core::OperatorSpec> ops;
      for (std::int64_t c = 0; c < count; ++c) {
        ccf::core::OperatorSpec op;
        op.name = "op" + std::to_string(c);
        op.workload = ccf::data::WorkloadSpec::paper_default(nodes);
        op.workload.partitions = partitions;
        const double scale =
            identical_ops ? 0.02 : 0.02 / static_cast<double>(c + 1);
        op.workload.customer_bytes *= scale;
        op.workload.orders_bytes *= scale;
        op.workload.zipf_theta = args.get_double("zipf");
        op.workload.skew = args.get_double("skew");
        op.workload.seed =
            identical_ops ? 600 : 600 + static_cast<std::uint64_t>(c);
        ops.push_back(std::move(op));
      }
      ccf::core::JobOptions options;
      options.allocator = allocator;
      const auto r = ccf::core::run_concurrent_operators(ops, options);
      t.add_row({std::to_string(count),
                 ccf::util::format_seconds(r.union_gamma_independent),
                 ccf::util::format_seconds(r.union_gamma_joint),
                 ccf::util::format_fixed(r.union_gamma_speedup(), 2) + "x"});
    }
    t.print(std::cout);
  };

  std::cout << "(a) paper-style operators (distinct data, p = 15n):\n";
  sweep_with(false, 15 * nodes);
  std::cout << "\n(b) adversarial: IDENTICAL coarse operators (p = 2):\n";
  sweep_with(true, 2);

  std::cout
      << "\nFinding (a): independent per-operator CCF plans compose "
         "near-optimally — the paper's\none-operator-at-a-time design "
         "loses <2% against joint stacking on realistic workloads.\n"
         "Finding (b): joint placement matters exactly when operators are "
         "coarse-grained AND\nsame-shaped, so their independent plans pile "
         "onto the same ports.\n";
  return 0;
}
