// Extension bench: CCT degradation under fabric faults (DESIGN.md §6).
//
// Runs the paper-style join workload through four system configurations
// (placement + network allocator) and, for each, compares three fabric
// conditions:
//   clean       — the pristine non-blocking switch every figure assumes;
//   faulted     — a mid-shuffle hard ingress failure plus a straggler,
//                 timed relative to each config's own clean CCT so every
//                 system is hit at the same phase of its shuffle; the dead
//                 port stays down for 3x the clean CCT (a real failure, not
//                 a flap), so riding it out costs at least the outage;
//   re-placed   — the same faults with the simulator's failure-aware
//                 re-placement switched on (unfinished remainders move off
//                 the dead port onto surviving nodes).
// Re-placement is a win exactly when the outage is long against the
// shuffle; for sub-CCT flaps, waiting for the restore beats permanently
// rebalancing the remainders — measured here, not assumed.
// The table this prints is the source of the EXPERIMENTS.md fault table.
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct SystemConfig {
  const char* label;
  const char* scheduler;
  const char* allocator;  ///< registry name
  bool skew_handling;
};

constexpr SystemConfig kSystems[] = {
    {"hash + fair", "hash", "fair", false},
    {"hash + aalo", "hash", "aalo", false},
    {"ccf-ls + madd", "ccf-ls", "madd", true},
    {"ccf-portfolio + madd", "ccf-portfolio", "madd", true},
};

}  // namespace

int main(int argc, char** argv) {
  try {
    ccf::util::ArgParser args("bench_ext_faults",
                              "CCT degradation and recovery under faults");
    args.add_flag("nodes", "50", "number of nodes");
    args.add_flag("customer-bytes", "900M", "CUSTOMER relation size");
    args.add_flag("orders-bytes", "9G", "ORDERS relation size");
    args.add_flag("seed", "42", "workload rng seed");
    args.parse(argc, argv);

    const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.customer_bytes = ccf::util::parse_scaled(args.get("customer-bytes"));
    spec.orders_bytes = ccf::util::parse_scaled(args.get("orders-bytes"));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const ccf::data::Workload workload = ccf::data::generate_workload(spec);

    std::cout << "Fault bench: " << nodes
              << "-node join shuffle; node 0's ingress port fails at 25% of "
                 "each system's clean\nCCT and stays down for 3x the clean "
                 "CCT, plus a 50% straggler on node 1 over\n[10%, 70%] of "
                 "the clean CCT.\n\n";

    ccf::util::Table t({"system", "clean CCT", "faulted CCT", "slowdown",
                        "re-placed CCT", "recovered"});
    for (const SystemConfig& sys : kSystems) {
      ccf::core::PipelineOptions base;
      base.scheduler = sys.scheduler;
      base.allocator = sys.allocator;
      base.skew_handling = sys.skew_handling;
      const double clean =
          ccf::core::run_pipeline(workload, base).cct_seconds;

      // Faults at fixed fractions of the clean CCT: every system loses its
      // destination port for the same *phase* of its shuffle, which makes
      // the slowdown column comparable across systems.
      ccf::core::PipelineOptions faulted = base;
      faulted.faults.fail_port(0.25 * clean, 0, ccf::net::PortSide::kIngress)
          .restore_port(3.0 * clean, 0)
          .slow_node(0.10 * clean, 1, 0.5)
          .restore_node(0.70 * clean, 1);
      const double hit =
          ccf::core::run_pipeline(workload, faulted).cct_seconds;

      ccf::core::PipelineOptions repaired = faulted;
      repaired.fault_options.replace_on_failure = true;
      repaired.fault_options.replace_threshold = 0.0;  // hard failures only
      const ccf::core::RunReport rr = ccf::core::run_pipeline(workload, repaired);

      t.add_row({sys.label, ccf::util::format_seconds(clean),
                 ccf::util::format_seconds(hit),
                 ccf::util::format_fixed(hit / clean, 2) + "x",
                 ccf::util::format_seconds(rr.cct_seconds),
                 ccf::util::format_fixed(
                     (hit - rr.cct_seconds) / (hit - clean + 1e-12) * 100.0,
                     0) +
                     "% (" + std::to_string(rr.sim.replacements) + " moved)"});
    }
    t.print(std::cout);
    std::cout << "\nWith a long outage every system's ride-out cost is the "
                 "wait for the restore;\nre-placement moves the stranded "
                 "remainders to surviving ingress ports and\nfinishes without "
                 "waiting. (For sub-CCT flaps the trade flips — waiting "
                 "beats\npermanently rebalancing — which is why "
                 "replace_on_failure is a policy, not a\ndefault.)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_ext_faults: " << e.what() << "\n";
    return 1;
  }
}
