// Ablation (§III-A/B): heuristic quality versus the exact MILP optimum.
// On small random instances the branch-and-bound solver proves optimality;
// the table reports the optimality gap of Algorithm 1 (ccf), Algorithm 1 +
// local search (ccf-ls) and the GRASP portfolio (ccf-portfolio), alongside
// Hash and Mini. Instances the solver cannot prove within the time limit are
// skipped from the gap statistics — the bench counts and reports them, and
// warns when fewer than half the instances were proven (the averages would
// then be biased toward the easy cases).
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ablation_exact",
                            "Heuristic-vs-exact optimality gap");
  args.add_flag("nodes", "5", "nodes per instance");
  args.add_flag("partitions", "15", "partitions per instance");
  args.add_flag("instances", "30", "number of random instances");
  args.add_flag("seed", "7", "master seed");
  args.parse(argc, argv);

  const auto n = static_cast<std::size_t>(args.get_int("nodes"));
  const auto p = static_cast<std::size_t>(args.get_int("partitions"));
  const auto count = static_cast<std::size_t>(args.get_int("instances"));

  std::cout << "Exact-vs-heuristic ablation: " << count << " random instances, "
            << n << " nodes x " << p << " partitions\n\n";

  ccf::util::Accumulator gap_ccf, gap_ls, gap_pf, gap_hash, gap_mini;
  std::size_t optimal_hits_ccf = 0, optimal_hits_ls = 0, optimal_hits_pf = 0;
  std::size_t proven = 0, skipped = 0;
  for (std::size_t inst = 0; inst < count; ++inst) {
    ccf::data::WorkloadSpec spec;
    spec.nodes = n;
    spec.partitions = p;
    spec.customer_bytes = 1e6;
    spec.orders_bytes = 1e7;
    spec.zipf_theta = 0.8;
    spec.skew = 0.0;
    spec.align_zipf_ranks = false;  // harder, less structured instances
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed")) + inst;
    const auto w = ccf::data::generate_workload(spec);
    ccf::opt::AssignmentProblem problem;
    problem.matrix = &w.matrix;

    ccf::opt::BnbOptions opts;
    opts.time_limit_s = 5.0;
    // Let the wall clock be the binding limit, not the default node budget.
    opts.max_nodes = 30'000'000;
    const auto exact = ccf::opt::solve_exact(problem, opts);
    if (!exact.optimal) {
      ++skipped;  // unproven: excluded from the gap statistics below
      continue;
    }
    ++proven;

    auto gap_of = [&](const char* name) {
      const auto dest = ccf::join::make_scheduler(name)->schedule(problem);
      return ccf::opt::makespan(problem, dest) / exact.T;
    };
    const double g_ccf = gap_of("ccf");
    const double g_ls = gap_of("ccf-ls");
    const double g_pf = gap_of("ccf-portfolio");
    gap_ccf.add(g_ccf);
    gap_ls.add(g_ls);
    gap_pf.add(g_pf);
    gap_hash.add(gap_of("hash"));
    gap_mini.add(gap_of("mini"));
    if (g_ccf < 1.0 + 1e-9) ++optimal_hits_ccf;
    if (g_ls < 1.0 + 1e-9) ++optimal_hits_ls;
    if (g_pf < 1.0 + 1e-9) ++optimal_hits_pf;
  }

  ccf::util::Table t({"scheduler", "mean T/T*", "worst T/T*", "optimal found"});
  auto row = [&](const char* name, const ccf::util::Accumulator& acc,
                 const std::string& hits) {
    t.add_row({name, ccf::util::format_fixed(acc.mean(), 3),
               ccf::util::format_fixed(acc.max(), 3), hits});
  };
  row("ccf", gap_ccf,
      std::to_string(optimal_hits_ccf) + "/" + std::to_string(proven));
  row("ccf-ls", gap_ls,
      std::to_string(optimal_hits_ls) + "/" + std::to_string(proven));
  row("ccf-portfolio", gap_pf,
      std::to_string(optimal_hits_pf) + "/" + std::to_string(proven));
  row("hash", gap_hash, "-");
  row("mini", gap_mini, "-");
  t.print(std::cout);

  std::cout << "\n" << proven << "/" << count
            << " instances solved to proven optimality within the time limit ("
            << skipped << " skipped).\n";
  if (proven * 2 < count) {
    std::cout << "WARNING: fewer than half the instances were proven — the "
                 "gap statistics above cover only the easy cases and are "
                 "biased optimistic.\nShrink --nodes/--partitions or raise "
                 "the time limit for a trustworthy table.\n";
  }
  std::cout << "Algorithm 1 trades a small gap for polynomial time — "
               "the trade the paper argues for in §III-B.\n";
  return 0;
}
