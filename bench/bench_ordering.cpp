// bench_ordering — the ordering-scheduler comparison sweep: weighted CCT vs
// the approximation certificate (sched/ordering.hpp, DESIGN.md §13).
//
// Each point is (topology x workload family), averaged over seeds: a batch
// of weighted coflows arrives at t=0, sched::ordering_lower_bound computes
// the certificate LB = max(dual, isolation, per-port WSPT) on the exact
// instance the simulator sees, and every policy drains the batch to a total
// weighted CCT. The reported ratio (mean wcct / mean LB) is what the
// ratio-verifying test (tests/sched/ordering_ratio_test.cpp) bounds: any
// schedule must sit at >= 1x, sincronia is guaranteed <= 4x its dual.
//
// Full mode sweeps a flat 32-port fabric and an oversubscribed (2:1) 8x4
// leaf-spine against shuffle / incast workloads and prints BENCH_sim.json
// rows per policy.
//
// --smoke gates the rack/shuffle point against --baseline BENCH_sim.json:
// sincronia's per-seed weighted CCT must stay within 4x of its per-seed
// dual (the guarantee as a perf gate), the mean weighted CCTs must
// reproduce the checked-in values (simulated time is deterministic), and
// the wall time must stay within 2x of the baseline past a 25 ms noise
// floor. Wired up as `perf_smoke_ordering`.
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "net/fabric.hpp"
#include "net/metrics.hpp"
#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "sched/ordering.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

constexpr const char* kPolicies[] = {"sincronia", "lp-order", "varys",
                                     "aalo",      "madd",     "fair"};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};
constexpr double kHostRate = 10.0;

struct Topo {
  std::string label;
  std::shared_ptr<const ccf::net::Network> network;
  std::size_t nodes;
};

std::vector<Topo> topologies() {
  std::vector<Topo> out;
  out.push_back(
      {"flat:32", std::make_shared<ccf::net::Fabric>(32, kHostRate), 32});
  out.push_back({"rack:8x4,oversub=2",
                 std::make_shared<ccf::net::RackFabric>(8, 4, kHostRate, 2.0),
                 32});
  return out;
}

/// One weighted batch: `count` coflows, all arriving at 0.
/// "shuffle": each coflow sprays 4-10 random flows of 2-40 port-seconds.
/// "incast": each coflow fans 3-8 senders into one hot receiver — the
/// port-contended regime where ordering matters most.
std::vector<ccf::net::CoflowSpec> make_batch(const std::string& family,
                                             std::size_t nodes,
                                             std::uint64_t seed) {
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 211), 211);
  std::vector<ccf::net::CoflowSpec> batch;
  const std::size_t count = 16;
  const auto pick_other = [&](std::size_t avoid) {
    std::size_t node = rng.bounded(static_cast<std::uint32_t>(nodes));
    if (node == avoid) node = (node + 1) % nodes;
    return node;
  };
  for (std::size_t c = 0; c < count; ++c) {
    ccf::net::FlowMatrix m(nodes);
    if (family == "incast") {
      const std::size_t dst = rng.bounded(static_cast<std::uint32_t>(nodes));
      const std::size_t senders = 3 + rng.bounded(6);
      for (std::size_t s = 0; s < senders; ++s) {
        m.add(pick_other(dst), dst, kHostRate * rng.uniform(1.0, 20.0));
      }
    } else {  // shuffle
      const std::size_t flows = 4 + rng.bounded(7);
      for (std::size_t f = 0; f < flows; ++f) {
        const std::size_t src = rng.bounded(static_cast<std::uint32_t>(nodes));
        m.add(src, pick_other(src), kHostRate * rng.uniform(2.0, 40.0));
      }
    }
    ccf::net::CoflowSpec spec("c" + std::to_string(c), 0.0, std::move(m));
    spec.weight = rng.uniform(0.25, 4.0);
    batch.push_back(std::move(spec));
  }
  return batch;
}

ccf::sched::OrderingProblem problem_of(
    const Topo& topo, const std::vector<ccf::net::CoflowSpec>& batch) {
  ccf::sched::OrderingProblem p;
  std::vector<double> caps(topo.network->link_count());
  for (std::size_t l = 0; l < caps.size(); ++l) {
    caps[l] = topo.network->link_capacity(
        static_cast<ccf::net::Network::LinkId>(l));
  }
  p.reset(caps);
  for (const auto& spec : batch) {
    p.add_coflow(spec.weight, spec.flows, *topo.network);
  }
  return p;
}

struct PolicyPoint {
  double mean_wcct_s = 0.0;
  double mean_lb_s = 0.0;    ///< mean best() certificate across seeds
  double mean_dual_s = 0.0;  ///< mean dual (the 4x reference) across seeds
  double worst_vs_dual = 0.0;
  double wall_ms = 0.0;  ///< ordering + simulation, summed over seeds
};

PolicyPoint run_point(const Topo& topo, const std::string& family,
                      const std::string& policy) {
  PolicyPoint point;
  const auto start = std::chrono::steady_clock::now();
  for (const auto seed : kSeeds) {
    const auto batch = make_batch(family, topo.nodes, seed);
    const ccf::sched::OrderingLowerBound lb =
        ccf::sched::ordering_lower_bound(problem_of(topo, batch));
    ccf::net::Simulator sim(topo.network,
                            ccf::core::registry::make_allocator(policy));
    for (const auto& spec : batch) sim.add_coflow(spec);
    const double wcct = ccf::net::total_weighted_cct(sim.run());
    point.mean_wcct_s += wcct;
    point.mean_lb_s += lb.best();
    point.mean_dual_s += lb.dual;
    point.worst_vs_dual = std::max(point.worst_vs_dual, wcct / lb.dual);
  }
  const double n = static_cast<double>(std::size(kSeeds));
  point.mean_wcct_s /= n;
  point.mean_lb_s /= n;
  point.mean_dual_s /= n;
  point.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return point;
}

// --- baseline (BENCH_sim.json) lookup --------------------------------

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  const auto colon = line.find(':', p);
  if (colon == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(colon + 1));
  } catch (...) {
    return std::nan("");
  }
}

struct BaselineRow {
  double mean_wcct_s = std::nan("");
  double wall_ms = std::nan("");
};

BaselineRow load_baseline_row(const std::string& path,
                              const std::string& topology,
                              const std::string& family,
                              const std::string& policy) {
  BaselineRow row;
  std::ifstream in(path);
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.find("\"bench\": \"ordering_ratio\"") == std::string::npos ||
        line.find("\"" + topology + "\"") == std::string::npos ||
        line.find("\"" + family + "\"") == std::string::npos ||
        line.find("\"" + policy + "\"") == std::string::npos) {
      continue;
    }
    row.mean_wcct_s = json_number(line, "mean_wcct_s");
    row.wall_ms = json_number(line, "wall_ms");
  }
  return row;
}

constexpr const char* kGatedTopo = "rack:8x4,oversub=2";
constexpr const char* kGatedFamily = "shuffle";

int run_smoke(const std::string& baseline_path) {
  Topo gated;
  for (Topo& topo : topologies()) {
    if (topo.label == kGatedTopo) gated = std::move(topo);
  }
  const PolicyPoint sincronia = run_point(gated, kGatedFamily, "sincronia");
  const PolicyPoint madd = run_point(gated, kGatedFamily, "madd");

  bool ok = true;
  std::cout << "perf-smoke-ordering: " << kGatedTopo << " / " << kGatedFamily
            << "\n  sincronia mean wcct " << sincronia.mean_wcct_s
            << " s  (ratio " << sincronia.mean_wcct_s / sincronia.mean_lb_s
            << "x LB, worst " << sincronia.worst_vs_dual
            << "x dual)\n  madd      mean wcct " << madd.mean_wcct_s
            << " s  (ratio " << madd.mean_wcct_s / madd.mean_lb_s << "x LB)\n";
  // The approximation guarantee as a gate: every seed within 4x its dual.
  if (!(sincronia.worst_vs_dual <= 4.0)) {
    std::cerr << "perf-smoke-ordering: sincronia worst ratio "
              << sincronia.worst_vs_dual << "x exceeds the 4x guarantee\n";
    ok = false;
  }
  // Sanity on the certificate: no policy beats the lower bound.
  for (const PolicyPoint& point : {sincronia, madd}) {
    if (!(point.mean_wcct_s >= point.mean_lb_s * (1.0 - 1e-6))) {
      std::cerr << "perf-smoke-ordering: mean wcct " << point.mean_wcct_s
                << " s fell below the lower bound " << point.mean_lb_s
                << " s\n";
      ok = false;
    }
  }
  for (const auto& [policy, point] :
       {std::pair<std::string, const PolicyPoint&>{"sincronia", sincronia},
        {"madd", madd}}) {
    const BaselineRow base =
        load_baseline_row(baseline_path, kGatedTopo, kGatedFamily, policy);
    if (!std::isfinite(base.mean_wcct_s)) {
      std::cout << "  " << policy << ": no baseline row (not fatal)\n";
      continue;
    }
    // Simulated time is deterministic: any drift is a real behavior change.
    if (std::abs(point.mean_wcct_s - base.mean_wcct_s) >
        1e-6 * (1.0 + base.mean_wcct_s)) {
      std::cerr << "perf-smoke-ordering: " << policy << " mean wcct "
                << point.mean_wcct_s << " s drifted from checked-in "
                << base.mean_wcct_s << " s\n";
      ok = false;
    }
    if (std::isfinite(base.wall_ms) && point.wall_ms > 2.0 * base.wall_ms &&
        point.wall_ms - base.wall_ms > 25.0) {
      std::cerr << "perf-smoke-ordering: " << policy << " wall "
                << point.wall_ms << " ms regressed >2x vs checked-in "
                << base.wall_ms << " ms\n";
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "perf-smoke-ordering FAILED vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "perf-smoke-ordering passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args(
      "bench_ordering",
      "ordering schedulers vs the approximation certificate");
  args.add_flag("smoke", "false",
                "gate the rack/shuffle point against --baseline and exit");
  args.add_flag("baseline", "BENCH_sim.json",
                "checked-in baseline for --smoke");
  args.parse(argc, argv);

  if (args.get_bool("smoke")) return run_smoke(args.get("baseline"));

  ccf::util::Table t({"topology", "workload", "policy", "mean wcct",
                      "vs LB", "worst vs dual", "wall ms"});
  std::ostringstream json;
  // Enough digits that the smoke mode's determinism check (1e-6 relative)
  // can reproduce the checked-in weighted CCTs from the printed rows.
  json << std::setprecision(12);
  for (const Topo& topo : topologies()) {
    for (const char* family : {"shuffle", "incast"}) {
      for (const char* policy : kPolicies) {
        const PolicyPoint point = run_point(topo, family, policy);
        t.add_row({topo.label, family, policy,
                   ccf::util::format_seconds(point.mean_wcct_s),
                   ccf::util::format_fixed(
                       point.mean_wcct_s / point.mean_lb_s, 3) + "x",
                   ccf::util::format_fixed(point.worst_vs_dual, 3) + "x",
                   ccf::util::format_fixed(point.wall_ms, 1)});
        json << "    {\"bench\": \"ordering_ratio\", \"topology\": \""
             << topo.label << "\", \"workload\": \"" << family
             << "\", \"policy\": \"" << policy
             << "\", \"seeds\": " << std::size(kSeeds)
             << ", \"mean_wcct_s\": " << point.mean_wcct_s
             << ", \"mean_lb_s\": " << point.mean_lb_s
             << ", \"ratio\": "
             << ccf::util::format_fixed(
                    point.mean_wcct_s / point.mean_lb_s, 4)
             << ", \"wall_ms\": " << ccf::util::format_fixed(point.wall_ms, 1)
             << "},\n";
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nBENCH_sim.json rows:\n" << json.str();
  return 0;
}
