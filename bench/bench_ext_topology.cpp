// Extension bench (§III-A "complex network conditions" / §V routing note):
// the same ~1 TB join on a two-tier rack topology with increasing uplink
// oversubscription. Compares Hash, Mini, flat CCF (topology-blind) and the
// rack-aware CCF against the rack-level optimal coflow bound Γ.
#include <iostream>

#include "core/ccf.hpp"
#include "join/rack_scheduler.hpp"
#include "net/rack.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_topology",
                            "Rack-topology extension: CCT vs oversubscription");
  args.add_flag("racks", "10", "number of racks");
  args.add_flag("hosts", "10", "hosts per rack");
  args.add_flag("oversub", "1:8:1", "uplink oversubscription sweep");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  args.parse(argc, argv);

  const auto racks = static_cast<std::size_t>(args.get_int("racks"));
  const auto hosts = static_cast<std::size_t>(args.get_int("hosts"));
  const std::size_t nodes = racks * hosts;

  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
  spec.customer_bytes = 90e9 * static_cast<double>(nodes) / 500.0;
  spec.orders_bytes = 900e9 * static_cast<double>(nodes) / 500.0;
  spec.zipf_theta = args.get_double("zipf");
  spec.skew = args.get_double("skew");
  const auto workload = ccf::data::generate_workload(spec);

  std::cout << "Rack-topology extension: " << racks << " racks x " << hosts
            << " hosts, " << ccf::util::format_bytes(workload.matrix.total())
            << ", skew handling on for Mini/CCF variants\n\n";

  ccf::util::Table t({"oversub", "Hash (s)", "Mini (s)", "CCF flat (s)",
                      "CCF rack (s)", "rack vs flat"});
  for (const auto oversub : args.get_int_sweep("oversub")) {
    const auto topo = std::make_shared<const ccf::net::RackFabric>(
        racks, hosts, ccf::net::Fabric::kDefaultPortRate,
        static_cast<double>(oversub));

    const auto prepared = ccf::core::apply_partial_duplication(workload, true);
    const auto problem = prepared.problem();

    auto cct_of = [&](const ccf::opt::Assignment& dest, bool skew_handled) {
      // Hash runs without skew handling (paper setup); others with.
      const auto& matrix = skew_handled ? prepared.residual : workload.matrix;
      const auto& initial = prepared.initial_flows;
      auto flows = skew_handled
                       ? ccf::join::assignment_flows(matrix, dest, initial)
                       : ccf::join::assignment_flows(workload.matrix, dest);
      ccf::net::Simulator sim(topo, ccf::net::make_allocator("madd"));
      sim.add_coflow(ccf::net::CoflowSpec("c", 0.0, std::move(flows)));
      return sim.run().coflows[0].cct();
    };

    ccf::opt::AssignmentProblem plain;
    plain.matrix = &workload.matrix;
    const double hash =
        cct_of(ccf::join::HashScheduler().schedule(plain), false);
    const double mini =
        cct_of(ccf::join::MiniScheduler().schedule(problem), true);
    const double flat =
        cct_of(ccf::join::CcfScheduler().schedule(problem), true);
    ccf::join::RackCcfScheduler rack_sched(*topo);
    rack_sched.set_initial_flows(&prepared.initial_flows);
    const double rack = cct_of(rack_sched.schedule(problem), true);

    t.add_row({std::to_string(oversub) + ":1",
               ccf::util::format_fixed(hash, 1),
               ccf::util::format_fixed(mini, 1),
               ccf::util::format_fixed(flat, 1),
               ccf::util::format_fixed(rack, 1),
               ccf::util::format_fixed(flat / rack, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nThe flat heuristic ignores uplinks, so its CCT degrades "
               "with oversubscription;\nthe rack-aware variant folds the "
               "generalized constraint (1.5) into Algorithm 1's greedy.\n";
  return 0;
}
