// Ablation (§IV-A setup): why every system in the paper gets the "optimal
// coflow schedule". Compares the four rate allocators on the SAME CCF-placed
// single coflow: MADD achieves the analytic bound Γ; uncoordinated per-flow
// fair sharing is strictly worse — the Fig. 2(a)-vs-2(b) gap at scale.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args(
      "bench_ablation_allocators",
      "Coflow-scheduler ablation on one CCF-placed join coflow");
  args.add_flag("nodes", "40", "number of nodes (fair sharing is O(events^2))");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
  const double node_scale = static_cast<double>(nodes) / 500.0;
  spec.customer_bytes = 90e9 * node_scale;  // keep per-node volume paper-like
  spec.orders_bytes = 900e9 * node_scale;
  spec.zipf_theta = args.get_double("zipf");
  spec.skew = args.get_double("skew");
  const auto workload = ccf::data::generate_workload(spec);

  std::cout << "Coflow-scheduler ablation (" << nodes
            << " nodes, CCF placement, one coflow)\n\n";

  // Fixed placement: CCF with skew handling, as in the paper.
  const auto prepared = ccf::core::apply_partial_duplication(workload, true);
  const auto problem = prepared.problem();
  const auto dest = ccf::join::CcfScheduler().schedule(problem);
  const auto flows = ccf::join::assignment_flows(prepared.residual, dest,
                                                 prepared.initial_flows);
  const ccf::net::Fabric fabric(nodes);
  const double gamma = ccf::net::gamma_bound(flows, fabric);

  ccf::util::Table t({"coflow scheduler", "CCT", "vs optimal bound"});
  for (const char* name : {"madd", "varys", "aalo", "fair"}) {
    ccf::net::Simulator sim(fabric, ccf::net::make_allocator(name));
    sim.add_coflow(ccf::net::CoflowSpec(name, 0.0, flows));
    const double cct = sim.run().coflows[0].cct();
    t.add_row({name, ccf::util::format_seconds(cct),
               ccf::util::format_fixed(cct / gamma, 3) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nAnalytic optimum Γ = " << ccf::util::format_seconds(gamma)
            << ". MADD hits it exactly; Varys/Aalo degenerate to it for a "
               "single coflow;\nuncoordinated fair sharing pays the "
               "coordination penalty the paper's §II-C illustrates.\n";
  return 0;
}
