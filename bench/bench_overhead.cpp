// Scheduling overhead (§III-B): the paper motivates the heuristic by noting
// that the Gurobi-based exact optimizer needed >30 minutes for a single join
// at 500 nodes / 7500 partitions. This google-benchmark binary measures
//   * the O(p·n) CCF heuristic across the paper's node range (must stay in
//     the millisecond range even at n=1000, p=15000),
//   * Mini and Hash for reference, and
//   * the exact branch-and-bound on small instances, whose explosive growth
//     reproduces the paper's "cannot scale" point safely.
#include <benchmark/benchmark.h>

#include "data/workload.hpp"
#include "join/schedulers.hpp"
#include "opt/bnb.hpp"

namespace {

ccf::data::Workload workload_for(std::size_t nodes) {
  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
  spec.seed = 1;
  return ccf::data::generate_workload(spec);
}

void BM_CcfHeuristic(benchmark::State& state) {
  const auto w = workload_for(static_cast<std::size_t>(state.range(0)));
  ccf::join::AssignmentProblem p;
  p.matrix = &w.matrix;
  ccf::join::CcfScheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(p));
  }
  state.SetLabel("p = 15n, paper's config");
}
BENCHMARK(BM_CcfHeuristic)->Arg(100)->Arg(250)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_MiniScheduler(benchmark::State& state) {
  const auto w = workload_for(static_cast<std::size_t>(state.range(0)));
  ccf::join::AssignmentProblem p;
  p.matrix = &w.matrix;
  ccf::join::MiniScheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(p));
  }
}
BENCHMARK(BM_MiniScheduler)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_HashScheduler(benchmark::State& state) {
  const auto w = workload_for(static_cast<std::size_t>(state.range(0)));
  ccf::join::AssignmentProblem p;
  p.matrix = &w.matrix;
  ccf::join::HashScheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(p));
  }
}
BENCHMARK(BM_HashScheduler)->Arg(100)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_LocalSearchRefinement(benchmark::State& state) {
  const auto w = workload_for(static_cast<std::size_t>(state.range(0)));
  ccf::join::AssignmentProblem p;
  p.matrix = &w.matrix;
  ccf::join::CcfLsScheduler sched;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.schedule(p));
  }
}
BENCHMARK(BM_LocalSearchRefinement)->Arg(100)->Arg(250)
    ->Unit(benchmark::kMillisecond);

// The exact solver's growth: nodes fixed at 4, partitions swept. Each step
// multiplies the search space by 4; the time limit caps runaway cases so the
// bench binary always terminates (result may be flagged non-optimal).
void BM_ExactBnb(benchmark::State& state) {
  ccf::data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = static_cast<std::size_t>(state.range(0));
  spec.customer_bytes = 1e6;
  spec.orders_bytes = 1e7;
  spec.seed = 2;
  const auto w = ccf::data::generate_workload(spec);
  ccf::opt::AssignmentProblem p;
  p.matrix = &w.matrix;
  ccf::opt::BnbOptions opts;
  opts.time_limit_s = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccf::opt::solve_exact(p, opts));
  }
  state.SetLabel("NP-complete MILP: the reason CCF ships a heuristic");
}
BENCHMARK(BM_ExactBnb)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
