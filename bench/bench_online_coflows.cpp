// Extension bench (§VI future work), now driven through the multi-query
// Engine: a multi-join analytical job produces a stream of queries arriving
// over time; placement is CCF throughout while the session's inter-coflow
// scheduler varies (FIFO+MADD / Varys / Aalo / fair). One Engine session per
// allocator, one drained epoch per table row.
//
// --throughput switches to the engine-throughput harness: 32 queries on
// 16 nodes submitted with staggered arrivals into one session, the
// submit-to-drain wall time measured best-of-reps and reported as
// queries/sec. --out updates the "engine_throughput" entry inside
// BENCH_sim.json's results array; --smoke re-measures and fails when the
// epoch takes >2x the checked-in baseline past a 25 ms noise floor (wired up
// as the `perf_smoke_engine` ctest).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

// Star-schema shape: the first query is the big fact join, the rest shrink.
std::vector<std::shared_ptr<const ccf::data::Workload>> make_workloads(
    std::size_t nodes, std::size_t count, std::uint64_t seed) {
  std::vector<std::shared_ptr<const ccf::data::Workload>> workloads;
  workloads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    const double shrink = i == 0 ? 1.0 : 0.25 / static_cast<double>(i);
    spec.customer_bytes *= 0.1 * shrink;
    spec.orders_bytes *= 0.1 * shrink;
    spec.seed = seed + i;
    workloads.push_back(std::make_shared<const ccf::data::Workload>(
        ccf::data::generate_workload(spec)));
  }
  return workloads;
}

ccf::core::EngineReport run_session(
    const std::vector<std::shared_ptr<const ccf::data::Workload>>& workloads,
    const std::string& allocator, const std::string& scheduler, double stagger,
    std::size_t nodes) {
  ccf::core::EngineOptions opts;
  opts.nodes = nodes;
  opts.allocator = allocator;
  ccf::core::Engine engine(opts);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    ccf::core::QuerySpec query;
    query.name = "op" + std::to_string(i);
    query.arrival = stagger * static_cast<double>(i);
    query.workload = workloads[i];
    query.scheduler = scheduler;
    engine.submit(std::move(query));
  }
  return engine.drain();
}

// ---------------------------------------------------------------------------
// Engine-throughput harness (the BENCH_sim.json "engine_throughput" entry).

constexpr std::size_t kThroughputQueries = 32;
constexpr std::size_t kThroughputNodes = 16;
constexpr double kThroughputStagger = 0.5;

struct ThroughputResult {
  double epoch_ms = 0.0;
  double queries_per_sec = 0.0;
};

ThroughputResult measure_throughput(const std::string& scheduler,
                                    std::uint64_t seed, int reps) {
  const auto workloads =
      make_workloads(kThroughputNodes, kThroughputQueries, seed);
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    const auto epoch = run_session(workloads, "madd", scheduler,
                                   kThroughputStagger, kThroughputNodes);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (epoch.queries.size() != kThroughputQueries || epoch.makespan <= 0.0) {
      std::cerr << "engine-throughput: malformed epoch report\n";
      std::exit(1);
    }
    best = std::min(best, elapsed.count());
  }
  return {best * 1e3, static_cast<double>(kThroughputQueries) / best};
}

std::string throughput_json(const ThroughputResult& r,
                            const std::string& scheduler) {
  std::ostringstream line;
  line << "{\"bench\": \"engine_throughput\", \"queries\": "
       << kThroughputQueries << ", \"nodes\": " << kThroughputNodes
       << ", \"scheduler\": \"" << scheduler << "\", \"epoch_ms\": "
       << r.epoch_ms << ", \"queries_per_sec\": " << r.queries_per_sec << "}";
  return line.str();
}

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(line.find(':', p) + 1));
  } catch (...) {
    return std::nan("");
  }
}

/// Baseline epoch_ms from the engine_throughput line (NaN when absent).
double load_baseline_ms(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"engine_throughput\"") == std::string::npos) continue;
    return json_number(line, "epoch_ms");
  }
  return std::nan("");
}

/// Insert/replace the engine_throughput entry inside the baseline's results
/// array (bench_sim_scale's line-oriented loader ignores it: no "allocator").
int update_baseline(const std::string& path, const std::string& entry) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "engine-throughput: cannot read " << path << "\n";
    return 1;
  }
  std::vector<std::string> lines;
  bool inserted = false;
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"engine_throughput\"") != std::string::npos) continue;
    lines.push_back(line);
    if (!inserted && line.find("\"results\"") != std::string::npos) {
      lines.push_back("    " + entry + ",");
      inserted = true;
    }
  }
  in.close();
  if (!inserted) {
    std::cerr << "engine-throughput: no results array in " << path << "\n";
    return 1;
  }
  std::ofstream out(path);
  for (const auto& line : lines) out << line << "\n";
  std::cout << "updated engine_throughput entry in " << path << "\n";
  return 0;
}

int run_throughput(const ccf::util::ArgParser& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int reps = std::max(1, static_cast<int>(args.get_int("reps")));
  const std::string scheduler = args.get("scheduler");
  const ThroughputResult r = measure_throughput(scheduler, seed, reps);

  ccf::util::Table t({"queries", "nodes", "epoch ms", "queries/sec"});
  std::ostringstream mss, qps;
  mss.precision(2);
  mss << std::fixed << r.epoch_ms;
  qps.precision(1);
  qps << std::fixed << r.queries_per_sec;
  t.add_row({std::to_string(kThroughputQueries),
             std::to_string(kThroughputNodes), mss.str(), qps.str()});
  t.print(std::cout);

  if (args.provided("smoke")) {
    const double base = load_baseline_ms(args.get("baseline"));
    if (!std::isfinite(base)) {
      std::cerr << "engine-throughput smoke: no engine_throughput baseline in "
                << args.get("baseline") << "\n";
      return 1;
    }
    if (r.epoch_ms > 2.0 * base && r.epoch_ms - base > 25.0) {
      std::cerr << "engine-throughput smoke FAILED: " << r.epoch_ms
                << " ms vs baseline " << base << " ms (>2x past the 25 ms "
                << "noise floor)\n";
      return 1;
    }
    std::cout << "engine-throughput smoke passed (baseline " << base
              << " ms)\n";
    return 0;
  }
  if (!args.get("out").empty()) {
    return update_baseline(args.get("out"), throughput_json(r, scheduler));
  }
  std::cout << "\n" << throughput_json(r, scheduler) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_online_coflows",
                            "Online coflows through one Engine session");
  args.add_flag("nodes", "100", "number of nodes");
  args.add_flag("operators", "4", "queries in the session");
  args.add_flag("stagger", "20", "seconds between query arrivals");
  args.add_flag("scheduler", "ccf", "placement scheduler for every query");
  args.add_flag("seed", "300", "workload rng seed");
  args.add_flag("reps", "3", "timing repetitions (throughput mode, min taken)");
  args.add_flag("throughput", "false",
                "measure engine queries/sec at 32 queries x 16 nodes");
  args.add_flag("smoke", "false",
                "with --throughput: regression check against --baseline");
  args.add_flag("baseline", "BENCH_sim.json",
                "baseline JSON for --smoke comparisons");
  args.add_flag("out", "", "with --throughput: update this baseline JSON");
  args.parse(argc, argv);

  if (args.provided("throughput") || args.provided("smoke")) {
    return run_throughput(args);
  }

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  const auto ops_n = static_cast<std::size_t>(args.get_int("operators"));
  const double stagger = args.get_double("stagger");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  // One workload set, shared (by pointer) across the four sessions.
  const auto workloads = make_workloads(nodes, ops_n, seed);

  std::cout << "Online-coflow bench: " << ops_n << " queries on " << nodes
            << " nodes, placement = " << args.get("scheduler") << "\n\n";

  ccf::util::Table t({"inter-coflow scheduler", "avg CCT", "max CCT",
                      "job makespan"});
  for (const auto& [name, label] :
       {std::pair{"madd", "FIFO+MADD"}, std::pair{"varys", "Varys (SEBF)"},
        std::pair{"aalo", "Aalo (D-CLAS)"}, std::pair{"fair", "fair sharing"}}) {
    const auto epoch = run_session(workloads, name, args.get("scheduler"),
                                   stagger, nodes);
    double max_cct = 0.0;
    for (const auto& c : epoch.sim.coflows) {
      max_cct = std::max(max_cct, c.cct());
    }
    t.add_row({label, ccf::util::format_seconds(epoch.sim.average_cct()),
               ccf::util::format_seconds(max_cct),
               ccf::util::format_seconds(epoch.makespan)});
  }
  t.print(std::cout);

  std::cout << "\nCCF's placement output is a plain coflow, so any coflow "
               "scheduler can execute it —\nthe integration path the paper "
               "sketches for Varys/Aalo/RAPIER in §V.\n";
  return 0;
}
