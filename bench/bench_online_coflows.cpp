// Extension bench (§VI future work): a multi-join analytical job produces a
// sequence of coflows arriving over time; placement is CCF throughout while
// the inter-coflow scheduler varies (FIFO+MADD / Varys / Aalo / fair).
// Reports per-operator CCTs, average CCT and job makespan.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_online_coflows",
                            "Online coflows from a 4-operator analytical job");
  args.add_flag("nodes", "100", "number of nodes");
  args.add_flag("operators", "4", "operators in the job");
  args.add_flag("stagger", "20", "seconds between operator arrivals");
  args.add_flag("scheduler", "ccf", "placement scheduler for every operator");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  const auto ops_n = static_cast<std::size_t>(args.get_int("operators"));
  const double stagger = args.get_double("stagger");

  std::vector<ccf::core::OperatorSpec> ops;
  for (std::size_t i = 0; i < ops_n; ++i) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    // Star-schema shape: first operator is the big fact join.
    const double shrink = i == 0 ? 1.0 : 0.25 / static_cast<double>(i);
    spec.customer_bytes *= 0.1 * shrink;
    spec.orders_bytes *= 0.1 * shrink;
    spec.seed = 300 + i;
    ops.push_back(ccf::core::OperatorSpec{
        "op" + std::to_string(i), stagger * static_cast<double>(i), spec});
  }

  std::cout << "Online-coflow bench: " << ops_n << " operators on " << nodes
            << " nodes, placement = " << args.get("scheduler") << "\n\n";

  ccf::util::Table t({"inter-coflow scheduler", "avg CCT", "max CCT",
                      "job makespan"});
  for (const auto& [kind, label] :
       {std::pair{ccf::net::AllocatorKind::kMadd, "FIFO+MADD"},
        std::pair{ccf::net::AllocatorKind::kVarys, "Varys (SEBF)"},
        std::pair{ccf::net::AllocatorKind::kAalo, "Aalo (D-CLAS)"},
        std::pair{ccf::net::AllocatorKind::kFairSharing, "fair sharing"}}) {
    ccf::core::JobOptions opts;
    opts.scheduler = args.get("scheduler");
    opts.allocator = kind;
    const auto report = ccf::core::run_job(ops, opts);
    double max_cct = 0.0;
    for (const auto& c : report.sim.coflows) {
      max_cct = std::max(max_cct, c.cct());
    }
    t.add_row({label, ccf::util::format_seconds(report.sim.average_cct()),
               ccf::util::format_seconds(max_cct),
               ccf::util::format_seconds(report.sim.makespan)});
  }
  t.print(std::cout);

  std::cout << "\nCCF's placement output is a plain coflow, so any coflow "
               "scheduler can execute it —\nthe integration path the paper "
               "sketches for Varys/Aalo/RAPIER in §V.\n";
  return 0;
}
