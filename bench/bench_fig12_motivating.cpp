// Figures 1 + 2: the motivating example as a regression table. Exact
// expected values come straight from the paper; any deviation is reported.
#include <cmath>
#include <iostream>

#include "core/ccf.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

ccf::data::ChunkMatrix fig1_matrix() {
  ccf::data::ChunkMatrix m(6, 3);
  m.set(0, 0, 3.0);  // key 0: node0 x3
  m.set(0, 2, 1.0);  //        node2 x1
  m.set(1, 0, 3.0);  // key 1: node0 x3
  m.set(1, 1, 6.0);  //        node1 x6
  m.set(2, 0, 1.0);  // key 2: node0 x1
  m.set(2, 1, 2.0);  //        node1 x2
  m.set(5, 1, 1.0);  // key 5: node1 x1
  m.set(5, 2, 2.0);  //        node2 x2
  return m;
}

double simulated_cct(const ccf::data::ChunkMatrix& m,
                     const std::vector<std::uint32_t>& dest) {
  ccf::net::Simulator sim(ccf::net::Fabric(3, 1.0),
                          ccf::net::make_allocator("madd"));
  sim.add_coflow(
      ccf::net::CoflowSpec("sp", 0.0, ccf::join::assignment_flows(m, dest)));
  return sim.run().coflows[0].cct();
}

}  // namespace

int main() {
  const auto m = fig1_matrix();
  ccf::join::AssignmentProblem problem;
  problem.matrix = &m;

  struct Case {
    const char* name;
    std::vector<std::uint32_t> dest;
    double paper_traffic;
    double paper_cct;
  };
  const std::vector<Case> cases = {
      {"SP0 (hash)", {0, 1, 2, 0, 1, 2}, 8.0, 4.0},
      {"SP1 (suboptimal traffic)", {0, 1, 0, 0, 0, 2}, 7.0, 3.0},
      {"SP2 (minimal traffic)", {0, 1, 1, 0, 0, 2}, 6.0, 4.0},
      {"CCF (Algorithm 1)", ccf::join::CcfScheduler().schedule(problem), 7.0,
       3.0},
  };

  std::cout << "Figures 1 + 2 — motivating example regression "
               "(3 nodes, unit ports)\n\n";
  ccf::util::Table t({"plan", "traffic", "paper traffic", "CCT",
                      "paper CCT", "match"});
  bool all_match = true;
  for (const Case& c : cases) {
    const double traffic = ccf::join::assignment_flows(m, c.dest).traffic();
    const double cct = simulated_cct(m, c.dest);
    const bool ok = std::fabs(traffic - c.paper_traffic) < 1e-9 &&
                    std::fabs(cct - c.paper_cct) < 1e-9;
    all_match = all_match && ok;
    t.add_row({c.name, ccf::util::format_fixed(traffic, 0),
               ccf::util::format_fixed(c.paper_traffic, 0),
               ccf::util::format_fixed(cct, 0),
               ccf::util::format_fixed(c.paper_cct, 0), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << (all_match ? "\nAll values match the paper exactly.\n"
                          : "\nMISMATCH against the paper!\n");
  return all_match ? 0 : 1;
}
