// Extension bench: trace-driven inter-coflow scheduling, the methodology of
// the Varys/Aalo papers whose simulator lineage the paper reuses. Replays a
// Facebook-style coflow trace (synthetic by default, or a real trace file in
// the CoflowSim format via --trace) under every allocator and reports the
// CCT distribution.
#include <algorithm>
#include <iostream>

#include "net/metrics.hpp"
#include "net/simulator.hpp"
#include "net/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_trace",
                            "Replay a coflow trace under each scheduler");
  args.add_flag("trace", "", "CoflowSim-format trace file (empty = synthetic)");
  args.add_flag("racks", "50", "synthetic: fabric width");
  args.add_flag("coflows", "120", "synthetic: number of coflows");
  args.add_flag("duration", "60", "synthetic: arrival window seconds");
  args.add_flag("seed", "11", "synthetic: rng seed");
  args.parse(argc, argv);

  ccf::net::CoflowTrace trace;
  if (!args.get("trace").empty()) {
    trace = ccf::net::load_coflow_trace(args.get("trace"));
    std::cout << "Replaying " << args.get("trace");
  } else {
    ccf::net::SyntheticTraceOptions opts;
    opts.racks = static_cast<std::size_t>(args.get_int("racks"));
    opts.coflows = static_cast<std::size_t>(args.get_int("coflows"));
    opts.duration_seconds = args.get_double("duration");
    ccf::util::Pcg32 rng(
        ccf::util::derive_seed(static_cast<std::uint64_t>(args.get_int("seed")),
                               81),
        81);
    trace = ccf::net::generate_synthetic_trace(opts, rng);
    std::cout << "Replaying a synthetic FB-style trace";
  }
  const auto specs = ccf::net::to_coflow_specs(trace);
  double total = 0.0;
  for (const auto& s : specs) total += s.flows.traffic();
  std::cout << ": " << trace.racks << " racks, " << specs.size()
            << " coflows, " << ccf::util::format_bytes(total)
            << " shuffled\n\n";

  const ccf::net::Fabric fabric(trace.racks);
  double varys_avg = 0.0;
  ccf::util::Table t({"allocator", "avg CCT", "median CCT", "p95 CCT",
                      "makespan", "vs varys"});
  for (const char* name : {"varys", "aalo", "madd", "fair"}) {
    ccf::net::Simulator sim(fabric, ccf::net::make_allocator(name));
    for (const auto& spec : specs) sim.add_coflow(spec);
    const auto r = sim.run();
    std::vector<double> ccts;
    for (const auto& c : r.coflows) ccts.push_back(c.cct());
    const double avg = r.average_cct();
    if (std::string(name) == "varys") varys_avg = avg;
    t.add_row({name, ccf::util::format_seconds(avg),
               ccf::util::format_seconds(ccf::util::percentile(ccts, 0.5)),
               ccf::util::format_seconds(ccf::util::percentile(ccts, 0.95)),
               ccf::util::format_seconds(r.makespan),
               ccf::util::format_fixed(avg / varys_avg, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nThe coflow-aware policies' gain concentrates where the "
               "Varys/Aalo papers report it:\nthe *median* CCT — small "
               "coflows no longer queue behind heavy ones (compare the\n"
               "median column against fair sharing and FIFO madd).\n";
  return 0;
}
