// Sustained-load harness for the always-on scheduling service
// (core::Service): an open-arrival client pushes the engine-throughput
// working set (32 prepared star-schema queries on 16 nodes, CCF placement,
// MADD inter-coflow scheduling) at a Service as fast as admission allows,
// and the harness reports end-to-end queries/sec plus submit-to-drain
// latency percentiles. This is the service counterpart of
// bench_online_coflows --throughput: that one times a single cold 32-query
// epoch; this one measures the steady state the Service exists for — small
// drain batches, plan-cache hits, persistent simulator state — where the
// per-query cost is an order of magnitude lower.
//
// --out updates the "service_throughput" entry (and the per-shard
// "service_shard_sweep" rows) inside BENCH_sim.json's results array;
// --smoke re-measures the shards=1 point and fails when throughput drops
// below half the checked-in baseline (wired up as `perf_smoke_service`).
//
// --scale measures the sparse ingestion path instead: whole synthetic
// coflow traces (bench_sim_scale's scale generator) submitted as
// SparseCoflowSpec flow lists and drained as one epoch per point — the
// 10k-rack regime where a dense submission would be ~800 MB per coflow.
// Each "service_scale" row records wall time and the process peak RSS, the
// evidence that nothing on the path allocates O(racks²). --smoke-scale
// gates the 2,500-rack point against the checked-in row (completion, wall
// within 2x, RSS within 2x past an absolute floor); wired up as
// `perf_smoke_service_scale`.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "data/workload.hpp"
#include "net/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kWorkingSet = 32;

// The same star-schema stream as bench_online_coflows: the first query is
// the big fact join, the rest shrink.
std::vector<std::shared_ptr<const ccf::data::Workload>> make_workloads(
    std::uint64_t seed) {
  std::vector<std::shared_ptr<const ccf::data::Workload>> workloads;
  workloads.reserve(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    ccf::data::WorkloadSpec spec =
        ccf::data::WorkloadSpec::paper_default(kNodes);
    const double shrink = i == 0 ? 1.0 : 0.25 / static_cast<double>(i);
    spec.customer_bytes *= 0.1 * shrink;
    spec.orders_bytes *= 0.1 * shrink;
    spec.seed = seed + i;
    workloads.push_back(std::make_shared<const ccf::data::Workload>(
        ccf::data::generate_workload(spec)));
  }
  return workloads;
}

struct LoadResult {
  std::size_t shards = 0;
  std::size_t queries = 0;
  double elapsed_s = 0.0;
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t epochs = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LoadResult run_load(std::size_t shards, std::size_t total_queries,
                    std::size_t max_batch, std::uint64_t seed) {
  const auto workloads = make_workloads(seed);

  ccf::core::ServiceOptions options;
  options.engine.nodes = kNodes;
  options.engine.allocator = "madd";
  options.shards = shards;
  options.max_batch = max_batch;
  options.max_wait = std::chrono::microseconds(200);
  options.queue_capacity = 1024;
  for (std::size_t t = 0; t < shards; ++t) {
    ccf::core::TenantSpec tenant;
    tenant.name = "t" + std::to_string(t);
    options.tenants.push_back(std::move(tenant));  // round-robin onto shard t
  }

  // Submit-to-drain latency, recorded on the epoch callback (driver
  // threads). One slot vector per shard: one driver each, so no locking.
  std::vector<std::vector<double>> latency_ms(shards);
  for (auto& v : latency_ms) v.reserve(total_queries / shards + max_batch);
  const auto on_epoch = [&](const ccf::core::ShardEpoch& epoch) {
    const auto now = std::chrono::steady_clock::now();
    for (const ccf::core::ServiceQuery& q : epoch.queries) {
      latency_ms[epoch.shard].push_back(
          std::chrono::duration<double, std::milli>(now - q.submitted)
              .count());
    }
  };

  ccf::core::Service service(options, on_epoch);
  const auto start = std::chrono::steady_clock::now();
  std::size_t submitted = 0;
  while (submitted < total_queries) {
    ccf::core::QuerySpec spec("q", workloads[submitted % kWorkingSet], "ccf");
    const ccf::core::SubmitResult r =
        service.submit(submitted % shards, std::move(spec));
    if (r.accepted()) {
      ++submitted;
    } else if (r.status == ccf::core::SubmitStatus::kQueueFull) {
      std::this_thread::yield();  // backpressure: let the drivers drain
    } else {
      std::cerr << "service-load: unexpected submit status\n";
      std::exit(1);
    }
  }
  service.flush();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const ccf::core::ServiceStats stats = service.stats();
  service.stop();

  if (stats.completed != total_queries) {
    std::cerr << "service-load: completed " << stats.completed << " of "
              << total_queries << "\n";
    std::exit(1);
  }

  std::vector<double> all;
  all.reserve(total_queries);
  for (const auto& v : latency_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  LoadResult result;
  result.shards = shards;
  result.queries = total_queries;
  result.elapsed_s = elapsed.count();
  result.queries_per_sec =
      static_cast<double>(total_queries) / elapsed.count();
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.epochs = stats.epochs;
  return result;
}

// --- extreme-scale sparse epochs (the 10k-rack service path) ---------------

/// Process peak RSS in MB (ru_maxrss is KB on Linux). Monotone across the
/// whole process, so scale points must run in ascending footprint order.
double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleResult {
  std::size_t racks = 0;
  std::size_t coflows = 0;
  std::size_t flows = 0;  ///< flow records across the trace
  double wall_s = 0.0;    ///< submit-to-flush, epoch simulation included
  std::uint64_t epochs = 0;
  double peak_rss_mb = 0.0;
};

ScaleResult run_scale(std::size_t racks, std::size_t coflows,
                      std::uint64_t seed) {
  // The same trace bench_sim_scale's --scale points simulate directly on a
  // Simulator; here it flows through Service submit -> batch -> Engine.
  ccf::net::SyntheticTraceOptions trace_options;
  trace_options.racks = racks;
  trace_options.coflows = coflows;
  trace_options.duration_seconds = 6e-3 * static_cast<double>(coflows);
  ccf::util::Pcg32 rng(ccf::util::derive_seed(seed, 83), 83);
  std::vector<ccf::net::SparseCoflowSpec> specs =
      ccf::net::to_sparse_coflow_specs(
          ccf::net::generate_synthetic_trace(trace_options, rng));

  ccf::core::ServiceOptions options;
  options.engine.nodes = racks;
  options.engine.allocator = "madd";
  options.engine.sim.engine = ccf::net::SimEngine::kIncremental;
  options.shards = 1;
  // One epoch per point: the whole trace drains as a single 10k-coflow
  // batch, so the simulated timeline matches bench_sim_scale's scale rows.
  options.max_batch = coflows;
  options.max_wait = std::chrono::microseconds(10'000'000);
  options.queue_capacity = coflows;

  ScaleResult result;
  result.racks = racks;
  result.coflows = coflows;
  for (const auto& spec : specs) result.flows += spec.flows.size();

  ccf::core::Service service(options);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < specs.size();) {
    // QuerySpec carries the flow list by shared_ptr, so a queue-full retry
    // re-submits the same spec without copying it.
    ccf::core::QuerySpec spec;
    spec.sparse = std::make_shared<const ccf::net::SparseCoflowSpec>(
        std::move(specs[i]));
    ccf::core::SubmitResult r;
    do {
      r = service.submit(0, spec);
      if (r.status == ccf::core::SubmitStatus::kQueueFull) {
        std::this_thread::yield();
      }
    } while (r.status == ccf::core::SubmitStatus::kQueueFull);
    if (!r.accepted()) {
      std::cerr << "service-scale: unexpected submit status\n";
      std::exit(1);
    }
    ++i;
  }
  service.flush();
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  const ccf::core::ServiceStats stats = service.stats();
  service.stop();
  if (stats.completed != coflows) {
    std::cerr << "service-scale: completed " << stats.completed << " of "
              << coflows << "\n";
    std::exit(1);
  }
  result.epochs = stats.epochs;
  result.peak_rss_mb = peak_rss_mb();
  return result;
}

std::string scale_json(const ScaleResult& r) {
  std::ostringstream line;
  line << "{\"bench\": \"service_scale\", \"racks\": " << r.racks
       << ", \"coflows\": " << r.coflows << ", \"flows\": " << r.flows
       << ", \"allocator\": \"madd\", \"epochs\": " << r.epochs
       << ", \"wall_s\": " << r.wall_s
       << ", \"peak_rss_mb\": " << r.peak_rss_mb << "}";
  return line.str();
}

void print_scale_table(const std::vector<ScaleResult>& rows) {
  ccf::util::Table t(
      {"racks", "coflows", "flows", "epochs", "wall s", "peak RSS MB"});
  for (const ScaleResult& r : rows) {
    std::ostringstream wall, rss;
    wall.precision(2);
    wall << std::fixed << r.wall_s;
    rss.precision(1);
    rss << std::fixed << r.peak_rss_mb;
    t.add_row({std::to_string(r.racks), std::to_string(r.coflows),
               std::to_string(r.flows), std::to_string(r.epochs), wall.str(),
               rss.str()});
  }
  t.print(std::cout);
}

std::string sweep_json(const LoadResult& r) {
  std::ostringstream line;
  line << "{\"bench\": \"service_shard_sweep\", \"shards\": " << r.shards
       << ", \"queries\": " << r.queries
       << ", \"queries_per_sec\": " << r.queries_per_sec
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms << "}";
  return line.str();
}

std::string throughput_json(const LoadResult& r, std::size_t max_batch) {
  std::ostringstream line;
  line << "{\"bench\": \"service_throughput\", \"queries\": " << r.queries
       << ", \"nodes\": " << kNodes << ", \"shards\": " << r.shards
       << ", \"max_batch\": " << max_batch
       << ", \"scheduler\": \"ccf\", \"queries_per_sec\": "
       << r.queries_per_sec << ", \"p50_ms\": " << r.p50_ms
       << ", \"p99_ms\": " << r.p99_ms << "}";
  return line.str();
}

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(line.find(':', p) + 1));
  } catch (...) {
    return std::nan("");
  }
}

double load_baseline_qps(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"service_throughput\"") == std::string::npos) continue;
    return json_number(line, "queries_per_sec");
  }
  return std::nan("");
}

struct ScaleBaseline {
  double wall_s = std::nan("");
  double peak_rss_mb = std::nan("");
};

ScaleBaseline load_baseline_scale(const std::string& path, std::size_t racks,
                                  std::size_t coflows) {
  ScaleBaseline base;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"service_scale\"") == std::string::npos ||
        line.find("\"racks\": " + std::to_string(racks)) ==
            std::string::npos ||
        line.find("\"coflows\": " + std::to_string(coflows)) ==
            std::string::npos) {
      continue;
    }
    base.wall_s = json_number(line, "wall_s");
    base.peak_rss_mb = json_number(line, "peak_rss_mb");
  }
  return base;
}

/// Replace the entries whose bench keys appear in `strip` inside the
/// baseline's results array.
int update_baseline(const std::string& path,
                    const std::vector<std::string>& entries,
                    const std::vector<std::string>& strip) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "service-load: cannot read " << path << "\n";
    return 1;
  }
  std::vector<std::string> lines;
  bool inserted = false;
  for (std::string line; std::getline(in, line);) {
    bool stripped = false;
    for (const std::string& key : strip) {
      if (line.find("\"" + key + "\"") != std::string::npos) {
        stripped = true;
        break;
      }
    }
    if (stripped) continue;
    lines.push_back(line);
    if (!inserted && line.find("\"results\"") != std::string::npos) {
      for (const std::string& entry : entries) {
        lines.push_back("    " + entry + ",");
      }
      inserted = true;
    }
  }
  in.close();
  if (!inserted) {
    std::cerr << "service-load: no results array in " << path << "\n";
    return 1;
  }
  std::ofstream out(path);
  for (const auto& line : lines) out << line << "\n";
  std::cout << "updated service entries in " << path << "\n";
  return 0;
}

void print_table(const std::vector<LoadResult>& rows) {
  ccf::util::Table t(
      {"shards", "queries", "queries/sec", "p50 ms", "p99 ms", "epochs"});
  for (const LoadResult& r : rows) {
    std::ostringstream qps, p50, p99;
    qps.precision(0);
    qps << std::fixed << r.queries_per_sec;
    p50.precision(2);
    p50 << std::fixed << r.p50_ms;
    p99.precision(2);
    p99 << std::fixed << r.p99_ms;
    t.add_row({std::to_string(r.shards), std::to_string(r.queries),
               qps.str(), p50.str(), p99.str(), std::to_string(r.epochs)});
  }
  t.print(std::cout);
}

/// Gates the 2,500-rack x 10,000-coflow sparse point: the epoch must drain
/// completely through the Service (run_scale exits non-zero otherwise), wall
/// time must stay within 2x of the checked-in row past a 2 s noise floor,
/// and peak RSS must stay within 2x past a 1 GB absolute floor — the
/// regression tripwire for anything O(racks²) sneaking back onto the path.
int run_smoke_scale(const std::string& baseline_path, std::uint64_t seed) {
  constexpr std::size_t kRacks = 2500, kCoflows = 10'000;
  const ScaleResult r = run_scale(kRacks, kCoflows, seed);
  print_scale_table({r});
  const ScaleBaseline base =
      load_baseline_scale(baseline_path, kRacks, kCoflows);
  bool ok = true;
  if (!std::isfinite(base.wall_s)) {
    std::cout << "service-scale smoke: no baseline row (not fatal)\n";
  } else {
    if (r.wall_s > 2.0 * base.wall_s && r.wall_s - base.wall_s > 2.0) {
      std::cerr << "service-scale smoke: wall " << r.wall_s
                << " s regressed >2x vs checked-in " << base.wall_s << " s\n";
      ok = false;
    }
    if (std::isfinite(base.peak_rss_mb) &&
        r.peak_rss_mb > 2.0 * base.peak_rss_mb && r.peak_rss_mb > 1024.0) {
      std::cerr << "service-scale smoke: peak RSS " << r.peak_rss_mb
                << " MB regressed >2x vs checked-in " << base.peak_rss_mb
                << " MB\n";
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "service-scale smoke FAILED vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "service-scale smoke passed (" << kCoflows
            << " sparse coflows on " << kRacks << " racks, one epoch)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_service_load",
                            "Sustained open-arrival load on core::Service");
  args.add_flag("queries", "100000", "total queries to push through");
  args.add_flag("batch", "2", "Service max_batch (drain batch size)");
  args.add_flag("seed", "300", "workload rng seed");
  args.add_flag("sweep", "false", "also measure shards = 2 and 4");
  args.add_flag("smoke", "false",
                "regression check of shards=1 against --baseline");
  args.add_flag("scale", "false",
                "measure the sparse 2.5k- and 10k-rack epoch points");
  args.add_flag("smoke-scale", "false",
                "regression check of the 2.5k-rack sparse point");
  args.add_flag("baseline", "BENCH_sim.json",
                "baseline JSON for --smoke comparisons");
  args.add_flag("out", "", "update this baseline JSON");
  args.parse(argc, argv);

  const auto total = static_cast<std::size_t>(args.get_int("queries"));
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  if (args.provided("smoke-scale")) {
    return run_smoke_scale(args.get("baseline"), seed);
  }

  if (args.provided("scale")) {
    // Ascending footprint order: peak RSS is process-monotone, so the 10k
    // point must come last for the 2.5k row to be meaningful.
    std::vector<ScaleResult> rows;
    rows.push_back(run_scale(2500, 10'000, seed));
    rows.push_back(run_scale(10'000, 10'000, seed));
    print_scale_table(rows);
    std::vector<std::string> entries;
    for (const ScaleResult& r : rows) entries.push_back(scale_json(r));
    if (!args.get("out").empty()) {
      return update_baseline(args.get("out"), entries, {"service_scale"});
    }
    std::cout << "\n";
    for (const std::string& entry : entries) std::cout << entry << "\n";
    return 0;
  }

  if (args.provided("smoke")) {
    // A shorter run keeps the gate fast; throughput is rate, not volume, so
    // the comparison is still apples-to-apples.
    const LoadResult r = run_load(1, std::min<std::size_t>(total, 40000),
                                  batch, seed);
    print_table({r});
    const double base = load_baseline_qps(args.get("baseline"));
    if (!std::isfinite(base)) {
      std::cerr << "service-load smoke: no service_throughput baseline in "
                << args.get("baseline") << "\n";
      return 1;
    }
    if (r.queries_per_sec < 0.5 * base) {
      std::cerr << "service-load smoke FAILED: " << r.queries_per_sec
                << " queries/sec vs baseline " << base << " (<0.5x)\n";
      return 1;
    }
    std::cout << "service-load smoke passed (baseline " << base
              << " queries/sec)\n";
    return 0;
  }

  std::vector<LoadResult> rows;
  rows.push_back(run_load(1, total, batch, seed));
  if (args.provided("sweep") || !args.get("out").empty()) {
    rows.push_back(run_load(2, total, batch, seed));
    rows.push_back(run_load(4, total, batch, seed));
  }
  print_table(rows);

  std::vector<std::string> entries;
  entries.push_back(throughput_json(rows.front(), batch));
  for (const LoadResult& r : rows) entries.push_back(sweep_json(r));
  if (!args.get("out").empty()) {
    return update_baseline(args.get("out"), entries,
                           {"service_throughput", "service_shard_sweep"});
  }
  std::cout << "\n";
  for (const std::string& entry : entries) std::cout << entry << "\n";
  return 0;
}
