// Sustained-load harness for the always-on scheduling service
// (core::Service): an open-arrival client pushes the engine-throughput
// working set (32 prepared star-schema queries on 16 nodes, CCF placement,
// MADD inter-coflow scheduling) at a Service as fast as admission allows,
// and the harness reports end-to-end queries/sec plus submit-to-drain
// latency percentiles. This is the service counterpart of
// bench_online_coflows --throughput: that one times a single cold 32-query
// epoch; this one measures the steady state the Service exists for — small
// drain batches, plan-cache hits, persistent simulator state — where the
// per-query cost is an order of magnitude lower.
//
// --out updates the "service_throughput" entry (and the per-shard
// "service_shard_sweep" rows) inside BENCH_sim.json's results array;
// --smoke re-measures the shards=1 point and fails when throughput drops
// below half the checked-in baseline (wired up as `perf_smoke_service`).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/service.hpp"
#include "data/workload.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

constexpr std::size_t kNodes = 16;
constexpr std::size_t kWorkingSet = 32;

// The same star-schema stream as bench_online_coflows: the first query is
// the big fact join, the rest shrink.
std::vector<std::shared_ptr<const ccf::data::Workload>> make_workloads(
    std::uint64_t seed) {
  std::vector<std::shared_ptr<const ccf::data::Workload>> workloads;
  workloads.reserve(kWorkingSet);
  for (std::size_t i = 0; i < kWorkingSet; ++i) {
    ccf::data::WorkloadSpec spec =
        ccf::data::WorkloadSpec::paper_default(kNodes);
    const double shrink = i == 0 ? 1.0 : 0.25 / static_cast<double>(i);
    spec.customer_bytes *= 0.1 * shrink;
    spec.orders_bytes *= 0.1 * shrink;
    spec.seed = seed + i;
    workloads.push_back(std::make_shared<const ccf::data::Workload>(
        ccf::data::generate_workload(spec)));
  }
  return workloads;
}

struct LoadResult {
  std::size_t shards = 0;
  std::size_t queries = 0;
  double elapsed_s = 0.0;
  double queries_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t epochs = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

LoadResult run_load(std::size_t shards, std::size_t total_queries,
                    std::size_t max_batch, std::uint64_t seed) {
  const auto workloads = make_workloads(seed);

  ccf::core::ServiceOptions options;
  options.engine.nodes = kNodes;
  options.engine.allocator = "madd";
  options.shards = shards;
  options.max_batch = max_batch;
  options.max_wait = std::chrono::microseconds(200);
  options.queue_capacity = 1024;
  for (std::size_t t = 0; t < shards; ++t) {
    ccf::core::TenantSpec tenant;
    tenant.name = "t" + std::to_string(t);
    options.tenants.push_back(std::move(tenant));  // round-robin onto shard t
  }

  // Submit-to-drain latency, recorded on the epoch callback (driver
  // threads). One slot vector per shard: one driver each, so no locking.
  std::vector<std::vector<double>> latency_ms(shards);
  for (auto& v : latency_ms) v.reserve(total_queries / shards + max_batch);
  const auto on_epoch = [&](const ccf::core::ShardEpoch& epoch) {
    const auto now = std::chrono::steady_clock::now();
    for (const ccf::core::ServiceQuery& q : epoch.queries) {
      latency_ms[epoch.shard].push_back(
          std::chrono::duration<double, std::milli>(now - q.submitted)
              .count());
    }
  };

  ccf::core::Service service(options, on_epoch);
  const auto start = std::chrono::steady_clock::now();
  std::size_t submitted = 0;
  while (submitted < total_queries) {
    ccf::core::QuerySpec spec("q", workloads[submitted % kWorkingSet], "ccf");
    const ccf::core::SubmitResult r =
        service.submit(submitted % shards, std::move(spec));
    if (r.accepted()) {
      ++submitted;
    } else if (r.status == ccf::core::SubmitStatus::kQueueFull) {
      std::this_thread::yield();  // backpressure: let the drivers drain
    } else {
      std::cerr << "service-load: unexpected submit status\n";
      std::exit(1);
    }
  }
  service.flush();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const ccf::core::ServiceStats stats = service.stats();
  service.stop();

  if (stats.completed != total_queries) {
    std::cerr << "service-load: completed " << stats.completed << " of "
              << total_queries << "\n";
    std::exit(1);
  }

  std::vector<double> all;
  all.reserve(total_queries);
  for (const auto& v : latency_ms) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  LoadResult result;
  result.shards = shards;
  result.queries = total_queries;
  result.elapsed_s = elapsed.count();
  result.queries_per_sec =
      static_cast<double>(total_queries) / elapsed.count();
  result.p50_ms = percentile(all, 0.50);
  result.p99_ms = percentile(all, 0.99);
  result.epochs = stats.epochs;
  return result;
}

std::string sweep_json(const LoadResult& r) {
  std::ostringstream line;
  line << "{\"bench\": \"service_shard_sweep\", \"shards\": " << r.shards
       << ", \"queries\": " << r.queries
       << ", \"queries_per_sec\": " << r.queries_per_sec
       << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms << "}";
  return line.str();
}

std::string throughput_json(const LoadResult& r, std::size_t max_batch) {
  std::ostringstream line;
  line << "{\"bench\": \"service_throughput\", \"queries\": " << r.queries
       << ", \"nodes\": " << kNodes << ", \"shards\": " << r.shards
       << ", \"max_batch\": " << max_batch
       << ", \"scheduler\": \"ccf\", \"queries_per_sec\": "
       << r.queries_per_sec << ", \"p50_ms\": " << r.p50_ms
       << ", \"p99_ms\": " << r.p99_ms << "}";
  return line.str();
}

double json_number(const std::string& line, const std::string& key) {
  const auto p = line.find("\"" + key + "\"");
  if (p == std::string::npos) return std::nan("");
  try {
    return std::stod(line.substr(line.find(':', p) + 1));
  } catch (...) {
    return std::nan("");
  }
}

double load_baseline_qps(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"service_throughput\"") == std::string::npos) continue;
    return json_number(line, "queries_per_sec");
  }
  return std::nan("");
}

/// Replace every service_* entry inside the baseline's results array.
int update_baseline(const std::string& path,
                    const std::vector<std::string>& entries) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "service-load: cannot read " << path << "\n";
    return 1;
  }
  std::vector<std::string> lines;
  bool inserted = false;
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"service_throughput\"") != std::string::npos ||
        line.find("\"service_shard_sweep\"") != std::string::npos) {
      continue;
    }
    lines.push_back(line);
    if (!inserted && line.find("\"results\"") != std::string::npos) {
      for (const std::string& entry : entries) {
        lines.push_back("    " + entry + ",");
      }
      inserted = true;
    }
  }
  in.close();
  if (!inserted) {
    std::cerr << "service-load: no results array in " << path << "\n";
    return 1;
  }
  std::ofstream out(path);
  for (const auto& line : lines) out << line << "\n";
  std::cout << "updated service entries in " << path << "\n";
  return 0;
}

void print_table(const std::vector<LoadResult>& rows) {
  ccf::util::Table t(
      {"shards", "queries", "queries/sec", "p50 ms", "p99 ms", "epochs"});
  for (const LoadResult& r : rows) {
    std::ostringstream qps, p50, p99;
    qps.precision(0);
    qps << std::fixed << r.queries_per_sec;
    p50.precision(2);
    p50 << std::fixed << r.p50_ms;
    p99.precision(2);
    p99 << std::fixed << r.p99_ms;
    t.add_row({std::to_string(r.shards), std::to_string(r.queries),
               qps.str(), p50.str(), p99.str(), std::to_string(r.epochs)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_service_load",
                            "Sustained open-arrival load on core::Service");
  args.add_flag("queries", "100000", "total queries to push through");
  args.add_flag("batch", "2", "Service max_batch (drain batch size)");
  args.add_flag("seed", "300", "workload rng seed");
  args.add_flag("sweep", "false", "also measure shards = 2 and 4");
  args.add_flag("smoke", "false",
                "regression check of shards=1 against --baseline");
  args.add_flag("baseline", "BENCH_sim.json",
                "baseline JSON for --smoke comparisons");
  args.add_flag("out", "", "update this baseline JSON");
  args.parse(argc, argv);

  const auto total = static_cast<std::size_t>(args.get_int("queries"));
  const auto batch = static_cast<std::size_t>(args.get_int("batch"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  if (args.provided("smoke")) {
    // A shorter run keeps the gate fast; throughput is rate, not volume, so
    // the comparison is still apples-to-apples.
    const LoadResult r = run_load(1, std::min<std::size_t>(total, 40000),
                                  batch, seed);
    print_table({r});
    const double base = load_baseline_qps(args.get("baseline"));
    if (!std::isfinite(base)) {
      std::cerr << "service-load smoke: no service_throughput baseline in "
                << args.get("baseline") << "\n";
      return 1;
    }
    if (r.queries_per_sec < 0.5 * base) {
      std::cerr << "service-load smoke FAILED: " << r.queries_per_sec
                << " queries/sec vs baseline " << base << " (<0.5x)\n";
      return 1;
    }
    std::cout << "service-load smoke passed (baseline " << base
              << " queries/sec)\n";
    return 0;
  }

  std::vector<LoadResult> rows;
  rows.push_back(run_load(1, total, batch, seed));
  if (args.provided("sweep") || !args.get("out").empty()) {
    rows.push_back(run_load(2, total, batch, seed));
    rows.push_back(run_load(4, total, batch, seed));
  }
  print_table(rows);

  std::vector<std::string> entries;
  entries.push_back(throughput_json(rows.front(), batch));
  for (const LoadResult& r : rows) entries.push_back(sweep_json(r));
  if (!args.get("out").empty()) {
    return update_baseline(args.get("out"), entries);
  }
  std::cout << "\n";
  for (const std::string& entry : entries) std::cout << entry << "\n";
  return 0;
}
