// Figure 6: Hash / Mini / CCF over the Zipf factor (0..1) at 500 nodes,
// skew = 20%, SF600, p = 15n.
//
// Paper's observations to reproduce (§IV-B2):
//   (a) traffic decreases with zipf for all three; Mini drops the sharpest
//       (all largest chunks stay local);
//   (b) time: Mini worst everywhere; CCF fastest, rising with zipf as single
//       huge chunks start to dominate; CCF speedup 6.7-395x over Mini and
//       1.9-98.7x over Hash. (Note: the paper draws Hash "nearly constant";
//       with rank-aligned chunks node 0's egress necessarily grows with
//       zipf, so our Hash curve bends up at high zipf — see EXPERIMENTS.md.)
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_fig6_zipf",
                            "Reproduces Fig. 6(a)/(b): sweep over Zipf factor");
  args.add_flag("nodes", "500", "number of nodes");
  args.add_flag("zipf", "0.0:1.0:0.2", "Zipf sweep lo:hi:step");
  args.add_flag("skew", "0.2", "skew fraction");
  ccf::bench::add_common_flags(args);
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  std::cout << "Figure 6 — varying the Zipf factor (" << nodes
            << " nodes, skew=" << args.get("skew") << ")\n\n";

  ccf::bench::FigureReport report("zipf", ccf::bench::open_csv(args));
  for (const double zipf : args.get_double_sweep("zipf")) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.zipf_theta = zipf;
    spec.skew = args.get_double("skew");
    ccf::bench::apply_common_flags(args, spec);
    report.add(ccf::util::format_fixed(zipf, 1),
               ccf::bench::run_paper_systems(ccf::data::generate_workload(spec)));
  }
  report.print("Fig. 6(a) network traffic", "Fig. 6(b) communication time");

  std::cout << "\nPaper reports: traffic decreasing in zipf (Mini sharpest); "
               "Mini slowest everywhere;\nCCF speedup 6.7-395x over Mini and "
               "1.9-98.7x over Hash across the sweep.\n";
  return 0;
}
