// Ablation (DESIGN.md §8): the paper's generator rank-aligns the Zipf chunk
// sizes so node 0 holds the largest chunk of EVERY partition — the worst
// case for Mini (everything flushes to node 0). This bench contrasts that
// with unaligned ranks (each partition's largest chunk on a random node),
// quantifying how much of Mini's collapse is due to alignment and showing
// that CCF wins in both regimes.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ablation_alignment",
                            "Zipf rank alignment ablation");
  args.add_flag("nodes", "200", "number of nodes");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  ccf::bench::add_common_flags(args);
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  std::cout << "Zipf rank-alignment ablation (" << nodes << " nodes, zipf="
            << args.get("zipf") << ", skew=" << args.get("skew") << ")\n\n";

  ccf::bench::FigureReport report("alignment", ccf::bench::open_csv(args));
  for (const bool aligned : {true, false}) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.zipf_theta = args.get_double("zipf");
    spec.skew = args.get_double("skew");
    spec.align_zipf_ranks = aligned;
    ccf::bench::apply_common_flags(args, spec);
    report.add(aligned ? "aligned (paper)" : "unaligned",
               ccf::bench::run_paper_systems(ccf::data::generate_workload(spec)));
  }
  report.print("traffic by alignment", "communication time by alignment");

  std::cout << "\nWith unaligned ranks Mini no longer floods one node, but "
               "CCF still wins:\nco-optimization helps beyond the paper's "
               "adversarial-for-Mini generator.\n";
  return 0;
}
