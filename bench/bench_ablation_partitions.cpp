// Ablation (§IV-A3): the paper sets p = 15n "because increasing the value of
// p would let us have a more fine-grained control on data assignment". This
// bench sweeps the p/n ratio.
//
// Note on the generator: with the paper's rank-ALIGNED Zipf chunks every
// partition has the identical cross-node shape, making partitions
// interchangeable — granularity then has no effect on any scheduler (we
// verified this; the curves are flat). The fine-grained-control argument
// only bites when partitions are heterogeneous, so this ablation uses the
// unaligned generator (each partition's largest chunk on a random node).
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ablation_partitions",
                            "p/n ratio ablation (why the paper picks 15)");
  args.add_flag("nodes", "200", "number of nodes");
  args.add_flag("ratio", "1:31:5", "p/n ratio sweep lo:hi:step");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  ccf::bench::add_common_flags(args);
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  std::cout << "Partition-granularity ablation (" << nodes
            << " nodes, zipf=" << args.get("zipf") << ", skew="
            << args.get("skew") << ")\n\n";

  ccf::bench::FigureReport report("p/n", ccf::bench::open_csv(args));
  for (const auto ratio : args.get_int_sweep("ratio")) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.partitions = nodes * static_cast<std::size_t>(ratio);
    spec.zipf_theta = args.get_double("zipf");
    spec.skew = args.get_double("skew");
    spec.align_zipf_ranks = false;  // heterogeneous partitions (see header)
    ccf::bench::apply_common_flags(args, spec);
    report.add(std::to_string(ratio),
               ccf::bench::run_paper_systems(ccf::data::generate_workload(spec)));
  }
  report.print("traffic vs p/n", "communication time vs p/n");

  std::cout << "\nFiner partitions give the co-optimizer more placement "
               "freedom; gains flatten near the paper's p = 15n.\n";
  return 0;
}
