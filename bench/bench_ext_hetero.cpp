// Extension bench: heterogeneous port capacities (stragglers). The paper's
// general model (1) carries per-link capacities R_l before specializing to
// uniform ports; this bench quantifies what honoring them is worth.
//
// One node's INGRESS (NIC RX) runs at a fraction of the others' speed.
// Placement can fully route around a slow receiver — byte-based CCF keeps
// assigning it 1/n of the partitions, capacity-aware CCF assigns it almost
// none. (A slow EGRESS port is different: the node's resident data must
// leave through it no matter what the scheduler decides, so placement
// cannot help — we verified this; the two schedulers tie exactly there.)
#include <iostream>

#include "core/ccf.hpp"
#include "join/hetero_scheduler.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_hetero",
                            "Straggler NIC: byte-based vs capacity-aware CCF");
  args.add_flag("nodes", "100", "number of nodes");
  args.add_flag("slow-fraction", "0.1:0.9:0.2",
                "straggler speed as a fraction of the normal rate (sweep)");
  args.add_flag("zipf", "0.0",
                "Zipf factor (0 = balanced residency, where a straggler binds; "
                "with aligned high zipf, node 0's egress dominates instead)");
  args.add_flag("skew", "0.0", "skew fraction");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
  spec.customer_bytes = 90e9 * static_cast<double>(nodes) / 500.0;
  spec.orders_bytes = 900e9 * static_cast<double>(nodes) / 500.0;
  spec.zipf_theta = args.get_double("zipf");
  spec.skew = args.get_double("skew");
  const auto workload = ccf::data::generate_workload(spec);
  const auto prepared = ccf::core::apply_partial_duplication(workload, true);
  const auto problem = prepared.problem();

  std::cout << "Straggler bench: " << nodes << " nodes, node " << nodes / 2
            << " degraded, " << ccf::util::format_bytes(workload.matrix.total())
            << " join\n\n";

  ccf::util::Table t({"straggler speed", "CCF blind (s)", "CCF aware (s)",
                      "gain"});
  for (const double frac : args.get_double_sweep("slow-fraction")) {
    const std::vector<double> egress_caps(nodes,
                                          ccf::net::Fabric::kDefaultPortRate);
    std::vector<double> ingress_caps(nodes,
                                     ccf::net::Fabric::kDefaultPortRate);
    ingress_caps[nodes / 2] = ccf::net::Fabric::kDefaultPortRate * frac;
    const ccf::net::Fabric fabric(egress_caps, ingress_caps);

    auto cct_of = [&](ccf::join::PartitionScheduler& sched) {
      const auto dest = sched.schedule(problem);
      const auto flows = ccf::join::assignment_flows(
          prepared.residual, dest, prepared.initial_flows);
      ccf::net::Simulator sim(fabric, ccf::net::make_allocator("madd"));
      sim.add_coflow(ccf::net::CoflowSpec("c", 0.0, std::move(flows)));
      return sim.run().coflows[0].cct();
    };
    ccf::join::CcfScheduler blind;
    ccf::join::HeteroCcfScheduler aware(fabric);
    const double t_blind = cct_of(blind);
    const double t_aware = cct_of(aware);
    t.add_row({ccf::util::format_fixed(frac * 100.0, 0) + "%",
               ccf::util::format_fixed(t_blind, 1),
               ccf::util::format_fixed(t_aware, 1),
               ccf::util::format_fixed(t_blind / t_aware, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nThe byte-based greedy treats all ports alike, so the slow "
               "receiver becomes the time\nbottleneck; normalizing loads by "
               "capacity (model (1)'s R_l) routes around it.\n";
  return 0;
}
