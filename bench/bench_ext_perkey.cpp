// Extension bench (footnote 6): track-join reasons about data movement at
// per-KEY granularity; the paper notes CCF "can be also extended to that
// level". Partition granularity is a free knob in this implementation —
// per-key scheduling is simply p = |key domain| with f(k) = k mod p — so
// this bench runs the same tuple-level join at coarse (p = n), paper
// (p = 15n) and per-key granularity and reports what the extra freedom buys.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_perkey",
                            "Per-key scheduling granularity (track-join level)");
  args.add_flag("sf", "0.02", "TPC-H scale factor (keys = 150000*sf)");
  args.add_flag("nodes", "10", "number of computing nodes");
  args.add_flag("zipf", "0.8", "Zipf placement factor");
  args.parse(argc, argv);

  ccf::data::TpchConfig cfg;
  cfg.scale_factor = args.get_double("sf");
  cfg.nodes = static_cast<std::size_t>(args.get_int("nodes"));
  cfg.zipf_theta = args.get_double("zipf");
  const auto customer = ccf::data::generate_customer(cfg);
  const auto orders = ccf::data::generate_orders(cfg);
  const std::size_t keys = cfg.customer_rows();

  std::cout << "Granularity sweep: " << orders.tuple_count() << " orders, "
            << keys << " keys, " << cfg.nodes << " nodes\n\n";

  const ccf::net::Fabric fabric(cfg.nodes, 1e8);
  ccf::util::Table t({"granularity", "partitions", "Mini traffic",
                      "Mini CCT", "CCF traffic", "CCF CCT"});
  for (const auto& [label, p] :
       {std::pair<const char*, std::size_t>{"coarse (p = n)", cfg.nodes},
        {"paper (p = 15n)", 15 * cfg.nodes},
        {"per-key (track-join)", keys + 1}}) {
    const auto matrix = ccf::data::build_chunk_matrix(customer, orders, p);
    ccf::opt::AssignmentProblem problem;
    problem.matrix = &matrix;
    auto run = [&](const char* name) {
      const auto dest = ccf::join::make_scheduler(name)->schedule(problem);
      const auto flows = ccf::join::assignment_flows(matrix, dest);
      return std::pair{flows.traffic(), ccf::net::gamma_bound(flows, fabric)};
    };
    const auto [mini_traffic, mini_cct] = run("mini");
    const auto [ccf_traffic, ccf_cct] = run("ccf");
    t.add_row({label, std::to_string(p),
               ccf::util::format_bytes(mini_traffic),
               ccf::util::format_seconds(mini_cct),
               ccf::util::format_bytes(ccf_traffic),
               ccf::util::format_seconds(ccf_cct)});
  }
  t.print(std::cout);

  std::cout << "\nFiner granularity lets Mini save more traffic and gives CCF "
               "more placement freedom;\nper-key scheduling is the "
               "track-join operating point the paper's footnote refers to.\n";
  return 0;
}
