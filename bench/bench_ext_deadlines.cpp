// Extension bench: deadline-aware coflow scheduling (Varys §5.3, cited by
// the paper's related work as "meeting coflow deadlines"). A batch of
// CCF-placed join coflows arrives with deadlines drawn as a multiple of each
// coflow's minimum completion time; we compare admission/deadline-met rates
// across allocators.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_deadlines",
                            "Deadline admission & satisfaction by allocator");
  args.add_flag("nodes", "50", "number of nodes");
  args.add_flag("coflows", "12", "number of deadline coflows");
  args.add_flag("stagger", "30", "mean seconds between arrivals");
  args.add_flag("tightness", "2.0",
                "deadline = tightness x the coflow's lone-Γ (lower = harder)");
  args.add_flag("seed", "5", "rng seed");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  const auto count = static_cast<std::size_t>(args.get_int("coflows"));
  const double tightness = args.get_double("tightness");
  ccf::util::Pcg32 rng(
      ccf::util::derive_seed(static_cast<std::uint64_t>(args.get_int("seed")), 61),
      61);

  // Build CCF-placed coflows of varying size with deadlines.
  const ccf::net::Fabric fabric(nodes);
  struct Prepared {
    std::string name;
    double arrival;
    double deadline;
    ccf::net::FlowMatrix flows;
  };
  std::vector<Prepared> batch;
  double arrival = 0.0;
  for (std::size_t c = 0; c < count; ++c) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    const double scale = rng.uniform(0.005, 0.05);
    spec.customer_bytes *= scale;
    spec.orders_bytes *= scale;
    spec.seed = 400 + c;
    const auto workload = ccf::data::generate_workload(spec);
    const auto prepared = ccf::core::apply_partial_duplication(workload, true);
    const auto problem = prepared.problem();
    const auto dest = ccf::join::CcfScheduler().schedule(problem);
    auto flows = ccf::join::assignment_flows(prepared.residual, dest,
                                             prepared.initial_flows);
    const double lone_gamma = ccf::net::gamma_bound(flows, fabric);
    batch.push_back({"c" + std::to_string(c), arrival,
                     tightness * lone_gamma, std::move(flows)});
    arrival += rng.uniform(0.0, 2.0 * args.get_double("stagger"));
  }

  std::cout << "Deadline bench: " << count << " CCF-placed coflows on "
            << nodes << " nodes, deadline = " << tightness
            << "x lone-coflow optimum\n\n";

  ccf::util::Table t({"allocator", "admitted", "deadlines met", "avg CCT",
                      "bytes delivered"});
  for (const char* name : {"varys-edf", "varys", "madd", "aalo", "fair"}) {
    ccf::net::Simulator sim(fabric, ccf::net::make_allocator(name));
    for (const Prepared& p : batch) {
      ccf::net::CoflowSpec spec(p.name, p.arrival, p.flows);
      spec.deadline = p.deadline;
      sim.add_coflow(std::move(spec));
    }
    const auto r = sim.run();
    std::size_t admitted = 0, met = 0;
    double cct_sum = 0.0;
    std::size_t cct_count = 0;
    for (const auto& c : r.coflows) {
      if (!c.rejected) {
        ++admitted;
        cct_sum += c.cct();
        ++cct_count;
      }
      if (c.met_deadline()) ++met;
    }
    t.add_row({name,
               std::to_string(admitted) + "/" + std::to_string(count),
               std::to_string(met) + "/" + std::to_string(count),
               ccf::util::format_seconds(
                   cct_count ? cct_sum / static_cast<double>(cct_count) : 0.0),
               ccf::util::format_bytes(r.total_bytes)});
  }
  t.print(std::cout);

  std::cout << "\nvarys-edf trades admission for certainty: everything it "
               "admits finishes on time,\nwhile deadline-blind policies "
               "deliver all bytes but miss deadlines unpredictably.\n";
  return 0;
}
