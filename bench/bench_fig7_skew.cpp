// Figure 7: Hash / Mini / CCF over data skewness (0..50%) at 500 nodes,
// zipf = 0.8, SF600, p = 15n.
//
// Paper's observations to reproduce (§IV-B3):
//   (a) traffic of Mini and CCF falls linearly with skew (partial duplication
//       pins the skewed tuples); Hash falls only slightly;
//   (b) time: Hash rises sharply (hot ingress port), Mini and CCF fall
//       linearly; CCF speedup 12.8x over Mini and 1.1-12.8x over Hash; at
//       skew = 0 CCF is still ~50 s faster than Hash.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_fig7_skew",
                            "Reproduces Fig. 7(a)/(b): sweep over skewness");
  args.add_flag("nodes", "500", "number of nodes");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.0:0.5:0.1", "skew sweep lo:hi:step");
  ccf::bench::add_common_flags(args);
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  std::cout << "Figure 7 — varying the data skewness (" << nodes
            << " nodes, zipf=" << args.get("zipf") << ")\n\n";

  ccf::bench::FigureReport report("skew", ccf::bench::open_csv(args));
  ccf::bench::FigurePoint at_zero{};
  for (const double skew : args.get_double_sweep("skew")) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.zipf_theta = args.get_double("zipf");
    spec.skew = skew;
    ccf::bench::apply_common_flags(args, spec);
    const auto point =
        ccf::bench::run_paper_systems(ccf::data::generate_workload(spec));
    report.add(ccf::util::format_fixed(skew * 100.0, 0) + "%", point);
    if (skew == 0.0) at_zero = point;
  }
  report.print("Fig. 7(a) network traffic", "Fig. 7(b) communication time");

  std::cout << "\nPaper reports: Hash time rising sharply with skew; Mini/CCF "
               "falling linearly;\nat skew=0 CCF is still ~50 s faster than "
               "Hash. Measured at skew=0: CCF is "
            << ccf::util::format_fixed(at_zero.hash.time_s - at_zero.ccf.time_s, 1)
            << " s faster than Hash.\n";
  return 0;
}
