// Shared harness for the figure-reproduction benches: run the paper's three
// systems (Hash / Mini / CCF) on one workload point and collect the two
// metrics every figure reports — network traffic (GB) and network
// communication time (s) — plus optional CSV output.
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/workload.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace ccf::bench {

/// Metrics of one (workload, system) run.
struct SystemPoint {
  double traffic_gb = 0.0;
  double time_s = 0.0;
  double schedule_s = 0.0;
};

/// One sweep point: the three systems the paper compares.
struct FigurePoint {
  SystemPoint hash;
  SystemPoint mini;
  SystemPoint ccf;

  double speedup_over_hash() const { return hash.time_s / ccf.time_s; }
  double speedup_over_mini() const { return mini.time_s / ccf.time_s; }
};

/// Run Hash, Mini and CCF on the workload exactly as the paper configures
/// them (optimal coflow schedule for all; skew handling for Mini and CCF).
inline FigurePoint run_paper_systems(const data::Workload& workload) {
  auto run = [&workload](const char* name) {
    const core::RunReport r = core::run_pipeline(
        workload, core::PipelineOptions::paper_system(name));
    return SystemPoint{r.traffic_bytes / 1e9, r.cct_seconds,
                       r.schedule_seconds};
  };
  FigurePoint p;
  p.hash = run("hash");
  p.mini = run("mini");
  p.ccf = run("ccf");
  return p;
}

/// Evaluate one FigurePoint per spec, concurrently where cores allow (each
/// point generates its own workload and owns all of its state). Order is
/// preserved. Worker count is capped to bound peak memory — a 1000-node
/// point holds a ~120 MB chunk matrix plus a residual copy.
inline std::vector<FigurePoint> run_paper_systems_sweep(
    const std::vector<data::WorkloadSpec>& specs) {
  std::vector<FigurePoint> points(specs.size());
  util::parallel_for(
      specs.size(),
      [&](std::size_t i) {
        points[i] = run_paper_systems(data::generate_workload(specs[i]));
      },
      /*threads=*/4);
  return points;
}

/// Standard flags shared by the figure benches.
inline void add_common_flags(util::ArgParser& args) {
  args.add_flag("csv", "", "also write the series to this CSV file");
  args.add_flag("customer-bytes", "90G",
                "CUSTOMER relation size (paper: 90 GB at SF600)");
  args.add_flag("orders-bytes", "900G",
                "ORDERS relation size (paper: 900 GB at SF600)");
  args.add_flag("seed", "42", "master RNG seed");
}

inline void apply_common_flags(const util::ArgParser& args,
                               data::WorkloadSpec& spec) {
  spec.customer_bytes = util::parse_scaled(args.get("customer-bytes"));
  spec.orders_bytes = util::parse_scaled(args.get("orders-bytes"));
  spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
}

/// Open the optional CSV sink.
inline std::optional<util::CsvWriter> open_csv(const util::ArgParser& args) {
  const std::string path = args.get("csv");
  if (path.empty()) return std::nullopt;
  return util::CsvWriter(path);
}

/// The standard two-table output of a figure bench: (a) traffic, (b) time.
class FigureReport {
 public:
  FigureReport(std::string x_label, std::optional<util::CsvWriter> csv)
      : x_label_(std::move(x_label)),
        traffic_({x_label_, "Hash (GB)", "Mini (GB)", "CCF (GB)"}),
        time_({x_label_, "Hash (s)", "Mini (s)", "CCF (s)", "CCF vs Hash",
               "CCF vs Mini"}),
        csv_(std::move(csv)) {
    if (csv_) {
      csv_->header({x_label_, "hash_traffic_gb", "mini_traffic_gb",
                    "ccf_traffic_gb", "hash_time_s", "mini_time_s",
                    "ccf_time_s"});
    }
  }

  void add(const std::string& x, const FigurePoint& p) {
    traffic_.add_row({x, util::format_fixed(p.hash.traffic_gb, 1),
                      util::format_fixed(p.mini.traffic_gb, 1),
                      util::format_fixed(p.ccf.traffic_gb, 1)});
    time_.add_row({x, util::format_fixed(p.hash.time_s, 1),
                   util::format_fixed(p.mini.time_s, 1),
                   util::format_fixed(p.ccf.time_s, 1),
                   util::format_fixed(p.speedup_over_hash(), 1) + "x",
                   util::format_fixed(p.speedup_over_mini(), 1) + "x"});
    if (csv_) {
      csv_->row({x, util::format_fixed(p.hash.traffic_gb, 4),
                 util::format_fixed(p.mini.traffic_gb, 4),
                 util::format_fixed(p.ccf.traffic_gb, 4),
                 util::format_fixed(p.hash.time_s, 4),
                 util::format_fixed(p.mini.time_s, 4),
                 util::format_fixed(p.ccf.time_s, 4)});
    }
  }

  void print(const std::string& fig_a, const std::string& fig_b) {
    std::cout << "--- " << fig_a << " ---\n";
    traffic_.print(std::cout);
    std::cout << "\n--- " << fig_b << " ---\n";
    time_.print(std::cout);
  }

 private:
  std::string x_label_;
  util::Table traffic_;
  util::Table time_;
  std::optional<util::CsvWriter> csv_;
};

}  // namespace ccf::bench
