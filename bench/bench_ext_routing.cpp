// Extension bench: joint routing + scheduling on a multi-path leaf-spine
// fabric (the RAPIER direction of the paper's §V). Two workloads, both with
// oversubscribed uplinks:
//
//  (a) a CCF-placed TPC-H join coflow — CCF balances per-node loads so well
//      that even static ECMP hashing splits the uplinks evenly: routing is
//      nearly moot (a finding about co-optimized placement!);
//  (b) a heavy-tailed MapReduce-style shuffle from the synthetic trace
//      generator — few huge flows dominate, static hashing collides them on
//      the same spine links, and volume-aware least-loaded routing wins.
#include <iostream>

#include "core/ccf.hpp"
#include "net/multipath.hpp"
#include "net/trace.hpp"
#include "util/cli.hpp"
#include "util/zipf.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

struct RoutingRow {
  double ecmp_cct = 0.0;
  double ll_cct = 0.0;
};

RoutingRow run_point(const std::shared_ptr<const ccf::net::MultiPathFabric>& f,
                     const ccf::net::FlowMatrix& flows) {
  auto cct_for = [&](const ccf::net::Routing& routing) {
    const auto net =
        std::make_shared<const ccf::net::RoutedNetwork>(f, routing);
    ccf::net::Simulator sim(net, ccf::net::make_allocator("madd"));
    sim.add_coflow(ccf::net::CoflowSpec("c", 0.0, flows));
    return sim.run().coflows[0].cct();
  };
  return RoutingRow{cct_for(ccf::net::route_ecmp(*f, flows)),
                    cct_for(ccf::net::route_least_loaded(*f, flows))};
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_ext_routing",
                            "ECMP vs least-loaded routing on leaf-spine");
  args.add_flag("racks", "6", "number of racks");
  args.add_flag("hosts", "10", "hosts per rack");
  args.add_flag("spines", "1:6:1", "spine-count sweep");
  args.add_flag("oversub", "3", "uplink oversubscription factor");
  args.add_flag("seed", "2", "rng seed for the heavy-tailed shuffle");
  args.parse(argc, argv);

  const auto racks = static_cast<std::size_t>(args.get_int("racks"));
  const auto hosts = static_cast<std::size_t>(args.get_int("hosts"));
  const std::size_t nodes = racks * hosts;
  const double oversub = args.get_double("oversub");

  // Workload (a): CCF-placed join.
  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
  spec.customer_bytes = 90e9 * static_cast<double>(nodes) / 500.0;
  spec.orders_bytes = 900e9 * static_cast<double>(nodes) / 500.0;
  const auto workload = ccf::data::generate_workload(spec);
  const auto prepared = ccf::core::apply_partial_duplication(workload, true);
  const auto problem = prepared.problem();
  const auto dest = ccf::join::CcfScheduler().schedule(problem);
  const auto join_flows = ccf::join::assignment_flows(
      prepared.residual, dest, prepared.initial_flows);

  // Workload (b): one wide heavy-tailed shuffle at rack granularity,
  // blown up onto hosts (rack r -> host r*hosts).
  ccf::util::Pcg32 rng(
      ccf::util::derive_seed(static_cast<std::uint64_t>(args.get_int("seed")), 95),
      95);
  ccf::net::SyntheticTraceOptions topts;
  topts.racks = racks;
  topts.coflows = 1;
  topts.heavy_fraction = 1.0;
  topts.heavy_mb_min = 20e3;
  topts.heavy_mb_max = 120e3;
  const auto trace = ccf::net::generate_synthetic_trace(topts, rng);
  const auto rack_specs = ccf::net::to_coflow_specs(trace);
  // Blow the rack-level matrix up onto hosts: each rack pair's volume is
  // split across `hosts` host pairs with heavy-tailed (Zipf) shares, like a
  // skewed reducer distribution — a few fat flows dominate each pair.
  ccf::net::FlowMatrix shuffle(nodes);
  const auto shares = ccf::util::zipf_weights(hosts, 1.5);
  for (std::size_t i = 0; i < racks; ++i) {
    for (std::size_t j = 0; j < racks; ++j) {
      if (i == j) continue;
      const double volume = rack_specs[0].flows.volume(i, j);
      if (volume <= 0.0) continue;
      for (std::size_t s = 0; s < hosts; ++s) {
        const auto src = i * hosts + rng.bounded(static_cast<std::uint32_t>(hosts));
        const auto dst = j * hosts + rng.bounded(static_cast<std::uint32_t>(hosts));
        if (src != dst) shuffle.add(src, dst, volume * shares[s]);
      }
    }
  }

  std::cout << "Routing extension: " << racks << " racks x " << hosts
            << " hosts, uplinks oversubscribed " << oversub << ":1\n"
            << "(a) CCF join coflow: "
            << ccf::util::format_bytes(join_flows.traffic())
            << "   (b) heavy-tailed shuffle: "
            << ccf::util::format_bytes(shuffle.traffic()) << "\n\n";

  const double total_uplink = static_cast<double>(hosts) *
                              ccf::net::Fabric::kDefaultPortRate / oversub;

  ccf::util::Table t({"spines", "(a) ECMP", "(a) least-loaded", "(a) gain",
                      "(b) ECMP", "(b) least-loaded", "(b) gain"});
  for (const auto spines : args.get_int_sweep("spines")) {
    const auto fabric = std::make_shared<const ccf::net::MultiPathFabric>(
        racks, hosts, static_cast<std::size_t>(spines),
        ccf::net::Fabric::kDefaultPortRate,
        total_uplink / static_cast<double>(spines));
    const RoutingRow a = run_point(fabric, join_flows);
    const RoutingRow b = run_point(fabric, shuffle);
    t.add_row({std::to_string(spines), ccf::util::format_seconds(a.ecmp_cct),
               ccf::util::format_seconds(a.ll_cct),
               ccf::util::format_fixed(a.ecmp_cct / a.ll_cct, 2) + "x",
               ccf::util::format_seconds(b.ecmp_cct),
               ccf::util::format_seconds(b.ll_cct),
               ccf::util::format_fixed(b.ecmp_cct / b.ll_cct, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nCo-optimized placement (a) equalizes rack loads, leaving "
               "little for routing to fix;\nlumpy shuffles (b) are where "
               "volume-aware routing (RAPIER's regime) pays off.\n";
  return 0;
}
