// Figure 5: Hash / Mini / CCF over the number of nodes (100..1000),
// zipf = 0.8, skew = 20%, TPC-H SF600 (~1 TB), p = 15n.
//
// Paper's observations to reproduce (§IV-B1):
//   (a) traffic: Mini < CCF < Hash at every node count;
//   (b) time: Mini slowest by far (all data flushed to node 0), CCF fastest;
//       CCF speedup 8.1-15.2x over Mini and 2.1-3.7x over Hash.
#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("bench_fig5_nodes",
                            "Reproduces Fig. 5(a)/(b): sweep over #nodes");
  args.add_flag("nodes", "100:1000:100", "node sweep lo:hi:step");
  args.add_flag("zipf", "0.8", "Zipf factor");
  args.add_flag("skew", "0.2", "skew fraction");
  ccf::bench::add_common_flags(args);
  args.parse(argc, argv);

  std::cout << "Figure 5 — varying the number of nodes (zipf="
            << args.get("zipf") << ", skew=" << args.get("skew") << ")\n\n";

  const auto sweep = args.get_int_sweep("nodes");
  std::vector<ccf::data::WorkloadSpec> specs;
  for (const auto n : sweep) {
    ccf::data::WorkloadSpec spec =
        ccf::data::WorkloadSpec::paper_default(static_cast<std::size_t>(n));
    spec.zipf_theta = args.get_double("zipf");
    spec.skew = args.get_double("skew");
    ccf::bench::apply_common_flags(args, spec);
    specs.push_back(spec);
  }
  const auto points = ccf::bench::run_paper_systems_sweep(specs);

  ccf::bench::FigureReport report("nodes", ccf::bench::open_csv(args));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    report.add(std::to_string(sweep[i]), points[i]);
  }
  const ccf::bench::FigurePoint first = points.front();
  const ccf::bench::FigurePoint last = points.back();
  report.print("Fig. 5(a) network traffic", "Fig. 5(b) communication time");

  std::cout << "\nPaper reports: traffic Mini < CCF < Hash; CCF speedup "
               "8.1-15.2x over Mini, 2.1-3.7x over Hash.\n"
            << "Measured speedup range over this sweep: "
            << ccf::util::format_fixed(
                   std::min(first.speedup_over_hash(), last.speedup_over_hash()), 1)
            << "-"
            << ccf::util::format_fixed(
                   std::max(first.speedup_over_hash(), last.speedup_over_hash()), 1)
            << "x over Hash, "
            << ccf::util::format_fixed(
                   std::min(first.speedup_over_mini(), last.speedup_over_mini()), 1)
            << "-"
            << ccf::util::format_fixed(
                   std::max(first.speedup_over_mini(), last.speedup_over_mini()), 1)
            << "x over Mini (endpoints).\n";
  return 0;
}
