// Distributed aggregation and duplicate elimination — the "other distributed
// operators" the paper's introduction says CCF applies to. Runs a COUNT
// group-by and a DISTINCT over ORDERS at tuple level, with and without the
// combiner (local pre-aggregation), under all three placement schedulers.
//
//   ./aggregation [--sf 0.05] [--nodes 8] [--zipf 0.8]
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("aggregation",
                            "Distributed group-by / distinct under CCF");
  args.add_flag("sf", "0.05", "TPC-H scale factor");
  args.add_flag("nodes", "8", "number of computing nodes");
  args.add_flag("zipf", "0.8", "Zipf factor of tuple placement");
  args.parse(argc, argv);

  ccf::data::TpchConfig cfg;
  cfg.scale_factor = args.get_double("sf");
  cfg.nodes = static_cast<std::size_t>(args.get_int("nodes"));
  cfg.zipf_theta = args.get_double("zipf");
  const auto orders = ccf::data::generate_orders(cfg);
  const std::size_t partitions = 15 * cfg.nodes;
  constexpr std::uint32_t kRecordBytes = 16;

  const auto truth_groups = ccf::join::reference_group_counts(orders);
  const auto truth_distinct = ccf::join::reference_distinct_count(orders);
  std::cout << "ORDERS: " << orders.tuple_count() << " tuples, "
            << truth_groups.size() << " groups over " << cfg.nodes
            << " nodes\n\n";

  const ccf::net::Fabric fabric(cfg.nodes, 1e8);
  ccf::util::Table t({"operator", "scheduler", "combiner", "traffic",
                      "comm. time", "correct"});
  for (const bool combine : {false, true}) {
    const auto matrix = ccf::join::aggregation_chunk_matrix(
        orders, partitions, combine, kRecordBytes);
    ccf::opt::AssignmentProblem problem;
    problem.matrix = &matrix;
    for (const char* name : {"hash", "mini", "ccf"}) {
      const auto dest = ccf::join::make_scheduler(name)->schedule(problem);
      const auto agg = ccf::join::execute_distributed_aggregation(
          orders, partitions, dest, combine, kRecordBytes);
      const bool agg_ok = agg.group_counts.size() == truth_groups.size();
      t.add_row({"group-by", name, combine ? "yes" : "no",
                 ccf::util::format_bytes(agg.flows.traffic()),
                 ccf::util::format_seconds(
                     ccf::net::gamma_bound(agg.flows, fabric)),
                 agg_ok ? "yes" : "NO"});

      const auto dis = ccf::join::execute_distributed_distinct(
          orders, partitions, dest, combine, kRecordBytes);
      const bool dis_ok = dis.distinct_keys == truth_distinct;
      t.add_row({"distinct", name, combine ? "yes" : "no",
                 ccf::util::format_bytes(dis.flows.traffic()),
                 ccf::util::format_seconds(
                     ccf::net::gamma_bound(dis.flows, fabric)),
                 dis_ok ? "yes" : "NO"});
    }
  }
  t.print(std::cout);

  std::cout << "\nThe shuffle of an aggregation is the same placement problem "
               "as a join's:\nCCF's co-optimization applies unchanged, and "
               "the combiner shrinks the chunk\nmatrix the optimizer sees.\n";
  return 0;
}
