// The paper's §II motivating example, executed through the real stack.
//
// Three nodes hold the key multisets of Fig. 1; three application-level plans
// (SP0 = hash, SP1 = suboptimal traffic, SP2 = minimal traffic) are turned
// into coflows and simulated on unit-capacity ports, reproducing:
//   * the traffic costs 8 / 7 / 6 tuples of Fig. 1, and
//   * the optimal-coflow CCTs 4 / 3 / 4 time units of Fig. 2,
// then CCF's Algorithm 1 discovers the T=3 plan by itself.
#include <iostream>

#include "core/ccf.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

ccf::data::ChunkMatrix fig1_matrix() {
  // Keys written key^frequency: Node0: 1^3 2 0^3, Node1: 1^6 2^2 5, Node2:
  // 5^2 0. Partitioned by f(k) = k mod 6 so each key is its own partition.
  ccf::data::DistributedRelation rel("FIG1", 3);
  auto add = [&rel](std::size_t node, std::uint64_t key, int count) {
    for (int c = 0; c < count; ++c) {
      rel.shard(node).add(ccf::data::Tuple{key, 1});  // 1 byte == 1 tuple
    }
  };
  add(0, 1, 3); add(0, 2, 1); add(0, 0, 3);
  add(1, 1, 6); add(1, 2, 2); add(1, 5, 1);
  add(2, 5, 2); add(2, 0, 1);
  return ccf::data::build_chunk_matrix(rel, 6);
}

double simulate_cct(const ccf::data::ChunkMatrix& m,
                    const std::vector<std::uint32_t>& dest) {
  ccf::net::Simulator sim(ccf::net::Fabric(3, 1.0),
                          ccf::net::make_allocator("madd"));
  sim.add_coflow(ccf::net::CoflowSpec("sp", 0.0,
                                      ccf::join::assignment_flows(m, dest)));
  return sim.run().coflows[0].cct();
}

}  // namespace

int main() {
  const auto m = fig1_matrix();
  ccf::join::AssignmentProblem problem;
  problem.matrix = &m;

  // The three schedule plans of Fig. 1 (partitions 3 and 4 are empty).
  const std::vector<std::uint32_t> sp0 = {0, 1, 2, 0, 1, 2};  // hash
  const std::vector<std::uint32_t> sp1 = {0, 1, 0, 0, 0, 2};  // Fig. 2(c)
  const std::vector<std::uint32_t> sp2 = {0, 1, 1, 0, 0, 2};  // traffic-min
  const auto ccf_plan = ccf::join::CcfScheduler().schedule(problem);

  std::cout << "Fig. 1 / Fig. 2 motivating example (3 nodes, unit-capacity "
               "ports, 1 tuple = 1 byte)\n\n";
  ccf::util::Table t({"plan", "traffic (tuples)", "optimal-coflow CCT",
                      "paper says"});
  auto row = [&](const char* name, const std::vector<std::uint32_t>& dest,
                 const char* paper) {
    const auto flows = ccf::join::assignment_flows(m, dest);
    t.add_row({name, ccf::util::format_fixed(flows.traffic(), 0),
               ccf::util::format_fixed(simulate_cct(m, dest), 0), paper});
  };
  row("SP0 (hash)", sp0, "traffic 8, CCT 4");
  row("SP1 (suboptimal)", sp1, "traffic 7, CCT 3");
  row("SP2 (optimal traffic)", sp2, "traffic 6, CCT 4");
  row("CCF (Algorithm 1)", ccf_plan, "should match SP1's CCT 3");
  t.print(std::cout);

  std::cout << "\nThe co-optimization point of the paper: SP1 moves MORE data "
               "than SP2 yet finishes FASTER\nunder an optimal coflow "
               "schedule — and CCF finds that plan automatically.\n";
  return 0;
}
