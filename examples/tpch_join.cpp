// Tuple-level distributed TPC-H join: generates real CUSTOMER/ORDERS tuples,
// injects skew, runs the whole CCF pipeline for each system AND executes the
// join tuple-by-tuple on the simulated cluster, verifying that every
// placement produces the identical (correct) join result.
//
//   ./tpch_join [--sf 0.05] [--nodes 8] [--skew 0.2] [--zipf 0.8]
//
// This is the end-to-end path: data -> hash partitioning -> skew handling ->
// placement scheduling -> tuple redistribution -> local hash joins.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("tpch_join", "Tuple-level distributed join demo");
  args.add_flag("sf", "0.05", "TPC-H scale factor (paper: 600)");
  args.add_flag("nodes", "8", "number of computing nodes");
  args.add_flag("skew", "0.2", "fraction of ORDERS rewritten to custkey 1");
  args.add_flag("zipf", "0.8", "Zipf factor of tuple placement");
  args.parse(argc, argv);

  ccf::data::TpchConfig cfg;
  cfg.scale_factor = args.get_double("sf");
  cfg.nodes = static_cast<std::size_t>(args.get_int("nodes"));
  cfg.zipf_theta = args.get_double("zipf");

  std::cout << "Generating TPC-H data at SF " << cfg.scale_factor << ": "
            << cfg.customer_rows() << " customers, " << cfg.orders_rows()
            << " orders over " << cfg.nodes << " nodes...\n";
  auto customer = ccf::data::generate_customer(cfg);
  auto orders = ccf::data::generate_orders(cfg);

  const double skew = args.get_double("skew");
  if (skew > 0.0) {
    ccf::util::Pcg32 rng(cfg.seed, 99);
    const auto rewritten = ccf::data::inject_skew(orders, skew, 1, rng);
    std::cout << "Injected skew: " << rewritten
              << " orders rewritten to custkey 1\n";
  }

  const std::size_t partitions = 15 * cfg.nodes;  // the paper's ratio
  const auto workload =
      ccf::data::workload_from_tuples(customer, orders, partitions, 1);
  const auto truth = ccf::join::reference_join_cardinality(customer, orders);
  std::cout << "Reference join cardinality: " << truth << " tuples\n\n";

  ccf::util::Table t({"system", "traffic", "comm. time", "result tuples",
                      "correct"});
  for (const char* name : {"hash", "mini", "ccf"}) {
    const auto opts = ccf::core::PipelineOptions::paper_system(name);
    const auto report = ccf::core::run_pipeline(workload, opts);

    // Execute the same placement decision at tuple level.
    const auto prepared =
        ccf::core::apply_partial_duplication(workload, opts.skew_handling);
    const auto problem = prepared.problem();
    const auto dest = ccf::join::make_scheduler(name)->schedule(problem);
    const auto exec = ccf::join::execute_distributed_join(
        customer, orders, partitions, dest,
        opts.skew_handling ? &workload.skew : nullptr);

    t.add_row({name, ccf::util::format_bytes(exec.flows.traffic()),
               ccf::util::format_seconds(report.cct_seconds),
               std::to_string(exec.result_tuples),
               exec.result_tuples == truth ? "yes" : "NO"});
    if (exec.result_tuples != truth) {
      std::cerr << "ERROR: " << name << " produced a wrong join result!\n";
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nAll placements produce the identical, correct join result; "
               "only the network cost differs.\n";
  return 0;
}
