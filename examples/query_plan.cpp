// A TPC-H-Q3-shaped analytical query as a DAG of co-optimized operators —
// the paper's future-work scenario ("more complex workloads, e.g.,
// analytical queries"). The plan:
//
//     scan+join CUSTOMER⋈ORDERS ──┐
//                                 ├──> join with LINEITEM ──> aggregate
//     scan LINEITEM (repartition)─┘
//
// Each stage's shuffle is placed by CCF; stage arrivals are resolved by
// run_query()'s fixed-point iteration over simulated completions.
//
//   ./query_plan [--nodes 40] [--scheduler ccf]
#include <iostream>

#include "core/ccf.hpp"
#include "core/query.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("query_plan",
                            "A Q3-shaped query DAG under co-optimization");
  args.add_flag("nodes", "40", "number of computing nodes");
  args.add_flag("scheduler", "ccf", "placement policy for all stages");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  auto stage = [&](std::uint64_t seed, double scale) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    spec.customer_bytes *= 0.01 * scale;
    spec.orders_bytes *= 0.01 * scale;
    spec.seed = seed;
    return spec;
  };

  const std::vector<ccf::core::QueryStage> plan = {
      {"customer⋈orders", stage(1, 1.0), {}, 5.0},
      {"repartition lineitem", stage(2, 2.0), {}, 3.0},
      {"⋈ lineitem", stage(3, 0.8), {0, 1}, 4.0},
      {"group-by & top-k", stage(4, 0.1), {2}, 2.0},
  };

  ccf::core::QueryOptions opts;
  opts.job.scheduler = args.get("scheduler");

  std::cout << "Query plan on " << nodes << " nodes (placement: "
            << opts.job.scheduler << ")\n\n";
  const ccf::core::QueryReport r = ccf::core::run_query(plan, opts);

  ccf::util::Table t({"stage", "ready at", "completed at", "shuffle CCT",
                      "traffic"});
  for (const auto& s : r.stages) {
    t.add_row({s.name, ccf::util::format_seconds(s.ready),
               ccf::util::format_seconds(s.completion),
               ccf::util::format_seconds(s.cct()),
               ccf::util::format_bytes(s.traffic_bytes)});
  }
  t.print(std::cout);
  std::cout << "\nQuery makespan: " << ccf::util::format_seconds(r.makespan)
            << " (arrival fixed point after " << r.iterations
            << " simulation rounds)\n";
  return 0;
}
