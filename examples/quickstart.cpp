// Quickstart: schedule one distributed join with CCF and compare it against
// the Hash and Mini baselines on a paper-style workload.
//
//   ./quickstart [--nodes 100] [--zipf 0.8] [--skew 0.2]
//
// Prints, per system, the network traffic and the simulated network
// communication time (CCT) — the two metrics of the paper's evaluation.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("quickstart",
                            "One CCF-vs-baselines join comparison");
  args.add_flag("nodes", "100", "number of computing nodes");
  args.add_flag("zipf", "0.8", "Zipf factor of per-node chunk sizes");
  args.add_flag("skew", "0.2", "fraction of ORDERS rewritten to the hot key");
  args.parse(argc, argv);

  // 1. Describe the workload: TPC-H SF600 CUSTOMER ⋈ ORDERS, p = 15n
  //    partitions, chunk sizes Zipf-distributed across nodes.
  ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(
      static_cast<std::size_t>(args.get_int("nodes")));
  spec.zipf_theta = args.get_double("zipf");
  spec.skew = args.get_double("skew");
  const ccf::data::Workload workload = ccf::data::generate_workload(spec);

  std::cout << "Workload: " << ccf::util::format_bytes(workload.matrix.total())
            << " over " << spec.nodes << " nodes, " << spec.partitions
            << " partitions (zipf=" << spec.zipf_theta
            << ", skew=" << spec.skew << ")\n\n";

  // 2. Run the three systems of the paper's evaluation. All of them get the
  //    optimal coflow schedule (MADD); Mini and CCF get skew handling.
  ccf::util::Table table({"system", "traffic", "comm. time", "schedule time"});
  double ccf_time = 0.0, hash_time = 0.0, mini_time = 0.0;
  for (const char* name : {"hash", "mini", "ccf"}) {
    const ccf::core::RunReport r = ccf::core::run_pipeline(
        workload, ccf::core::PipelineOptions::paper_system(name));
    table.add_row({name, ccf::util::format_bytes(r.traffic_bytes),
                   ccf::util::format_seconds(r.cct_seconds),
                   ccf::util::format_seconds(r.schedule_seconds)});
    if (std::string(name) == "ccf") ccf_time = r.cct_seconds;
    if (std::string(name) == "hash") hash_time = r.cct_seconds;
    if (std::string(name) == "mini") mini_time = r.cct_seconds;
  }
  table.print(std::cout);

  std::cout << "\nCCF speedup: " << ccf::util::format_fixed(hash_time / ccf_time, 2)
            << "x over Hash, " << ccf::util::format_fixed(mini_time / ccf_time, 2)
            << "x over Mini\n";
  return 0;
}
