// Multi-operator analytical job with online coflows — the architecture of
// Fig. 3 ("an analytical job is decomposed into sequential distributed data
// operators") plus the paper's future-work direction: several operators'
// coflows overlapping on the fabric under different inter-coflow schedulers.
//
//   ./analytics_job [--nodes 50] [--operators 4] [--stagger 10]
//
// Compares FIFO+MADD, Varys (SEBF), Aalo (D-CLAS) and per-flow fair sharing
// on the same CCF-scheduled job.
#include <iostream>

#include "core/ccf.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  ccf::util::ArgParser args("analytics_job",
                            "Online coflows from a multi-join job");
  args.add_flag("nodes", "50", "number of computing nodes");
  args.add_flag("operators", "4", "number of join operators in the job");
  args.add_flag("stagger", "10", "seconds between operator arrivals");
  args.parse(argc, argv);

  const auto nodes = static_cast<std::size_t>(args.get_int("nodes"));
  const auto op_count = static_cast<std::size_t>(args.get_int("operators"));
  const double stagger = args.get_double("stagger");

  // A star-schema-ish job: one big fact join then smaller dimension joins.
  std::vector<ccf::core::OperatorSpec> ops;
  for (std::size_t i = 0; i < op_count; ++i) {
    ccf::data::WorkloadSpec spec = ccf::data::WorkloadSpec::paper_default(nodes);
    const double shrink = 1.0 / static_cast<double>(1 + i);  // later ops smaller
    spec.customer_bytes *= 0.01 * shrink;
    spec.orders_bytes *= 0.01 * shrink;
    spec.seed = 100 + i;
    ops.push_back(ccf::core::OperatorSpec{
        "op" + std::to_string(i), stagger * static_cast<double>(i), spec});
  }

  std::cout << "Job: " << op_count << " join operators on " << nodes
            << " nodes, arrivals staggered by " << stagger << " s\n\n";

  ccf::util::Table t({"inter-coflow scheduler", "avg CCT", "job makespan"});
  for (const auto& [name, label] :
       {std::pair{"madd", "FIFO+MADD"},
        std::pair{"varys", "Varys (SEBF)"},
        std::pair{"aalo", "Aalo (D-CLAS)"},
        std::pair{"sincronia", "Sincronia (BSSI)"},
        std::pair{"fair", "fair sharing"}}) {
    ccf::core::JobOptions opts;
    opts.scheduler = "ccf";
    opts.allocator = name;
    const auto report = ccf::core::run_job(ops, opts);
    t.add_row({label, ccf::util::format_seconds(report.sim.average_cct()),
               ccf::util::format_seconds(report.sim.makespan)});
  }
  t.print(std::cout);

  std::cout << "\nCCF's placement layer is agnostic to the coflow scheduler "
               "underneath —\nany of these can serve as the data processing "
               "layer of Fig. 3.\n";
  return 0;
}
