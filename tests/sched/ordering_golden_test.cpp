// Hand-computed golden instances for the ordering schedulers
// (sched/ordering.hpp). Every expected value below is derived by hand from
// the Sincronia primal–dual recursion and the MADD / max-min drain kernels —
// no quantity is copied from program output — so a regression in the
// bottleneck selection, the weight-scaling step, the dual accumulation or
// the permutation-respecting drain shows up as a concrete wrong number, not
// just a violated inequality.
//
// Instance 1 — "2x2": two coflows over one contended egress port.
//   Fabric n=2, unit rates. A: 0->1 volume 2, weight 1. B: 0->1 volume 1,
//   weight 1. Both arrive at 0.
//   Primal–dual (k = 2): port loads l0 = 3 (egress 0), l3 = 3 (ingress 1);
//   tie broken to the smallest LinkId, b = 0. Ratios w̃/t: A = 1/2, B = 1/1;
//   A attains the min, so A is scheduled LAST, alpha = 1/2 and the dual gains
//   alpha * (sum t^2 + (sum t)^2)/2 = 0.5 * (5 + 9)/2 = 3.5. B's weight
//   shrinks to 1 - 0.5*1 = 0.5. (k = 1): only B, alpha = 0.5, dual gains
//   0.5 * (1+1)/2 = 0.5. sigma = [B, A], dual = 4.
//   Drain (either kernel — one flow each, same port): B at rate 1 finishes
//   at 1, A is starved until 1 then finishes at 3. Weighted CCT = 1 + 3 = 4,
//   so achieved = dual exactly: the certificate is tight here.
//
// Instance 2 — "divisible": Sincronia's divisible-instance example. Fabric
//   n=2, unit rates, all weights 1, all arrivals 0.
//     c0: 0->1 volume 1.    c1: 1->0 volume 1.    c2: both flows, volume 1.
//   Primal–dual (k = 3): every port loaded 2, b = 0 (egress 0); ratios
//   c0 = 1, c2 = 1, tie to the smaller index: c0 last, alpha = 1,
//   dual += (2 + 4)/2 = 3, c2's weight hits 0. (k = 2): loads l1 = 2 is the
//   max, column has c1 (ratio 1) and c2 (ratio 0): c2 next-to-last,
//   alpha = 0. (k = 1): c1 first, alpha = 1, dual += 1. sigma = [c1, c2, c0],
//   dual = 4. The isolation bound is 3 and every per-port WSPT bound is 3,
//   so best() must pick the dual.
//   MADD drain: c1 drains 1->0 at rate 1; c2 is blocked behind it (its 1->0
//   flow shares ingress 0) so MADD's bottleneck pacing gives it rate 0; c0
//   backfills 0->1 at rate 1. At t=1 c1 and c0 finish, c2 runs both flows at
//   rate 1 and finishes at 2. Weighted CCT = 1 + 2 + 1 = 4 = dual.
//   Max-min drain differs: c2, second in sigma, grabs its unblocked 0->1
//   flow at rate 1, starving c0 entirely. At t=1 c1 and c2's 0->1 flow are
//   done; the recomputed order drains the two remaining single-flow coflows
//   in parallel, both finishing at 2. Weighted CCT = 1 + 2 + 2 = 5 — the
//   per-coflow greedy drain is measurably worse than MADD on this instance,
//   which is exactly why the kernel is an explicit knob.
#include "sched/ordering.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/registry.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/metrics.hpp"
#include "net/simulator.hpp"

namespace ccf::sched {
namespace {

net::FlowMatrix single_flow(std::size_t src, std::size_t dst, double volume) {
  net::FlowMatrix m(2);
  m.set(src, dst, volume);
  return m;
}

// The 2x2 instance as an OrderingProblem over Fabric(2)'s four links
// (egress 0, egress 1, ingress 0, ingress 1 = LinkIds 0..3).
OrderingProblem make_2x2_problem() {
  OrderingProblem p;
  const std::vector<double> caps = {1.0, 1.0, 1.0, 1.0};
  p.reset(caps);
  const std::vector<std::uint32_t> links = {0, 3};  // egress 0, ingress 1
  const std::vector<double> load_a = {2.0, 2.0};
  const std::vector<double> load_b = {1.0, 1.0};
  p.add_coflow(1.0, links, load_a);  // coflow 0 = A
  p.add_coflow(1.0, links, load_b);  // coflow 1 = B
  return p;
}

OrderingProblem make_divisible_problem() {
  OrderingProblem p;
  const std::vector<double> caps = {1.0, 1.0, 1.0, 1.0};
  p.reset(caps);
  const std::vector<std::uint32_t> fwd = {0, 3};  // 0->1: egress 0, ingress 1
  const std::vector<std::uint32_t> rev = {1, 2};  // 1->0: egress 1, ingress 0
  const std::vector<double> unit = {1.0, 1.0};
  const std::vector<std::uint32_t> both = {0, 1, 2, 3};
  const std::vector<double> both_load = {1.0, 1.0, 1.0, 1.0};
  p.add_coflow(1.0, fwd, unit);        // c0
  p.add_coflow(1.0, rev, unit);        // c1
  p.add_coflow(1.0, both, both_load);  // c2
  return p;
}

double simulate_wcct(const std::string& allocator,
                     const std::vector<net::CoflowSpec>& specs) {
  net::Simulator sim(net::Fabric(2, 1.0),
                     core::registry::make_allocator(allocator));
  for (const net::CoflowSpec& spec : specs) sim.add_coflow(spec);
  return net::total_weighted_cct(sim.run());
}

std::vector<net::CoflowSpec> specs_2x2() {
  net::CoflowSpec a("A", 0.0, single_flow(0, 1, 2.0));
  net::CoflowSpec b("B", 0.0, single_flow(0, 1, 1.0));
  return {a, b};
}

std::vector<net::CoflowSpec> specs_divisible() {
  net::CoflowSpec c0("c0", 0.0, single_flow(0, 1, 1.0));
  net::CoflowSpec c1("c1", 0.0, single_flow(1, 0, 1.0));
  net::FlowMatrix both(2);
  both.set(0, 1, 1.0);
  both.set(1, 0, 1.0);
  net::CoflowSpec c2("c2", 0.0, std::move(both));
  return {c0, c1, c2};
}

TEST(OrderingGolden, SincroniaOrders2x2ShortestFirst) {
  const OrderingProblem p = make_2x2_problem();
  std::vector<std::uint32_t> order;
  double dual = 0.0;
  sincronia_order(p, order, &dual);
  // B (the short coflow) first, A last; dual computed by hand above.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_NEAR(dual, 4.0, 1e-12);
}

TEST(OrderingGolden, LpOrderMatchesOn2x2) {
  // WSPT priorities: A = 1/2, B = 1. The fractional packing finishes B in
  // the first interval and A across the later ones, so the rounded order is
  // the same [B, A].
  const OrderingProblem p = make_2x2_problem();
  std::vector<std::uint32_t> order;
  lp_order(p, order);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST(OrderingGolden, LowerBoundOn2x2IsTight) {
  const OrderingLowerBound lb = ordering_lower_bound(make_2x2_problem());
  EXPECT_NEAR(lb.dual, 4.0, 1e-12);
  // Isolation: Gamma_A + Gamma_B = 2 + 1. Per-port WSPT on egress 0 (and
  // identically ingress 1): B then A = 1 + 3 = 4.
  EXPECT_NEAR(lb.isolation, 3.0, 1e-12);
  EXPECT_NEAR(lb.wspt, 4.0, 1e-12);
  EXPECT_NEAR(lb.best(), 4.0, 1e-12);
}

TEST(OrderingGolden, SimulatedWeightedCctOn2x2MatchesHandComputation) {
  // One flow per coflow on one contended port: both drain kernels and both
  // registered ordering allocators must reproduce wcct = 4 exactly (and
  // thus meet the dual lower bound with ratio 1).
  for (const char* name : {"sincronia", "lp-order"}) {
    EXPECT_NEAR(simulate_wcct(name, specs_2x2()), 4.0, 1e-9) << name;
  }
}

TEST(OrderingGolden, SincroniaOrdersDivisibleInstance) {
  const OrderingProblem p = make_divisible_problem();
  std::vector<std::uint32_t> order;
  double dual = 0.0;
  sincronia_order(p, order, &dual);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // c1 first
  EXPECT_EQ(order[1], 2u);  // c2 second
  EXPECT_EQ(order[2], 0u);  // c0 last
  EXPECT_NEAR(dual, 4.0, 1e-12);
}

TEST(OrderingGolden, LowerBoundOnDivisibleInstancePrefersDual) {
  const OrderingLowerBound lb = ordering_lower_bound(make_divisible_problem());
  EXPECT_NEAR(lb.dual, 4.0, 1e-12);
  EXPECT_NEAR(lb.isolation, 3.0, 1e-12);
  EXPECT_NEAR(lb.wspt, 3.0, 1e-12);
  EXPECT_NEAR(lb.best(), 4.0, 1e-12);
}

TEST(OrderingGolden, DrainKernelsDifferOnDivisibleInstance) {
  // Same permutation, different drains: MADD's bottleneck pacing leaves
  // egress 0 for c0 to backfill (wcct 4, matching the dual); the per-coflow
  // max-min drain lets c2 grab egress 0 and starve c0 (wcct 5).
  auto run = [&](OrderedDrain drain) {
    net::Simulator sim(net::Fabric(2, 1.0),
                       make_ordered_allocator("sincronia", drain));
    for (const net::CoflowSpec& spec : specs_divisible()) sim.add_coflow(spec);
    return net::total_weighted_cct(sim.run());
  };
  EXPECT_NEAR(run(OrderedDrain::kMadd), 4.0, 1e-9);
  EXPECT_NEAR(run(OrderedDrain::kMaxMin), 5.0, 1e-9);
  // Both stay within the 4x guarantee of the lower bound (4.0).
}

TEST(OrderingGolden, RegisteredAllocatorUsesMaddDrain) {
  // The registry resolves "sincronia" to the MADD-drain decorator — the
  // kernel the 4x analysis composes with — so the registered allocator must
  // reproduce the kMadd golden value, not the max-min one.
  EXPECT_NEAR(simulate_wcct("sincronia", specs_divisible()), 4.0, 1e-9);
}

TEST(OrderingGolden, WeightsSteerTheOrder) {
  // Reweight the 2x2 instance so the long coflow dominates: with w_A = 10,
  // A's ratio 10/2 = 5 beats B's 1/1 and A goes FIRST. wcct = 10*2 + 1*3.
  OrderingProblem p;
  const std::vector<double> caps = {1.0, 1.0, 1.0, 1.0};
  p.reset(caps);
  const std::vector<std::uint32_t> links = {0, 3};
  const std::vector<double> load_a = {2.0, 2.0};
  const std::vector<double> load_b = {1.0, 1.0};
  p.add_coflow(10.0, links, load_a);
  p.add_coflow(1.0, links, load_b);
  std::vector<std::uint32_t> order;
  sincronia_order(p, order);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);

  auto specs = specs_2x2();
  specs[0].weight = 10.0;
  EXPECT_NEAR(simulate_wcct("sincronia", specs), 23.0, 1e-9);
}

}  // namespace
}  // namespace ccf::sched
