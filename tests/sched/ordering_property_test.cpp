// Determinism properties of the ordering schedulers (sched/ordering.hpp).
// The ordering layer sits in front of the drain kernels, so any
// nondeterminism here (tie-breaks falling on pointer order, a reduction
// whose result depends on thread interleaving) silently breaks the Engine's
// reproducible-drain contract. The suite pins:
//   * sincronia_order / lp_order are pure functions: repeated calls on the
//     same problem return the identical permutation and bit-identical dual;
//   * simulations through the registered ordering allocators are
//     bit-identical across runs and across parallel_advance_threshold
//     settings (1 forces the util::parallel fan-out on every epoch, the
//     default keeps small epochs sequential);
//   * Engine drains with an ordering allocator are identical across
//     placement thread counts.
// Runs under the tsan_smoke label, so the threaded variants execute under
// TSan in the sanitizer CI job.
#include "sched/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "data/workload.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::sched {
namespace {

// A random sparse instance: `coflows` coflows over `links` ports, each
// touching 1..4 ports with loads in [0.1, 8) and weight in [0.25, 4).
OrderingProblem random_problem(std::uint64_t seed, std::uint32_t coflows,
                               std::uint32_t links) {
  util::Pcg32 rng(util::derive_seed(seed, 131), 131);
  std::vector<double> caps(links);
  for (double& c : caps) c = rng.uniform(0.5, 2.0);
  OrderingProblem p;
  p.reset(caps);
  std::vector<std::uint32_t> touched;
  std::vector<double> loads;
  for (std::uint32_t c = 0; c < coflows; ++c) {
    touched.clear();
    loads.clear();
    const std::uint32_t fan = 1 + rng.bounded(4);
    for (std::uint32_t f = 0; f < fan; ++f) {
      const std::uint32_t link = rng.bounded(links);
      if (std::ranges::find(touched, link) != touched.end()) continue;
      touched.push_back(link);
      loads.push_back(rng.uniform(0.1, 8.0));
    }
    p.add_coflow(rng.uniform(0.25, 4.0), touched, loads);
  }
  return p;
}

bool is_permutation_of_all(const std::vector<std::uint32_t>& order,
                           std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const std::uint32_t c : order) {
    if (c >= n || seen[c]) return false;
    seen[c] = true;
  }
  return true;
}

TEST(OrderingProperty, OrderingsArePureFunctionsOfTheProblem) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const OrderingProblem p = random_problem(seed, 12, 9);
    std::vector<std::uint32_t> first_sin, first_lp;
    double first_dual = 0.0;
    sincronia_order(p, first_sin, &first_dual);
    lp_order(p, first_lp);
    ASSERT_TRUE(is_permutation_of_all(first_sin, p.coflow_count()));
    ASSERT_TRUE(is_permutation_of_all(first_lp, p.coflow_count()));
    EXPECT_GT(first_dual, 0.0);
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<std::uint32_t> sin, lp;
      double dual = 0.0;
      sincronia_order(p, sin, &dual);
      lp_order(p, lp);
      EXPECT_EQ(sin, first_sin) << "seed " << seed;
      EXPECT_EQ(lp, first_lp) << "seed " << seed;
      EXPECT_EQ(dual, first_dual) << "seed " << seed;  // bit-identical
    }
  }
}

// Random coflows on a flat fabric; arrivals staggered so membership changes
// mid-run and the decorator's order-recompute path is exercised.
std::vector<net::CoflowSpec> random_specs(std::uint64_t seed,
                                          std::size_t nodes,
                                          std::size_t coflows) {
  util::Pcg32 rng(util::derive_seed(seed, 577), 577);
  std::vector<net::CoflowSpec> specs;
  for (std::size_t c = 0; c < coflows; ++c) {
    net::FlowMatrix m(nodes);
    const std::size_t flows = 1 + rng.bounded(5);
    for (std::size_t f = 0; f < flows; ++f) {
      const std::size_t src = rng.bounded(static_cast<std::uint32_t>(nodes));
      std::size_t dst = rng.bounded(static_cast<std::uint32_t>(nodes));
      if (dst == src) dst = (dst + 1) % nodes;
      m.add(src, dst, rng.uniform(1.0, 50.0));
    }
    net::CoflowSpec spec("c" + std::to_string(c),
                         c % 3 == 0 ? 0.0 : rng.uniform(0.0, 5.0),
                         std::move(m));
    spec.weight = rng.uniform(0.25, 4.0);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<double> completions(const net::SimReport& report) {
  std::vector<double> out;
  for (const auto& c : report.coflows) out.push_back(c.completion);
  return out;
}

TEST(OrderingProperty, SimulationIsBitIdenticalAcrossAdvanceThresholds) {
  for (const char* allocator : {"sincronia", "lp-order"}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      std::vector<std::vector<double>> runs;
      for (const std::size_t threshold : {std::size_t{1}, std::size_t{1} << 30,
                                          std::size_t{1}}) {
        net::SimConfig config;
        config.parallel_advance_threshold = threshold;
        net::Simulator sim(net::Fabric(8, 1.0),
                           make_ordered_allocator(allocator), config);
        for (auto& spec : random_specs(seed, 8, 14)) {
          sim.add_coflow(std::move(spec));
        }
        runs.push_back(completions(sim.run()));
      }
      // threshold=1 forces the parallel advance on every epoch; the huge
      // threshold keeps it sequential; the repeat checks run-to-run
      // stability. All three must agree to the bit.
      EXPECT_EQ(runs[0], runs[1]) << allocator << " seed " << seed;
      EXPECT_EQ(runs[0], runs[2]) << allocator << " seed " << seed;
    }
  }
}

TEST(OrderingProperty, MaxMinDrainIsDeterministicToo) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<std::vector<double>> runs;
    for (int rep = 0; rep < 2; ++rep) {
      net::Simulator sim(
          net::Fabric(6, 1.0),
          make_ordered_allocator("sincronia", OrderedDrain::kMaxMin));
      for (auto& spec : random_specs(seed, 6, 10)) {
        sim.add_coflow(std::move(spec));
      }
      runs.push_back(completions(sim.run()));
    }
    EXPECT_EQ(runs[0], runs[1]) << "seed " << seed;
  }
}

TEST(OrderingProperty, EngineDrainIsIdenticalAcrossPlacementThreads) {
  data::WorkloadSpec wspec;
  wspec.nodes = 4;
  wspec.partitions = 8;
  wspec.customer_bytes = 4e6;
  wspec.orders_bytes = 4e7;
  wspec.zipf_theta = 0.8;
  wspec.skew = 0.3;
  auto drain_ccts = [&](std::size_t threads) {
    core::EngineOptions opts;
    opts.nodes = 4;
    opts.allocator = "sincronia";
    opts.placement_threads = threads;
    core::Engine engine(opts);
    for (std::uint64_t q = 0; q < 6; ++q) {
      wspec.seed = 100 + q;
      core::QuerySpec query("q" + std::to_string(q),
                            data::generate_workload(wspec));
      query.weight = static_cast<double>(1 + q % 3);
      engine.submit(std::move(query));
    }
    const core::EngineReport epoch = engine.drain();
    std::vector<double> ccts;
    for (const auto& run : epoch.queries) ccts.push_back(run.cct_seconds);
    ccts.push_back(epoch.makespan);
    return ccts;
  };
  const std::vector<double> one = drain_ccts(1);
  const std::vector<double> four = drain_ccts(4);
  const std::vector<double> hw = drain_ccts(0);  // hardware concurrency
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, hw);
}

}  // namespace
}  // namespace ccf::sched
