// The ratio-verifying comparison bench for the ordering schedulers — the
// executable form of Sincronia's approximation guarantee.
//
// For every swept instance (topology x workload family x seed, all arrivals
// at 0 so the lower bounds apply) the test computes the certificate
//   LB = max(dual, isolation, per-port WSPT)
// from sched::ordering_lower_bound and simulates the instance under every
// registered rate allocator. Soundness cuts both ways:
//   * LB <= achieved for EVERY policy. Each component of LB is a valid
//     lower bound on the optimal weighted CCT (weak LP duality for the
//     dual, per-coflow isolation, single-machine WSPT per port), so any
//     simulated schedule falling below it means either a lower-bound bug or
//     a simulator that moves bytes faster than the fabric allows.
//   * achieved <= 4 x dual for "sincronia". The primal–dual analysis bounds
//     the BSSI ordering composed with any work-conserving order-respecting
//     rate allocation by 4 x the dual objective. Since dual <= LB, this is
//     the TIGHTER form of the guarantee — asserting against 4 x dual implies
//     the 4 x LB form and catches more.
// The classic policies (varys, aalo, madd, fair) get the lower-bound assert
// only; their ratios are reported for comparison, not bounded — Varys's
// SEBF has no constant-factor guarantee and instances exist where it loses.
#include "sched/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "net/fabric.hpp"
#include "net/flow.hpp"
#include "net/metrics.hpp"
#include "net/rack.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ccf::sched {
namespace {

struct Instance {
  std::string label;
  std::shared_ptr<const net::Network> network;
  std::vector<net::CoflowSpec> coflows;  // all arrivals 0, varied weights
};

// Workload families. All volumes are O(1..50) bytes on unit-rate ports so
// CCTs are O(seconds) and tolerances are meaningful.
enum class Family { kUniform, kIncast, kMixed };

const char* family_name(Family f) {
  switch (f) {
    case Family::kUniform: return "uniform";
    case Family::kIncast: return "incast";
    case Family::kMixed: return "mixed";
  }
  return "?";
}

net::CoflowSpec make_coflow(util::Pcg32& rng, std::size_t nodes, Family family,
                            std::size_t index) {
  net::FlowMatrix m(nodes);
  const auto pick = [&](std::size_t avoid) {
    std::size_t node = rng.bounded(static_cast<std::uint32_t>(nodes));
    if (node == avoid) node = (node + 1) % nodes;
    return node;
  };
  switch (family) {
    case Family::kUniform: {
      const std::size_t flows = 1 + rng.bounded(6);
      for (std::size_t f = 0; f < flows; ++f) {
        const std::size_t src = rng.bounded(static_cast<std::uint32_t>(nodes));
        m.add(src, pick(src), rng.uniform(1.0, 40.0));
      }
      break;
    }
    case Family::kIncast: {
      // Everyone sends to one hot receiver — the port-contended regime the
      // bottleneck charging argument is about.
      const std::size_t dst = rng.bounded(static_cast<std::uint32_t>(nodes));
      const std::size_t senders = 2 + rng.bounded(4);
      for (std::size_t s = 0; s < senders; ++s) {
        m.add(pick(dst), dst, rng.uniform(2.0, 30.0));
      }
      break;
    }
    case Family::kMixed: {
      if (index % 2 == 0) {
        // Thin coflow: one short flow (the kind an unweighted FIFO hurts).
        const std::size_t src = rng.bounded(static_cast<std::uint32_t>(nodes));
        m.add(src, pick(src), rng.uniform(1.0, 5.0));
      } else {
        // Fat shuffle touching most ports.
        for (std::size_t src = 0; src < nodes; ++src) {
          if (rng.uniform01() < 0.7) m.add(src, pick(src),
                                           rng.uniform(5.0, 50.0));
        }
      }
      break;
    }
  }
  net::CoflowSpec spec("c" + std::to_string(index), 0.0, std::move(m));
  spec.weight = rng.uniform(0.25, 4.0);
  return spec;
}

std::vector<Instance> sweep_instances() {
  std::vector<Instance> out;
  struct Topo {
    std::string label;
    std::shared_ptr<const net::Network> network;
    std::size_t nodes;
  };
  // A flat 6-port big switch and an oversubscribed 3x2 rack fabric (the
  // uplinks become the bottleneck ports the dual charges).
  std::vector<Topo> topologies;
  topologies.push_back({"flat6", std::make_shared<net::Fabric>(6, 1.0), 6});
  topologies.push_back(
      {"rack3x2", std::make_shared<net::RackFabric>(3, 2, 1.0, 2.0), 6});
  for (const Topo& topo : topologies) {
    for (const Family family : {Family::kUniform, Family::kIncast,
                                Family::kMixed}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        util::Pcg32 rng(util::derive_seed(seed, 311), 311);
        Instance inst;
        inst.label = topo.label + "/" + family_name(family) + "/s" +
                     std::to_string(seed);
        inst.network = topo.network;
        const std::size_t coflows = 6 + rng.bounded(6);
        for (std::size_t c = 0; c < coflows; ++c) {
          inst.coflows.push_back(make_coflow(rng, topo.nodes, family, c));
        }
        out.push_back(std::move(inst));
      }
    }
  }
  return out;
}

OrderingProblem problem_of(const Instance& inst) {
  OrderingProblem p;
  std::vector<double> caps(inst.network->link_count());
  for (std::size_t l = 0; l < caps.size(); ++l) {
    caps[l] = inst.network->link_capacity(static_cast<net::Network::LinkId>(l));
  }
  p.reset(caps);
  for (const net::CoflowSpec& spec : inst.coflows) {
    p.add_coflow(spec.weight, spec.flows, *inst.network);
  }
  return p;
}

double simulate_wcct(const Instance& inst, const std::string& allocator) {
  net::Simulator sim(inst.network, core::registry::make_allocator(allocator));
  for (const net::CoflowSpec& spec : inst.coflows) sim.add_coflow(spec);
  const net::SimReport report = sim.run();
  return net::total_weighted_cct(report);
}

// The simulator truncates a flow when its remaining volume drops below
// completion_epsilon bytes, so a simulated CCT can sit a hair below the
// analytic one; the relative slack covers that, nothing more.
constexpr double kLbSlack = 1e-6;

TEST(OrderingRatio, EveryPolicyRespectsTheLowerBoundAndSincroniaIsWithin4x) {
  const std::vector<std::string> policies = {"sincronia", "lp-order", "varys",
                                             "aalo",      "madd",     "fair"};
  struct Agg {
    double sum_ratio = 0.0;
    double max_ratio = 0.0;
    int count = 0;
  };
  std::map<std::string, Agg> by_policy;
  double sincronia_worst_vs_dual = 0.0;

  for (const Instance& inst : sweep_instances()) {
    const OrderingProblem problem = problem_of(inst);
    const OrderingLowerBound lb = ordering_lower_bound(problem);
    ASSERT_GT(lb.dual, 0.0) << inst.label;
    ASSERT_GE(lb.best(), lb.dual) << inst.label;

    for (const std::string& policy : policies) {
      const double wcct = simulate_wcct(inst, policy);
      // Soundness: no schedule beats a valid lower bound on OPT.
      EXPECT_GE(wcct, lb.best() * (1.0 - kLbSlack))
          << inst.label << " policy=" << policy << " wcct=" << wcct
          << " lb=" << lb.best();
      const double ratio = wcct / lb.best();
      Agg& agg = by_policy[policy];
      agg.sum_ratio += ratio;
      agg.max_ratio = std::max(agg.max_ratio, ratio);
      agg.count += 1;

      if (policy == "sincronia") {
        // The guarantee: BSSI + an order-respecting allocation is within
        // 4x of the dual on every instance, not just on average.
        const double vs_dual = wcct / lb.dual;
        EXPECT_LE(vs_dual, 4.0 * (1.0 + 1e-9))
            << inst.label << " wcct=" << wcct << " dual=" << lb.dual;
        sincronia_worst_vs_dual = std::max(sincronia_worst_vs_dual, vs_dual);
      }
    }
  }

  // Per-policy comparison table (mean / worst ratio vs the certificate).
  std::printf("\n  %-10s %10s %10s  (over %d instances)\n", "policy",
              "mean", "worst", by_policy.begin()->second.count);
  for (const auto& [policy, agg] : by_policy) {
    const double mean = agg.sum_ratio / agg.count;
    std::printf("  %-10s %10.4f %10.4f\n", policy.c_str(), mean,
                agg.max_ratio);
    RecordProperty("mean_ratio_" + policy, std::to_string(mean));
    RecordProperty("worst_ratio_" + policy, std::to_string(agg.max_ratio));
  }
  std::printf("  sincronia worst vs dual: %.4f (guarantee: 4)\n\n",
              sincronia_worst_vs_dual);
  RecordProperty("sincronia_worst_vs_dual",
                 std::to_string(sincronia_worst_vs_dual));

  // The sweep must have exercised every policy on every instance.
  for (const std::string& policy : policies) {
    EXPECT_EQ(by_policy[policy].count, 2 * 3 * 3) << policy;
  }
}

TEST(OrderingRatio, GuaranteeHoldsUnderAdversarialWeights) {
  // Extreme weight spreads (1e-3 .. 1e3) stress the weight-scaling step of
  // the primal–dual recursion; the guarantee is weight-oblivious.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 997), 997);
    Instance inst;
    inst.label = "adversarial/s" + std::to_string(seed);
    inst.network = std::make_shared<net::Fabric>(4, 1.0);
    for (std::size_t c = 0; c < 8; ++c) {
      net::CoflowSpec spec = make_coflow(rng, 4, Family::kUniform, c);
      // Log-uniform weights across six decades.
      spec.weight = std::pow(10.0, rng.uniform(-3.0, 3.0));
      inst.coflows.push_back(std::move(spec));
    }
    const OrderingLowerBound lb = ordering_lower_bound(problem_of(inst));
    const double wcct = simulate_wcct(inst, "sincronia");
    EXPECT_GE(wcct, lb.best() * (1.0 - kLbSlack)) << inst.label;
    EXPECT_LE(wcct, 4.0 * lb.dual * (1.0 + 1e-9))
        << inst.label << " wcct=" << wcct << " dual=" << lb.dual;
  }
}

TEST(OrderingRatio, MaxMinDrainAlsoRespectsTheBounds) {
  // The alternative drain kernel is still order-respecting, so the same
  // two-sided check applies.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Pcg32 rng(util::derive_seed(seed, 499), 499);
    Instance inst;
    inst.network = std::make_shared<net::Fabric>(5, 1.0);
    for (std::size_t c = 0; c < 7; ++c) {
      inst.coflows.push_back(make_coflow(rng, 5, Family::kIncast, c));
    }
    const OrderingLowerBound lb = ordering_lower_bound(problem_of(inst));
    net::Simulator sim(
        inst.network,
        make_ordered_allocator("sincronia", OrderedDrain::kMaxMin));
    for (const net::CoflowSpec& spec : inst.coflows) sim.add_coflow(spec);
    const double wcct = net::total_weighted_cct(sim.run());
    EXPECT_GE(wcct, lb.best() * (1.0 - kLbSlack)) << "seed " << seed;
    EXPECT_LE(wcct, 4.0 * lb.dual * (1.0 + 1e-9))
        << "seed " << seed << " wcct=" << wcct << " dual=" << lb.dual;
  }
}

}  // namespace
}  // namespace ccf::sched
