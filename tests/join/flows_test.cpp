#include "join/flows.hpp"

#include <gtest/gtest.h>

#include "net/metrics.hpp"
#include "opt/model.hpp"
#include "testing/paper_example.hpp"

namespace ccf::join {
namespace {

TEST(AssignmentFlows, PaperSp1Matrix) {
  const auto m = testing::paper_chunk_matrix();
  const auto sp1 = testing::paper_sp1();
  const net::FlowMatrix flows = assignment_flows(m, sp1);
  // Fig. 2(c): p1->p2 3, p2->p1 2, p2->p3 1, p3->p1 1.
  EXPECT_DOUBLE_EQ(flows.volume(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(flows.volume(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(flows.volume(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(flows.volume(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(flows.traffic(), testing::kTrafficSp1);
}

TEST(AssignmentFlows, LocalChunksLandOnDiagonal) {
  const auto m = testing::paper_chunk_matrix();
  const auto sp1 = testing::paper_sp1();
  const net::FlowMatrix flows = assignment_flows(m, sp1);
  EXPECT_DOUBLE_EQ(flows.volume(0, 0), 3.0 + 1.0);  // key0 + key2 stay local
  EXPECT_DOUBLE_EQ(flows.volume(1, 1), 6.0);        // key1's big chunk
  EXPECT_DOUBLE_EQ(flows.volume(2, 2), 2.0);        // key5's big chunk
}

TEST(AssignmentFlows, TrafficAgreesWithModel) {
  const auto m = testing::paper_chunk_matrix();
  opt::AssignmentProblem p;
  p.matrix = &m;
  for (const auto& dest :
       {testing::paper_sp0(), testing::paper_sp1(), testing::paper_sp2()}) {
    const net::FlowMatrix flows = assignment_flows(m, dest);
    EXPECT_DOUBLE_EQ(flows.traffic(), opt::traffic(p, dest));
    // And the port-load bottleneck equals the model's makespan T.
    EXPECT_DOUBLE_EQ(net::port_loads(flows).bottleneck(),
                     opt::makespan(p, dest));
  }
}

TEST(AssignmentFlows, InitialFlowsAreAdded) {
  const auto m = testing::paper_chunk_matrix();
  net::FlowMatrix initial(3);
  initial.set(2, 1, 5.0);
  const auto sp1 = testing::paper_sp1();
  const net::FlowMatrix flows = assignment_flows(m, sp1, initial);
  EXPECT_DOUBLE_EQ(flows.volume(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(flows.traffic(), testing::kTrafficSp1 + 5.0);
}

TEST(AssignmentFlows, Errors) {
  const auto m = testing::paper_chunk_matrix();
  std::vector<std::uint32_t> bad_size = {0, 1};
  EXPECT_THROW(assignment_flows(m, bad_size), std::invalid_argument);
  auto bad_dest = testing::paper_sp1();
  bad_dest[0] = 7;
  EXPECT_THROW(assignment_flows(m, bad_dest), std::invalid_argument);
  EXPECT_THROW(assignment_flows(m, testing::paper_sp1(), net::FlowMatrix(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccf::join
