#include "join/local_join.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "data/tpch.hpp"

namespace ccf::join {
namespace {

using data::Tuple;

TEST(HashTableTest, ProbeCountsMultiplicity) {
  HashTable t;
  t.insert(1);
  t.insert(1);
  t.insert(2);
  EXPECT_EQ(t.probe(1), 2u);
  EXPECT_EQ(t.probe(2), 1u);
  EXPECT_EQ(t.probe(3), 0u);
  EXPECT_EQ(t.distinct_keys(), 2u);
}

TEST(HashJoinCount, EmptyInputs) {
  const std::vector<Tuple> none;
  const std::vector<Tuple> some = {{1, 8}, {2, 8}};
  EXPECT_EQ(hash_join_count(none, some), 0u);
  EXPECT_EQ(hash_join_count(some, none), 0u);
}

TEST(HashJoinCount, CrossProductPerKey) {
  const std::vector<Tuple> build = {{1, 8}, {1, 8}, {2, 8}};
  const std::vector<Tuple> probe = {{1, 8}, {1, 8}, {1, 8}, {2, 8}, {3, 8}};
  // key 1: 2 x 3 = 6; key 2: 1 x 1 = 1; key 3: no match.
  EXPECT_EQ(hash_join_count(build, probe), 7u);
}

TEST(ReferenceJoinCardinality, TpchJoinEqualsOrdersCount) {
  data::TpchConfig cfg;
  cfg.scale_factor = 0.01;
  cfg.nodes = 3;
  const auto customer = generate_customer(cfg);
  const auto orders = generate_orders(cfg);
  // Every order matches exactly one customer.
  EXPECT_EQ(reference_join_cardinality(customer, orders), cfg.orders_rows());
}

TEST(ReferenceJoinCardinality, AgreesWithAnalyticKeyMath) {
  data::DistributedRelation build("B", 2), probe("P", 2);
  build.shard(0).add(Tuple{10, 4});
  build.shard(1).add(Tuple{10, 4});
  build.shard(1).add(Tuple{20, 4});
  probe.shard(0).add(Tuple{10, 4});
  probe.shard(0).add(Tuple{20, 4});
  probe.shard(1).add(Tuple{20, 4});
  // key 10: 2 x 1; key 20: 1 x 2.
  EXPECT_EQ(reference_join_cardinality(build, probe), 4u);
}

}  // namespace
}  // namespace ccf::join
