// Scheduler property sweeps over random instances:
//   (i)   CcfScheduler (O(p·n)) computes the identical assignment to the
//         line-by-line Algorithm 1 reference in opt::greedy_reference.
//   (ii)  Mini's traffic is minimal among all schedulers (it is the
//         per-partition traffic optimum and partitions are independent).
//   (iii) The exact solver's makespan lower-bounds every heuristic.
//   (iv)  Every scheduler returns a structurally valid assignment.
#include <gtest/gtest.h>

#include "data/workload.hpp"
#include "join/schedulers.hpp"
#include "opt/bnb.hpp"
#include "util/rng.hpp"

namespace ccf::join {
namespace {

data::ChunkMatrix random_matrix(std::size_t p, std::size_t n,
                                std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 41), 41);
  data::ChunkMatrix m(p, n);
  for (std::size_t k = 0; k < p; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of dense and sparse chunks, like hash-partitioned data.
      m.set(k, i, rng.uniform01() < 0.8 ? rng.uniform(0.0, 100.0) : 0.0);
    }
  }
  return m;
}

class SchedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedProperty, FastCcfEqualsReferenceAlgorithm1) {
  const std::size_t n = 2 + GetParam() % 9;
  const std::size_t p = 3 * n;
  const auto m = random_matrix(p, n, GetParam());
  AssignmentProblem prob;
  prob.matrix = &m;
  const Assignment fast = CcfScheduler().schedule(prob);
  const Assignment ref = opt::greedy_reference(prob);
  EXPECT_EQ(fast, ref);
}

TEST_P(SchedProperty, FastCcfEqualsReferenceWithInitialLoads) {
  const std::size_t n = 3 + GetParam() % 5;
  const std::size_t p = 2 * n;
  const auto m = random_matrix(p, n, GetParam() + 100);
  util::Pcg32 rng(util::derive_seed(GetParam(), 42), 42);
  AssignmentProblem prob;
  prob.matrix = &m;
  prob.initial_egress.resize(n);
  prob.initial_ingress.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    prob.initial_egress[i] = rng.uniform(0.0, 50.0);
    prob.initial_ingress[i] = rng.uniform(0.0, 50.0);
  }
  EXPECT_EQ(CcfScheduler().schedule(prob), opt::greedy_reference(prob));
}

TEST_P(SchedProperty, MiniTrafficIsMinimal) {
  const std::size_t n = 2 + GetParam() % 7;
  const std::size_t p = 4 * n;
  const auto m = random_matrix(p, n, GetParam() + 200);
  AssignmentProblem prob;
  prob.matrix = &m;
  const double mini = opt::traffic(prob, MiniScheduler().schedule(prob));
  for (const char* name : {"hash", "ccf", "ccf-ls", "random"}) {
    const double t = opt::traffic(prob, make_scheduler(name)->schedule(prob));
    EXPECT_LE(mini, t + 1e-9) << name;
  }
}

TEST_P(SchedProperty, ExactLowerBoundsHeuristics) {
  const std::size_t n = 2 + GetParam() % 2;  // 2..3 nodes (exact stays cheap)
  const std::size_t p = 6;
  const auto m = random_matrix(p, n, GetParam() + 300);
  AssignmentProblem prob;
  prob.matrix = &m;
  ExactScheduler exact;
  const double t_star = opt::makespan(prob, exact.schedule(prob));
  ASSERT_TRUE(exact.last_was_optimal());
  for (const char* name : {"hash", "mini", "ccf", "ccf-ls"}) {
    const double t = opt::makespan(prob, make_scheduler(name)->schedule(prob));
    EXPECT_GE(t, t_star - 1e-9) << name;
  }
}

TEST_P(SchedProperty, AssignmentsAreStructurallyValid) {
  const std::size_t n = 2 + GetParam() % 10;
  const std::size_t p = 5 * n;
  const auto m = random_matrix(p, n, GetParam() + 400);
  AssignmentProblem prob;
  prob.matrix = &m;
  for (const char* name : {"hash", "mini", "ccf", "ccf-ls", "random"}) {
    const Assignment dest = make_scheduler(name)->schedule(prob);
    EXPECT_EQ(dest.size(), p) << name;
    for (const std::uint32_t d : dest) EXPECT_LT(d, n) << name;
  }
}

TEST_P(SchedProperty, CcfMakespanAtMostHashAndMiniOnPaperWorkloads) {
  // Algorithm 1 carries no worst-case guarantee, but on the paper's workload
  // family (Zipf-aligned chunks, p = 15n, optional skew) it consistently
  // dominates both baselines; this is the paper's central claim, guarded here
  // as a regression test with a 2% slack for greedy ties.
  data::WorkloadSpec spec;
  spec.nodes = 4 + GetParam() % 6;
  spec.partitions = 15 * spec.nodes;
  spec.customer_bytes = 1e7;
  spec.orders_bytes = 1e8;
  spec.zipf_theta = 0.4 + 0.06 * static_cast<double>(GetParam());
  spec.skew = 0.05 * static_cast<double>(GetParam() % 4);
  spec.seed = GetParam() + 500;
  const auto w = data::generate_workload(spec);
  AssignmentProblem prob;
  prob.matrix = &w.matrix;
  const double ccf = opt::makespan(prob, CcfScheduler().schedule(prob));
  const double hash = opt::makespan(prob, HashScheduler().schedule(prob));
  const double mini = opt::makespan(prob, MiniScheduler().schedule(prob));
  EXPECT_LE(ccf, hash * 1.02 + 1e-9);
  EXPECT_LE(ccf, mini * 1.02 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ccf::join
