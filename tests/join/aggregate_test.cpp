#include "join/aggregate.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "data/tpch.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"

namespace ccf::join {
namespace {

data::DistributedRelation make_input() {
  data::TpchConfig cfg;
  cfg.scale_factor = 0.01;  // 15000 orders over ~1500 keys
  cfg.nodes = 4;
  cfg.seed = 31;
  return generate_orders(cfg);
}

constexpr std::size_t kPartitions = 60;
constexpr std::uint32_t kRecordBytes = 16;  // (key, count) combiner record

TEST(AggregationChunkMatrix, RawModeMatchesJoinPartitioning) {
  const auto input = make_input();
  const auto m = aggregation_chunk_matrix(input, kPartitions, false, kRecordBytes);
  EXPECT_DOUBLE_EQ(m.total(), static_cast<double>(input.total_bytes()));
}

TEST(AggregationChunkMatrix, CombinerShrinksChunks) {
  const auto input = make_input();
  const auto raw = aggregation_chunk_matrix(input, kPartitions, false, kRecordBytes);
  const auto combined =
      aggregation_chunk_matrix(input, kPartitions, true, kRecordBytes);
  EXPECT_LT(combined.total(), raw.total());
  // Combined total = sum over nodes of distinct keys x record size.
  double expected = 0.0;
  for (std::size_t node = 0; node < input.node_count(); ++node) {
    std::unordered_set<std::uint64_t> keys;
    for (const data::Tuple& t : input.shard(node).tuples()) keys.insert(t.key);
    expected += static_cast<double>(keys.size()) * kRecordBytes;
  }
  EXPECT_DOUBLE_EQ(combined.total(), expected);
}

TEST(DistributedAggregation, CountsMatchReferenceForEveryScheduler) {
  const auto input = make_input();
  const auto truth = reference_group_counts(input);
  const auto m = aggregation_chunk_matrix(input, kPartitions, false, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  for (const char* name : {"hash", "mini", "ccf", "random"}) {
    const auto dest = make_scheduler(name)->schedule(prob);
    for (const bool combine : {false, true}) {
      const auto r = execute_distributed_aggregation(input, kPartitions, dest,
                                                     combine, kRecordBytes);
      EXPECT_EQ(r.group_counts.size(), truth.size()) << name;
      for (const auto& [key, count] : truth) {
        const auto it = r.group_counts.find(key);
        ASSERT_NE(it, r.group_counts.end()) << name << " key " << key;
        EXPECT_EQ(it->second, count) << name << " key " << key;
      }
    }
  }
}

TEST(DistributedAggregation, EachGroupFinalizedOnExactlyOneNode) {
  const auto input = make_input();
  const auto m = aggregation_chunk_matrix(input, kPartitions, true, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  const auto dest = CcfScheduler().schedule(prob);
  const auto r = execute_distributed_aggregation(input, kPartitions, dest, true,
                                                 kRecordBytes);
  std::size_t total_groups = 0;
  for (const auto g : r.groups_per_node) total_groups += g;
  EXPECT_EQ(total_groups, r.group_counts.size());
}

TEST(DistributedAggregation, CombinerReducesTraffic) {
  const auto input = make_input();
  const auto m = aggregation_chunk_matrix(input, kPartitions, false, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  const auto dest = HashScheduler().schedule(prob);
  const auto raw = execute_distributed_aggregation(input, kPartitions, dest,
                                                   false, kRecordBytes);
  const auto combined = execute_distributed_aggregation(input, kPartitions, dest,
                                                        true, kRecordBytes);
  EXPECT_LT(combined.flows.traffic(), 0.1 * raw.flows.traffic());
}

TEST(DistributedAggregation, MeasuredFlowsMatchChunkMatrix) {
  // The analytic chunk matrix drives scheduling; the executor must move
  // exactly the bytes the matrix predicts, in both modes.
  const auto input = make_input();
  for (const bool combine : {false, true}) {
    const auto m =
        aggregation_chunk_matrix(input, kPartitions, combine, kRecordBytes);
    AssignmentProblem prob;
    prob.matrix = &m;
    const auto dest = CcfScheduler().schedule(prob);
    const auto r = execute_distributed_aggregation(input, kPartitions, dest,
                                                   combine, kRecordBytes);
    const auto analytic = assignment_flows(m, dest);
    EXPECT_NEAR(r.flows.traffic(), analytic.traffic(), 1e-6) << combine;
  }
}

TEST(DistributedAggregation, CoOptimizationOrderingHolds) {
  // CCF's placement of the combiner shuffle beats Hash's and Mini's Γ.
  const auto input = make_input();
  const auto m = aggregation_chunk_matrix(input, kPartitions, true, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  const net::Fabric fabric(input.node_count(), 1e6);
  auto gamma_of = [&](const char* name) {
    const auto dest = make_scheduler(name)->schedule(prob);
    return net::gamma_bound(assignment_flows(m, dest), fabric);
  };
  const double ccf = gamma_of("ccf");
  EXPECT_LE(ccf, gamma_of("hash") + 1e-12);
  EXPECT_LE(ccf, gamma_of("mini") + 1e-12);
}

TEST(DistributedDistinct, CountMatchesReferenceForEveryScheduler) {
  const auto input = make_input();
  const auto truth = reference_distinct_count(input);
  const auto m = aggregation_chunk_matrix(input, kPartitions, true, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  for (const char* name : {"hash", "mini", "ccf"}) {
    const auto dest = make_scheduler(name)->schedule(prob);
    for (const bool dedup : {false, true}) {
      const auto r = execute_distributed_distinct(input, kPartitions, dest,
                                                  dedup, kRecordBytes);
      EXPECT_EQ(r.distinct_keys, truth) << name << " dedup=" << dedup;
    }
  }
}

TEST(DistributedDistinct, LocalDedupReducesTraffic) {
  const auto input = make_input();
  const auto m = aggregation_chunk_matrix(input, kPartitions, false, kRecordBytes);
  AssignmentProblem prob;
  prob.matrix = &m;
  const auto dest = HashScheduler().schedule(prob);
  const auto raw = execute_distributed_distinct(input, kPartitions, dest, false,
                                                kRecordBytes);
  const auto dedup = execute_distributed_distinct(input, kPartitions, dest, true,
                                                  kRecordBytes);
  EXPECT_LT(dedup.flows.traffic(), raw.flows.traffic());
}

TEST(Operators, RejectInvalidAssignments) {
  const auto input = make_input();
  std::vector<std::uint32_t> wrong_size(kPartitions + 1, 0);
  EXPECT_THROW(execute_distributed_aggregation(input, kPartitions, wrong_size,
                                               false, kRecordBytes),
               std::invalid_argument);
  std::vector<std::uint32_t> out_of_range(kPartitions, 99);
  EXPECT_THROW(execute_distributed_distinct(input, kPartitions, out_of_range,
                                            false, kRecordBytes),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccf::join
