#include "join/rack_scheduler.hpp"

#include <gtest/gtest.h>

#include "data/workload.hpp"
#include "join/flows.hpp"
#include "net/metrics.hpp"
#include "util/rng.hpp"

namespace ccf::join {
namespace {

// Rack-aware makespan of an assignment = Γ of its flows on the topology.
double rack_makespan(const data::ChunkMatrix& m,
                     const Assignment& dest, const net::RackFabric& topo) {
  return net::gamma_bound(assignment_flows(m, dest), topo);
}

data::ChunkMatrix random_matrix(std::size_t p, std::size_t n,
                                std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 51), 51);
  data::ChunkMatrix m(p, n);
  for (std::size_t k = 0; k < p; ++k) {
    for (std::size_t i = 0; i < n; ++i) m.set(k, i, rng.uniform(0.0, 100.0));
  }
  return m;
}

TEST(RackCcfScheduler, ValidAssignments) {
  const net::RackFabric topo(3, 4, 10.0, 4.0);
  const auto m = random_matrix(24, 12, 1);
  AssignmentProblem prob;
  prob.matrix = &m;
  RackCcfScheduler sched(topo);
  EXPECT_EQ(sched.name(), "ccf-rack");
  const Assignment dest = sched.schedule(prob);
  ASSERT_EQ(dest.size(), 24u);
  for (const auto d : dest) EXPECT_LT(d, 12u);
}

TEST(RackCcfScheduler, TopologySizeMismatchThrows) {
  const net::RackFabric topo(2, 2);
  const auto m = random_matrix(6, 12, 2);
  AssignmentProblem prob;
  prob.matrix = &m;
  RackCcfScheduler sched(topo);
  EXPECT_THROW(sched.schedule(prob), std::invalid_argument);
}

TEST(RackCcfScheduler, MatchesExhaustiveOptimumOnTinyInstance) {
  const net::RackFabric topo(2, 2, 10.0, 4.0);
  const auto m = random_matrix(5, 4, 3);
  AssignmentProblem prob;
  prob.matrix = &m;
  // Exhaustive search over 4^5 = 1024 assignments.
  Assignment dest(5, 0);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t code = 0; code < 1024; ++code) {
    std::size_t c = code;
    for (std::size_t k = 0; k < 5; ++k) {
      dest[k] = static_cast<std::uint32_t>(c % 4);
      c /= 4;
    }
    best = std::min(best, rack_makespan(m, dest, topo));
  }
  const Assignment greedy = RackCcfScheduler(topo).schedule(prob);
  // Greedy is not exact, but must land within 40% of the true optimum on
  // these tiny instances and always produce a consistent T.
  EXPECT_LE(rack_makespan(m, greedy, topo), best * 1.4 + 1e-9);
}

TEST(RackCcfScheduler, BeatsFlatCcfUnderOversubscription) {
  // Heavily oversubscribed uplinks: the flat heuristic ignores them and
  // scatters partitions across racks; the rack-aware one keeps traffic
  // local. Both are greedy, so dominance is statistical: individual seeds
  // may tie within a few percent, but the aggregate must favor rack-aware.
  double flat_total = 0.0, rack_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const net::RackFabric topo(4, 5, 10.0, 8.0);
    data::WorkloadSpec spec;
    spec.nodes = 20;
    spec.partitions = 100;
    spec.customer_bytes = 1e6;
    spec.orders_bytes = 1e7;
    spec.zipf_theta = 0.8;
    spec.skew = 0.0;
    spec.align_zipf_ranks = false;
    spec.seed = 900 + seed;
    const auto w = data::generate_workload(spec);
    AssignmentProblem prob;
    prob.matrix = &w.matrix;
    const double flat =
        rack_makespan(w.matrix, CcfScheduler().schedule(prob), topo);
    const double rack =
        rack_makespan(w.matrix, RackCcfScheduler(topo).schedule(prob), topo);
    EXPECT_LE(rack, flat * 1.05 + 1e-9) << "seed " << seed;
    flat_total += flat;
    rack_total += rack;
  }
  EXPECT_LE(rack_total, flat_total + 1e-9);
}

TEST(RackCcfScheduler, DegeneratesGracefullyOnSingleRack) {
  // One full-bisection rack == the flat fabric: both heuristics should land
  // within a whisker of each other (tie-breaking may differ).
  const net::RackFabric topo(1, 8, 10.0, 1.0);
  const auto m = random_matrix(40, 8, 5);
  AssignmentProblem prob;
  prob.matrix = &m;
  const double flat = rack_makespan(m, CcfScheduler().schedule(prob), topo);
  const double rack = rack_makespan(m, RackCcfScheduler(topo).schedule(prob), topo);
  EXPECT_NEAR(rack, flat, 0.05 * flat);
}

TEST(RackCcfScheduler, AccountsForInitialFlows) {
  const net::RackFabric topo(2, 2, 10.0, 2.0);
  const auto m = random_matrix(8, 4, 6);
  AssignmentProblem prob;
  prob.matrix = &m;
  // Saturate rack 0 -> rack 1 with broadcast-like initial flows.
  net::FlowMatrix initial(4);
  initial.set(0, 2, 500.0);
  initial.set(1, 3, 500.0);
  RackCcfScheduler sched(topo);
  const Assignment without = sched.schedule(prob);
  sched.set_initial_flows(&initial);
  const Assignment with = sched.schedule(prob);
  // The schedules may differ; what must hold is that accounting for the
  // initial flows never yields a worse combined Γ.
  auto combined_gamma = [&](const Assignment& dest) {
    return net::gamma_bound(assignment_flows(m, dest, initial), topo);
  };
  EXPECT_LE(combined_gamma(with), combined_gamma(without) + 1e-9);
}

TEST(RackCcfScheduler, InitialFlowSizeMismatchThrows) {
  const net::RackFabric topo(2, 2);
  const auto m = random_matrix(4, 4, 7);
  AssignmentProblem prob;
  prob.matrix = &m;
  net::FlowMatrix wrong(5);
  RackCcfScheduler sched(topo);
  sched.set_initial_flows(&wrong);
  EXPECT_THROW(sched.schedule(prob), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::join
