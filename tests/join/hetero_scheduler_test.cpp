#include "join/hetero_scheduler.hpp"

#include <gtest/gtest.h>

#include "data/workload.hpp"
#include "join/flows.hpp"
#include "net/metrics.hpp"
#include "util/rng.hpp"

namespace ccf::join {
namespace {

data::ChunkMatrix random_matrix(std::size_t p, std::size_t n,
                                std::uint64_t seed) {
  util::Pcg32 rng(util::derive_seed(seed, 101), 101);
  data::ChunkMatrix m(p, n);
  for (std::size_t k = 0; k < p; ++k) {
    for (std::size_t i = 0; i < n; ++i) m.set(k, i, rng.uniform(0.0, 100.0));
  }
  return m;
}

double cct_on(const data::ChunkMatrix& m, const Assignment& dest,
              const net::Fabric& fabric) {
  return net::gamma_bound(assignment_flows(m, dest), fabric);
}

TEST(HeteroCcfScheduler, HomogeneousFabricMatchesPlainCcf) {
  const auto m = random_matrix(40, 8, 1);
  AssignmentProblem prob;
  prob.matrix = &m;
  const net::Fabric fabric(8, 10.0);
  const Assignment hetero = HeteroCcfScheduler(fabric).schedule(prob);
  const Assignment plain = CcfScheduler().schedule(prob);
  // Identical scoring on uniform ports => identical decisions.
  EXPECT_EQ(hetero, plain);
}

TEST(HeteroCcfScheduler, AvoidsTheStraggler) {
  // Node 0 has a quarter-speed NIC. The capacity-aware greedy must beat the
  // byte-based one in actual (time) bottleneck on every seed.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto m = random_matrix(60, 6, 10 + seed);
    AssignmentProblem prob;
    prob.matrix = &m;
    std::vector<double> caps(6, 100.0);
    caps[0] = 25.0;
    const net::Fabric fabric(caps, caps);
    const double blind = cct_on(m, CcfScheduler().schedule(prob), fabric);
    const double aware =
        cct_on(m, HeteroCcfScheduler(fabric).schedule(prob), fabric);
    EXPECT_LE(aware, blind * 1.001 + 1e-9) << "seed " << seed;
  }
}

TEST(HeteroCcfScheduler, StragglerGainIsSubstantialOnPaperWorkload) {
  data::WorkloadSpec spec;
  spec.nodes = 10;
  spec.partitions = 150;
  spec.customer_bytes = 1e7;
  spec.orders_bytes = 1e8;
  spec.skew = 0.0;
  spec.seed = 4;
  const auto w = data::generate_workload(spec);
  AssignmentProblem prob;
  prob.matrix = &w.matrix;
  std::vector<double> caps(10, 125e6);
  caps[3] = 125e6 / 4.0;  // one slow node
  const net::Fabric fabric(caps, caps);
  const double blind = cct_on(w.matrix, CcfScheduler().schedule(prob), fabric);
  const double aware =
      cct_on(w.matrix, HeteroCcfScheduler(fabric).schedule(prob), fabric);
  EXPECT_LT(aware, 0.8 * blind);  // at least 25% faster
}

TEST(HeteroCcfScheduler, RespectsInitialLoads) {
  const auto m = random_matrix(20, 4, 3);
  AssignmentProblem prob;
  prob.matrix = &m;
  prob.initial_ingress = {0.0, 500.0, 0.0, 0.0};
  const net::Fabric fabric(4, 10.0);
  const Assignment dest = HeteroCcfScheduler(fabric).schedule(prob);
  const auto profile = opt::evaluate(prob, dest);
  // The preloaded node must not be the ingress hotspot by a wide margin:
  // the greedy routes partitions elsewhere.
  double others_max = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (i != 1) others_max = std::max(others_max, profile.ingress[i]);
  }
  EXPECT_LE(profile.ingress[1], 500.0 + others_max);
}

TEST(HeteroCcfScheduler, FabricSizeMismatchThrows) {
  const auto m = random_matrix(6, 4, 5);
  AssignmentProblem prob;
  prob.matrix = &m;
  const net::Fabric fabric(5, 10.0);
  EXPECT_THROW(HeteroCcfScheduler(fabric).schedule(prob),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccf::join
