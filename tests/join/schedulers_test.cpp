#include "join/schedulers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testing/paper_example.hpp"

namespace ccf::join {
namespace {

AssignmentProblem problem_for(const data::ChunkMatrix& m) {
  AssignmentProblem p;
  p.matrix = &m;
  return p;
}

TEST(MakeScheduler, AllNamesResolve) {
  for (const char* name : {"hash", "mini", "ccf", "ccf-ls", "ccf-portfolio",
                           "exact", "random"}) {
    EXPECT_EQ(make_scheduler(name)->name(), name);
  }
  EXPECT_THROW(make_scheduler("bogus"), std::invalid_argument);
}

TEST(HashSchedulerTest, DestinationIsKModN) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment dest = HashScheduler().schedule(p);
  ASSERT_EQ(dest.size(), 6u);
  for (std::size_t k = 0; k < 6; ++k) EXPECT_EQ(dest[k], k % 3);
  EXPECT_EQ(dest, testing::paper_sp0());
}

TEST(MiniSchedulerTest, ReproducesPaperSp2) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment dest = MiniScheduler().schedule(p);
  // Non-empty partitions must match SP2 (largest chunk stays local). Empty
  // partitions tie at 0 and argmax picks node 0, same as paper_sp2().
  EXPECT_EQ(dest, testing::paper_sp2());
  EXPECT_DOUBLE_EQ(opt::traffic(p, dest), testing::kTrafficSp2);
}

TEST(CcfSchedulerTest, FindsOptimalPlanOnPaperExample) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment dest = CcfScheduler().schedule(p);
  EXPECT_DOUBLE_EQ(opt::makespan(p, dest), testing::kOptimalMakespan);
}

TEST(CcfSchedulerTest, BeatsHashAndMiniOnPaperExample) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const double t_ccf = opt::makespan(p, CcfScheduler().schedule(p));
  const double t_hash = opt::makespan(p, HashScheduler().schedule(p));
  const double t_mini = opt::makespan(p, MiniScheduler().schedule(p));
  EXPECT_LT(t_ccf, t_hash);
  EXPECT_LT(t_ccf, t_mini);
  EXPECT_DOUBLE_EQ(t_hash, testing::kMakespanSp0);
  EXPECT_DOUBLE_EQ(t_mini, testing::kMakespanSp2);
}

TEST(CcfSchedulerTest, HonorsInitialLoads) {
  const auto m = testing::paper_chunk_matrix();
  AssignmentProblem loaded;
  loaded.matrix = &m;
  loaded.initial_ingress = {0.0, 6.0, 0.0};  // pre-load node 1's ingress
  const Assignment with_load = CcfScheduler().schedule(loaded);
  // The plan must respect the preload: resulting T >= 6, and CCF should not
  // push extra mass into node 1 beyond what locality demands.
  const double t = opt::makespan(loaded, with_load);
  EXPECT_GE(t, 6.0);
  const auto profile = opt::evaluate(loaded, with_load);
  EXPECT_LE(profile.ingress[1], 6.0 + 3.0);  // at most key1's unavoidable move
}

TEST(ExactSchedulerTest, OptimalAndFlagged) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  ExactScheduler sched;
  const Assignment dest = sched.schedule(p);
  EXPECT_TRUE(sched.last_was_optimal());
  EXPECT_DOUBLE_EQ(opt::makespan(p, dest), testing::kOptimalMakespan);
}

TEST(RandomSchedulerTest, ValidAndSeedDeterministic) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  RandomScheduler a(5), b(5), c(6);
  const Assignment da = a.schedule(p);
  const Assignment db = b.schedule(p);
  const Assignment dc = c.schedule(p);
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);
  for (const std::uint32_t d : da) EXPECT_LT(d, 3u);
}

TEST(CcfLsSchedulerTest, NeverWorseThanPlainCcf) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const double plain = opt::makespan(p, CcfScheduler().schedule(p));
  const double refined = opt::makespan(p, CcfLsScheduler().schedule(p));
  EXPECT_LE(refined, plain + 1e-12);
}

TEST(ReplaceFailedDestinations, KeepsHealthyPlacementsUntouched) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment before = CcfScheduler().schedule(p);
  const std::uint32_t failed[] = {1};
  const Assignment after = replace_failed_destinations(p, before, failed);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t k = 0; k < before.size(); ++k) {
    if (before[k] != 1) {
      EXPECT_EQ(after[k], before[k]) << "partition " << k;
    } else {
      EXPECT_NE(after[k], 1u) << "partition " << k;
    }
    EXPECT_LT(after[k], 3u);
  }
}

TEST(ReplaceFailedDestinations, NoAffectedPartitionsIsANoOp) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  Assignment dest = CcfScheduler().schedule(p);
  // Fail a node nothing is headed to (if any); otherwise fail none.
  std::vector<std::uint32_t> unused;
  for (std::uint32_t cand = 0; cand < 3; ++cand) {
    if (std::find(dest.begin(), dest.end(), cand) == dest.end()) {
      unused.push_back(cand);
    }
  }
  const Assignment same = replace_failed_destinations(p, dest, unused);
  EXPECT_EQ(same, dest);
}

TEST(ReplaceFailedDestinations, RepairedPlanStaysCompetitive) {
  // After the repair the plan must be valid, avoid the failed node, and be
  // no worse than the crude fallback of hashing the stranded partitions
  // onto the first surviving node.
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment before = CcfScheduler().schedule(p);
  const std::uint32_t failed[] = {0};
  const Assignment repaired = replace_failed_destinations(p, before, failed);
  Assignment crude = before;
  for (std::uint32_t& d : crude) {
    if (d == 0) d = 1;
  }
  EXPECT_LE(opt::makespan(p, repaired), opt::makespan(p, crude) + 1e-12);
  for (const std::uint32_t d : repaired) EXPECT_NE(d, 0u);
}

TEST(ReplaceFailedDestinations, ValidatesItsArguments) {
  const auto m = testing::paper_chunk_matrix();
  const auto p = problem_for(m);
  const Assignment dest = CcfScheduler().schedule(p);
  const std::uint32_t out_of_range[] = {9};
  EXPECT_THROW(replace_failed_destinations(p, dest, out_of_range),
               std::invalid_argument);
  const std::uint32_t everyone[] = {0, 1, 2};
  EXPECT_THROW(replace_failed_destinations(p, dest, everyone),
               std::invalid_argument);
  EXPECT_THROW(replace_failed_destinations(p, Assignment{0, 1}, {}),
               std::invalid_argument);
}

TEST(Schedulers, SingleNodeClusterKeepsEverythingLocal) {
  data::ChunkMatrix m(4, 1);
  for (std::size_t k = 0; k < 4; ++k) m.set(k, 0, 10.0);
  const auto p = problem_for(m);
  for (const char* name :
       {"hash", "mini", "ccf", "ccf-ls", "ccf-portfolio", "exact"}) {
    const Assignment dest = make_scheduler(name)->schedule(p);
    for (const std::uint32_t d : dest) EXPECT_EQ(d, 0u) << name;
    EXPECT_DOUBLE_EQ(opt::traffic(p, dest), 0.0) << name;
  }
}

}  // namespace
}  // namespace ccf::join
