#include "join/exec.hpp"

#include <gtest/gtest.h>

#include "data/partitioner.hpp"
#include "data/skew.hpp"
#include "data/tpch.hpp"
#include "join/flows.hpp"
#include "join/local_join.hpp"
#include "join/schedulers.hpp"

namespace ccf::join {
namespace {

struct TestData {
  data::DistributedRelation customer;
  data::DistributedRelation orders;
  std::size_t partitions;
};

TestData make_data(double skew_fraction = 0.0) {
  data::TpchConfig cfg;
  cfg.scale_factor = 0.01;  // 1500 customers, 15000 orders
  cfg.nodes = 4;
  cfg.seed = 13;
  auto customer = generate_customer(cfg);
  auto orders = generate_orders(cfg);
  if (skew_fraction > 0.0) {
    util::Pcg32 rng(99, 1);
    data::inject_skew(orders, skew_fraction, 1, rng);
  }
  return TestData{std::move(customer), std::move(orders), 60};
}

TEST(ExecuteDistributedJoin, EveryPlacementGivesTheSameCorrectResult) {
  const auto d = make_data();
  const auto truth = reference_join_cardinality(d.customer, d.orders);
  const auto matrix =
      data::build_chunk_matrix(d.customer, d.orders, d.partitions);
  AssignmentProblem prob;
  prob.matrix = &matrix;
  for (const char* name : {"hash", "mini", "ccf", "random"}) {
    const Assignment dest = make_scheduler(name)->schedule(prob);
    const auto r =
        execute_distributed_join(d.customer, d.orders, d.partitions, dest);
    EXPECT_EQ(r.result_tuples, truth) << name;
  }
}

TEST(ExecuteDistributedJoin, MeasuredFlowsMatchAnalyticFlows) {
  const auto d = make_data();
  const auto matrix =
      data::build_chunk_matrix(d.customer, d.orders, d.partitions);
  AssignmentProblem prob;
  prob.matrix = &matrix;
  const Assignment dest = CcfScheduler().schedule(prob);
  const auto r =
      execute_distributed_join(d.customer, d.orders, d.partitions, dest);
  const net::FlowMatrix analytic = assignment_flows(matrix, dest);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;  // executor does not track local volumes
      EXPECT_DOUBLE_EQ(r.flows.volume(i, j), analytic.volume(i, j))
          << i << "->" << j;
    }
  }
}

TEST(ExecuteDistributedJoin, ResultPerNodeSumsToTotal) {
  const auto d = make_data();
  const auto matrix =
      data::build_chunk_matrix(d.customer, d.orders, d.partitions);
  AssignmentProblem prob;
  prob.matrix = &matrix;
  const Assignment dest = HashScheduler().schedule(prob);
  const auto r =
      execute_distributed_join(d.customer, d.orders, d.partitions, dest);
  std::uint64_t sum = 0;
  for (const auto c : r.result_per_node) sum += c;
  EXPECT_EQ(sum, r.result_tuples);
}

TEST(ExecuteDistributedJoin, PartialDuplicationPreservesResult) {
  const auto d = make_data(0.3);
  const auto truth = reference_join_cardinality(d.customer, d.orders);
  const auto w =
      data::workload_from_tuples(d.customer, d.orders, d.partitions, 1);
  ASSERT_TRUE(w.skew.present);
  AssignmentProblem prob;
  prob.matrix = &w.matrix;
  const Assignment dest = CcfScheduler().schedule(prob);
  const auto plain =
      execute_distributed_join(d.customer, d.orders, d.partitions, dest);
  const auto dedup = execute_distributed_join(d.customer, d.orders,
                                              d.partitions, dest, &w.skew);
  EXPECT_EQ(plain.result_tuples, truth);
  EXPECT_EQ(dedup.result_tuples, truth);
}

TEST(ExecuteDistributedJoin, PartialDuplicationSlashesTraffic) {
  const auto d = make_data(0.3);
  const auto w =
      data::workload_from_tuples(d.customer, d.orders, d.partitions, 1);
  AssignmentProblem prob;
  prob.matrix = &w.matrix;
  const Assignment dest = MiniScheduler().schedule(prob);
  const auto plain =
      execute_distributed_join(d.customer, d.orders, d.partitions, dest);
  const auto dedup = execute_distributed_join(d.customer, d.orders,
                                              d.partitions, dest, &w.skew);
  // 30% of orders stay local: traffic must drop substantially.
  EXPECT_LT(dedup.flows.traffic(), plain.flows.traffic() * 0.9);
}

TEST(ExecuteDistributedJoin, SkewAbsentSkewInfoIsNoop) {
  const auto d = make_data();
  const auto matrix =
      data::build_chunk_matrix(d.customer, d.orders, d.partitions);
  AssignmentProblem prob;
  prob.matrix = &matrix;
  const Assignment dest = HashScheduler().schedule(prob);
  data::SkewInfo no_skew;  // present = false
  const auto a =
      execute_distributed_join(d.customer, d.orders, d.partitions, dest);
  const auto b = execute_distributed_join(d.customer, d.orders, d.partitions,
                                          dest, &no_skew);
  EXPECT_EQ(a.result_tuples, b.result_tuples);
  EXPECT_EQ(a.flows, b.flows);
}

TEST(ExecuteDistributedJoin, Errors) {
  const auto d = make_data();
  std::vector<std::uint32_t> bad(d.partitions + 1, 0);
  EXPECT_THROW(
      execute_distributed_join(d.customer, d.orders, d.partitions, bad),
      std::invalid_argument);
  data::DistributedRelation other("X", 5);
  std::vector<std::uint32_t> dest(d.partitions, 0);
  EXPECT_THROW(
      execute_distributed_join(d.customer, other, d.partitions, dest),
      std::invalid_argument);
}

}  // namespace
}  // namespace ccf::join
