// Pins the Service's sparse ingestion path (core/service.hpp):
// SparseCoflowSpec submissions are validated at the door (kInvalid, never a
// driver-thread exception), drain through shard epochs exactly like
// workload submissions, replay bit-identically through a fresh Engine from
// the recorded ShardEpoch (the spec rides the QuerySpec verbatim), and mix
// freely with dense prepared-workload submissions inside one epoch.
//
// The suite carries the tsan_smoke label alongside service_test: client
// threads race the shard drivers on the sparse path too.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "data/workload.hpp"
#include "net/coflow.hpp"

namespace ccf::core {
namespace {

data::Workload tiny_workload(std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = 8;
  spec.customer_bytes = 4e6;
  spec.orders_bytes = 4e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.3;
  spec.seed = seed;
  return data::generate_workload(spec);
}

net::SparseCoflowSpec sparse_coflow(const std::string& name, double arrival,
                                    double scale) {
  std::vector<net::Flow> flows(3);
  flows[0].src = 0, flows[0].dst = 2, flows[0].volume = 4e6 * scale;
  flows[1].src = 1, flows[1].dst = 3, flows[1].volume = 2e6 * scale;
  flows[2].src = 3, flows[2].dst = 0, flows[2].volume = 1e6 * scale;
  return net::SparseCoflowSpec(name, arrival, std::move(flows));
}

struct EpochLog {
  std::mutex mutex;
  std::vector<ShardEpoch> epochs;

  Service::EpochCallback callback() {
    return [this](const ShardEpoch& epoch) {
      const std::scoped_lock lock(mutex);
      epochs.push_back(epoch);
    };
  }
};

ServiceOptions sparse_options() {
  ServiceOptions options;
  options.engine.nodes = 4;
  options.shards = 1;
  options.max_batch = 4;
  options.max_wait = std::chrono::microseconds(200);
  return options;
}

void expect_identical_numbers(const EngineReport& a, const EngineReport& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].traffic_bytes, b.queries[q].traffic_bytes) << q;
    EXPECT_EQ(a.queries[q].gamma_seconds, b.queries[q].gamma_seconds) << q;
    EXPECT_EQ(a.queries[q].cct_seconds, b.queries[q].cct_seconds) << q;
    EXPECT_EQ(a.queries[q].flow_count, b.queries[q].flow_count) << q;
  }
  EXPECT_EQ(a.sim.events, b.sim.events);
  EXPECT_EQ(a.sim.total_bytes, b.sim.total_bytes);
  ASSERT_EQ(a.sim.coflows.size(), b.sim.coflows.size());
  for (std::size_t c = 0; c < a.sim.coflows.size(); ++c) {
    EXPECT_EQ(a.sim.coflows[c].name, b.sim.coflows[c].name) << c;
    EXPECT_EQ(a.sim.coflows[c].completion, b.sim.coflows[c].completion) << c;
  }
}

TEST(ServiceSparse, DrainsSparseSubmissionsAndReplaysBitIdentically) {
  EpochLog log;
  const ServiceOptions options = sparse_options();
  {
    Service service(options, log.callback());
    for (int i = 0; i < 8; ++i) {
      const SubmitResult r = service.submit(
          0, sparse_coflow("s" + std::to_string(i), 0.1 * i, 1.0 + i));
      ASSERT_TRUE(r.accepted()) << i;
    }
    service.flush();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted, 8u);
    EXPECT_EQ(stats.completed, 8u);
  }

  ASSERT_FALSE(log.epochs.empty());
  std::size_t replayed = 0;
  for (const ShardEpoch& epoch : log.epochs) {
    Engine engine(EngineOptions(options.engine));
    for (const ServiceQuery& q : epoch.queries) {
      ASSERT_TRUE(q.spec.sparse);  // the spec rides the record verbatim
      engine.submit(QuerySpec(q.spec));
    }
    expect_identical_numbers(engine.drain(), epoch.report);
    replayed += epoch.queries.size();
  }
  EXPECT_EQ(replayed, 8u);
}

TEST(ServiceSparse, RejectsInvalidSparseSpecsAtTheDoor) {
  Service service(sparse_options());

  net::SparseCoflowSpec diagonal = sparse_coflow("bad", 0.0, 1.0);
  diagonal.flows[1].dst = diagonal.flows[1].src;
  EXPECT_EQ(service.submit(0, std::move(diagonal)).status,
            SubmitStatus::kInvalid);

  net::SparseCoflowSpec out_of_range = sparse_coflow("bad", 0.0, 1.0);
  out_of_range.flows[0].dst = 4;  // fabric is 4 nodes
  EXPECT_EQ(service.submit(0, std::move(out_of_range)).status,
            SubmitStatus::kInvalid);

  net::SparseCoflowSpec negative = sparse_coflow("bad", -1.0, 1.0);
  EXPECT_EQ(service.submit(0, std::move(negative)).status,
            SubmitStatus::kInvalid);

  net::SparseCoflowSpec bad_weight = sparse_coflow("bad", 0.0, 1.0);
  bad_weight.weight = -2.0;
  EXPECT_EQ(service.submit(0, std::move(bad_weight)).status,
            SubmitStatus::kInvalid);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.invalid, 4u);
  EXPECT_EQ(stats.accepted, 0u);

  // The service is still healthy: a valid spec sails through.
  EXPECT_TRUE(service.submit(0, sparse_coflow("good", 0.0, 1.0)).accepted());
  service.flush();
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(ServiceSparse, MixedDenseAndSparseEpochsReplay) {
  EpochLog log;
  const ServiceOptions options = sparse_options();
  const auto workload =
      std::make_shared<const data::Workload>(tiny_workload(900));
  {
    Service service(options, log.callback());
    for (int i = 0; i < 6; ++i) {
      SubmitResult r;
      if (i % 2 == 0) {
        r = service.submit(0, QuerySpec("q" + std::to_string(i), workload));
      } else {
        r = service.submit(0,
                           sparse_coflow("s" + std::to_string(i), 0.0, 2.0));
      }
      ASSERT_TRUE(r.accepted()) << i;
    }
    service.flush();
    EXPECT_EQ(service.stats().completed, 6u);
  }

  std::size_t sparse_seen = 0, dense_seen = 0;
  for (const ShardEpoch& epoch : log.epochs) {
    Engine engine(EngineOptions(options.engine));
    for (const ServiceQuery& q : epoch.queries) {
      q.spec.sparse ? ++sparse_seen : ++dense_seen;
      engine.submit(QuerySpec(q.spec));
    }
    expect_identical_numbers(engine.drain(), epoch.report);
  }
  EXPECT_EQ(sparse_seen, 3u);
  EXPECT_EQ(dense_seen, 3u);
}

}  // namespace
}  // namespace ccf::core
