// Full-stack integration: tuple-level TPC-H data drives the same pipeline the
// paper-scale benches run analytically, and the two paths must agree.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/skew_handling.hpp"
#include "data/skew.hpp"
#include "data/tpch.hpp"
#include "join/exec.hpp"
#include "join/flows.hpp"
#include "join/local_join.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"

namespace ccf {
namespace {

struct JoinFixture {
  data::DistributedRelation customer;
  data::DistributedRelation orders;
  data::Workload workload;
  std::size_t partitions;
};

JoinFixture make_setup(double skew) {
  data::TpchConfig cfg;
  cfg.scale_factor = 0.02;  // 3000 customers, 30000 orders
  cfg.nodes = 5;
  cfg.zipf_theta = 0.8;
  cfg.seed = 77;
  auto customer = generate_customer(cfg);
  auto orders = generate_orders(cfg);
  if (skew > 0.0) {
    util::Pcg32 rng(5, 5);
    data::inject_skew(orders, skew, 1, rng);
  }
  const std::size_t partitions = 75;  // 15 * nodes, the paper's ratio
  auto workload = data::workload_from_tuples(customer, orders, partitions, 1);
  return JoinFixture{std::move(customer), std::move(orders), std::move(workload),
               partitions};
}

TEST(Integration, PipelineTrafficEqualsTupleExecutorTraffic) {
  const JoinFixture s = make_setup(0.2);
  for (const char* name : {"hash", "mini", "ccf"}) {
    const core::PipelineOptions opts = core::PipelineOptions::paper_system(name);
    const core::RunReport report = core::run_pipeline(s.workload, opts);

    // Recreate the pipeline's placement decision and execute at tuple level.
    const core::PreparedInput prepared =
        core::apply_partial_duplication(s.workload, opts.skew_handling);
    const opt::AssignmentProblem problem = prepared.problem();
    const auto dest = join::make_scheduler(name)->schedule(problem);
    const auto exec = join::execute_distributed_join(
        s.customer, s.orders, s.partitions, dest,
        opts.skew_handling ? &s.workload.skew : nullptr);

    EXPECT_NEAR(report.traffic_bytes, exec.flows.traffic(),
                1e-6 * report.traffic_bytes)
        << name;
  }
}

TEST(Integration, JoinResultInvariantAcrossAllSystems) {
  const JoinFixture s = make_setup(0.2);
  const auto truth = join::reference_join_cardinality(s.customer, s.orders);
  for (const char* name : {"hash", "mini", "ccf", "ccf-ls", "random"}) {
    for (const bool skew_handling : {false, true}) {
      const core::PreparedInput prepared =
          core::apply_partial_duplication(s.workload, skew_handling);
      const opt::AssignmentProblem problem = prepared.problem();
      const auto dest = join::make_scheduler(name)->schedule(problem);
      const auto exec = join::execute_distributed_join(
          s.customer, s.orders, s.partitions, dest,
          skew_handling ? &s.workload.skew : nullptr);
      EXPECT_EQ(exec.result_tuples, truth)
          << name << " skew_handling=" << skew_handling;
    }
  }
}

TEST(Integration, TupleLevelCctOrderingMatchesPaper) {
  // Even at toy scale with real tuples, the headline ordering holds on the
  // zipf-aligned workload: CCF <= Hash and CCF <= Mini in CCT.
  const JoinFixture s = make_setup(0.2);
  auto cct_of = [&](const char* name) {
    return core::run_pipeline(s.workload,
                              core::PipelineOptions::paper_system(name))
        .cct_seconds;
  };
  const double ccf = cct_of("ccf");
  EXPECT_LE(ccf, cct_of("hash") + 1e-12);
  EXPECT_LE(ccf, cct_of("mini") + 1e-12);
}

TEST(Integration, GammaBoundsTupleMeasuredFlows) {
  // The analytic Γ of the pipeline's flow matrix equals Γ of the flows the
  // tuple executor actually produced.
  const JoinFixture s = make_setup(0.3);
  const core::PreparedInput prepared =
      core::apply_partial_duplication(s.workload, true);
  const opt::AssignmentProblem problem = prepared.problem();
  const auto dest = join::CcfScheduler().schedule(problem);
  const auto analytic =
      join::assignment_flows(prepared.residual, dest, prepared.initial_flows);
  const auto exec = join::execute_distributed_join(
      s.customer, s.orders, s.partitions, dest, &s.workload.skew);
  const net::Fabric fabric(5);
  EXPECT_NEAR(net::gamma_bound(analytic, fabric),
              net::gamma_bound(exec.flows, fabric),
              1e-6 * net::gamma_bound(analytic, fabric) + 1e-12);
}

}  // namespace
}  // namespace ccf
