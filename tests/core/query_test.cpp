#include "core/query.hpp"

#include <gtest/gtest.h>

namespace ccf::core {
namespace {

data::WorkloadSpec stage_workload(std::uint64_t seed, double scale = 1.0) {
  data::WorkloadSpec spec;
  spec.nodes = 6;
  spec.partitions = 60;
  spec.customer_bytes = 1e6 * scale;
  spec.orders_bytes = 1e7 * scale;
  spec.skew = 0.1;
  spec.seed = seed;
  return spec;
}

TEST(RunQuery, SingleStageMatchesItsOwnCct) {
  std::vector<QueryStage> plan = {{"only", stage_workload(1), {}, 0.0}};
  const QueryReport r = run_query(plan);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(r.stages[0].ready, 0.0);
  EXPECT_GT(r.stages[0].completion, 0.0);
  EXPECT_DOUBLE_EQ(r.makespan, r.stages[0].completion);
  EXPECT_LE(r.iterations, 2u);
}

TEST(RunQuery, ChainWaitsForUpstreamCompletion) {
  std::vector<QueryStage> plan = {
      {"a", stage_workload(1), {}, 0.0},
      {"b", stage_workload(2, 0.5), {0}, 3.0},
  };
  const QueryReport r = run_query(plan);
  // Stage b becomes ready exactly when a completes plus 3 s of compute.
  EXPECT_NEAR(r.stages[1].ready, r.stages[0].completion + 3.0, 1e-6);
  EXPECT_GT(r.stages[1].completion, r.stages[1].ready);
}

TEST(RunQuery, DiamondDependencies) {
  std::vector<QueryStage> plan = {
      {"root", stage_workload(1), {}, 0.0},
      {"left", stage_workload(2, 0.4), {0}, 1.0},
      {"right", stage_workload(3, 0.6), {0}, 2.0},
      {"join", stage_workload(4, 0.2), {1, 2}, 0.5},
  };
  const QueryReport r = run_query(plan);
  const double branches_done =
      std::max(r.stages[1].completion, r.stages[2].completion);
  EXPECT_NEAR(r.stages[3].ready, branches_done + 0.5, 1e-6);
  // Left and right both start after the root.
  EXPECT_GE(r.stages[1].ready, r.stages[0].completion - 1e-6);
  EXPECT_GE(r.stages[2].ready, r.stages[0].completion - 1e-6);
}

TEST(RunQuery, IndependentStagesOverlap) {
  // Two independent stages share the fabric; with the default Varys
  // allocator they overlap, so the makespan is less than running them
  // back to back.
  std::vector<QueryStage> plan = {
      {"x", stage_workload(5), {}, 0.0},
      {"y", stage_workload(6), {}, 0.0},
  };
  const QueryReport r = run_query(plan);
  const double serial = r.stages[0].cct() + r.stages[1].cct();
  EXPECT_LT(r.makespan, serial);
}

TEST(RunQuery, ComputeOnlyLeadInShiftsReadiness) {
  std::vector<QueryStage> plan = {{"late", stage_workload(7), {}, 10.0}};
  const QueryReport r = run_query(plan);
  EXPECT_DOUBLE_EQ(r.stages[0].ready, 10.0);
}

TEST(RunQuery, FixedPointConvergesQuickly) {
  std::vector<QueryStage> plan;
  plan.push_back({"s0", stage_workload(10), {}, 0.0});
  for (std::size_t s = 1; s < 5; ++s) {
    plan.push_back({"s" + std::to_string(s), stage_workload(10 + s, 0.5),
                    {s - 1}, 0.1});
  }
  const QueryReport r = run_query(plan);
  // A pure chain needs one extra round per level at most.
  EXPECT_LE(r.iterations, plan.size() + 1);
  for (std::size_t s = 1; s < 5; ++s) {
    EXPECT_GE(r.stages[s].ready, r.stages[s - 1].completion - 1e-6);
  }
}

TEST(RunQuery, SchedulerChoiceFlowsThrough) {
  std::vector<QueryStage> plan = {
      {"a", stage_workload(1), {}, 0.0},
      {"b", stage_workload(2), {0}, 0.0},
  };
  QueryOptions ccf_opts;
  ccf_opts.job.scheduler = "ccf";
  QueryOptions mini_opts;
  mini_opts.job.scheduler = "mini";
  EXPECT_LT(run_query(plan, ccf_opts).makespan,
            run_query(plan, mini_opts).makespan);
}

TEST(RunQuery, RejectsInvalidPlans) {
  EXPECT_THROW(run_query({}), std::invalid_argument);
  {
    std::vector<QueryStage> plan = {{"a", stage_workload(1), {0}, 0.0}};
    EXPECT_THROW(run_query(plan), std::invalid_argument);  // self-dependency
  }
  {
    std::vector<QueryStage> plan = {{"a", stage_workload(1), {5}, 0.0}};
    EXPECT_THROW(run_query(plan), std::invalid_argument);  // forward dep
  }
  {
    std::vector<QueryStage> plan = {{"a", stage_workload(1), {}, -1.0}};
    EXPECT_THROW(run_query(plan), std::invalid_argument);  // negative compute
  }
  {
    auto w2 = stage_workload(2);
    w2.nodes = 7;
    std::vector<QueryStage> plan = {{"a", stage_workload(1), {}, 0.0},
                                    {"b", w2, {0}, 0.0}};
    EXPECT_THROW(run_query(plan), std::invalid_argument);  // cluster mismatch
  }
}

}  // namespace
}  // namespace ccf::core
