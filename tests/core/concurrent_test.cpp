#include "core/concurrent.hpp"

#include <gtest/gtest.h>

namespace ccf::core {
namespace {

OperatorSpec op(std::uint64_t seed, double scale = 1.0,
                std::size_t partitions = 80) {
  OperatorSpec spec;
  spec.name = "op" + std::to_string(seed);
  spec.workload.nodes = 8;
  spec.workload.partitions = partitions;
  spec.workload.customer_bytes = 1e6 * scale;
  spec.workload.orders_bytes = 1e7 * scale;
  spec.workload.skew = 0.1;
  spec.workload.seed = seed;
  return spec;
}

TEST(RunConcurrentOperators, JointUnionGammaNeverMeaningfullyWorse) {
  // The stacked greedy minimizes the union bottleneck directly; independent
  // plans can only match it up to greedy noise.
  for (std::size_t count : {2u, 4u}) {
    std::vector<OperatorSpec> ops;
    for (std::size_t c = 0; c < count; ++c) {
      ops.push_back(op(c + 1, 1.0 / static_cast<double>(c + 1)));
    }
    JobOptions options;
    options.allocator = "madd";
    const ConcurrentReport r = run_concurrent_operators(ops, options);
    EXPECT_LE(r.union_gamma_joint, r.union_gamma_independent * 1.02 + 1e-9)
        << count << " operators";
    EXPECT_EQ(r.joint.coflows.size(), count);
    EXPECT_EQ(r.independent.coflows.size(), count);
  }
}

TEST(RunConcurrentOperators, IndependentPlansComposeNearOptimally) {
  // The headline (negative) finding: on paper-style workloads, per-operator
  // CCF placement loses almost nothing against joint stacking — the paper's
  // one-operator-at-a-time design is sound for same-fabric concurrency.
  std::vector<OperatorSpec> ops = {op(1, 1.0, 120), op(2, 0.5, 120),
                                   op(3, 0.25, 120)};
  JobOptions options;
  const ConcurrentReport r = run_concurrent_operators(ops, options);
  EXPECT_NEAR(r.union_gamma_independent, r.union_gamma_joint,
              0.02 * r.union_gamma_joint);
}

TEST(RunConcurrentOperators, JointWinsOnIdenticalCoarseOperators) {
  // Adversarial case: IDENTICAL coarse-grained operators (same seed, one
  // effective hot partition each). Independent plans are byte-for-byte
  // identical, so their hotspots land on the same node and union load
  // stacks k-fold; joint placement spreads them.
  std::vector<OperatorSpec> ops;
  for (int c = 0; c < 4; ++c) {
    OperatorSpec o = op(/*seed=*/42, 1.0, /*partitions=*/1);
    o.name = "twin" + std::to_string(c);
    o.workload.skew = 0.0;
    ops.push_back(std::move(o));
  }
  JobOptions options;
  options.allocator = "madd";
  const ConcurrentReport r = run_concurrent_operators(ops, options);
  // Joint must beat independent by nearly the operator count on the union
  // bottleneck (4 identical hotspots spread over 8 nodes -> ~4x... at least 2x).
  EXPECT_GT(r.union_gamma_speedup(), 2.0);
  EXPECT_LT(r.joint_makespan(), r.independent_makespan());
}

TEST(RunConcurrentOperators, SameBytesMovedEitherWay) {
  std::vector<OperatorSpec> ops = {op(1), op(2, 0.5)};
  const ConcurrentReport r = run_concurrent_operators(ops, JobOptions{});
  // Placement changes who sends to whom, not how much must leave each node
  // in total... traffic can differ (locality), but delivered bytes must be
  // whatever each plan's flows say; both must be internally consistent.
  EXPECT_GT(r.independent.total_bytes, 0.0);
  EXPECT_GT(r.joint.total_bytes, 0.0);
}

TEST(RunConcurrentOperators, SingleOperatorPlansCoincide) {
  std::vector<OperatorSpec> ops = {op(7)};
  JobOptions options;
  options.allocator = "madd";
  const ConcurrentReport r = run_concurrent_operators(ops, options);
  // With one operator the stacked instance IS the independent instance.
  EXPECT_NEAR(r.joint_makespan(), r.independent_makespan(),
              1e-9 * r.independent_makespan());
}

TEST(RunConcurrentOperators, Errors) {
  EXPECT_THROW(run_concurrent_operators({}, JobOptions{}),
               std::invalid_argument);
  std::vector<OperatorSpec> ops = {op(1), op(2)};
  ops[1].workload.nodes = 9;
  EXPECT_THROW(run_concurrent_operators(ops, JobOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccf::core
