#include "core/job.hpp"

#include <gtest/gtest.h>

namespace ccf::core {
namespace {

data::WorkloadSpec op_spec(std::uint64_t seed, double scale = 1.0) {
  data::WorkloadSpec spec;
  spec.nodes = 8;
  spec.partitions = 80;
  spec.customer_bytes = 1e7 * scale;
  spec.orders_bytes = 1e8 * scale;
  spec.skew = 0.1;
  spec.seed = seed;
  return spec;
}

std::vector<OperatorSpec> three_ops() {
  return {OperatorSpec{"scan-join", 0.0, op_spec(1)},
          OperatorSpec{"dim-join", 2.0, op_spec(2, 0.5)},
          OperatorSpec{"agg", 5.0, op_spec(3, 0.25)}};
}

TEST(RunJob, ReportsPerOperatorCcts) {
  JobOptions opts;
  const JobReport r = run_job(three_ops(), opts);
  ASSERT_EQ(r.sim.coflows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.sim.coflows[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(r.sim.coflows[1].arrival, 2.0);
  for (const auto& c : r.sim.coflows) {
    EXPECT_GT(c.cct(), 0.0) << c.name;
    EXPECT_GE(c.completion, c.arrival) << c.name;
  }
  EXPECT_GT(r.total_traffic_bytes, 0.0);
  EXPECT_GE(r.schedule_seconds, 0.0);
  EXPECT_GE(r.sim.makespan, r.sim.coflows[2].completion - 1e-9);
}

TEST(RunJob, AllocatorsProduceDifferentAverageCct) {
  // With overlapping coflows FIFO vs SEBF ordering matters; at minimum the
  // runs must all complete and move identical bytes.
  double bytes = -1.0;
  for (const char* allocator :
       {"madd", "varys", "aalo", "fair", "sincronia", "lp-order"}) {
    JobOptions opts;
    opts.allocator = allocator;
    const JobReport r = run_job(three_ops(), opts);
    EXPECT_EQ(r.sim.coflows.size(), 3u);
    if (bytes < 0.0) {
      bytes = r.total_traffic_bytes;
    } else {
      EXPECT_NEAR(r.total_traffic_bytes, bytes, 1e-6);
    }
  }
}

TEST(RunJob, SchedulerChoiceAffectsJobMakespan) {
  JobOptions ccf_opts;
  ccf_opts.scheduler = "ccf";
  JobOptions mini_opts;
  mini_opts.scheduler = "mini";
  const double ccf = run_job(three_ops(), ccf_opts).sim.makespan;
  const double mini = run_job(three_ops(), mini_opts).sim.makespan;
  // Zipf-aligned chunks: Mini floods node 0, CCF balances.
  EXPECT_LT(ccf, mini);
}

TEST(RunJob, Errors) {
  EXPECT_THROW(run_job({}, JobOptions{}), std::invalid_argument);
  auto ops = three_ops();
  ops[1].workload.nodes = 9;  // mismatched cluster
  EXPECT_THROW(run_job(ops, JobOptions{}), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::core
