#include "core/skew_handling.hpp"

#include <gtest/gtest.h>

#include "data/workload.hpp"

namespace ccf::core {
namespace {

data::Workload skewed_workload() {
  data::WorkloadSpec spec;
  spec.nodes = 6;
  spec.partitions = 60;
  spec.customer_bytes = 6e6;
  spec.orders_bytes = 60e6;
  spec.skew = 0.25;
  spec.seed = 3;
  return data::generate_workload(spec);
}

TEST(ApplyPartialDuplication, DisabledIsPassThrough) {
  const auto w = skewed_workload();
  const PreparedInput out = apply_partial_duplication(w, false);
  EXPECT_FALSE(out.skew_handled);
  EXPECT_EQ(out.residual, w.matrix);
  EXPECT_DOUBLE_EQ(out.initial_flows.traffic(), 0.0);
  EXPECT_DOUBLE_EQ(out.pinned_local_bytes, 0.0);
}

TEST(ApplyPartialDuplication, NoSkewIsPassThroughEvenWhenEnabled) {
  auto spec = skewed_workload().spec;
  spec.skew = 0.0;
  const auto w = data::generate_workload(spec);
  const PreparedInput out = apply_partial_duplication(w, true);
  EXPECT_FALSE(out.skew_handled);
  EXPECT_EQ(out.residual, w.matrix);
}

TEST(ApplyPartialDuplication, PinsTheSkewedMass) {
  const auto w = skewed_workload();
  const PreparedInput out = apply_partial_duplication(w, true);
  EXPECT_TRUE(out.skew_handled);
  EXPECT_NEAR(out.pinned_local_bytes, w.skew.skewed_bytes_total(), 1.0);
  // Residual conservation: original = residual + pinned + broadcast-removed.
  EXPECT_NEAR(w.matrix.total(),
              out.residual.total() + out.pinned_local_bytes +
                  w.skew.broadcast_bytes,
              1.0);
}

TEST(ApplyPartialDuplication, HotPartitionShrinksOnly) {
  const auto w = skewed_workload();
  const PreparedInput out = apply_partial_duplication(w, true);
  const std::size_t hot = w.skew.hot_partition;
  for (std::size_t k = 0; k < w.matrix.partitions(); ++k) {
    for (std::size_t i = 0; i < w.matrix.nodes(); ++i) {
      if (k == hot) {
        EXPECT_LE(out.residual.h(k, i), w.matrix.h(k, i) + 1e-9);
        EXPECT_GE(out.residual.h(k, i), -1e-9);  // never negative
      } else {
        EXPECT_DOUBLE_EQ(out.residual.h(k, i), w.matrix.h(k, i));
      }
    }
  }
}

TEST(ApplyPartialDuplication, BroadcastFlowsFanOutFromSource) {
  const auto w = skewed_workload();
  const PreparedInput out = apply_partial_duplication(w, true);
  const std::size_t src = w.skew.broadcast_source;
  const std::size_t n = w.matrix.nodes();
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (dst == src) continue;
    EXPECT_DOUBLE_EQ(out.initial_flows.volume(src, dst),
                     w.skew.broadcast_bytes);
  }
  EXPECT_DOUBLE_EQ(out.initial_flows.traffic(),
                   w.skew.broadcast_bytes * static_cast<double>(n - 1));
  // Initial load vectors agree with the flow matrix.
  EXPECT_DOUBLE_EQ(out.initial_egress[src],
                   w.skew.broadcast_bytes * static_cast<double>(n - 1));
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (dst == src) continue;
    EXPECT_DOUBLE_EQ(out.initial_ingress[dst], w.skew.broadcast_bytes);
  }
}

TEST(ApplyPartialDuplication, ProblemViewCarriesInitialLoads) {
  const auto w = skewed_workload();
  const PreparedInput out = apply_partial_duplication(w, true);
  const opt::AssignmentProblem p = out.problem();
  EXPECT_EQ(p.matrix, &out.residual);
  EXPECT_EQ(p.initial_egress, out.initial_egress);
  EXPECT_EQ(p.initial_ingress, out.initial_ingress);
  p.validate();  // must not throw
}

TEST(ApplyPartialDuplication, BadSkewInfoThrows) {
  auto w = skewed_workload();
  w.skew.skewed_bytes_per_node.pop_back();
  EXPECT_THROW(apply_partial_duplication(w, true), std::invalid_argument);
  auto w2 = skewed_workload();
  w2.skew.broadcast_source = 99;
  EXPECT_THROW(apply_partial_duplication(w2, true), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::core
