// End-to-end reproduction of the paper's §II motivating example (Fig. 1 and
// Fig. 2) through the real library stack: relations -> partitioning ->
// schedulers -> flows -> coflow simulation.
#include <gtest/gtest.h>

#include "data/partitioner.hpp"
#include "join/flows.hpp"
#include "join/schedulers.hpp"
#include "net/metrics.hpp"
#include "net/simulator.hpp"
#include "testing/paper_example.hpp"

namespace ccf {
namespace {

TEST(MotivatingExample, ChunkMatrixFromTuplesMatchesHandBuilt) {
  const auto rel = testing::paper_relation();
  const auto m = data::build_chunk_matrix(rel, testing::kPaperPartitions);
  EXPECT_EQ(m, testing::paper_chunk_matrix());
}

TEST(MotivatingExample, TrafficOfThePlansMatchesThePaper) {
  const auto m = testing::paper_chunk_matrix();
  EXPECT_DOUBLE_EQ(join::assignment_flows(m, testing::paper_sp0()).traffic(),
                   testing::kTrafficSp0);
  EXPECT_DOUBLE_EQ(join::assignment_flows(m, testing::paper_sp1()).traffic(),
                   testing::kTrafficSp1);
  EXPECT_DOUBLE_EQ(join::assignment_flows(m, testing::paper_sp2()).traffic(),
                   testing::kTrafficSp2);
}

TEST(MotivatingExample, OptimalCoflowScheduleCctsMatchFig2) {
  // Unit ports: 1 tuple per time unit. Fig. 2(b): SP2 -> 4. Fig. 2(c): SP1 -> 3.
  const auto m = testing::paper_chunk_matrix();
  const net::Fabric fabric(3, 1.0);
  for (const auto& [dest, expect] :
       {std::pair{testing::paper_sp2(), 4.0},
        std::pair{testing::paper_sp1(), 3.0},
        std::pair{testing::paper_sp0(), 4.0}}) {
    net::Simulator sim(fabric, net::make_allocator("madd"));
    sim.add_coflow(net::CoflowSpec("sp", 0.0, join::assignment_flows(m, dest)));
    EXPECT_NEAR(sim.run().coflows[0].cct(), expect, 1e-9);
  }
}

TEST(MotivatingExample, WorstScheduleForSp2TakesSixUnits) {
  // Fig. 2(a): the "worst" (sequential, uncoordinated) schedule for SP2 takes
  // 6 units — the total traffic through one link at a time. We model the
  // sequential schedule analytically: sum of volumes / rate.
  const auto m = testing::paper_chunk_matrix();
  const auto flows = join::assignment_flows(m, testing::paper_sp2());
  EXPECT_DOUBLE_EQ(flows.traffic() / 1.0, 6.0);
}

TEST(MotivatingExample, CcfDiscoversTheTrueOptimum) {
  // The co-optimization question of §II-C: "where should the data exactly
  // go?" CCF answers with a T=3 plan, beating both the traffic-optimal SP2
  // (CCT 4) and hash (CCT 4).
  const auto m = testing::paper_chunk_matrix();
  join::AssignmentProblem p;
  p.matrix = &m;
  const auto dest = join::CcfScheduler().schedule(p);
  net::Simulator sim(net::Fabric(3, 1.0), net::make_allocator("madd"));
  sim.add_coflow(net::CoflowSpec("ccf", 0.0, join::assignment_flows(m, dest)));
  EXPECT_NEAR(sim.run().coflows[0].cct(), testing::kOptimalMakespan, 1e-9);
}

TEST(MotivatingExample, SuboptimalTrafficCanBeatOptimalTraffic) {
  // The paper's core observation: SP1 moves MORE data than SP2 (7 > 6) yet
  // completes FASTER under optimal coflow scheduling (3 < 4).
  const auto m = testing::paper_chunk_matrix();
  const auto f1 = join::assignment_flows(m, testing::paper_sp1());
  const auto f2 = join::assignment_flows(m, testing::paper_sp2());
  EXPECT_GT(f1.traffic(), f2.traffic());
  const net::Fabric fabric(3, 1.0);
  EXPECT_LT(net::gamma_bound(f1, fabric), net::gamma_bound(f2, fabric));
}

}  // namespace
}  // namespace ccf
