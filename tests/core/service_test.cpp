// Pins the Service's contract (core/service.hpp):
//
//  1. Replay determinism — every ShardEpoch the service delivers, replayed
//     through a fresh serial Engine, reproduces the epoch's report
//     bit-for-bit. Batching and routing never change the numbers.
//  2. Exactly-once delivery — under concurrent submitters, every accepted
//     ticket appears in exactly one epoch, on the tenant's assigned shard.
//  3. Admission control — token buckets throttle at the door; weights shape
//     the batch order via smooth WRR; invalid specs are status codes, not
//     driver-thread exceptions.
//
// The suite carries the tsan_smoke label: the sanitizer build races real
// client threads against the shard drivers.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "data/workload.hpp"

namespace ccf::core {
namespace {

data::Workload tiny_workload(std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = 8;
  spec.customer_bytes = 4e6;
  spec.orders_bytes = 4e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.3;
  spec.seed = seed;
  return data::generate_workload(spec);
}

std::vector<std::shared_ptr<const data::Workload>> prepared_set(
    std::size_t count) {
  std::vector<std::shared_ptr<const data::Workload>> set;
  for (std::size_t i = 0; i < count; ++i) {
    set.push_back(
        std::make_shared<const data::Workload>(tiny_workload(700 + i)));
  }
  return set;
}

/// Thread-safe epoch recorder (callbacks arrive on every shard's driver).
struct EpochLog {
  std::mutex mutex;
  std::vector<ShardEpoch> epochs;

  Service::EpochCallback callback() {
    return [this](const ShardEpoch& epoch) {
      const std::scoped_lock lock(mutex);
      epochs.push_back(epoch);
    };
  }
};

/// Bit-for-bit on everything except wall-clock timings (the service engine's
/// plan cache reports zero placement time on hits; a fresh replay engine
/// pays it for real).
void expect_identical_numbers(const EngineReport& a, const EngineReport& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].scheduler, b.queries[q].scheduler) << q;
    EXPECT_EQ(a.queries[q].traffic_bytes, b.queries[q].traffic_bytes) << q;
    EXPECT_EQ(a.queries[q].makespan_bytes, b.queries[q].makespan_bytes) << q;
    EXPECT_EQ(a.queries[q].gamma_seconds, b.queries[q].gamma_seconds) << q;
    EXPECT_EQ(a.queries[q].cct_seconds, b.queries[q].cct_seconds) << q;
    EXPECT_EQ(a.queries[q].flow_count, b.queries[q].flow_count) << q;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_traffic_bytes, b.total_traffic_bytes);
  EXPECT_EQ(a.sim.events, b.sim.events);
  EXPECT_EQ(a.sim.total_bytes, b.sim.total_bytes);
  ASSERT_EQ(a.sim.coflows.size(), b.sim.coflows.size());
  for (std::size_t c = 0; c < a.sim.coflows.size(); ++c) {
    EXPECT_EQ(a.sim.coflows[c].name, b.sim.coflows[c].name) << c;
    EXPECT_EQ(a.sim.coflows[c].completion, b.sim.coflows[c].completion) << c;
  }
}

ServiceOptions base_options(std::size_t shards, std::size_t tenants) {
  ServiceOptions options;
  options.engine.nodes = 4;
  options.shards = shards;
  options.max_batch = 2;
  options.max_wait = std::chrono::microseconds(200);
  for (std::size_t t = 0; t < tenants; ++t) {
    TenantSpec tenant;
    tenant.name = "t" + std::to_string(t);
    options.tenants.push_back(std::move(tenant));
  }
  return options;
}

// ---------------------------------------------------------------------------

TEST(Service, ReplaysBitIdenticallyUnderConcurrentSubmitters) {
  EpochLog log;
  const ServiceOptions options = base_options(2, 4);
  const auto workloads = prepared_set(4);
  constexpr std::size_t kPerThread = 24;

  std::vector<std::uint64_t> tickets[4];
  {
    Service service(options, log.callback());
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < 4; ++t) {
      clients.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          QuerySpec spec("t" + std::to_string(t) + "_q" + std::to_string(i),
                         workloads[(t + i) % workloads.size()],
                         i % 2 == 0 ? "ccf" : "hash");
          const SubmitResult r = service.submit(t, std::move(spec));
          ASSERT_TRUE(r.accepted());
          tickets[t].push_back(r.ticket);
        }
      });
    }
    for (std::thread& c : clients) c.join();
    service.flush();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.accepted, 4 * kPerThread);
    EXPECT_EQ(stats.completed, 4 * kPerThread);
    EXPECT_EQ(stats.submitted, 4 * kPerThread);
    EXPECT_GT(stats.epochs, 0u);
    service.stop();
  }

  // Exactly-once: the union of all epochs is exactly the accepted tickets,
  // each on its tenant's shard, and a tenant's own submissions in FIFO order.
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> per_tenant_order[4];
  std::size_t total = 0;
  for (const ShardEpoch& epoch : log.epochs) {
    ASSERT_EQ(epoch.queries.size(), epoch.report.queries.size());
    for (const ServiceQuery& q : epoch.queries) {
      EXPECT_TRUE(seen.insert(q.ticket).second) << "duplicate " << q.ticket;
      EXPECT_EQ(q.tenant % 2, epoch.shard);  // round-robin tenant -> shard
      per_tenant_order[q.tenant].push_back(q.ticket);
      ++total;
    }
  }
  EXPECT_EQ(total, 4 * kPerThread);
  // Epochs interleave across shards in log order; sort by per-shard sequence
  // to recover each tenant's delivery order.
  std::vector<const ShardEpoch*> ordered;
  for (const ShardEpoch& e : log.epochs) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardEpoch* a, const ShardEpoch* b) {
              return a->shard != b->shard ? a->shard < b->shard
                                          : a->seq < b->seq;
            });
  std::vector<std::uint64_t> delivery[4];
  for (const ShardEpoch* e : ordered) {
    for (const ServiceQuery& q : e->queries) delivery[q.tenant].push_back(q.ticket);
  }
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(delivery[t], tickets[t]) << "tenant " << t << " reordered";
  }

  // Replay determinism: each epoch through a fresh serial Engine.
  for (const ShardEpoch& epoch : log.epochs) {
    Engine fresh(options.engine);
    for (const ServiceQuery& q : epoch.queries) fresh.submit(q.spec);
    expect_identical_numbers(epoch.report, fresh.drain());
  }
}

TEST(Service, SmoothWrrAlternatesEqualWeightTenants) {
  EpochLog log;
  ServiceOptions options = base_options(1, 2);
  options.max_batch = 4;
  options.max_wait = std::chrono::milliseconds(100);  // let the batch fill
  const auto workloads = prepared_set(1);

  Service service(options, log.callback());
  // 2 + 2 submissions land well inside the 100 ms accumulation window, so
  // one epoch drains all four; smooth WRR with equal weights alternates.
  ASSERT_TRUE(service.submit(0, QuerySpec("a0", workloads[0])).accepted());
  ASSERT_TRUE(service.submit(0, QuerySpec("a1", workloads[0])).accepted());
  ASSERT_TRUE(service.submit(1, QuerySpec("b0", workloads[0])).accepted());
  ASSERT_TRUE(service.submit(1, QuerySpec("b1", workloads[0])).accepted());
  service.flush();
  service.stop();

  std::vector<std::size_t> order;
  for (const ShardEpoch& e : log.epochs) {
    for (const ServiceQuery& q : e.queries) order.push_back(q.tenant);
  }
  ASSERT_EQ(order.size(), 4u);
  // If all four were staged together the order is exactly 0,1,0,1; if the
  // driver raced ahead the per-tenant FIFO still guarantees no tenant is
  // served twice in a row more often than the other has backlog.
  EXPECT_EQ(std::count(order.begin(), order.end(), 0u), 2);
  EXPECT_EQ(std::count(order.begin(), order.end(), 1u), 2);
}

TEST(Service, TokenBucketThrottlesAtTheDoor) {
  ServiceOptions options = base_options(1, 1);
  options.tenants[0].rate_qps = 1e-3;  // refills one token every ~17 min
  options.tenants[0].burst = 2.0;
  const auto workloads = prepared_set(1);

  Service service(options);
  EXPECT_TRUE(service.submit(0, QuerySpec("q0", workloads[0])).accepted());
  EXPECT_TRUE(service.submit(0, QuerySpec("q1", workloads[0])).accepted());
  const SubmitResult third = service.submit(0, QuerySpec("q2", workloads[0]));
  EXPECT_EQ(third.status, SubmitStatus::kThrottled);
  service.flush();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.throttled, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Service, RejectsInvalidSubmissionsAsStatusCodes) {
  const ServiceOptions options = base_options(2, 3);
  const auto workloads = prepared_set(1);
  Service service(options);

  EXPECT_EQ(service.submit(99, QuerySpec("q", workloads[0])).status,
            SubmitStatus::kUnknownTenant);
  EXPECT_EQ(service.submit(0, QuerySpec{}).status, SubmitStatus::kInvalid);
  EXPECT_EQ(service.submit(0, QuerySpec("q", workloads[0], "bogus")).status,
            SubmitStatus::kInvalid);
  EXPECT_EQ(
      service.submit(0, QuerySpec("q", workloads[0], "ccf", -1.0)).status,
      SubmitStatus::kInvalid);
  QuerySpec wrong_width("q", tiny_workload(1));  // 4-node workload...
  Service wide([] {
    ServiceOptions o = base_options(1, 1);
    o.engine.nodes = 8;  // ...against an 8-node service
    return o;
  }());
  EXPECT_EQ(wide.submit(0, std::move(wrong_width)).status,
            SubmitStatus::kInvalid);

  // Tenant -> shard round robin, pinning validated at construction.
  EXPECT_EQ(service.tenant_shard(0), 0u);
  EXPECT_EQ(service.tenant_shard(1), 1u);
  EXPECT_EQ(service.tenant_shard(2), 0u);
  ServiceOptions bad = base_options(2, 1);
  bad.tenants[0].shard = 7;
  EXPECT_THROW(Service{std::move(bad)}, std::invalid_argument);

  service.stop();
  EXPECT_EQ(service.submit(0, QuerySpec("q", workloads[0])).status,
            SubmitStatus::kStopped);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.invalid, 3u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(Service, ShardEnginesReusePlansAcrossEpochs) {
  EpochLog log;
  ServiceOptions options = base_options(1, 1);
  options.max_batch = 1;  // every submission is its own epoch
  const auto workloads = prepared_set(2);

  Service service(options, log.callback());
  for (int round = 0; round < 5; ++round) {
    for (const auto& w : workloads) {
      ASSERT_TRUE(service.submit(0, QuerySpec("q", w)).accepted());
      service.flush();  // serialize: one epoch per submission
    }
  }
  service.stop();

  const EngineStats engine_stats = service.shard_engine(0).stats();
  EXPECT_EQ(engine_stats.queries, 10u);
  EXPECT_EQ(engine_stats.plan_misses, 2u);  // one cold placement per workload
  EXPECT_EQ(engine_stats.plan_hits, 8u);    // everything after is a hit

  // And the cached epochs still replay bit-identically.
  for (const ShardEpoch& epoch : log.epochs) {
    Engine fresh(options.engine);
    for (const ServiceQuery& q : epoch.queries) fresh.submit(q.spec);
    expect_identical_numbers(epoch.report, fresh.drain());
  }
}

}  // namespace
}  // namespace ccf::core
