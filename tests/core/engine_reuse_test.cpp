// Pins the Engine's cross-epoch reuse guarantees (core/engine.hpp):
//
//  1. A long-lived session is bit-identical to fresh Engines — epoch N of a
//     session that keeps its simulator, allocator, arena and plan cache
//     across drains reproduces the same batch drained by a freshly
//     constructed Engine, for every rate allocator the registry knows.
//  2. Plan-cache hits change the wall-clock, never the numbers — a session
//     with the cache disabled reports the same epochs.
//  3. Steady state allocates nothing — the session simulator's arena stops
//     growing once warm, and the plan cache stays within its capacity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "data/workload.hpp"

namespace ccf::core {
namespace {

data::Workload tiny_workload(std::uint64_t seed) {
  data::WorkloadSpec spec;
  spec.nodes = 4;
  spec.partitions = 8;
  spec.customer_bytes = 4e6;
  spec.orders_bytes = 4e7;
  spec.zipf_theta = 0.8;
  spec.skew = 0.3;
  spec.seed = seed;
  return data::generate_workload(spec);
}

/// Shared prepared workloads — the same pointers resubmitted every epoch,
/// exactly the always-on service's working set.
std::vector<std::shared_ptr<const data::Workload>> prepared_set(
    std::size_t count) {
  std::vector<std::shared_ptr<const data::Workload>> set;
  for (std::size_t i = 0; i < count; ++i) {
    set.push_back(
        std::make_shared<const data::Workload>(tiny_workload(300 + i)));
  }
  return set;
}

void submit_epoch(
    Engine& engine,
    const std::vector<std::shared_ptr<const data::Workload>>& workloads) {
  const char* schedulers[] = {"ccf", "hash", "mini"};
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    engine.submit(QuerySpec("q" + std::to_string(i), workloads[i],
                            schedulers[i % 3],
                            0.05 * static_cast<double>(i)));
  }
}

/// Everything but the wall-clock timings: a plan-cache hit legitimately
/// reports schedule_seconds == 0 while a cold run reports the real time.
void expect_identical_numbers(const EngineReport& a, const EngineReport& b) {
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(a.queries[q].scheduler, b.queries[q].scheduler) << q;
    EXPECT_EQ(a.queries[q].skew_handled, b.queries[q].skew_handled) << q;
    EXPECT_EQ(a.queries[q].traffic_bytes, b.queries[q].traffic_bytes) << q;
    EXPECT_EQ(a.queries[q].makespan_bytes, b.queries[q].makespan_bytes) << q;
    EXPECT_EQ(a.queries[q].gamma_seconds, b.queries[q].gamma_seconds) << q;
    EXPECT_EQ(a.queries[q].cct_seconds, b.queries[q].cct_seconds) << q;
    EXPECT_EQ(a.queries[q].flow_count, b.queries[q].flow_count) << q;
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_traffic_bytes, b.total_traffic_bytes);
  EXPECT_EQ(a.sim.events, b.sim.events);
  EXPECT_EQ(a.sim.total_bytes, b.sim.total_bytes);
  ASSERT_EQ(a.sim.coflows.size(), b.sim.coflows.size());
  for (std::size_t c = 0; c < a.sim.coflows.size(); ++c) {
    EXPECT_EQ(a.sim.coflows[c].name, b.sim.coflows[c].name) << c;
    EXPECT_EQ(a.sim.coflows[c].arrival, b.sim.coflows[c].arrival) << c;
    EXPECT_EQ(a.sim.coflows[c].completion, b.sim.coflows[c].completion) << c;
  }
}

// ---------------------------------------------------------------------------

class SessionReuse : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionReuse, LongLivedSessionMatchesFreshEnginePerEpoch) {
  EngineOptions opts;
  opts.nodes = 4;
  opts.allocator = GetParam();
  Engine session(opts);
  const auto workloads = prepared_set(3);

  for (int epoch = 0; epoch < 6; ++epoch) {
    submit_epoch(session, workloads);
    const EngineReport lived = session.drain();

    Engine fresh(opts);
    submit_epoch(fresh, workloads);
    const EngineReport isolated = fresh.drain();
    expect_identical_numbers(lived, isolated);
  }
  // Every epoch past the first was served from the plan cache.
  const EngineStats stats = session.stats();
  EXPECT_EQ(stats.plan_misses, 3u);
  EXPECT_EQ(stats.plan_hits, 5u * 3u);
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, SessionReuse, ::testing::ValuesIn([] {
                           std::vector<std::string> names;
                           for (const auto name : registry::allocator_names())
                             names.emplace_back(name);
                           return names;
                         }()),
                         [](const auto& param_info) {
                           std::string label = param_info.param;
                           for (char& c : label)
                             if (c == '-') c = '_';
                           return label;
                         });

TEST(SessionReuseDetails, PlanCacheOnlyChangesTheWallClock) {
  EngineOptions cached;
  cached.nodes = 4;
  EngineOptions uncached = cached;
  uncached.plan_cache_capacity = 0;
  Engine with_cache(cached);
  Engine without_cache(uncached);
  const auto workloads = prepared_set(2);

  for (int epoch = 0; epoch < 4; ++epoch) {
    submit_epoch(with_cache, workloads);
    submit_epoch(without_cache, workloads);
    const EngineReport hot = with_cache.drain();
    const EngineReport cold = without_cache.drain();
    expect_identical_numbers(hot, cold);
    if (epoch > 0) {
      // The hit's reported placement time is exactly zero: the stage graph
      // never ran.
      for (const RunReport& r : hot.queries) {
        EXPECT_EQ(r.schedule_seconds, 0.0);
      }
    }
  }
  EXPECT_EQ(without_cache.stats().plan_hits, 0u);
  EXPECT_EQ(without_cache.stats().plan_misses, 8u);
  EXPECT_EQ(with_cache.stats().plan_hits, 6u);
}

TEST(SessionReuseDetails, SteadyStateEpochsDoNotGrowTheArena) {
  EngineOptions opts;
  opts.nodes = 4;
  Engine session(opts);
  const auto workloads = prepared_set(3);

  // Warm up: the first drains build the simulator and size the arena blocks.
  for (int epoch = 0; epoch < 3; ++epoch) {
    submit_epoch(session, workloads);
    session.drain();
  }
  const std::size_t warm_capacity = session.sim_arena_capacity();
  EXPECT_GT(warm_capacity, 0u);

  EngineReport report;
  for (int epoch = 0; epoch < 10; ++epoch) {
    submit_epoch(session, workloads);
    session.drain_into(report);
    EXPECT_EQ(session.sim_arena_capacity(), warm_capacity) << epoch;
  }
}

TEST(SessionReuseDetails, PlanCacheEvictionIsWholesaleAndBounded) {
  EngineOptions opts;
  opts.nodes = 4;
  opts.plan_cache_capacity = 2;
  Engine session(opts);
  const auto workloads = prepared_set(3);

  submit_epoch(session, workloads);
  session.drain();
  // Third insert found the table full: wholesale clear, then insert.
  EXPECT_EQ(session.plan_cache_size(), 1u);
  EXPECT_LE(session.plan_cache_size(), opts.plan_cache_capacity);

  // A dropped entry is a miss again — and still numerically invisible.
  submit_epoch(session, workloads);
  const EngineReport second = session.drain();
  Engine fresh(opts);
  submit_epoch(fresh, workloads);
  expect_identical_numbers(second, fresh.drain());
}

TEST(SessionReuseDetails, CacheKeyIsWorkloadIdentityNotValue) {
  EngineOptions opts;
  opts.nodes = 4;
  Engine session(opts);
  const data::Workload base = tiny_workload(42);

  // Equal values, distinct objects: both are misses (pointer identity).
  session.submit(QuerySpec("a", data::Workload(base)));
  session.submit(QuerySpec("b", data::Workload(base)));
  session.drain();
  EXPECT_EQ(session.stats().plan_misses, 2u);
  EXPECT_EQ(session.stats().plan_hits, 0u);

  // Same object, different scheduler or skew flag: distinct plans.
  const auto shared = std::make_shared<const data::Workload>(base);
  session.submit(QuerySpec("c", shared, "ccf"));
  session.drain();
  session.submit(QuerySpec("d", shared, "hash"));
  QuerySpec no_skew("e", shared, "ccf");
  no_skew.skew_handling = false;
  session.submit(std::move(no_skew));
  session.submit(QuerySpec("f", shared, "ccf"));  // the only hit
  session.drain();
  EXPECT_EQ(session.stats().plan_hits, 1u);
  EXPECT_EQ(session.stats().plan_misses, 5u);
}

}  // namespace
}  // namespace ccf::core
