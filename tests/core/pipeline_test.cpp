#include "core/pipeline.hpp"

#include <gtest/gtest.h>

namespace ccf::core {
namespace {

data::Workload small_workload(double skew = 0.2, double zipf = 0.8) {
  data::WorkloadSpec spec;
  spec.nodes = 10;
  spec.partitions = 150;
  spec.customer_bytes = 9e7;
  spec.orders_bytes = 9e8;
  spec.zipf_theta = zipf;
  spec.skew = skew;
  spec.seed = 21;
  return data::generate_workload(spec);
}

TEST(PaperSystem, FlagsMatchPaperSetup) {
  const auto hash = PipelineOptions::paper_system("hash");
  EXPECT_FALSE(hash.skew_handling);
  EXPECT_EQ(hash.allocator, "madd");
  const auto mini = PipelineOptions::paper_system("mini");
  EXPECT_TRUE(mini.skew_handling);
  const auto ccf = PipelineOptions::paper_system("ccf");
  EXPECT_TRUE(ccf.skew_handling);
}

TEST(RunPipeline, ReportFieldsAreConsistent) {
  const auto w = small_workload();
  const RunReport r = run_pipeline(w, PipelineOptions::paper_system("ccf"));
  EXPECT_EQ(r.scheduler, "ccf");
  EXPECT_TRUE(r.skew_handled);
  EXPECT_GT(r.traffic_bytes, 0.0);
  EXPECT_GT(r.flow_count, 0u);
  EXPECT_GT(r.cct_seconds, 0.0);
  // Under MADD the simulated CCT equals the analytic bound.
  EXPECT_NEAR(r.cct_seconds, r.gamma_seconds, 1e-6 * r.gamma_seconds);
  // T (bytes) / port rate == gamma (seconds).
  EXPECT_NEAR(r.makespan_bytes / net::Fabric::kDefaultPortRate,
              r.gamma_seconds, 1e-9 * r.gamma_seconds);
  EXPECT_GE(r.schedule_seconds, 0.0);
}

TEST(RunPipeline, AnalyticModeSkipsSimulation) {
  const auto w = small_workload();
  PipelineOptions opts = PipelineOptions::paper_system("ccf");
  opts.simulate = false;
  const RunReport r = run_pipeline(w, opts);
  EXPECT_DOUBLE_EQ(r.cct_seconds, r.gamma_seconds);
  EXPECT_TRUE(r.sim.coflows.empty());
}

TEST(RunPipeline, AnalyticEqualsSimulatedForAllPaperSystems) {
  const auto w = small_workload();
  for (const char* name : {"hash", "mini", "ccf"}) {
    PipelineOptions sim_opts = PipelineOptions::paper_system(name);
    PipelineOptions ana_opts = sim_opts;
    ana_opts.simulate = false;
    const double sim_cct = run_pipeline(w, sim_opts).cct_seconds;
    const double ana_cct = run_pipeline(w, ana_opts).cct_seconds;
    EXPECT_NEAR(sim_cct, ana_cct, 1e-6 * ana_cct + 1e-12) << name;
  }
}

TEST(RunPipeline, CcfFastestOnPaperStyleWorkload) {
  const auto w = small_workload();
  const double hash =
      run_pipeline(w, PipelineOptions::paper_system("hash")).cct_seconds;
  const double mini =
      run_pipeline(w, PipelineOptions::paper_system("mini")).cct_seconds;
  const double ccf =
      run_pipeline(w, PipelineOptions::paper_system("ccf")).cct_seconds;
  EXPECT_LT(ccf, hash);
  EXPECT_LT(ccf, mini);
}

TEST(RunPipeline, MiniHasLeastTrafficWithoutSkewHandling) {
  // With skew handling off for everyone, Mini minimizes traffic by design.
  const auto w = small_workload();
  PipelineOptions opts;
  opts.skew_handling = false;
  opts.scheduler = "mini";
  const double mini = run_pipeline(w, opts).traffic_bytes;
  for (const char* name : {"hash", "ccf"}) {
    opts.scheduler = name;
    EXPECT_LE(mini, run_pipeline(w, opts).traffic_bytes + 1e-6) << name;
  }
}

TEST(RunPipeline, SkewHandlingReducesTrafficAndCct) {
  const auto w = small_workload(0.4);
  PipelineOptions with = PipelineOptions::paper_system("ccf");
  PipelineOptions without = with;
  without.skew_handling = false;
  const RunReport rw = run_pipeline(w, with);
  const RunReport ro = run_pipeline(w, without);
  EXPECT_LT(rw.traffic_bytes, ro.traffic_bytes);
  EXPECT_LE(rw.cct_seconds, ro.cct_seconds + 1e-9);
}

TEST(RunPipeline, PortRateScalesCct) {
  const auto w = small_workload();
  PipelineOptions fast = PipelineOptions::paper_system("ccf");
  PipelineOptions slow = fast;
  fast.port_rate = 250e6;
  slow.port_rate = 125e6;
  const double f = run_pipeline(w, fast).cct_seconds;
  const double s = run_pipeline(w, slow).cct_seconds;
  EXPECT_NEAR(s / f, 2.0, 1e-6);
}

TEST(RunPipeline, HashSeesFullSkewHotspot) {
  // Without skew handling the hot partition floods one ingress port: Hash's
  // bottleneck must be at least the remote share of the skewed mass.
  const auto w = small_workload(0.5);
  const RunReport r = run_pipeline(w, PipelineOptions::paper_system("hash"));
  const double skewed = w.skew.skewed_bytes_total();
  EXPECT_GT(r.makespan_bytes, 0.5 * skewed);
}

TEST(RunPipeline, FaultScheduleStretchesSimulatedCct) {
  const auto w = small_workload();
  PipelineOptions clean = PipelineOptions::paper_system("ccf");
  PipelineOptions faulty = clean;
  // Halve every port of node 0 for the whole run: the simulated CCT must
  // strictly exceed the fault-free run, and the analytic Γ must not move.
  faulty.faults.slow_node(0.0, 0, 0.5);
  const RunReport rc = run_pipeline(w, clean);
  const RunReport rf = run_pipeline(w, faulty);
  EXPECT_GT(rf.cct_seconds, rc.cct_seconds);
  EXPECT_DOUBLE_EQ(rf.gamma_seconds, rc.gamma_seconds);
  EXPECT_GT(rf.sim.fault_events, 0u);
  EXPECT_NEAR(rf.sim.total_bytes, rc.sim.total_bytes,
              1e-9 * (1.0 + rc.sim.total_bytes));
}

TEST(RunPipeline, EmptyFaultScheduleChangesNothing) {
  const auto w = small_workload();
  PipelineOptions opts = PipelineOptions::paper_system("ccf");
  const RunReport a = run_pipeline(w, opts);
  opts.faults = net::FaultSchedule{};  // explicit empty schedule
  opts.fault_options.replace_on_failure = true;
  const RunReport b = run_pipeline(w, opts);
  EXPECT_EQ(a.cct_seconds, b.cct_seconds);
  EXPECT_EQ(b.sim.fault_events, 0u);
}

TEST(RunPipeline, UnknownSchedulerThrows) {
  const auto w = small_workload();
  PipelineOptions opts;
  opts.scheduler = "nope";
  EXPECT_THROW(run_pipeline(w, opts), std::invalid_argument);
}

}  // namespace
}  // namespace ccf::core
