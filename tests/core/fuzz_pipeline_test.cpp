// Randomized full-pipeline invariants ("fuzz" sweep): for arbitrary workload
// shapes, the cross-layer accounting must stay consistent. Catches the class
// of bugs where scheduler, skew handler, flow builder and simulator disagree
// about what moved where.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/skew_handling.hpp"
#include "util/rng.hpp"

namespace ccf {
namespace {

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  data::WorkloadSpec random_spec() {
    util::Pcg32 rng(util::derive_seed(GetParam(), 71), 71);
    data::WorkloadSpec spec;
    spec.nodes = 1 + rng.bounded(30);
    spec.partitions = 1 + rng.bounded(200);
    spec.customer_bytes = rng.uniform(1e3, 1e7);
    spec.orders_bytes = rng.uniform(1e3, 1e8);
    spec.zipf_theta = rng.uniform(0.0, 2.0);
    spec.skew = rng.uniform(0.0, 0.9);
    spec.align_zipf_ranks = rng.uniform01() < 0.5;
    spec.jitter = rng.uniform(0.0, 0.1);
    spec.seed = GetParam() * 1000 + 7;
    return spec;
  }
};

TEST_P(FuzzPipeline, AccountingInvariantsHoldForEverySystem) {
  const auto spec = random_spec();
  const auto w = data::generate_workload(spec);
  // The generated matrix conserves bytes.
  EXPECT_NEAR(w.matrix.total(), spec.total_bytes(),
              1e-6 * spec.total_bytes() + 1e-6);

  for (const char* name : {"hash", "mini", "ccf"}) {
    const auto opts = core::PipelineOptions::paper_system(name);
    const auto r = core::run_pipeline(w, opts);

    // Traffic can never exceed what exists (plus tiny broadcast mass).
    EXPECT_LE(r.traffic_bytes,
              w.matrix.total() +
                  spec.payload_bytes * static_cast<double>(spec.nodes) + 1e-6)
        << name;
    // MADD: simulated CCT == analytic Γ == T / port rate.
    EXPECT_NEAR(r.cct_seconds, r.gamma_seconds,
                1e-6 * r.gamma_seconds + 1e-12)
        << name;
    EXPECT_NEAR(r.gamma_seconds, r.makespan_bytes / opts.port_rate,
                1e-9 * r.gamma_seconds + 1e-12)
        << name;
    // The bottleneck port cannot carry more than all traffic, nor less than
    // the perfectly-balanced share.
    EXPECT_LE(r.makespan_bytes, r.traffic_bytes + 1e-6) << name;
    EXPECT_GE(r.makespan_bytes + 1e-6,
              r.traffic_bytes / static_cast<double>(spec.nodes))
        << name;
    // Simulation moved exactly the traffic.
    if (!r.sim.coflows.empty()) {
      EXPECT_NEAR(r.sim.total_bytes, r.traffic_bytes,
                  1e-6 * r.traffic_bytes + 1e-6)
          << name;
    }
  }
}

TEST_P(FuzzPipeline, SkewHandlerConservesBytes) {
  const auto spec = random_spec();
  const auto w = data::generate_workload(spec);
  const auto prepared = core::apply_partial_duplication(w, true);
  if (!prepared.skew_handled) return;
  EXPECT_NEAR(w.matrix.total(),
              prepared.residual.total() + prepared.pinned_local_bytes +
                  prepared.broadcast_removed_bytes,
              1e-6 * w.matrix.total() + 1e-6);
  EXPECT_LE(prepared.broadcast_removed_bytes, w.skew.broadcast_bytes + 1e-9);
  // Residual never negative anywhere.
  for (std::size_t k = 0; k < prepared.residual.partitions(); ++k) {
    for (std::size_t i = 0; i < prepared.residual.nodes(); ++i) {
      EXPECT_GE(prepared.residual.h(k, i), -1e-9);
    }
  }
}

TEST_P(FuzzPipeline, SkewHandlingNeverSlowsCcfDown) {
  const auto spec = random_spec();
  const auto w = data::generate_workload(spec);
  core::PipelineOptions with = core::PipelineOptions::paper_system("ccf");
  core::PipelineOptions without = with;
  without.skew_handling = false;
  with.simulate = without.simulate = false;  // analytic is exact under MADD
  const double cct_with = core::run_pipeline(w, with).cct_seconds;
  const double cct_without = core::run_pipeline(w, without).cct_seconds;
  // Pinning hot data + broadcasting a tiny build side should never hurt by
  // more than the broadcast mass itself.
  const double broadcast_slack =
      spec.payload_bytes * static_cast<double>(spec.nodes) /
      net::Fabric::kDefaultPortRate;
  EXPECT_LE(cct_with, cct_without + broadcast_slack + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace ccf
